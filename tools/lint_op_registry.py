#!/usr/bin/env python
"""CI lint: both graph executors consume the one shared op registry.

The interpreter (:mod:`repro.tensor.interpreter`) and the codegen executor
(:mod:`repro.tensor.codegen`) must agree exactly on every op, which they do
by construction *only* as long as neither implements or special-cases an op
privately — all per-op knowledge has to live in
:mod:`repro.tensor.op_semantics` / :data:`repro.tensor.ops.OP_REGISTRY`.
This script asserts that invariant statically and fails the build when it
rots:

1. every registered op is reported executable for *both* executors by the
   shared ``op_semantics.op_unsupported_reason`` predicate;
2. neither executor module registers ops of its own (no ``register_op``);
3. neither executor module hard-codes a registry op name as a string
   constant — dispatch must stay name-generic.  The two shared sentinels
   (``to_device`` transfers, ``fused_kernel``) are exempt because their
   special-case rules are themselves defined in ``op_semantics``;
4. both executor modules import ``op_semantics``.

Run from the repository root: ``python tools/lint_op_registry.py``
(``PYTHONPATH=src``, as in CI).
"""

from __future__ import annotations

import ast
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.tensor import op_semantics, ops  # noqa: E402

EXECUTOR_MODULES = (
    REPO_ROOT / "src" / "repro" / "tensor" / "interpreter.py",
    REPO_ROOT / "src" / "repro" / "tensor" / "codegen.py",
)

#: Op names whose special-case handling is allowed to appear by name in the
#: executors: their rules (transfer forwarding, fused-step unrolling) are
#: defined once in op_semantics and the executors merely reference them.
SHARED_SENTINELS = {op_semantics.TRANSFER_OP, op_semantics.FUSED_OP}


def check_registry_coverage(problems: list[str]) -> None:
    for op in sorted(ops.OP_REGISTRY):
        reason = op_semantics.op_unsupported_reason(op)
        if reason is not None:
            problems.append(
                f"op {op!r} is registered but not executable by both "
                f"executors: {reason}")


def check_module(path: pathlib.Path, problems: list[str]) -> None:
    rel = path.relative_to(REPO_ROOT)
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(rel))

    imports = {
        alias.name
        for node in ast.walk(tree)
        if isinstance(node, ast.ImportFrom) and node.module
        for alias in node.names
    }
    if "op_semantics" not in imports:
        problems.append(f"{rel}: does not import op_semantics — per-op "
                        f"semantics must come from the shared module")

    names = {
        node.id if isinstance(node, ast.Name) else node.attr
        for node in ast.walk(tree)
        if isinstance(node, (ast.Name, ast.Attribute))
    }
    if "register_op" in names:
        problems.append(f"{rel}: references register_op — executors must "
                        f"not define ops of their own")

    registry_names = set(ops.OP_REGISTRY) - SHARED_SENTINELS
    for node in ast.walk(tree):
        if (isinstance(node, ast.Constant) and isinstance(node.value, str)
                and node.value in registry_names):
            problems.append(
                f"{rel}:{node.lineno}: hard-coded op name {node.value!r} — "
                f"per-op special cases belong in op_semantics / the registry")


def main() -> int:
    problems: list[str] = []
    check_registry_coverage(problems)
    for path in EXECUTOR_MODULES:
        check_module(path, problems)
    if problems:
        print("op-registry lint FAILED:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(f"op-registry lint OK: {len(ops.OP_REGISTRY)} ops shared by "
          f"{len(EXECUTOR_MODULES)} executors, none implemented privately")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
