#!/usr/bin/env python
"""CI lint: both graph executors consume the one shared op registry.

The interpreter (:mod:`repro.tensor.interpreter`) and the codegen executor
(:mod:`repro.tensor.codegen`) must agree exactly on every op, which they do
by construction *only* as long as neither implements or special-cases an op
privately — all per-op knowledge has to live in
:mod:`repro.tensor.op_semantics` / :data:`repro.tensor.ops.OP_REGISTRY`.
This script asserts that invariant statically and fails the build when it
rots:

1. every registered op is reported executable for *both* executors by the
   shared ``op_semantics.op_unsupported_reason`` predicate;
2. neither executor module registers ops of its own (no ``register_op``);
3. neither executor module hard-codes a registry op name as a string
   constant — dispatch must stay name-generic.  The two shared sentinels
   (``to_device`` transfers, ``fused_kernel``) are exempt because their
   special-case rules are themselves defined in ``op_semantics``;
4. both executor modules import ``op_semantics``;
5. the planner gates on :mod:`repro.core.tuning` constants, never on
   hard-coded threshold literals (which the adaptive runtime could not
   override).

Run from the repository root: ``python tools/lint_op_registry.py``
(``PYTHONPATH=src``, as in CI).
"""

from __future__ import annotations

import ast
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.tensor import op_semantics, ops  # noqa: E402

EXECUTOR_MODULES = (
    REPO_ROOT / "src" / "repro" / "tensor" / "interpreter.py",
    REPO_ROOT / "src" / "repro" / "tensor" / "codegen.py",
)

#: Cost-model modules that classify exchange ops for interconnect charging.
#: They must consume ``op_semantics.EXCHANGE_OPS`` / ``GATHER_OP`` rather
#: than spell shard-op names, so adding an exchange variant cannot silently
#: leave a backend charging it as a kernel.
COST_MODEL_MODULES = (
    REPO_ROOT / "src" / "repro" / "backends" / "base.py",
    REPO_ROOT / "src" / "repro" / "backends" / "cpu.py",
    REPO_ROOT / "src" / "repro" / "backends" / "gpu_sim.py",
    REPO_ROOT / "src" / "repro" / "backends" / "wasm_sim.py",
)

#: Op names whose special-case handling is allowed to appear by name in the
#: executors: their rules (transfer forwarding, fused-step unrolling) are
#: defined once in op_semantics and the executors merely reference them.
SHARED_SENTINELS = {op_semantics.TRANSFER_OP, op_semantics.FUSED_OP}

#: The planner module: every magic performance threshold it gates on must
#: come from :mod:`repro.core.tuning`, never a literal, so the adaptive
#: runtime (and tests) can override them per strategy.
PLANNER_MODULE = REPO_ROOT / "src" / "repro" / "core" / "planner.py"


def check_registry_coverage(problems: list[str]) -> None:
    for op in sorted(ops.OP_REGISTRY):
        reason = op_semantics.op_unsupported_reason(op)
        if reason is not None:
            problems.append(
                f"op {op!r} is registered but not executable by both "
                f"executors: {reason}")


def check_exchange_ops(problems: list[str]) -> None:
    """The distributed exchange ops are ordinary registry ops.

    Both executors must be able to run them (a distributed trace replays on
    the interpreter *and* the codegen executor — codegen has no special case
    to fall back on, so registry membership is the whole portability story),
    and the profiler's event record must carry the shard attribution the
    cost models split timelines by.
    """
    for op in sorted(op_semantics.EXCHANGE_OPS):
        if op not in ops.OP_REGISTRY:
            problems.append(f"exchange op {op!r} is missing from OP_REGISTRY")
            continue
        reason = op_semantics.op_unsupported_reason(op)
        if reason is not None:
            problems.append(f"exchange op {op!r} is not executable by both "
                            f"executors: {reason}")
    if op_semantics.GATHER_OP not in op_semantics.EXCHANGE_OPS:
        problems.append("GATHER_OP must be one of EXCHANGE_OPS")
    from repro.tensor.profiler import OpEvent
    import dataclasses as _dc

    fields = {field.name for field in _dc.fields(OpEvent)}
    if "shard" not in fields or "lane" not in fields:
        problems.append("OpEvent must carry lane and shard attribution for "
                        "the cost models' timeline splits")


def check_cost_model(path: pathlib.Path, problems: list[str]) -> None:
    rel = path.relative_to(REPO_ROOT)
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(rel))
    for node in ast.walk(tree):
        if (isinstance(node, ast.Constant) and isinstance(node.value, str)
                and node.value in op_semantics.EXCHANGE_OPS):
            problems.append(
                f"{rel}:{node.lineno}: hard-coded exchange op name "
                f"{node.value!r} — classify via op_semantics.EXCHANGE_OPS / "
                f"GATHER_OP")


def check_module(path: pathlib.Path, problems: list[str]) -> None:
    rel = path.relative_to(REPO_ROOT)
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(rel))

    imports = {
        alias.name
        for node in ast.walk(tree)
        if isinstance(node, ast.ImportFrom) and node.module
        for alias in node.names
    }
    if "op_semantics" not in imports:
        problems.append(f"{rel}: does not import op_semantics — per-op "
                        f"semantics must come from the shared module")

    names = {
        node.id if isinstance(node, ast.Name) else node.attr
        for node in ast.walk(tree)
        if isinstance(node, (ast.Name, ast.Attribute))
    }
    if "register_op" in names:
        problems.append(f"{rel}: references register_op — executors must "
                        f"not define ops of their own")

    registry_names = set(ops.OP_REGISTRY) - SHARED_SENTINELS
    for node in ast.walk(tree):
        if (isinstance(node, ast.Constant) and isinstance(node.value, str)
                and node.value in registry_names):
            problems.append(
                f"{rel}:{node.lineno}: hard-coded op name {node.value!r} — "
                f"per-op special cases belong in op_semantics / the registry")


def check_planner_tuning(path: pathlib.Path, problems: list[str]) -> None:
    """The planner's thresholds live in ``repro.core.tuning``, not inline.

    Any integer literal ≥ 2 used as a comparison bound in the planner is a
    tuning constant in disguise — it silently forks the threshold set the
    adaptive runtime overrides per strategy.  (0/1 compare against "none/one
    lane|device", which is structure, not tuning.)
    """
    rel = path.relative_to(REPO_ROOT)
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(rel))
    imports = {
        node.module
        for node in ast.walk(tree)
        if isinstance(node, ast.ImportFrom) and node.module
    }
    if "repro.core.tuning" not in imports:
        problems.append(f"{rel}: does not import repro.core.tuning — planner "
                        f"thresholds must come from the tuning module")
    for node in ast.walk(tree):
        if not isinstance(node, ast.Compare):
            continue
        for comp in node.comparators:
            if (isinstance(comp, ast.Constant)
                    and isinstance(comp.value, int)
                    and not isinstance(comp.value, bool)
                    and comp.value >= 2):
                problems.append(
                    f"{rel}:{node.lineno}: hard-coded threshold literal "
                    f"{comp.value} in {ast.unparse(node)!r} — gate on a "
                    f"repro.core.tuning constant instead")


def main() -> int:
    problems: list[str] = []
    check_registry_coverage(problems)
    check_exchange_ops(problems)
    for path in EXECUTOR_MODULES:
        check_module(path, problems)
    for path in COST_MODEL_MODULES:
        check_cost_model(path, problems)
    check_planner_tuning(PLANNER_MODULE, problems)
    if problems:
        print("op-registry lint FAILED:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(f"op-registry lint OK: {len(ops.OP_REGISTRY)} ops shared by "
          f"{len(EXECUTOR_MODULES)} executors, none implemented privately")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
