"""Prepared-statement serving throughput (the compile-once/bind-many benchmark).

The ROADMAP's serving target is heavy traffic where the *shape* of a query is
shared by millions of requests but every request carries its own constants —
``WHERE l_quantity < 24`` for one user, ``< 25`` for the next.  This benchmark
compares, on TPC-H Q6:

* ``naive``    — one ``session.sql()`` call per distinct literal.  Every
  request is a fresh parse → analyze → optimize → plan → trace (the plan cache
  cannot help: each text is new),
* ``prepared`` — one ``session.prepare()`` then ``execute_many`` over the same
  bindings: the traced program is compiled once and each request only feeds
  new scalar tensors to it,
* ``auto``     — ad-hoc ``sql()`` calls with
  ``ExecutionOptions(auto_parameterize=True)``: the literals are lifted out of
  the text so all requests share a single plan-cache entry.

At small scale factors (compile-dominated, the serving regime) the prepared
path must be at least **10×** faster than the naive loop, and the counters
must prove exactly one trace served every binding.
"""

from __future__ import annotations

import statistics
import time

import pytest

from repro import ExecutionOptions, TQPSession
from repro.bench.harness import tpch_session

#: Distinct l_quantity cut-offs, one per simulated request.
NUM_REQUESTS = 100

Q6_PREPARED = """
select sum(l_extendedprice * l_discount) as revenue
from lineitem
where
    l_shipdate >= date '1994-01-01'
    and l_shipdate < date '1994-01-01' + interval '1' year
    and l_discount between :lo and :hi
    and l_quantity < :q
"""

OPTIONS = ExecutionOptions(backend="torchscript", device="cpu")


def _bindings() -> list[dict]:
    return [{"lo": 0.03, "hi": 0.07, "q": 1.0 + i * 0.49}
            for i in range(NUM_REQUESTS)]


def _literal_sql(binding: dict) -> str:
    return (Q6_PREPARED
            .replace(":lo", repr(binding["lo"]))
            .replace(":hi", repr(binding["hi"]))
            .replace(":q", repr(binding["q"])))


def _fresh_session(tables) -> TQPSession:
    session = TQPSession()
    for name, frame in tables.items():
        session.register(name, frame)
    return session


def test_prepared_throughput_vs_naive_literal_loop(tpch_env, scale_factor):
    _, tables = tpch_env
    bindings = _bindings()

    # Naive serving loop: a fresh literal text per request.
    naive_session = _fresh_session(tables)
    start = time.perf_counter()
    for binding in bindings:
        naive_session.sql(_literal_sql(binding), options=OPTIONS)
    naive_s = time.perf_counter() - start

    # Prepared serving loop: compile once, bind many.
    prepared_session = _fresh_session(tables)
    prepared = prepared_session.prepare(Q6_PREPARED, options=OPTIONS)
    prepared.bind(**bindings[0]).execute()  # trace once, outside the clock
    prepared_s = float("inf")
    for _ in range(3):  # best-of-3 damps scheduler noise in CI
        start = time.perf_counter()
        results = prepared.execute_many(bindings)
        prepared_s = min(prepared_s, time.perf_counter() - start)

    assert len(results) == NUM_REQUESTS
    # One compile served every binding — the plan-cache counters prove the
    # naive loop instead missed once per distinct literal.
    assert prepared.compiled.executor.compile_count == 1
    assert prepared_session.plan_cache.stats()["misses"] == 1
    assert naive_session.plan_cache.stats()["misses"] == NUM_REQUESTS

    naive_qps = NUM_REQUESTS / naive_s
    prepared_qps = NUM_REQUESTS / prepared_s
    speedup = naive_s / prepared_s
    # Per-request columns: reported time is the (possibly simulated) kernel
    # time from the cost model; wall time is always host perf_counter.
    reported_ms = statistics.median(r.reported_s for r in results) * 1e3
    wall_ms = statistics.median(r.measured_s for r in results) * 1e3
    print(f"\nprepared-vs-naive @ SF {scale_factor}: "
          f"naive {naive_qps:,.0f} q/s, prepared {prepared_qps:,.0f} q/s, "
          f"speedup {speedup:.1f}x")
    print(f"per request (prepared): reported {reported_ms:.3f} ms, "
          f"wall {wall_ms:.3f} ms")

    # In the compile-dominated serving regime the win must be >=10x; at
    # larger scale factors execution cost grows while compile cost stays
    # fixed, so the required ratio relaxes.
    required = 10.0 if scale_factor <= 0.005 else 3.0
    assert speedup >= required, (
        f"prepared execution must be >={required}x naive sql() calls, "
        f"got {speedup:.1f}x")


def test_auto_parameterized_adhoc_sql_shares_one_plan(tpch_env, scale_factor):
    _, tables = tpch_env
    session = _fresh_session(tables)
    options = OPTIONS.replace(auto_parameterize=True)
    bindings = _bindings()[:20]

    session.sql(_literal_sql(bindings[0]), options=options)  # compile once
    start = time.perf_counter()
    for binding in bindings:
        session.sql(_literal_sql(binding), options=options)
    auto_s = time.perf_counter() - start

    stats = session.plan_cache.stats()
    assert stats["size"] == 1, "distinct literals must share one cache entry"
    assert stats["misses"] == 1
    assert stats["hits"] == len(bindings)
    print(f"\nauto-parameterized sql() @ SF {scale_factor}: "
          f"{len(bindings) / auto_s:,.0f} q/s over one shared plan")


def test_prepared_latency_benchmark(benchmark, tpch_env):
    """Steady-state per-request latency of one bound execution."""
    _, tables = tpch_env
    session = _fresh_session(tables)
    prepared = session.prepare(Q6_PREPARED, options=OPTIONS)
    prepared.bind(lo=0.03, hi=0.07, q=24.0).execute()  # warm the trace

    counter = iter(range(10 ** 9))

    def one_request():
        q = 1.0 + (next(counter) % NUM_REQUESTS) * 0.49
        return prepared.bind(lo=0.03, hi=0.07, q=q).execute()

    result = benchmark.pedantic(one_request, rounds=20, iterations=1,
                                warmup_rounds=3)
    assert result.table.num_rows == 1
