"""Morsel-parallel scaling: Q1/Q6 reported time vs. worker count.

Runs the scan-heavy TPC-H queries (Q1: filter + wide grouped aggregation,
Q6: filter + global aggregation) at ``parallelism`` ∈ {1, 2, 4, 8} and prints
a speedup table per device model:

* ``cpu`` — profiled runs report kernel time with worker lanes charged as the
  slowest lane plus a per-morsel dispatch cost: the multicore morsel-execution
  model.  This is where morsel parallelism pays, and the curve must show ≥2×
  at 4 workers on both queries.
* ``cuda (simulated)`` — the roofline model charges kernel-launch overhead per
  launch, so at benchmark scale morselization *loses*: each morsel re-pays
  launch floors that one whole-column launch paid once.  The table records
  that honestly; GPU morsel gains only appear once per-kernel bytes dominate
  the 5 µs launch floor (morsels of several hundred thousand rows).
"""

from __future__ import annotations

import statistics

import pytest

from repro.bench import time_tqp
from repro.datasets import tpch

QUERIES = (1, 6)
WORKERS = (1, 2, 4, 8)

#: Morsels only amortize their per-kernel fixed costs with enough rows per
#: lane; below this scale the suite still runs, but the 2x assertion is only
#: meaningful at >= this scale factor.
MIN_MEANINGFUL_SF = 0.01

_RESULTS: dict[tuple[int, str], dict[int, float]] = {}


@pytest.mark.parametrize("query_id", QUERIES)
@pytest.mark.parametrize("device", ["cpu", "cuda"])
@pytest.mark.parametrize("workers", WORKERS)
def test_parallel_scaling(benchmark, tpch_env, scale_factor, query_id, device,
                          workers):
    session, _ = tpch_env
    sql = tpch.query(query_id, scale_factor)

    def run():
        return time_tqp(session, sql, backend="pytorch", device=device,
                        runs=3, warmup=1, parallelism=workers)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    reported_s = statistics.median(result.times_s)
    benchmark.extra_info["reported_ms"] = reported_s * 1e3
    benchmark.extra_info["workers"] = workers
    _RESULTS.setdefault((query_id, device), {})[workers] = reported_s
    assert result.result.num_rows >= 1


@pytest.mark.parametrize("query_id", QUERIES)
def test_parallel_scaling_report(query_id, scale_factor, capsys):
    """Print the speedup table and assert the ≥2x-at-4-workers criterion."""
    if any((query_id, device) not in _RESULTS for device in ("cpu", "cuda")):
        pytest.skip("run the timing benchmarks first (same pytest invocation)")
    lines = [f"TPC-H Q{query_id} morsel-parallel scaling (SF {scale_factor})"]
    lines.append(f"{'device':<20} " + " ".join(f"{f'{w}w':>10}" for w in WORKERS)
                 + "   speedup @4w")
    for device in ("cpu", "cuda"):
        times = _RESULTS[(query_id, device)]
        speedup4 = times[1] / times[4]
        cells = " ".join(f"{times[w] * 1e3:>9.3f}m" for w in WORKERS)
        lines.append(f"{device:<20} {cells}   {speedup4:>10.2f}x")
    with capsys.disabled():
        print("\n" + "\n".join(lines))

    cpu_times = _RESULTS[(query_id, "cpu")]
    if scale_factor >= MIN_MEANINGFUL_SF:
        assert cpu_times[1] / cpu_times[4] >= 2.0, (
            f"Q{query_id}: expected >=2x simulated speedup at 4 workers, got "
            f"{cpu_times[1] / cpu_times[4]:.2f}x"
        )
    # The parallel plans must actually be parallel (not silently serial).
    assert cpu_times[4] != cpu_times[1]
