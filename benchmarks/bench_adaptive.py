"""Adaptive strategy selection vs. fixed-strategy baselines over TPC-H.

Runs all 22 TPC-H queries three ways and compares aggregate simulated time
(the CPU cost model's ``reported_s``, measured with profiling on):

* **serial** — every query compiled at ``parallelism=1``;
* **parallel** — every query compiled at 4 lanes with the parallel threshold
  forced to zero (morsel operators everywhere they are semantically safe);
* **adaptive** — ``ExecutionOptions(adaptive=True)``: the runtime explores
  its strategy candidates on the first executions of each statement, then
  settles per statement on the observed winner (see :mod:`repro.adaptive`).

The gate is the subsystem's whole point: across the workload, *no fixed
strategy wins* — heavy scan/join queries profit from lanes while small
intermediate results pay more in morsel dispatch than they save — so the
adaptive total must come in strictly below **both** fixed totals.

Measurement protocol: eager ``pytorch`` backend (strategy choice is about
operator variants, not trace replay), warm-up executions outside the clock,
then measured rounds interleaved round-robin across the three arms with each
(query, arm) reporting its best round.  The adaptive arm's exploration runs
happen before its clock starts — by then each statement has settled, which
is exactly the steady state a serving deployment measures.

The scale factor is pinned: the serial/parallel crossover position depends
on absolute table sizes, and the gate is a statement about the mix at a
fixed size, not about any particular scale.

With ``--json-out DIR`` the totals and per-query times are written to
``DIR/BENCH_adaptive.json`` for CI artifact collection.
"""

from __future__ import annotations

import pytest

from repro.bench import write_bench_json
from repro.bench.harness import tpch_session
from repro.core.options import ExecutionOptions
from repro.core.tuning import tuning_overrides
from repro.datasets.tpch import ALL_QUERY_IDS, query

#: Pinned scale factor: ~60k lineitem rows — large enough that lanes pay on
#: the heavy queries, small enough that they do not on the light ones.
ADAPTIVE_SF = 0.01

BACKEND = "pytorch"
LANES = 4

#: Warm-up executions per (query, arm) and measured rounds (best-of).
WARMUP = 1
ROUNDS = 3

SERIAL = ExecutionOptions(backend=BACKEND, device="cpu", parallelism=1)
PARALLEL = ExecutionOptions(backend=BACKEND, device="cpu", parallelism=LANES)
ADAPTIVE = ExecutionOptions(backend=BACKEND, device="cpu", parallelism=LANES,
                            adaptive=True)


@pytest.fixture(scope="module")
def bench_session():
    session, _ = tpch_session(ADAPTIVE_SF)
    return session


def _fixed_arm(session, sql: str, options: ExecutionOptions,
               force_parallel: bool = False):
    """Compiled fixed-strategy executor + inputs, warmed outside the clock."""
    if force_parallel:
        with tuning_overrides(parallel_threshold_rows=0):
            compiled = session.compile(sql, options=options)
    else:
        compiled = session.compile(sql, options=options)
    inputs = session.prepare_inputs(compiled.executor)
    for _ in range(WARMUP):
        compiled.executor.execute(inputs, profile=True)
    return compiled, inputs


def _adaptive_arm(session, sql: str):
    """Adaptive statement run through exploration until its choice settles."""
    compiled = session.compile(sql, options=ADAPTIVE)
    runtime = session.adaptive
    # Exploration budget: every candidate observed to the settling point,
    # plus warm-up on the settled plan.
    for _ in range(3 * runtime.min_observations + WARMUP):
        compiled.execute()
    return compiled


def test_adaptive_beats_fixed_strategies(bench_session, json_out, capsys):
    arms: dict[int, dict] = {}
    for qid in ALL_QUERY_IDS:
        sql = query(qid, ADAPTIVE_SF)
        arms[qid] = {
            "serial": _fixed_arm(bench_session, sql, SERIAL),
            "parallel": _fixed_arm(bench_session, sql, PARALLEL,
                                   force_parallel=True),
            "adaptive": _adaptive_arm(bench_session, sql),
        }

    times = {name: {qid: float("inf") for qid in ALL_QUERY_IDS}
             for name in ("serial", "parallel", "adaptive")}
    for _ in range(ROUNDS):
        for qid in ALL_QUERY_IDS:
            for name in ("serial", "parallel"):
                compiled, inputs = arms[qid][name]
                outcome = compiled.executor.execute(inputs, profile=True)
                times[name][qid] = min(times[name][qid], outcome.reported_s)
            outcome = arms[qid]["adaptive"].execute()
            times["adaptive"][qid] = min(times["adaptive"][qid],
                                         outcome.reported_s)

    totals = {name: sum(per_query.values())
              for name, per_query in times.items()}
    strategies = {qid: arms[qid]["adaptive"].strategy
                  for qid in ALL_QUERY_IDS}
    chosen = sorted(set(strategies.values()))

    lines = [f"adaptive strategy selection @ SF {ADAPTIVE_SF} "
             f"({BACKEND}, CPU cost model, 22 TPC-H queries)"]
    for name in ("serial", "parallel", "adaptive"):
        lines.append(f"  always-{name:<9s}" if name != "adaptive"
                     else "  adaptive       ")
        lines[-1] += f" total: {totals[name] * 1e3:9.3f} ms"
    lines.append(f"  adaptive vs serial:   {totals['serial'] / totals['adaptive']:.2f}x")
    lines.append(f"  adaptive vs parallel: {totals['parallel'] / totals['adaptive']:.2f}x")
    lines.append("  settled strategies: " + ", ".join(
        f"q{qid}={strategies[qid]}" for qid in ALL_QUERY_IDS))
    with capsys.disabled():
        print("\n" + "\n".join(lines))

    if json_out is not None:
        path = write_bench_json(json_out / "BENCH_adaptive.json", {
            "benchmark": "adaptive_strategy_selection",
            "scale_factor": ADAPTIVE_SF,
            "backend": BACKEND,
            "lanes": LANES,
            "reported_s_total": {name: totals[name] for name in totals},
            "reported_s": {name: {str(qid): per_query[qid]
                                  for qid in ALL_QUERY_IDS}
                           for name, per_query in times.items()},
            "settled_strategy": {str(qid): strategies[qid]
                                 for qid in ALL_QUERY_IDS},
        })
        with capsys.disabled():
            print(f"  wrote {path}")

    # The gates: adaptivity must strictly beat both fixed strategies in
    # aggregate, which is only possible if the per-query winners differ —
    # assert that too, so the bench fails loudly if the workload ever
    # degenerates into one regime.
    assert len(chosen) > 1, (
        f"every query settled on {chosen}: the workload no longer "
        f"discriminates between strategies")
    assert totals["adaptive"] < totals["serial"], (
        f"adaptive {totals['adaptive']:.6f}s not better than always-serial "
        f"{totals['serial']:.6f}s")
    assert totals["adaptive"] < totals["parallel"], (
        f"adaptive {totals['adaptive']:.6f}s not better than always-parallel "
        f"{totals['parallel']:.6f}s")
