"""Figure 1: TPC-H Q6 and Q14 execution time across systems.

Paper series: Spark (CPU), TQP-CPU, TQP-GPU, TQP-Web at SF 1; here the Spark
comparator is the row-at-a-time baseline engine, the GPU and Web numbers come
from the documented cost models, and the scale factor defaults to 0.01 (see
EXPERIMENTS.md for the paper-vs-measured discussion).

Each benchmark measures the real kernel wall time; for simulated devices the
cost-model time is attached as ``extra_info['reported_ms']`` and printed in
the figure table at the end of the run.
"""

from __future__ import annotations

import pytest

from repro.bench import figure_table, time_rowengine, time_tqp
from repro.datasets import tpch
from repro import ExecutionOptions

QUERIES = (6, 14)

SYSTEMS = [
    ("tqp-cpu-pytorch", "pytorch", "cpu"),
    ("tqp-cpu-torchscript", "torchscript", "cpu"),
    ("tqp-gpu-sim", "torchscript", "cuda"),
    ("tqp-web-sim", "onnx", "wasm"),
]

_RESULTS: dict[int, dict[str, object]] = {}


@pytest.mark.parametrize("query_id", QUERIES)
@pytest.mark.parametrize("label,backend,device", SYSTEMS)
def test_figure1_tqp(benchmark, tpch_env, scale_factor, query_id, label, backend, device):
    session, _ = tpch_env
    sql = tpch.query(query_id, scale_factor)
    compiled = session.compile(sql, options=ExecutionOptions(backend=backend, device=device))
    inputs = session.prepare_inputs(compiled.executor)
    compiled.executor.execute(inputs)  # warm-up / trace

    def run():
        return compiled.executor.execute(inputs)

    outcome = benchmark.pedantic(run, rounds=5, iterations=1, warmup_rounds=2)
    benchmark.extra_info["system"] = label
    benchmark.extra_info["reported_ms"] = outcome.reported_s * 1e3
    benchmark.extra_info["simulated"] = compiled.executor.device.is_simulated
    result = time_tqp(session, sql, backend=backend, device=device, runs=3, warmup=1)
    _RESULTS.setdefault(query_id, {})[label] = result
    assert outcome.table.num_rows >= 1


@pytest.mark.parametrize("query_id", QUERIES)
def test_figure1_baseline_rowengine(benchmark, tpch_env, scale_factor, query_id):
    session, tables = tpch_env
    sql = tpch.query(query_id, scale_factor)

    from repro.baselines import RowEngine
    from repro.frontend import sql_to_physical

    plan = sql_to_physical(sql, session.catalog)
    engine = RowEngine(tables)

    frame = benchmark.pedantic(lambda: engine.execute_to_dataframe(plan),
                               rounds=2, iterations=1)
    benchmark.extra_info["system"] = "rowengine-spark-cpu-standin"
    _RESULTS.setdefault(query_id, {})["baseline"] = time_rowengine(
        session, tables, sql, runs=1
    )
    assert frame.num_rows >= 1


@pytest.mark.parametrize("query_id", QUERIES)
def test_figure1_report(query_id, scale_factor, capsys):
    """Print the Figure-1 rows (speedups vs the baseline) once timings exist."""
    collected = _RESULTS.get(query_id, {})
    if "baseline" not in collected or len(collected) < 2:
        pytest.skip("run the timing benchmarks first (same pytest invocation)")
    baseline = collected["baseline"]
    others = [v for k, v in collected.items() if k != "baseline"]
    with capsys.disabled():
        print()
        print(figure_table(
            f"Figure 1 — TPC-H Q{query_id} execution time (SF {scale_factor})",
            others, baseline))
