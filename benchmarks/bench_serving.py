"""Serving-runtime benchmark: concurrent multiplexed clients vs a naive loop.

The naive serving loop is what ``examples/serving_loop.py`` used to be: one
thread resolving each request against the session and executing it to
completion before touching the next.  :class:`repro.serve.ServingRuntime`
serves the *same* deterministic Zipfian request stream through a worker pool
with inter-query bind batching: queued requests for one compiled statement
replay through a single ``execute_many`` call, and requests whose bindings
are identical share one replay.

This benchmark measures **wall-clock queries/sec** of both on an identical
workload (same seed, same shapes, same bindings) and requires the runtime to
reach at least **3x** the naive loop's throughput — with every per-request
result bit-identical between the two, so the speedup cannot come from
serving anyone the wrong (or a stale) answer.  p50/p99 request latencies are
reported alongside.

The scale factor is pinned: the workload characterizes the serving regime
(small per-request data slices, fixed per-request costs dominant), where
batching and deduplication pay; at analytics scale factors kernel time
dominates and the ratio is not the point of this gate.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import ExecutionOptions, TQPSession
from repro.bench.harness import tpch_session
from repro.serve import (
    ServingRuntime,
    build_shapes,
    register_prediction_model,
    zipfian_workload,
)

#: Serving-regime scale factor (shares the on-disk TPC-H cache with
#: ``bench_compiled_executor.py``).
SERVING_SF = 0.0001

#: Request stream: Zipf-exponent, stream length, and the raw-TPC-H tail size
#: (kept short so the CI smoke pays a handful of compiles, not 22).
ZIPF_S = 1.4
NUM_REQUESTS = 400
TAIL_QUERIES = 6

#: Runtime configuration under test.
WORKERS = 4
BATCH_WINDOW = 64

#: Best-of repetitions per measurement (absorbs shared-runner noise).
REPS = 3

OPTIONS = ExecutionOptions(backend="torchscript", device="cpu")


def _fresh_session(tables) -> TQPSession:
    session = TQPSession()
    for name, frame in tables.items():
        session.register(name, frame)
    register_prediction_model(session)
    return session


def _serve_naive(tables, workload):
    """One-at-a-time loop: best-of-``REPS`` seconds + last rep's results."""
    session = _fresh_session(tables)
    handles = {request.shape.name: session.prepare(request.shape.sql,
                                                   options=OPTIONS)
               for request in workload}
    best_s, results = float("inf"), []
    for _ in range(REPS):
        results = []
        start = time.perf_counter()
        for request in workload:
            prepared = handles[request.shape.name]
            bound = (prepared.bind(**request.params) if request.params
                     else prepared.bind())
            results.append(bound.execute())
        best_s = min(best_s, time.perf_counter() - start)
    return best_s, results


def _serve_runtime(tables, workload):
    """Multiplexed pool: best-of-``REPS`` seconds, last rep's results and
    per-request latencies, and the runtime's counter snapshot."""
    session = _fresh_session(tables)
    with ServingRuntime(session, workers=WORKERS, batch_window=BATCH_WINDOW,
                        max_queue_depth=NUM_REQUESTS + WORKERS,
                        default_options=OPTIONS) as runtime:
        statements = {request.shape.name: runtime.prepare(request.shape.sql,
                                                          options=OPTIONS)
                      for request in workload}
        # Warm every shape (trace + codegen) outside the clock.
        warmed: set[str] = set()
        for request in workload:
            if request.shape.name in warmed:
                continue
            warmed.add(request.shape.name)
            runtime.submit(statements[request.shape.name],
                           params=request.params).result(120)
        best_s, results, latencies = float("inf"), [], []
        for _ in range(REPS):
            start = time.perf_counter()
            tickets = [runtime.submit(statements[request.shape.name],
                                      params=request.params)
                       for request in workload]
            results = [ticket.result(300) for ticket in tickets]
            best_s = min(best_s, time.perf_counter() - start)
            latencies = sorted(ticket.latency_s for ticket in tickets)
        stats = runtime.stats()
    return best_s, results, latencies, stats


def _assert_bit_identical(naive, served) -> None:
    """Every request's result table must match *bitwise* between the naive
    loop and the runtime — same columns, same dtypes, same bytes."""
    assert len(naive) == len(served)
    for index, (left, right) in enumerate(zip(naive, served)):
        table_l, table_r = left.table.decoded(), right.table.decoded()
        assert table_l.column_names == table_r.column_names, f"request {index}"
        for name in table_l.column_names:
            data_l = table_l.column(name).tensor.data
            data_r = table_r.column(name).tensor.data
            assert data_l.dtype == data_r.dtype, (
                f"request {index}, column {name!r} dtype")
            assert np.array_equal(data_l, data_r), (
                f"request {index}, column {name!r} differs between the "
                f"naive loop and the serving runtime")


@pytest.fixture(scope="module")
def serving_tables():
    _, tables = tpch_session(SERVING_SF)
    return tables


def test_serving_runtime_throughput(serving_tables, json_out):
    shapes = build_shapes(SERVING_SF, tail_queries=TAIL_QUERIES)
    workload = zipfian_workload(shapes, NUM_REQUESTS, seed=42, s=ZIPF_S)

    naive_s, naive_results = _serve_naive(serving_tables, workload)
    runtime_s, served_results, latencies, stats = _serve_runtime(
        serving_tables, workload)

    _assert_bit_identical(naive_results, served_results)

    naive_qps = NUM_REQUESTS / naive_s
    runtime_qps = NUM_REQUESTS / runtime_s
    speedup = runtime_qps / naive_qps
    p50 = latencies[len(latencies) // 2]
    p99 = latencies[min(len(latencies) - 1, int(len(latencies) * 0.99))]
    print(f"\nserving @ SF {SERVING_SF} ({NUM_REQUESTS} requests, "
          f"zipf s={ZIPF_S}, {WORKERS} workers, window {BATCH_WINDOW}, "
          f"best of {REPS}):\n"
          f"  naive loop      {naive_qps:8.0f} qps\n"
          f"  serving runtime {runtime_qps:8.0f} qps  "
          f"(p50 {p50 * 1e3:.1f} ms, p99 {p99 * 1e3:.1f} ms)\n"
          f"  speedup {speedup:.2f}x; batches={stats['batches']}, "
          f"batched={stats['batched_requests']}, "
          f"deduped={stats['deduped_requests']}")

    if json_out is not None:
        from repro.bench import write_bench_json

        path = write_bench_json(json_out / "BENCH_serving.json", {
            "benchmark": "serving_runtime",
            "scale_factor": SERVING_SF,
            "requests": NUM_REQUESTS,
            "zipf_s": ZIPF_S,
            "workers": WORKERS,
            "batch_window": BATCH_WINDOW,
            "naive_qps": naive_qps,
            "runtime_qps": runtime_qps,
            "speedup": speedup,
            "latency_p50_s": p50,
            "latency_p99_s": p99,
            "runtime_stats": dict(stats),
        })
        print(f"  wrote {path}")

    assert stats["batches"] > 0, "bind batching never engaged"
    assert speedup >= 3.0, (
        f"serving runtime must reach >=3x the naive loop's throughput on "
        f"the Zipfian workload, got {speedup:.2f}x")
