"""Storage-layer benchmark: zone-map scan pruning and dictionary grouping.

Two measurements over a **date-clustered** ``lineitem`` (sorted by
``l_shipdate``, the classic fact-table clustering):

* **Q6, parameterized date range** — a prepared statement whose bindings are
  resolved against the zone maps at bind time.  A selective one-year window
  must skip at least half of the morsel-aligned blocks before any kernel
  runs, with results identical to the unpruned run (the blocks dropped can,
  by construction, contain no matching row).

* **Q1, string GROUP BY** — dictionary-encoded storage lets the aggregation
  group directly on int32 codes (a sort-free static-radix id per row) instead
  of densifying ``(n × m)`` code-point matrices with a lexsort; the
  simulated kernel time (profiled per-op durations, the CPU cost-model basis)
  must beat the plain layout at assertion scale.

Run directly (``pytest benchmarks/bench_storage_pruning.py --tpch-sf 0.02``)
or as the fast-CI smoke at SF 0.002 (correctness + block-skip assertions
always run; the Q1 timing ratio is asserted at SF >= 0.01 where the grouping
cost is large enough to measure reliably).
"""

from __future__ import annotations

import statistics

import numpy as np
import pytest

from repro import ExecutionOptions, TQPSession
from repro.datasets import tpch

Q6_PARAMETERIZED = """
select sum(l_extendedprice * l_discount) as revenue
from lineitem
where
    l_shipdate >= :d1 and l_shipdate < :d2
    and l_discount between 0.05 and 0.07
    and l_quantity < 24
"""

#: Binding of the selective window (one year out of the ~7-year date span).
SELECTIVE = {"d1": "1994-01-01", "d2": "1995-01-01"}
#: Binding covering the whole span (no block may be skipped wrongly).
FULL_SPAN = {"d1": "1992-01-01", "d2": "1999-01-01"}

RUNS = 5


@pytest.fixture(scope="module")
def clustered_tables(scale_factor):
    tables = dict(tpch.cached_tables(scale_factor=scale_factor))
    lineitem = tables["lineitem"]
    tables["lineitem"] = lineitem.take(
        np.argsort(lineitem["l_shipdate"], kind="stable"))
    return tables


def make_session(tables, encoding: str = "auto",
                 statistics_on: bool = True) -> TQPSession:
    session = TQPSession(default_options=ExecutionOptions(encoding=encoding))
    session.catalog.collect_statistics = statistics_on
    for name, frame in tables.items():
        session.register(name, frame)
    return session


def kernel_time(compiled, session, runs: int = RUNS) -> float:
    """Median simulated kernel time (profiled per-op durations, CPU model)."""
    inputs = session.prepare_inputs(compiled.executor)
    times = [compiled.executor.execute(inputs, profile=True).reported_s
             for _ in range(runs + 2)]
    return statistics.median(times[2:])


def test_q6_pruned_date_range_skips_blocks(clustered_tables, scale_factor):
    pruned_session = make_session(clustered_tables)
    unpruned_session = make_session(clustered_tables, statistics_on=False)
    pruned = pruned_session.prepare(Q6_PARAMETERIZED)
    unpruned = unpruned_session.prepare(Q6_PARAMETERIZED)

    # Results must be identical to the unpruned run for every binding —
    # bitwise, since pruning only removes rows the filter would drop anyway.
    for binding in (SELECTIVE, FULL_SPAN):
        left = pruned.bind(**binding).run()
        right = unpruned.bind(**binding).run()
        assert left.equals(right, float_tol=0.0), binding

    outcome = pruned.bind(**SELECTIVE).execute(profile=True)
    pruning = outcome.pruning["lineitem"]
    skipped, total = pruning["blocks_skipped"], pruning["blocks_total"]
    assert total > 0 and skipped / total >= 0.5, (
        f"selective Q6 must skip >= 50% of blocks, got {skipped}/{total}")

    full = pruned.bind(**FULL_SPAN).execute(profile=True)
    assert full.pruning["lineitem"]["blocks_skipped"] == 0

    pruned_s = statistics.median(
        pruned.bind(**SELECTIVE).execute(profile=True).reported_s
        for _ in range(RUNS))
    unpruned_s = statistics.median(
        unpruned.bind(**SELECTIVE).execute(profile=True).reported_s
        for _ in range(RUNS))
    print(f"\nQ6 @ SF {scale_factor}: {skipped}/{total} blocks skipped, "
          f"kernel time pruned {pruned_s * 1e3:.2f} ms "
          f"vs unpruned {unpruned_s * 1e3:.2f} ms "
          f"({unpruned_s / pruned_s:.2f}x)")


def test_q1_dictionary_grouping_beats_codepoint_matrix(clustered_tables,
                                                       scale_factor):
    sql = tpch.query(1, scale_factor)
    encoded_session = make_session(clustered_tables, encoding="auto")
    plain_session = make_session(clustered_tables, encoding="off")
    encoded = encoded_session.compile(sql)
    plain = plain_session.compile(sql)
    assert encoded.run().equals(plain.run()), "Q1 encoded vs plain"

    # Deterministic structural check: grouping on dictionary codes needs no
    # sort at all (a static-radix id per row), while the code-point-matrix
    # layout densifies every string key with a lexsort.
    encoded_graph = encoded_session.compile(
        sql, options=ExecutionOptions(backend="torchscript", encoding="auto"))
    plain_graph = plain_session.compile(
        sql, options=ExecutionOptions(backend="torchscript", encoding="off"))

    def lexsorts(compiled) -> int:
        return sum(node.op == "lexsort"
                   for node in compiled.executor_graph().nodes)

    encoded_kernels, plain_kernels = lexsorts(encoded_graph), lexsorts(plain_graph)
    assert encoded_kernels < plain_kernels, (
        "dictionary grouping must drop the string-densification sorts "
        f"(lexsort kernels: {encoded_kernels} vs {plain_kernels})")

    encoded_s = kernel_time(encoded, encoded_session)
    plain_s = kernel_time(plain, plain_session)
    ratio = plain_s / encoded_s
    print(f"\nQ1 @ SF {scale_factor}: dictionary grouping {encoded_s * 1e3:.2f} ms "
          f"vs code-point matrix {plain_s * 1e3:.2f} ms ({ratio:.2f}x, "
          f"{encoded_kernels} vs {plain_kernels} lexsort kernels)")
    if scale_factor >= 0.01:
        assert ratio >= 1.2, (
            f"dictionary grouping must beat code-point-matrix grouping on "
            f"simulated kernel time, got {ratio:.2f}x")
