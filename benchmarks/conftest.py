"""Shared fixtures for the benchmark suite.

The benchmarks regenerate the paper's figures/tables at a configurable TPC-H
scale factor (default 0.01 so the full suite runs in minutes on a laptop;
raise it with ``--tpch-sf`` for closer-to-paper data sizes).
"""

from __future__ import annotations

import pytest

from repro.bench import tpch_session


def pytest_addoption(parser):
    parser.addoption("--tpch-sf", action="store", type=float, default=0.01,
                     help="TPC-H scale factor used by the benchmarks")
    parser.addoption("--json-out", action="store", default=None,
                     help="directory for machine-readable BENCH_*.json "
                          "artifacts (omit to skip writing them)")


@pytest.fixture(scope="session")
def scale_factor(request) -> float:
    return request.config.getoption("--tpch-sf")


@pytest.fixture(scope="session")
def json_out(request):
    """Artifact directory from ``--json-out``, or ``None`` when not writing."""
    import pathlib

    value = request.config.getoption("--json-out")
    return pathlib.Path(value) if value else None


@pytest.fixture(scope="session")
def tpch_env(scale_factor):
    """(session, tables) with the TPC-H data registered."""
    return tpch_session(scale_factor)
