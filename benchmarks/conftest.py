"""Shared fixtures for the benchmark suite.

The benchmarks regenerate the paper's figures/tables at a configurable TPC-H
scale factor (default 0.01 so the full suite runs in minutes on a laptop;
raise it with ``--tpch-sf`` for closer-to-paper data sizes).
"""

from __future__ import annotations

import pytest

from repro.bench import tpch_session


def pytest_addoption(parser):
    parser.addoption("--tpch-sf", action="store", type=float, default=0.01,
                     help="TPC-H scale factor used by the benchmarks")


@pytest.fixture(scope="session")
def scale_factor(request) -> float:
    return request.config.getoption("--tpch-sf")


@pytest.fixture(scope="session")
def tpch_env(scale_factor):
    """(session, tables) with the TPC-H data registered."""
    return tpch_session(scale_factor)
