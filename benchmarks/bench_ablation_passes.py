"""Ablation: effect of the design choices DESIGN.md calls out.

1. Graph-level optimization passes (CSE / constant folding / DCE / peephole)
   — ``torchscript`` vs ``torchscript-noopt``.
2. Eager op-by-op dispatch vs traced-graph replay — ``pytorch`` vs
   ``torchscript``.
3. Frontend scan-column pruning — compare the bytes converted with and without
   the pruning rule (the padded string representation makes unused string
   columns expensive).
"""

from __future__ import annotations

import pytest

from repro.datasets import tpch
from repro.frontend import sql_to_logical
from repro.frontend.logical import LogicalScan, walk_plan
from repro import ExecutionOptions

BACKEND_PAIRS = [
    ("torchscript", "graph passes ON"),
    ("torchscript-noopt", "graph passes OFF"),
    ("pytorch", "eager dispatch"),
]


@pytest.mark.parametrize("query_id", [6, 14, 1])
@pytest.mark.parametrize("backend,label", BACKEND_PAIRS)
def test_ablation_backend_passes(benchmark, tpch_env, scale_factor, query_id,
                                 backend, label):
    session, _ = tpch_env
    sql = tpch.query(query_id, scale_factor)
    compiled = session.compile(sql, options=ExecutionOptions(backend=backend, device="cpu"))
    inputs = session.prepare_inputs(compiled.executor)
    compiled.executor.execute(inputs)

    outcome = benchmark.pedantic(lambda: compiled.executor.execute(inputs),
                                 rounds=5, iterations=1, warmup_rounds=1)
    benchmark.extra_info["variant"] = label
    if compiled.executor.backend.strategy == "graph":
        benchmark.extra_info["graph_nodes"] = compiled.executor._program.num_nodes
    assert outcome.table.num_rows >= 1


def test_ablation_graph_passes_shrink_program(tpch_env, scale_factor):
    """The optimization passes must actually remove nodes on a realistic query."""
    session, _ = tpch_env
    sql = tpch.query(14, scale_factor)
    optimized = session.compile(sql, options=ExecutionOptions(backend="torchscript"))
    unoptimized = session.compile(sql, options=ExecutionOptions(backend="torchscript-noopt"))
    inputs = session.prepare_inputs(optimized.executor)
    optimized.executor.compile_program(inputs)
    unoptimized.executor.compile_program(session.prepare_inputs(unoptimized.executor))
    assert optimized.executor._program.num_nodes < unoptimized.executor._program.num_nodes


@pytest.mark.parametrize("query_id", [6, 14])
def test_ablation_column_pruning(tpch_env, scale_factor, query_id):
    """Scan-column pruning: the optimized plan converts far fewer columns."""
    session, _ = tpch_env
    sql = tpch.query(query_id, scale_factor)
    pruned = sql_to_logical(sql, session.catalog, optimized=True)
    pruned_columns = sum(len(node.fields) for node in walk_plan(pruned)
                         if isinstance(node, LogicalScan))
    total_columns = sum(
        len(tpch.TABLE_COLUMNS[node.table]) for node in walk_plan(pruned)
        if isinstance(node, LogicalScan)
    )
    assert pruned_columns < total_columns
    # Q6 touches 4 of lineitem's 16 columns; Q14 touches 4 + 2 of part's 9.
    assert pruned_columns <= total_columns // 2
