"""Figure 4 / Scenario 3: the sentiment prediction query and its executor graph.

Reproduces the paper's Figure-4 query (per-brand actual vs predicted positive
reviews over the Amazon corpus) end-to-end as a single tensor program, checks
the executor-graph artifact can be produced, and times execution on CPU and
the simulated GPU, against the row-engine + per-row model baseline (the
"separate runtimes" architecture the paper contrasts with).
"""

from __future__ import annotations

import pytest

from repro.baselines import RowEngine
from repro.core.session import TQPSession
from repro.datasets import amazon_reviews
from repro.frontend import sql_to_physical
from repro.ml import compile_row_fn
from repro.ml.models import BagOfWordsVectorizer, LogisticRegression, Pipeline
from repro.viz import graph_summary
from repro import ExecutionOptions

FIGURE4_SQL = """
select brand,
       sum(case when rating >= 3 then 1 else 0 end) as actual_positive,
       sum(predict('sentiment_classifier', text)) as predicted_positive
from amazon_reviews
group by brand
order by brand
"""


@pytest.fixture(scope="module")
def sentiment_env():
    reviews = amazon_reviews.generate_reviews(num_reviews=3000)
    train_texts, train_labels, _, _ = amazon_reviews.training_split(reviews)
    model = Pipeline([
        ("vectorizer", BagOfWordsVectorizer(
            vocabulary=amazon_reviews.SENTIMENT_VOCABULARY)),
        ("classifier", LogisticRegression(epochs=150)),
    ]).fit(train_texts, train_labels)
    session = TQPSession()
    session.register("amazon_reviews", reviews)
    session.register_model("sentiment_classifier", model)
    return session, reviews, model


@pytest.mark.parametrize("backend,device", [
    ("pytorch", "cpu"),
    ("torchscript", "cpu"),
    ("torchscript", "cuda"),
])
def test_figure4_prediction_query_tqp(benchmark, sentiment_env, backend, device):
    session, _, _ = sentiment_env
    compiled = session.compile(FIGURE4_SQL, options=ExecutionOptions(backend=backend, device=device))
    inputs = session.prepare_inputs(compiled.executor)
    compiled.executor.execute(inputs)

    outcome = benchmark.pedantic(lambda: compiled.executor.execute(inputs),
                                 rounds=5, iterations=1, warmup_rounds=1)
    frame = outcome.to_dataframe()
    assert frame.columns == ["brand", "actual_positive", "predicted_positive"]
    assert frame.num_rows == len(amazon_reviews.BRANDS)
    benchmark.extra_info["reported_ms"] = outcome.reported_s * 1e3
    benchmark.extra_info["device"] = device


def test_figure4_executor_graph_artifact(sentiment_env):
    session, _, _ = sentiment_env
    compiled = session.compile(FIGURE4_SQL, options=ExecutionOptions(backend="torchscript", device="cpu"))
    graph = compiled.executor_graph()
    summary = graph_summary(graph)
    # The graph must contain both relational tensor ops (scatter/aggregation)
    # and the model's ops (matmul from the logistic layer, sliding windows from
    # the text featurizer) — i.e. it really is one end-to-end tensor program.
    assert summary["op_counts"].get("matmul", 0) >= 1
    assert summary["op_counts"].get("sliding_window", 0) >= 1
    assert summary["op_counts"].get("scatter_add", 0) >= 1


def test_figure4_baseline_separate_runtimes(benchmark, sentiment_env):
    """Row engine + per-row model invocation (the architecture TQP replaces)."""
    session, reviews, model = sentiment_env
    plan = sql_to_physical(FIGURE4_SQL, session.catalog)
    engine = RowEngine({"amazon_reviews": reviews},
                       models={"sentiment_classifier": compile_row_fn(model)})

    frame = benchmark.pedantic(lambda: engine.execute_to_dataframe(plan),
                               rounds=1, iterations=1)
    assert frame.num_rows == len(amazon_reviews.BRANDS)
