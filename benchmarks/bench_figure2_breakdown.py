"""Figure 2: per-operator runtime breakdown of a selected query (TPC-H Q6).

The paper shows the PyTorch-Profiler/TensorBoard view of the top operators;
this benchmark produces the same information from the built-in profiler and
prints the top-k table.  The benchmarked callable is the profiled execution.
"""

from __future__ import annotations

from repro.datasets import tpch
from repro.viz import format_breakdown, kernel_breakdown, operator_breakdown
from repro import ExecutionOptions


def test_figure2_q6_operator_breakdown(benchmark, tpch_env, scale_factor, capsys):
    session, _ = tpch_env
    compiled = session.compile(tpch.query(6, scale_factor), options=ExecutionOptions(backend="pytorch"))
    inputs = session.prepare_inputs(compiled.executor)
    compiled.executor.execute(inputs)  # warm-up

    outcome = benchmark.pedantic(
        lambda: compiled.executor.execute(inputs, profile=True),
        rounds=3, iterations=1,
    )
    profile = outcome.profile
    by_operator = operator_breakdown(profile, top_k=8)
    by_kernel = kernel_breakdown(profile, top_k=8)

    assert profile.events, "profiler collected no events"
    assert any(row.key.startswith("Filter") for row in by_operator)
    assert any(row.key in ("mul", "boolean_mask", "logical_and", "ge", "lt")
               for row in by_kernel)

    benchmark.extra_info["profiled_ops"] = len(profile.events)
    with capsys.disabled():
        print()
        print(format_breakdown(by_operator,
                               "Figure 2 — Q6 runtime breakdown by relational operator"))
        print()
        print(format_breakdown(by_kernel,
                               "Figure 2 — Q6 runtime breakdown by tensor kernel"))


def test_figure2_q14_operator_breakdown(benchmark, tpch_env, scale_factor, capsys):
    session, _ = tpch_env
    compiled = session.compile(tpch.query(14, scale_factor), options=ExecutionOptions(backend="pytorch"))
    inputs = session.prepare_inputs(compiled.executor)
    compiled.executor.execute(inputs)

    outcome = benchmark.pedantic(
        lambda: compiled.executor.execute(inputs, profile=True),
        rounds=3, iterations=1,
    )
    rows = operator_breakdown(outcome.profile, top_k=8)
    assert any(row.key.startswith("HashJoin") for row in rows)
    with capsys.disabled():
        print()
        print(format_breakdown(rows,
                               "Figure 2 (companion) — Q14 breakdown by operator"))
