"""Scenario 3 model sweep: PREDICT with different traditional-ML model families.

The demo lets the audience swap the model inside the prediction query; this
benchmark sweeps the model families supported by the Hummingbird-like compiler
(logistic regression, decision tree, random forest, gradient boosting, MLP)
over the Iris regression/classification queries and times the end-to-end
tensor execution of each.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.session import TQPSession
from repro.datasets import iris
from repro import ExecutionOptions
from repro.ml.models import (
    DecisionTreeClassifier,
    GradientBoostingClassifier,
    LogisticRegression,
    MLPClassifier,
    RandomForestClassifier,
)

MODELS = {
    "logistic_regression": lambda: LogisticRegression(epochs=150),
    "decision_tree": lambda: DecisionTreeClassifier(max_depth=4),
    "random_forest": lambda: RandomForestClassifier(n_estimators=8, max_depth=3),
    "gradient_boosting": lambda: GradientBoostingClassifier(n_estimators=10,
                                                            max_depth=2),
    "mlp": lambda: MLPClassifier(hidden_size=8, epochs=60),
}

PREDICTION_SQL = """
select species,
       count(*) as flowers,
       sum(predict('is_virginica', sepal_length, sepal_width,
                   petal_length, petal_width)) as predicted_virginica
from iris
group by species
order by species
"""


@pytest.fixture(scope="module")
def iris_table():
    # A larger synthetic Iris so per-model timing differences are visible.
    return iris.generate_iris(samples_per_species=400)


@pytest.mark.parametrize("model_name", sorted(MODELS))
def test_scenario3_model_sweep(benchmark, iris_table, model_name):
    X = np.stack([iris_table["sepal_length"], iris_table["sepal_width"],
                  iris_table["petal_length"], iris_table["petal_width"]], axis=1)
    y = (iris_table["species"] == "virginica").astype(np.int64)
    model = MODELS[model_name]().fit(X, y)
    accuracy = float((model.predict(X) == y).mean())
    assert accuracy > 0.8, f"{model_name} failed to learn the task ({accuracy:.2f})"

    session = TQPSession()
    session.register("iris", iris_table)
    session.register_model("is_virginica", model)
    compiled = session.compile(PREDICTION_SQL, options=ExecutionOptions(backend="torchscript", device="cpu"))
    inputs = session.prepare_inputs(compiled.executor)
    compiled.executor.execute(inputs)

    outcome = benchmark.pedantic(lambda: compiled.executor.execute(inputs),
                                 rounds=5, iterations=1, warmup_rounds=1)
    frame = outcome.to_dataframe()
    assert frame.num_rows == 3
    # The model's in-query predictions must match its Python predictions.
    predicted_total = float(sum(frame["predicted_virginica"]))
    assert predicted_total == float(model.predict(X).sum())
    benchmark.extra_info["model"] = model_name
    benchmark.extra_info["train_accuracy"] = accuracy
