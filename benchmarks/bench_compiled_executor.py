"""Compiled-executor serving benchmark (wall-clock, not simulated).

The compiled executor (:mod:`repro.tensor.codegen`) lowers a traced graph
into one generated Python function, retiring the interpreter's per-node
dispatch from the hot path.  That dispatch is a fixed per-request tax, so the
win shows up where the paper's serving story lives: prepared-statement replay
over tiny per-request data slices, where a Q6 request touches a few hundred
rows and interpreter bookkeeping dominates the numpy kernels.

This benchmark measures **wall-clock host time** (``time.perf_counter``, on
the real cpu device — no simulated cost model anywhere in the loop) of
``PreparedQuery.execute_many`` under ``executor="interpret"`` versus
``executor="compiled"``, on TPC-H Q6 and Q1 with per-request bindings drawn
from the spec's substitution-parameter distributions.  The compiled path must
be at least **3x** faster on Q6, with every per-request result bit-identical
to interpreted replay.

The scale factor is pinned (not ``--tpch-sf``): the assertion characterizes
the dispatch-bound serving regime, and at analytics scale factors kernel time
dominates both executors equally, which is not what this gate is about
(``bench_prepared_throughput.py`` covers that axis).

A tier-2 companion test sweeps all 22 TPC-H queries on a simulated device and
requires both executors to agree exactly — same result tensors, same
simulated kernel-time accounting — so the speedup cannot come from skipped
work.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import ExecutionOptions, TQPSession
from repro.bench.harness import tpch_session
from repro.datasets import tpch

#: Serving-regime scale factor: ~600 lineitem rows per request, the regime
#: where per-node dispatch (a few microseconds per node) is the dominant cost.
SERVING_SF = 0.0001

#: Scale factor for the tier-2 all-queries parity sweep (shares the on-disk
#: TPC-H cache with the tier-2 differential suites).
PARITY_SF = 0.002

#: Requests per measured ``execute_many`` batch, and best-of repetitions.
NUM_REQUESTS = 500
REPS = 5

Q6_PREPARED = """
select sum(l_extendedprice * l_discount) as revenue
from lineitem
where
    l_shipdate >= date '1994-01-01'
    and l_shipdate < date '1994-01-01' + interval '1' year
    and l_discount between :lo and :hi
    and l_quantity < :q
"""

Q1_PREPARED = """
select
    l_returnflag, l_linestatus,
    sum(l_quantity) as sum_qty,
    sum(l_extendedprice) as sum_base_price,
    sum(l_extendedprice * (1 - l_discount)) as sum_disc_price,
    sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) as sum_charge,
    avg(l_quantity) as avg_qty,
    avg(l_extendedprice) as avg_price,
    avg(l_discount) as avg_disc,
    count(*) as count_order
from lineitem
where l_shipdate <= :cutoff
group by l_returnflag, l_linestatus
order by l_returnflag, l_linestatus
"""


def _q6_bindings() -> list[dict]:
    """Spec-style Q6 substitution parameters: DISCOUNT is drawn from
    [0.02, 0.09] with a +/-0.01 window, QUANTITY from {24, 25}."""
    bindings = []
    for i in range(NUM_REQUESTS):
        discount = 0.02 + (i % 8) * 0.01
        bindings.append({"lo": round(discount - 0.01, 2),
                         "hi": round(discount + 0.01, 2),
                         "q": float(24 + i % 2)})
    return bindings


def _q1_bindings() -> list[dict]:
    """Q1 DELTA sweep expressed as a shipdate cutoff (the frontend does not
    parameterize interval literals, so the cutoff date is the parameter)."""
    return [{"cutoff": f"1998-{9 - i % 3:02d}-{1 + i % 28:02d}"}
            for i in range(NUM_REQUESTS)]


def _fresh_session(tables) -> TQPSession:
    session = TQPSession()
    for name, frame in tables.items():
        session.register(name, frame)
    return session


def _serve(tables, sql: str, bindings: list[dict], executor: str):
    """Best-of-``REPS`` wall-clock seconds for one ``execute_many`` batch,
    plus the per-request results from the last repetition."""
    session = _fresh_session(tables)
    options = ExecutionOptions(backend="torchscript", device="cpu",
                               executor=executor)
    prepared = session.prepare(sql, options=options)
    prepared.execute_many(bindings[:2])  # trace + codegen outside the clock
    best_s = float("inf")
    for _ in range(REPS):
        start = time.perf_counter()
        results = prepared.execute_many(bindings)
        best_s = min(best_s, time.perf_counter() - start)
    assert len(results) == len(bindings)
    return best_s, results


def _assert_bit_identical(interpreted, compiled, context: str) -> None:
    """Every request's result table must match *bitwise* between executors —
    same columns, same dtypes, same bytes (not merely within tolerance)."""
    for index, (left, right) in enumerate(zip(interpreted, compiled)):
        table_l, table_r = left.table.decoded(), right.table.decoded()
        assert table_l.column_names == table_r.column_names, context
        for name in table_l.column_names:
            data_l = table_l.column(name).tensor.data
            data_r = table_r.column(name).tensor.data
            assert data_l.dtype == data_r.dtype, (
                f"{context}: request {index}, column {name!r} dtype")
            assert np.array_equal(data_l, data_r), (
                f"{context}: request {index}, column {name!r} differs "
                f"between executors")


def _report(label: str, scale_factor: float, interp_s: float,
            compiled_s: float) -> float:
    speedup = interp_s / compiled_s
    print(f"\n{label} @ SF {scale_factor} ({NUM_REQUESTS} requests, "
          f"best of {REPS}): "
          f"interpreted {interp_s / NUM_REQUESTS * 1e6:.1f} us/req, "
          f"compiled {compiled_s / NUM_REQUESTS * 1e6:.1f} us/req, "
          f"wall-clock speedup {speedup:.2f}x")
    return speedup


@pytest.fixture(scope="module")
def serving_tables():
    _, tables = tpch_session(SERVING_SF)
    return tables


def test_q6_compiled_serving_speedup(serving_tables):
    bindings = _q6_bindings()
    interp_s, interp_results = _serve(serving_tables, Q6_PREPARED, bindings,
                                      "interpret")
    compiled_s, compiled_results = _serve(serving_tables, Q6_PREPARED,
                                          bindings, "compiled")

    assert all(r.executor_mode == "interpreted" for r in interp_results)
    assert all(r.executor_mode == "compiled" for r in compiled_results)
    _assert_bit_identical(interp_results, compiled_results, "Q6")

    speedup = _report("Q6", SERVING_SF, interp_s, compiled_s)
    assert speedup >= 3.0, (
        f"compiled execute_many must be >=3x interpreted replay on Q6 "
        f"in the serving regime, got {speedup:.2f}x")


def test_q1_compiled_serving_speedup(serving_tables):
    bindings = _q1_bindings()
    interp_s, interp_results = _serve(serving_tables, Q1_PREPARED, bindings,
                                      "interpret")
    compiled_s, compiled_results = _serve(serving_tables, Q1_PREPARED,
                                          bindings, "compiled")

    assert all(r.executor_mode == "interpreted" for r in interp_results)
    assert all(r.executor_mode == "compiled" for r in compiled_results)
    _assert_bit_identical(interp_results, compiled_results, "Q1")

    # Q1 carries a group-by/sort tail whose kernels cost the same under both
    # executors, so its ratio sits below Q6's; locally ~3.5x, gated at 2x to
    # absorb shared-runner noise (the 3x acceptance gate is Q6's, above).
    speedup = _report("Q1", SERVING_SF, interp_s, compiled_s)
    assert speedup >= 2.0, (
        f"compiled execute_many must be >=2x interpreted replay on Q1 "
        f"in the serving regime, got {speedup:.2f}x")


@pytest.mark.tier2
def test_all_queries_identical_results_and_accounting():
    """All 22 TPC-H queries under both executors on a *simulated* device:
    bit-identical result columns and exactly equal simulated kernel-time
    accounting (``reported_s`` is derived from the profile-event stream, so
    equality here means the compiled path records the same kernel launches,
    byte counts and lanes as interpreted replay)."""
    session, _ = tpch_session(PARITY_SF, seed=7)
    for query_id in tpch.ALL_QUERY_IDS:
        sql = tpch.query(query_id, PARITY_SF)
        results = {}
        for mode in ("interpret", "compiled"):
            options = ExecutionOptions(backend="torchscript", device="cuda",
                                       executor=mode)
            results[mode] = session.compile(sql, options=options).execute()
        interpreted, compiled = results["interpret"], results["compiled"]
        assert interpreted.executor_mode == "interpreted"
        assert compiled.executor_mode == "compiled"
        assert interpreted.reported_s == compiled.reported_s, (
            f"Q{query_id}: simulated kernel-time accounting diverged: "
            f"{interpreted.reported_s} != {compiled.reported_s}")
        _assert_bit_identical([interpreted], [compiled], f"Q{query_id}")
