"""Multi-device scaling: a shuffle-heavy join+aggregate vs. device count.

Runs one query whose distributed plan exercises every exchange flavour —
two ``DistributedScan``s feeding a ``ShuffleJoin`` (all-to-all repartition on
the join key), a two-phase ``ShardedAggregate`` (per-device partials gathered
and merged on the host), and the final ``Gather`` — at ``devices`` ∈ {1, 2, 4}
and prints the simulated scaling curve.

Two gates, per the reproduction roadmap:

* **Bit-identity** — every multi-device configuration (2 and 4 devices, hash
  *and* range sharding) must return byte-for-byte the single-device answer.
  Distribution only reorders *where* kernels run; it must never change what
  they compute.
* **Scaling** — the CPU cost model (slowest-shard + interconnect charges)
  must report ≥1.6× at 2 devices and ≥2.8× at 4.  Sub-linear at 2 devices is
  expected: the shuffle pays hash/mask/concat repartition work per shard and
  the host still merges aggregate partials serially.

Measurement protocol: like ``bench_parallel_scaling.py`` the curve uses the
eager ``pytorch`` backend (the scaling story is about *where* kernels run,
not trace replay), and the device counts are interleaved round-robin — each
round executes every configuration once, and each configuration reports its
best round.  Ambient load shifts on a shared runner then hit all points of
the curve equally instead of skewing whichever configuration was being
measured when the machine got busy.

The scale factor is pinned (rather than taking ``--tpch-sf``) because the
gate is only meaningful when per-shard kernel time dominates the fixed
per-exchange costs; at tiny scale the curve flattens and the numbers stop
saying anything about the sharding design.

With ``--json-out DIR`` the measured curve is also written to
``DIR/BENCH_distributed.json`` for CI artifact collection.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import write_bench_json
from repro.bench.harness import tpch_session
from repro.core.options import ExecutionOptions

#: Pinned scale factor: ~300k lineitem rows, enough for shard kernels to
#: dominate exchange latency (shares the on-disk TPC-H cache across runs).
DIST_SF = 0.05

DEVICES = (1, 2, 4)

#: Scaling gates from the roadmap: simulated speedup over one device.
MIN_SPEEDUP = {2: 1.6, 4: 2.8}

#: Warm-up executions per configuration and measured rounds (best-of).
WARMUP = 2
ROUNDS = 7

#: Shuffle-heavy by construction: the join repartitions both tables on
#: l_orderkey/o_orderkey, then the aggregation merges per-device partials.
QUERY = (
    "SELECT o_orderpriority, COUNT(*) AS n, SUM(l_quantity) AS qty "
    "FROM lineitem JOIN orders ON l_orderkey = o_orderkey "
    "GROUP BY o_orderpriority ORDER BY o_orderpriority"
)

BACKEND = "pytorch"


def _columns(frame) -> dict[str, np.ndarray]:
    return {name: np.asarray(frame.column(name)) for name in frame.columns}


def _assert_bit_identical(reference, candidate, label: str) -> None:
    ref, got = _columns(reference), _columns(candidate)
    assert list(ref) == list(got), f"{label}: column set differs"
    for name, expected in ref.items():
        actual = got[name]
        assert expected.dtype == actual.dtype, f"{label}: {name!r} dtype"
        assert np.array_equal(expected, actual), (
            f"{label}: column {name!r} differs from the single-device answer")


def _prepared(session, devices: int, shard: str = "hash"):
    """Compiled executor + bound inputs, warmed outside the clock."""
    query = session.compile(QUERY, options=ExecutionOptions(
        backend=BACKEND, device="cpu", devices=devices, shard=shard))
    inputs = session.prepare_inputs(query.executor)
    outcome = None
    for _ in range(WARMUP):
        outcome = query.executor.execute(inputs, profile=True)
    return query, inputs, outcome.to_dataframe()


@pytest.fixture(scope="module")
def dist_session():
    session, _ = tpch_session(DIST_SF)
    return session


def test_distributed_scaling(dist_session, json_out, capsys):
    configs = {devices: _prepared(dist_session, devices)
               for devices in DEVICES}

    reference = configs[1][2]
    for devices in DEVICES[1:]:
        _assert_bit_identical(reference, configs[devices][2],
                              f"hash @ {devices} devices")
    # Placement independence: range sharding puts entirely different rows on
    # each device yet must still produce the identical (sorted) answer.
    _, _, ranged = _prepared(dist_session, devices=2, shard="range")
    _assert_bit_identical(reference, ranged, "range @ 2 devices")

    curve = {devices: float("inf") for devices in DEVICES}
    for _ in range(ROUNDS):
        for devices in DEVICES:
            query, inputs, _ = configs[devices]
            outcome = query.executor.execute(inputs, profile=True)
            curve[devices] = min(curve[devices], outcome.reported_s)

    speedups = {d: curve[1] / curve[d] for d in DEVICES if d > 1}
    lines = [f"distributed scaling @ SF {DIST_SF} ({BACKEND}, CPU cost model)"]
    for devices in DEVICES:
        note = (f"  ({speedups[devices]:.2f}x)" if devices in speedups else "")
        lines.append(f"  {devices} device(s): "
                     f"{curve[devices] * 1e3:8.3f} ms{note}")
    with capsys.disabled():
        print("\n" + "\n".join(lines))

    if json_out is not None:
        path = write_bench_json(json_out / "BENCH_distributed.json", {
            "benchmark": "distributed_scaling",
            "scale_factor": DIST_SF,
            "backend": BACKEND,
            "query": QUERY,
            "reported_s": {str(d): curve[d] for d in DEVICES},
            "speedup": {str(d): speedups[d] for d in sorted(speedups)},
            "gates": {str(d): MIN_SPEEDUP[d] for d in sorted(MIN_SPEEDUP)},
        })
        with capsys.disabled():
            print(f"  wrote {path}")

    for devices, floor in MIN_SPEEDUP.items():
        assert speedups[devices] >= floor, (
            f"expected >={floor}x simulated speedup at {devices} devices, "
            f"got {speedups[devices]:.2f}x")
    # The distributed plans must actually be distributed (not silently serial).
    assert curve[2] != curve[1]
