"""Figure 3: one-line backend/device switching with identical results.

The paper's Figure 3 is a code snippet showing that moving TPC-H Q6 between
CPU (torch.jit), GPU and the web backend is a one-line change.  This benchmark
verifies the behavioural claim — every backend/device combination returns the
same answer — and times the compile step of each target.
"""

from __future__ import annotations

import pytest

from repro.datasets import tpch
from repro import ExecutionOptions

COMBINATIONS = [
    ("pytorch", "cpu"),
    ("torchscript", "cpu"),
    ("torchscript", "cuda"),
    ("onnx", "cpu"),
    ("onnx", "wasm"),
]


@pytest.mark.parametrize("backend,device", COMBINATIONS)
def test_figure3_backend_switch_results_identical(benchmark, tpch_env, scale_factor,
                                                  backend, device):
    session, _ = tpch_env
    sql = tpch.query(6, scale_factor)
    reference = session.compile(sql, options=ExecutionOptions(backend="pytorch", device="cpu")).run()

    compiled = session.compile(sql, options=ExecutionOptions(backend=backend, device=device))
    inputs = session.prepare_inputs(compiled.executor)

    def compile_and_run():
        if compiled.executor.backend.strategy == "graph":
            compiled.executor.compile_program(inputs)
        return compiled.executor.execute(inputs)

    outcome = benchmark.pedantic(compile_and_run, rounds=3, iterations=1)
    assert outcome.to_dataframe().equals(reference), \
        f"backend {backend}/{device} changed the query answer"
    benchmark.extra_info["backend"] = backend
    benchmark.extra_info["device"] = device
