"""Expressiveness claim (§1/§2.2): TQP supports all 22 TPC-H queries.

One benchmark per query on the TorchScript-like backend.  Each query must
compile, execute, and (for a spot-checked subset cheap enough to interpret row
by row) agree with the row-engine baseline.
"""

from __future__ import annotations

import pytest

from repro.datasets import tpch
from repro import ExecutionOptions

#: Queries cross-checked against the row engine inside the benchmark run
#: (the full 22-query cross-check lives in tests/integration/test_tpch_queries.py).
_SPOT_CHECKED = {1, 6, 14}


@pytest.mark.parametrize("query_id", tpch.ALL_QUERY_IDS)
def test_tpch_query(benchmark, tpch_env, scale_factor, query_id):
    session, tables = tpch_env
    sql = tpch.query(query_id, scale_factor)
    compiled = session.compile(sql, options=ExecutionOptions(backend="torchscript", device="cpu"))
    inputs = session.prepare_inputs(compiled.executor)
    compiled.executor.execute(inputs)  # trace once

    outcome = benchmark.pedantic(lambda: compiled.executor.execute(inputs),
                                 rounds=3, iterations=1, warmup_rounds=1)
    benchmark.extra_info["rows"] = outcome.table.num_rows
    benchmark.extra_info["query"] = f"Q{query_id}"

    if query_id in _SPOT_CHECKED:
        from repro.baselines import RowEngine
        from repro.frontend import sql_to_physical

        baseline = RowEngine(tables).execute_to_dataframe(
            sql_to_physical(sql, session.catalog))
        assert outcome.table.num_rows == baseline.num_rows
