"""Compile-amortization under repeated-query traffic (the plan-cache benchmark).

The serving regime the ROADMAP targets sends the *same* queries over and over
(dashboards, per-user parameter-free templates).  This benchmark measures what
the session-level compiled-plan cache buys there:

* ``cold``  — every request pays parse → analyze → optimize → plan
  (``use_cache=False``),
* ``hit``   — requests after the first are served from the LRU cache and the
  already-traced program is reused.

The cache-hit path must be at least 5× cheaper per query than a cold compile,
and the hit/miss/compile counters must prove that parsing and tracing were
actually skipped rather than merely fast.
"""

from __future__ import annotations

import time

import pytest

from repro.datasets import tpch
from repro import ExecutionOptions

QUERY_ID = 6
HIT_REPEATS = 25


def _compile_seconds(session, sql, use_cache: bool) -> float:
    start = time.perf_counter()
    session.compile(sql, options=ExecutionOptions(backend="torchscript", device="cpu", use_cache=use_cache))
    return time.perf_counter() - start


def test_plan_cache_hits_are_5x_cheaper_than_cold_compiles(tpch_env, scale_factor):
    session, _ = tpch_env
    sql = tpch.query(QUERY_ID, scale_factor)
    session.plan_cache.clear()

    cold_s = min(_compile_seconds(session, sql, use_cache=False) for _ in range(5))

    session.compile(sql, options=ExecutionOptions(backend="torchscript", device="cpu"))  # prime: one miss
    hits_before = session.plan_cache.hits
    hit_s = min(_compile_seconds(session, sql, use_cache=True)
                for _ in range(HIT_REPEATS))

    stats = session.plan_cache.stats()
    assert session.plan_cache.hits - hits_before == HIT_REPEATS
    assert stats["misses"] >= 1
    assert cold_s >= 5 * hit_s, (
        f"cache hit ({hit_s * 1e6:.1f}us) must be >=5x cheaper than a cold "
        f"compile ({cold_s * 1e6:.1f}us)")


def test_plan_cache_hits_skip_parse_and_trace(tpch_env, scale_factor):
    session, _ = tpch_env
    sql = tpch.query(QUERY_ID, scale_factor)
    session.plan_cache.clear()

    compiled = session.compile(sql, options=ExecutionOptions(backend="torchscript", device="cpu"))
    compiled.run()
    assert compiled.executor.compile_count == 1

    for _ in range(HIT_REPEATS):
        again = session.compile(sql, options=ExecutionOptions(backend="torchscript", device="cpu"))
        again.run()
        assert again is compiled                      # parse/plan skipped
    assert compiled.executor.compile_count == 1       # trace never redone


def test_plan_cache_end_to_end_query_latency(benchmark, tpch_env, scale_factor):
    """Per-request latency of compile+execute with the cache active (the
    serving steady state: every request after the first is a hit)."""
    session, _ = tpch_env
    sql = tpch.query(QUERY_ID, scale_factor)
    session.plan_cache.clear()
    session.sql(sql)  # prime cache and traced program

    outcome = benchmark.pedantic(lambda: session.sql(sql),
                                 rounds=10, iterations=1, warmup_rounds=2)
    stats = session.plan_cache.stats()
    benchmark.extra_info["plan_cache_hits"] = stats["hits"]
    benchmark.extra_info["plan_cache_misses"] = stats["misses"]
    benchmark.extra_info["plan_cache_hit_rate"] = round(stats["hit_rate"], 3)
    assert outcome.num_rows >= 1
    assert stats["hits"] >= 10


@pytest.mark.parametrize("use_cache,label", [(False, "cold-compile"),
                                             (True, "cache-hit")])
def test_plan_cache_compile_latency(benchmark, tpch_env, scale_factor, use_cache,
                                    label):
    """The two compile paths side by side (compare the two rows' medians)."""
    session, _ = tpch_env
    sql = tpch.query(QUERY_ID, scale_factor)
    session.plan_cache.clear()
    if use_cache:
        session.compile(sql, options=ExecutionOptions(backend="torchscript", device="cpu"))  # prime

    benchmark.pedantic(
        lambda: session.compile(sql, options=ExecutionOptions(backend="torchscript", device="cpu", use_cache=use_cache)),
        rounds=10, iterations=1, warmup_rounds=1)
    benchmark.extra_info["variant"] = label
    benchmark.extra_info.update(session.plan_cache.stats())
