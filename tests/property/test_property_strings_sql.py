"""Property-based tests for string-tensor predicates and SQL-level invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DataFrame, TQPSession
from repro.baselines import run_sql
from repro.core import strings
from repro.core.columnar import decode_strings, encode_strings
from repro.tensor import ops
from repro import ExecutionOptions

# Text alphabet kept to a handful of characters so patterns actually match.
words = st.text(alphabet="abcx ", min_size=0, max_size=12)
word_lists = st.lists(words, min_size=1, max_size=25)
patterns = st.sampled_from(["a%", "%x", "%ab%", "abc", "%a%b%", "%", "x%c"])


@given(word_lists)
@settings(max_examples=60, deadline=None)
def test_string_encoding_round_trip(values):
    decoded = decode_strings(encode_strings(values))
    assert decoded.tolist() == [v for v in values]


@given(word_lists, patterns)
@settings(max_examples=80, deadline=None)
def test_like_matches_python_reference(values, pattern):
    import re

    regex = re.compile("^" + ".*".join(re.escape(p) for p in pattern.split("%")) + "$")
    expected = [bool(regex.match(v)) for v in values]
    got = strings.like(ops.tensor(encode_strings(values)), pattern).tolist()
    assert got == expected


@given(word_lists)
@settings(max_examples=60, deadline=None)
def test_dense_rank_consistent_with_sorting(values):
    ranks = strings.dense_rank(ops.tensor(encode_strings(values))).tolist()
    expected_order = {v: i for i, v in enumerate(sorted(set(values)))}
    assert ranks == [expected_order[v] for v in values]


# -- SQL-level properties -----------------------------------------------------


def _random_frame(rng, n):
    return DataFrame({
        "k": rng.integers(0, 8, n).astype(np.int64),
        "v": np.round(rng.normal(size=n), 3),
        "s": np.array(list("abcd"), dtype=object)[rng.integers(0, 4, n)],
    })


@given(st.integers(0, 10_000), st.integers(1, 120))
@settings(max_examples=25, deadline=None)
def test_filter_aggregate_matches_numpy_reference(seed, n):
    rng = np.random.default_rng(seed)
    frame = _random_frame(rng, n)
    session = TQPSession()
    session.register("t", frame)
    out = session.sql("select count(*) as n, sum(v) as total from t where v > 0")
    mask = frame["v"] > 0
    assert out["n"][0] == int(mask.sum())
    if mask.any():
        assert out["total"][0] == pytest.approx(float(frame["v"][mask].sum()), abs=1e-6)
    else:
        assert out["total"][0] is None


@given(st.integers(0, 10_000), st.integers(1, 100))
@settings(max_examples=20, deadline=None)
def test_group_by_matches_row_engine(seed, n):
    rng = np.random.default_rng(seed)
    frame = _random_frame(rng, n)
    sql = ("select s, k, count(*) as c, min(v) as lo, max(v) as hi "
           "from t group by s, k order by s, k")
    session = TQPSession()
    session.register("t", frame)
    tqp = session.sql(sql)
    baseline = run_sql(sql, {"t": frame})
    assert tqp.to_dict()["s"] == baseline.to_dict()["s"]
    assert tqp.to_dict()["k"] == baseline.to_dict()["k"]
    assert tqp.to_dict()["c"] == baseline.to_dict()["c"]
    np.testing.assert_allclose(tqp["lo"], baseline["lo"], atol=1e-9)
    np.testing.assert_allclose(tqp["hi"], baseline["hi"], atol=1e-9)


@given(st.integers(0, 10_000), st.integers(1, 60), st.integers(1, 60))
@settings(max_examples=20, deadline=None)
def test_join_matches_row_engine(seed, n_left, n_right):
    rng = np.random.default_rng(seed)
    left = DataFrame({
        "k": rng.integers(0, 10, n_left).astype(np.int64),
        "v": np.round(rng.normal(size=n_left), 3),
    })
    right = DataFrame({
        "k": rng.integers(0, 10, n_right).astype(np.int64),
        "w": np.round(rng.normal(size=n_right), 3),
    })
    sql = ("select left_t.k, count(*) as pairs, sum(v + w) as total "
           "from left_t, right_t where left_t.k = right_t.k "
           "group by left_t.k order by left_t.k")
    session = TQPSession()
    session.register("left_t", left)
    session.register("right_t", right)
    tqp = session.sql(sql)
    baseline = run_sql(sql, {"left_t": left, "right_t": right})
    assert tqp.to_dict()["k"] == baseline.to_dict()["k"]
    assert tqp.to_dict()["pairs"] == baseline.to_dict()["pairs"]
    np.testing.assert_allclose(tqp["total"], baseline["total"], atol=1e-6)


@given(st.integers(0, 10_000), st.integers(1, 80))
@settings(max_examples=15, deadline=None)
def test_backends_agree_on_random_queries(seed, n):
    rng = np.random.default_rng(seed)
    frame = _random_frame(rng, n)
    session = TQPSession()
    session.register("t", frame)
    sql = ("select s, sum(case when v > 0 then v else 0 end) as positive_sum "
           "from t group by s order by s")
    eager = session.compile(sql, options=ExecutionOptions(backend="pytorch")).run()
    traced = session.compile(sql, options=ExecutionOptions(backend="torchscript")).run()
    assert traced.equals(eager)
