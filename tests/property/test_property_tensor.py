"""Property-based tests (hypothesis) for the tensor runtime invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.tensor import GraphInterpreter, ops, passes, trace

floats = hnp.arrays(np.float64, st.integers(1, 40),
                    elements=st.floats(-1e6, 1e6, allow_nan=False))
ints = hnp.arrays(np.int64, st.integers(1, 40), elements=st.integers(-1000, 1000))


@given(floats, floats)
@settings(max_examples=50, deadline=None)
def test_elementwise_ops_match_numpy(a, b):
    n = min(len(a), len(b))
    a, b = a[:n], b[:n]
    np.testing.assert_allclose(ops.add(ops.tensor(a), ops.tensor(b)).numpy(), a + b)
    np.testing.assert_allclose(ops.mul(ops.tensor(a), ops.tensor(b)).numpy(), a * b)
    np.testing.assert_array_equal(ops.le(ops.tensor(a), ops.tensor(b)).numpy(), a <= b)


@given(ints)
@settings(max_examples=50, deadline=None)
def test_argsort_produces_a_permutation_that_sorts(values):
    order = ops.argsort(ops.tensor(values)).numpy()
    assert sorted(order.tolist()) == list(range(len(values)))
    assert (values[order] == np.sort(values, kind="stable")).all()


@given(ints)
@settings(max_examples=50, deadline=None)
def test_unique_inverse_reconstructs_input(values):
    unique_values, inverse, counts = ops.unique(ops.tensor(values))
    np.testing.assert_array_equal(unique_values.numpy()[inverse.numpy()], values)
    assert counts.numpy().sum() == len(values)
    assert (np.diff(unique_values.numpy()) > 0).all()


@given(ints, st.integers(1, 8))
@settings(max_examples=50, deadline=None)
def test_scatter_add_equals_groupby_sum(values, num_groups):
    groups = np.abs(values) % num_groups
    result = ops.scatter_add(ops.tensor(groups), ops.tensor(values.astype(np.float64)),
                             size=num_groups).numpy()
    expected = np.zeros(num_groups)
    for g, v in zip(groups, values):
        expected[g] += v
    np.testing.assert_allclose(result, expected)


@given(floats)
@settings(max_examples=50, deadline=None)
def test_boolean_mask_then_concat_is_a_partition(values):
    tensor = ops.tensor(values)
    mask = ops.ge(tensor, 0.0)
    kept = ops.boolean_mask(tensor, mask)
    dropped = ops.boolean_mask(tensor, ops.logical_not(mask))
    assert kept.shape[0] + dropped.shape[0] == len(values)
    np.testing.assert_allclose(np.sort(np.concatenate([kept.numpy(), dropped.numpy()])),
                               np.sort(values))


@given(floats, floats)
@settings(max_examples=30, deadline=None)
def test_traced_graph_replays_identically(a, b):
    n = min(len(a), len(b))
    a, b = a[:n], b[:n]

    def fn(x, y):
        return ops.sum_(ops.mul(ops.add(x, y), 2.0))

    graph = trace(fn, [ops.tensor(a), ops.tensor(b)])
    eager = fn(ops.tensor(a), ops.tensor(b)).item()
    replayed = GraphInterpreter(graph).run([ops.tensor(a), ops.tensor(b)])[0].item()
    np.testing.assert_allclose(replayed, eager)


@given(floats)
@settings(max_examples=30, deadline=None)
def test_optimization_passes_preserve_semantics(values):
    def fn(x):
        doubled = ops.mul(x, 2.0)
        doubled_again = ops.mul(x, 2.0)           # CSE target
        unused = ops.add(x, 123.0)                # DCE target  # noqa: F841
        return ops.sum_(ops.add(doubled, doubled_again))

    example = [ops.tensor(values)]
    graph = trace(fn, example)
    before = GraphInterpreter(graph.clone()).run(example)[0].item()
    optimized = passes.optimize(graph)
    after = GraphInterpreter(optimized).run(example)[0].item()
    np.testing.assert_allclose(after, before)
    assert len(optimized.nodes) <= 4
