"""Shared fixtures for the test suite."""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

from repro import DataFrame, TQPSession
from repro.bench.harness import tpch_session

_TIERS = ("unit", "integration", "property")


def pytest_collection_modifyitems(config, items):
    """Mark each test with its tier (directory name) so CI can select
    ``-m "unit or property"`` as the fast tier on every push."""
    for item in items:
        parts = pathlib.Path(str(item.fspath)).parts
        for tier in _TIERS:
            if tier in parts:
                item.add_marker(getattr(pytest.mark, tier))
                break


@pytest.fixture
def toy_tables() -> dict[str, DataFrame]:
    """A tiny orders/items schema with every column kind (int, float, date, str)."""
    items = DataFrame({
        "item_id": np.array([1, 2, 3, 4, 5, 6], dtype=np.int64),
        "order_id": np.array([10, 10, 20, 30, 30, 30], dtype=np.int64),
        "price": np.array([5.0, 7.5, 2.5, 10.0, 1.0, 4.0]),
        "quantity": np.array([2, 1, 4, 1, 6, 3], dtype=np.int64),
        "shipped": np.array(["2024-01-05", "2024-01-20", "2024-02-10",
                             "2024-02-28", "2024-03-05", "2024-03-20"],
                            dtype="datetime64[D]"),
        "note": np.array(["fast delivery", "gift wrap", "fragile item",
                          "fast and fragile", "plain", "gift for friend"],
                         dtype=object),
    })
    orders = DataFrame({
        "order_id": np.array([10, 20, 30, 40], dtype=np.int64),
        "customer": np.array(["ada", "bob", "ada", "cleo"], dtype=object),
        "region": np.array(["EU", "US", "EU", "APAC"], dtype=object),
    })
    return {"items": items, "orders": orders}


@pytest.fixture
def toy_session(toy_tables) -> TQPSession:
    session = TQPSession()
    for name, frame in toy_tables.items():
        session.register(name, frame)
    return session


@pytest.fixture(scope="session")
def tpch_tiny():
    """A very small TPC-H instance shared by the integration tests."""
    return tpch_session(scale_factor=0.002, seed=7)
