"""Shared fixtures and frame-comparison helpers for the test suite."""

from __future__ import annotations

import math
import pathlib

import numpy as np
import pytest

from repro import DataFrame, TQPSession
from repro.bench.harness import tpch_session


# -- differential frame comparison --------------------------------------------
#
# Shared by the differential suites (TPC-H conformance, expression properties,
# parallel-vs-serial): morsel-parallel plans reorder join output and
# re-associate partial sums, so frames are compared as row multisets within a
# float tolerance, never bitwise.


def normalize_cell(value):
    """Canonical python value for one cell (NaN and None both mean NULL)."""
    if value is None:
        return None
    if isinstance(value, np.datetime64):
        return str(value.astype("datetime64[D]"))
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if isinstance(value, (float, np.floating)):
        return None if np.isnan(value) else float(value)
    if isinstance(value, (int, np.integer)):
        return float(value)
    return str(value)


def cells_close(left, right, rel_tol: float = 1e-6, abs_tol: float = 1e-6) -> bool:
    if left is None or right is None:
        return left is None and right is None
    if isinstance(left, float) and isinstance(right, float):
        return math.isclose(left, right, rel_tol=rel_tol, abs_tol=abs_tol)
    return left == right


def _frame_rows(frame) -> list[tuple]:
    columns = [frame[name] for name in frame.columns]
    return [tuple(normalize_cell(column[i]) for column in columns)
            for i in range(frame.num_rows)]


def _sort_key(row) -> tuple:
    return tuple("~none" if cell is None
                 else (f"{cell:+.4f}" if isinstance(cell, float) else str(cell))
                 for cell in row)


def assert_frames_match(actual, expected, context: str = "",
                        ordered: bool = False,
                        rel_tol: float = 1e-6, abs_tol: float = 1e-6) -> None:
    """Row-for-row equality within float tolerance; sorted unless ``ordered``."""
    assert len(actual.columns) == len(expected.columns), context
    assert actual.num_rows == expected.num_rows, context
    left, right = _frame_rows(actual), _frame_rows(expected)
    if not ordered:
        left, right = sorted(left, key=_sort_key), sorted(right, key=_sort_key)
    for row_index, (lrow, rrow) in enumerate(zip(left, right)):
        for col_index, (lcell, rcell) in enumerate(zip(lrow, rrow)):
            assert cells_close(lcell, rcell, rel_tol, abs_tol), (
                f"{context}: row {row_index}, column "
                f"{actual.columns[col_index]!r}: {lcell!r} != {rcell!r}"
            )

_TIERS = ("unit", "integration", "property")


def pytest_collection_modifyitems(config, items):
    """Mark each test with its tier (directory name) so CI can select
    ``-m "unit or property"`` as the fast tier on every push."""
    for item in items:
        parts = pathlib.Path(str(item.fspath)).parts
        for tier in _TIERS:
            if tier in parts:
                item.add_marker(getattr(pytest.mark, tier))
                break


@pytest.fixture(scope="session")
def frames_match():
    """The shared differential frame assertion (see :func:`assert_frames_match`).

    Exposed as a fixture because ``tests/`` is not a package, so test modules
    in subdirectories cannot import helpers from this conftest directly.
    """
    return assert_frames_match


@pytest.fixture
def toy_tables() -> dict[str, DataFrame]:
    """A tiny orders/items schema with every column kind (int, float, date, str)."""
    items = DataFrame({
        "item_id": np.array([1, 2, 3, 4, 5, 6], dtype=np.int64),
        "order_id": np.array([10, 10, 20, 30, 30, 30], dtype=np.int64),
        "price": np.array([5.0, 7.5, 2.5, 10.0, 1.0, 4.0]),
        "quantity": np.array([2, 1, 4, 1, 6, 3], dtype=np.int64),
        "shipped": np.array(["2024-01-05", "2024-01-20", "2024-02-10",
                             "2024-02-28", "2024-03-05", "2024-03-20"],
                            dtype="datetime64[D]"),
        "note": np.array(["fast delivery", "gift wrap", "fragile item",
                          "fast and fragile", "plain", "gift for friend"],
                         dtype=object),
    })
    orders = DataFrame({
        "order_id": np.array([10, 20, 30, 40], dtype=np.int64),
        "customer": np.array(["ada", "bob", "ada", "cleo"], dtype=object),
        "region": np.array(["EU", "US", "EU", "APAC"], dtype=object),
    })
    return {"items": items, "orders": orders}


@pytest.fixture
def toy_session(toy_tables) -> TQPSession:
    session = TQPSession()
    for name, frame in toy_tables.items():
        session.register(name, frame)
    return session


@pytest.fixture(scope="session")
def tpch_tiny():
    """A very small TPC-H instance shared by the integration tests."""
    return tpch_session(scale_factor=0.002, seed=7)
