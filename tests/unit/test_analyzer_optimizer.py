"""Unit tests for semantic analysis, the logical optimizer, and physical planning."""

import numpy as np
import pytest

from repro.core.columnar import LogicalType
from repro.dataframe import DataFrame
from repro.errors import AnalysisError, CatalogError
from repro.frontend import (
    Analyzer,
    Catalog,
    optimize,
    parse,
    sql_to_logical,
    sql_to_physical,
)
from repro.frontend import physical as phys
from repro.frontend.logical import (
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    walk_plan,
)


@pytest.fixture
def catalog(toy_tables):
    catalog = Catalog()
    for name, frame in toy_tables.items():
        catalog.register(name, frame)
    return catalog


# -- catalog ------------------------------------------------------------------


def test_catalog_registration_and_lookup(toy_tables):
    catalog = Catalog()
    catalog.register("Items", toy_tables["items"])
    assert catalog.has_table("items") and catalog.has_table("ITEMS")
    assert catalog.schema("items").column_type("price") == LogicalType.FLOAT
    assert catalog.schema("items").column_type("note") == LogicalType.STRING
    with pytest.raises(CatalogError):
        catalog.schema("nope")
    with pytest.raises(CatalogError):
        catalog.schema("items").column_type("nope")
    catalog.unregister("items")
    assert not catalog.has_table("items")


def test_catalog_replace_flag(toy_tables):
    catalog = Catalog()
    catalog.register("items", toy_tables["items"])
    with pytest.raises(CatalogError):
        catalog.register("items", toy_tables["items"], replace=False)


# -- analyzer ------------------------------------------------------------------


def test_analyzer_resolves_columns_and_types(catalog):
    plan = Analyzer(catalog).analyze(parse(
        "select price * quantity as total, note from items where quantity > 2"))
    project = plan
    assert isinstance(project, LogicalProject)
    assert project.names == ["total", "note"]
    assert project.types == [LogicalType.FLOAT, LogicalType.STRING]
    scan = [n for n in walk_plan(plan) if isinstance(n, LogicalScan)][0]
    assert scan.alias == "items"


def test_analyzer_unknown_column_and_ambiguity(catalog):
    with pytest.raises(AnalysisError):
        Analyzer(catalog).analyze(parse("select wrong_column from items"))
    with pytest.raises(AnalysisError):
        Analyzer(catalog).analyze(parse(
            "select order_id from items, orders where items.order_id = orders.order_id"))


def test_analyzer_star_expansion(catalog):
    plan = Analyzer(catalog).analyze(parse("select * from orders"))
    assert plan.field_names() == ["order_id", "customer", "region"]
    plan = Analyzer(catalog).analyze(parse(
        "select orders.* from items, orders where items.order_id = orders.order_id"))
    assert len(plan.schema()) == 3


def test_analyzer_aggregate_extraction(catalog):
    plan = Analyzer(catalog).analyze(parse(
        "select order_id, sum(price) as total, count(*) as n from items "
        "group by order_id having sum(price) > 5"))
    aggregate = [n for n in walk_plan(plan) if isinstance(n, LogicalAggregate)][0]
    assert len(aggregate.aggregates) == 2          # sum reused between SELECT/HAVING
    assert aggregate.group_names == ["items.order_id"]
    filters = [n for n in walk_plan(plan) if isinstance(n, LogicalFilter)]
    assert filters, "HAVING must become a filter above the aggregate"


def test_analyzer_rejects_aggregate_in_where(catalog):
    with pytest.raises(AnalysisError):
        Analyzer(catalog).analyze(parse("select 1 from items where sum(price) > 3"))


def test_analyzer_order_by_alias_and_type_of_avg(catalog):
    plan = Analyzer(catalog).analyze(parse(
        "select order_id, avg(quantity) as avg_q from items group by order_id "
        "order by avg_q desc"))
    assert isinstance(plan, LogicalSort)
    project = plan.child
    assert project.types[1] == LogicalType.FLOAT


def test_analyzer_folds_date_interval_arithmetic(catalog):
    plan = sql_to_logical(
        "select item_id from items where shipped < date '2024-01-01' + interval '1' month",
        catalog, optimized=False)
    from repro.frontend import ast

    literals = [node for n in walk_plan(plan)
                for e in ([n.condition] if isinstance(n, LogicalFilter) else [])
                for node in ast.walk_expr(e) if isinstance(node, ast.Literal)]
    assert any(lit.otype == LogicalType.DATE for lit in literals)
    assert all(not isinstance(node, ast.IntervalLiteral) for node in literals)


# -- optimizer -------------------------------------------------------------------


def test_optimizer_turns_comma_join_into_hash_join(catalog):
    plan = sql_to_logical(
        "select customer, sum(price * quantity) as spend "
        "from items, orders where items.order_id = orders.order_id "
        "and region = 'EU' group by customer", catalog)
    joins = [n for n in walk_plan(plan) if isinstance(n, LogicalJoin)]
    assert len(joins) == 1
    assert joins[0].kind == "inner" and len(joins[0].left_keys) == 1
    # the region predicate was pushed below the join
    filters = [n for n in walk_plan(plan) if isinstance(n, LogicalFilter)]
    assert any(isinstance(f.child, LogicalScan) for f in filters)


def test_optimizer_prunes_scan_columns(catalog):
    plan = sql_to_logical("select sum(price) as total from items", catalog)
    scan = [n for n in walk_plan(plan) if isinstance(n, LogicalScan)][0]
    assert [f.name for f in scan.fields] == ["items.price"]
    unpruned = sql_to_logical("select sum(price) as total from items", catalog,
                              optimized=False)
    unpruned_scan = [n for n in walk_plan(unpruned) if isinstance(n, LogicalScan)][0]
    assert len(unpruned_scan.fields) == 6


def test_optimizer_decorrelates_exists(catalog):
    plan = sql_to_logical(
        "select customer from orders where exists "
        "(select * from items where items.order_id = orders.order_id and price > 5)",
        catalog)
    joins = [n for n in walk_plan(plan) if isinstance(n, LogicalJoin)]
    assert joins and joins[0].kind == "semi"
    plan = sql_to_logical(
        "select customer from orders where not exists "
        "(select * from items where items.order_id = orders.order_id)", catalog)
    joins = [n for n in walk_plan(plan) if isinstance(n, LogicalJoin)]
    assert joins and joins[0].kind == "anti"


def test_optimizer_decorrelates_scalar_aggregate(catalog):
    plan = sql_to_logical(
        "select item_id from items i where price > "
        "(select avg(price) from items where items.order_id = i.order_id)",
        catalog)
    joins = [n for n in walk_plan(plan) if isinstance(n, LogicalJoin)]
    assert joins and joins[0].kind == "inner"
    aggregates = [n for n in walk_plan(plan) if isinstance(n, LogicalAggregate)]
    assert aggregates and aggregates[0].group_exprs, "subquery must become grouped"


def test_optimizer_keeps_uncorrelated_subqueries_as_expressions(catalog):
    plan = sql_to_logical(
        "select item_id from items where order_id in (select order_id from orders)",
        catalog)
    joins = [n for n in walk_plan(plan) if isinstance(n, LogicalJoin)]
    assert not joins  # evaluated at runtime via isin


def test_optimizer_explicit_join_keys_extracted(catalog):
    plan = sql_to_logical(
        "select customer from orders left outer join items "
        "on orders.order_id = items.order_id and price > 3", catalog)
    join = [n for n in walk_plan(plan) if isinstance(n, LogicalJoin)][0]
    assert join.kind == "left"
    assert len(join.left_keys) == 1
    assert join.residual is not None


# -- physical planning --------------------------------------------------------------


def test_physical_plan_operator_choice(catalog):
    plan = sql_to_physical(
        "select customer, count(*) as n from items, orders "
        "where items.order_id = orders.order_id group by customer "
        "order by n desc limit 2", catalog)
    ops_present = {type(node).__name__ for node in phys.walk_physical(plan)}
    assert {"PhysicalLimit", "PhysicalSort", "PhysicalProject", "PhysicalHashAggregate",
            "PhysicalHashJoin", "PhysicalScan"} <= ops_present


def test_physical_plan_schema_and_pretty(catalog):
    plan = sql_to_physical("select note, price from items where price > 3", catalog)
    assert [f.name for f in plan.schema()] == ["note", "price"]
    text = plan.pretty()
    assert "Project" in text and "TableScan" in text
