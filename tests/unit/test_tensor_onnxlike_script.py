"""Unit tests for the scripted target and the ONNX-like portable format."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.tensor import GraphInterpreter, ScriptedProgram, onnxlike, ops, script_trace, trace


def _example_graph():
    def fn(x, y):
        return ops.sum_(ops.mul(x, y) + 0.5)

    return trace(fn, [ops.tensor([1.0, 2.0]), ops.tensor([3.0, 4.0])])


def test_script_trace_replays_correctly():
    program = script_trace(lambda x: ops.cumsum(x * 2), [ops.tensor([1, 2, 3])])
    assert isinstance(program, ScriptedProgram)
    out = program(ops.tensor([1, 1, 1]))
    np.testing.assert_array_equal(out[0].numpy(), [2, 4, 6])
    assert program.num_nodes >= 2
    assert "cumsum" in program.op_counts()


def test_script_trace_optimization_flag():
    def fn(x):
        return ops.add(ops.mul(x, 2.0), ops.mul(x, 2.0))

    optimized = script_trace(fn, [ops.tensor([1.0])], optimize=True)
    unoptimized = script_trace(fn, [ops.tensor([1.0])], optimize=False)
    assert optimized.num_nodes < unoptimized.num_nodes
    a, b = optimized(ops.tensor([2.0])), unoptimized(ops.tensor([2.0]))
    np.testing.assert_allclose(a[0].numpy(), b[0].numpy())


def test_onnx_export_import_round_trip():
    graph = _example_graph()
    model = onnxlike.export_graph(graph)
    assert model["format"] == onnxlike.FORMAT_NAME
    assert model["version"] == onnxlike.FORMAT_VERSION
    restored = onnxlike.import_graph(model)
    inputs = [ops.tensor([2.0, 3.0]), ops.tensor([4.0, 5.0])]
    original = GraphInterpreter(graph).run(inputs)[0].item()
    round_tripped = GraphInterpreter(restored).run(inputs)[0].item()
    assert original == round_tripped


def test_onnx_text_and_file_round_trip(tmp_path):
    graph = _example_graph()
    text = onnxlike.dumps(graph)
    assert onnxlike.loads(text).op_counts() == graph.op_counts()
    path = tmp_path / "model.json"
    onnxlike.save(graph, str(path))
    assert onnxlike.load(str(path)).op_counts() == graph.op_counts()


def test_onnx_rejects_wrong_format_or_version():
    graph = _example_graph()
    model = onnxlike.export_graph(graph)
    with pytest.raises(GraphError):
        onnxlike.import_graph({**model, "format": "onnx"})
    with pytest.raises(GraphError):
        onnxlike.import_graph({**model, "version": 99})


def test_onnx_preserves_initializer_dtypes():
    def fn(x):
        return ops.take(x, ops.tensor([1, 0], dtype="int64"))

    graph = trace(fn, [ops.tensor([10.0, 20.0])])
    restored = onnxlike.loads(onnxlike.dumps(graph))
    out = GraphInterpreter(restored).run([ops.tensor([10.0, 20.0])])
    np.testing.assert_array_equal(out[0].numpy(), [20.0, 10.0])


def test_interpreter_per_node_overhead_is_applied():
    graph = _example_graph()
    fast = ScriptedProgram(graph, per_node_overhead_s=0.0)
    slow = ScriptedProgram(graph.clone(), per_node_overhead_s=0.002)
    inputs = [ops.tensor([1.0, 1.0]), ops.tensor([1.0, 1.0])]
    import time

    start = time.perf_counter()
    fast.run(inputs)
    fast_elapsed = time.perf_counter() - start
    start = time.perf_counter()
    slow.run(inputs)
    slow_elapsed = time.perf_counter() - start
    assert slow_elapsed > fast_elapsed
