"""Unit tests for zone-map statistics and planner-driven scan pruning.

The correctness contract under test: pruned results are **bit-identical** to
unpruned results on every boundary shape — empty-after-pruning, all blocks
surviving, NULL-only blocks — for literal and parameterized predicates, on
both the eager and the traced backends.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ExecutionOptions, TQPSession
from repro.core.columnar import DEFAULT_MORSEL_ROWS
from repro.dataframe import DataFrame
from repro.storage import compute_table_statistics, estimate_selectivity
from repro.storage.pruning import extract_pruning_conjuncts, surviving_blocks
from repro.storage.statistics import zone_discrimination

BLOCKS = 5
ROWS = BLOCKS * DEFAULT_MORSEL_ROWS


def clustered_frame() -> DataFrame:
    """5 zone-map blocks, clustered on ``k``/``d``; block 3 is all-NaN in ``f``."""
    rng = np.random.default_rng(11)
    k = np.repeat(np.arange(BLOCKS, dtype=np.int64), DEFAULT_MORSEL_ROWS)
    f = rng.random(ROWS)
    f[3 * DEFAULT_MORSEL_ROWS:4 * DEFAULT_MORSEL_ROWS] = np.nan  # NULL-only block
    d = (np.datetime64("2020-01-01") + 30 * k).astype("datetime64[D]")
    tag = np.array(["even", "odd"], dtype=object)[(np.arange(ROWS) % 2)]
    return DataFrame({"k": k, "f": f, "d": d, "tag": tag})


@pytest.fixture(scope="module")
def frame() -> DataFrame:
    return clustered_frame()


@pytest.fixture()
def pruned_session(frame) -> TQPSession:
    session = TQPSession()
    session.register("t", frame)
    return session


@pytest.fixture()
def unpruned_session(frame) -> TQPSession:
    session = TQPSession()
    session.catalog.collect_statistics = False  # no zone maps → no pruning
    session.register("t", frame)
    return session


def scan_pruning(compiled) -> dict:
    (scan,) = compiled.operator_plan.scans
    return scan.last_pruning or {}


# -- statistics ----------------------------------------------------------------


def test_zone_maps_align_with_morsel_blocks(frame):
    stats = compute_table_statistics(frame)
    assert stats.num_blocks == BLOCKS
    k = stats.column("k")
    np.testing.assert_array_equal(k.block_min, np.arange(BLOCKS))
    np.testing.assert_array_equal(k.block_max, np.arange(BLOCKS))
    assert k.ndv == BLOCKS and k.null_count == 0

    f = stats.column("f")
    assert f.block_nonnull[3] == 0          # the NaN block counts as NULL-only
    assert f.null_count == DEFAULT_MORSEL_ROWS
    assert np.isfinite(f.block_min[:3].astype(float)).all()

    tag = stats.column("tag")
    assert tag.ndv == 2
    assert tag.block_min[0] == "even" and tag.block_max[0] == "odd"


def test_zone_discrimination_separates_clustered_from_random(frame):
    stats = compute_table_statistics(frame)
    assert zone_discrimination(stats.column("k")) == 0.0    # one value per block
    rng = np.random.default_rng(0)
    random_frame = DataFrame({"x": rng.integers(0, 10**6, ROWS)})
    random_stats = compute_table_statistics(random_frame)
    assert zone_discrimination(random_stats.column("x")) > 0.9
    assert zone_discrimination(stats.column("tag")) == 1.0  # strings: undefined


def test_selectivity_estimates(frame):
    stats = compute_table_statistics(frame).columns
    session = TQPSession()
    session.register("t", frame)

    def selectivity(sql):
        from repro.core.operators import FilterOperator

        compiled = session.compile(sql)
        for op in compiled.operator_plan.root.walk():
            if isinstance(op, FilterOperator):
                return estimate_selectivity(op.condition, stats)
        raise AssertionError("no filter found")

    assert selectivity("select k from t where k = 2") == pytest.approx(1 / 5)
    assert selectivity("select k from t where k in (1, 2)") == pytest.approx(2 / 5)
    full = selectivity("select k from t where k <= 4")
    narrow = selectivity("select k from t where k < 1")
    assert full == pytest.approx(1.0) and narrow <= 0.3
    assert selectivity("select k from t where tag = 'even'") == pytest.approx(0.5)


# -- conjunct extraction & block survival -------------------------------------


def test_extract_and_survive(frame):
    stats = compute_table_statistics(frame)
    session = TQPSession()
    session.register("t", frame)
    compiled = session.compile(
        "select k from t where k >= 1 and k < 3 and tag = 'even' and f + 1 > 0")
    conjuncts = compiled.operator_plan.scans[0].pruning
    described = [c.op for c in conjuncts]
    # f + 1 > 0 is not a prunable shape and must be skipped
    assert described == ["ge", "lt", "eq"]
    mask = surviving_blocks(conjuncts, stats)
    np.testing.assert_array_equal(mask, [False, True, True, False, False])


def test_null_only_block_is_pruned_by_any_comparison(frame):
    stats = compute_table_statistics(frame)
    session = TQPSession()
    session.register("t", frame)
    compiled = session.compile("select f from t where f >= 0.0")
    mask = surviving_blocks(compiled.operator_plan.scans[0].pruning, stats)
    np.testing.assert_array_equal(mask, [True, True, True, False, True])


# -- pruned results are bit-identical to unpruned -----------------------------


BOUNDARY_QUERIES = [
    # empty after pruning: no block can contain k = 99
    ("select k, f from t where k = 99", 5),
    # all blocks survive
    ("select count(*) as c, sum(k) as s from t where k >= 0", 0),
    # NULL-only block pruned, NaN rows never match anyway
    ("select count(*) as c from t where f >= 0.0", 1),
    # range over the clustered date column (only block 2's 2020-03-01 falls
    # inside the window)
    ("select sum(k) as s from t where d between date '2020-02-01' "
     "and date '2020-03-15'", 4),
    # string equality cannot prune (both tags in every block) but must stay
    # correct with the conjunct attached
    ("select count(*) as c from t where tag = 'even' and k < 2", 3),
]


@pytest.mark.parametrize("backend", ["pytorch", "torchscript"])
@pytest.mark.parametrize("sql,expected_skips", BOUNDARY_QUERIES)
def test_pruned_matches_unpruned(pruned_session, unpruned_session, frames_match,
                                 sql, expected_skips, backend):
    options = ExecutionOptions(backend=backend)
    compiled = pruned_session.compile(sql, options=options)
    result = compiled.execute()
    expected = unpruned_session.sql(sql, options=options)
    frames_match(result.to_dataframe(), expected, f"{sql} [{backend}]")
    outcome = scan_pruning(compiled)
    assert outcome["blocks_skipped"] == expected_skips, sql
    assert result.pruning["t"]["blocks_skipped"] == expected_skips


def test_parameterized_pruning_rebinds_correctly(pruned_session,
                                                 unpruned_session, frames_match):
    """Bind-time pruning: each binding re-decides block survival — including
    to-empty and to-everything rebinds — on both backends."""
    sql = "select count(*) as c, sum(k) as s from t where k >= :lo and k <= :hi"
    bindings = [
        {"lo": 1, "hi": 2},     # middle blocks
        {"lo": 0, "hi": 99},    # everything survives
        {"lo": 50, "hi": 60},   # empty after pruning
        {"lo": 4, "hi": 4},     # last block only
    ]
    reference = unpruned_session.prepare(sql)
    for backend in ("pytorch", "torchscript"):
        query = pruned_session.prepare(
            sql, options=ExecutionOptions(backend=backend))
        for binding in bindings:
            frames_match(query.bind(**binding).run(),
                         reference.bind(**binding).run(),
                         f"{binding} [{backend}]")
        assert query.compiled.executor.compile_count == (
            1 if backend == "torchscript" else 0)


def test_eager_parameterized_pruning_skips_blocks(pruned_session):
    query = pruned_session.prepare(
        "select sum(k) as s from t where k >= :lo and k <= :hi",
        options=ExecutionOptions(backend="pytorch"))
    result = query.bind(lo=1, hi=2).execute()
    assert result.pruning["t"]["blocks_skipped"] == 3
    result = query.bind(lo=0, hi=99).execute()
    assert result.pruning["t"]["blocks_skipped"] == 0


def test_morsel_scan_prunes_blocks_before_dispatch(pruned_session,
                                                   unpruned_session, frames_match):
    sql = "select sum(f) as s from t where k >= 3"
    options = ExecutionOptions(parallelism=4)
    compiled = pruned_session.compile(sql, options=options)
    assert "MorselScan" in compiled.operator_plan.root.pretty()
    result = compiled.execute()
    frames_match(result.to_dataframe(),
                 unpruned_session.sql(sql, options=options), sql)
    assert result.pruning["t"]["blocks_skipped"] == 3


def test_held_query_reregistered_same_rowcount_uses_fresh_zone_maps(frame):
    """A CompiledQuery held across a re-register() with the *same* row count
    must prune against the new data's zone maps, not the compile-time ones."""
    session = TQPSession()
    session.register("t", frame)
    sql = "select count(*) as c from t where k >= :lo"
    held = session.prepare(sql)  # eager backend: re-prunes per execution
    assert held.bind(lo=4).run().to_dict()["c"] == [DEFAULT_MORSEL_ROWS]

    reversed_frame = DataFrame({
        "k": frame["k"][::-1].copy(), "f": frame["f"], "d": frame["d"],
        "tag": frame["tag"],
    })
    session.register("t", reversed_frame)  # same row count, blocks reversed
    assert held.bind(lo=4).run().to_dict()["c"] == [DEFAULT_MORSEL_ROWS]


def test_pruning_survives_plan_cache_and_reregistration(frame):
    session = TQPSession()
    session.register("t", frame)
    sql = "select count(*) as c from t where k = 0"
    first = session.compile(sql)
    assert first.run().to_dict()["c"] == [DEFAULT_MORSEL_ROWS]
    # Re-register shifted data: the cached plan (and its zone maps) must not
    # serve the old block layout.
    shifted = DataFrame({
        "k": frame["k"] + 1, "f": frame["f"], "d": frame["d"],
        "tag": frame["tag"],
    })
    session.register("t", shifted)
    second = session.compile(sql)
    assert second is not first
    assert second.run().to_dict()["c"] == [0]
    assert scan_pruning(second)["blocks_skipped"] == BLOCKS
