"""Unit tests for the codegen executor (:mod:`repro.tensor.codegen`).

Covers the three contracts the compiled path makes:

* **fallback** — every unsupported construct is named by
  :func:`codegen.unsupported_reason`; ``executor="compiled"`` raises a
  :class:`~repro.errors.CodegenError` for it while ``executor="auto"``
  silently replays through the interpreter and records the reason;
* **rebinding** — a prepared statement compiled once keeps answering
  correctly as bindings change shape, including rebinding to an empty
  selection and back;
* **event parity** — a profiled compiled run records the same event stream
  (op, bytes, device, scope, lane) as interpreted replay, which is what keeps
  the simulated cost models executor-blind.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ExecutionOptions
from repro.errors import CodegenError
from repro.tensor import Profiler, ScriptedProgram, codegen, ops, trace
from repro.tensor.passes import optimize


def _graph():
    def fn(x, y):
        return ops.sum_(ops.mul(x, y) + 0.5)

    return trace(fn, [ops.tensor([1.0, 2.0]), ops.tensor([3.0, 4.0])])


def _fused_graph():
    """An optimized graph containing a ``fused_kernel`` node."""
    def fn(x):
        return ops.sum_(ops.mul(ops.add(x, 1.0), 2.0))

    graph = optimize(trace(fn, [ops.tensor([1.0, 2.0, 3.0])]))
    assert "fused_kernel" in graph.op_counts()
    return graph


# -- compiled vs interpreted on plain traced graphs ---------------------------


def test_compiled_program_matches_interpreter():
    inputs = [ops.tensor([2.0, 3.0]), ops.tensor([4.0, 5.0])]
    interpreted = ScriptedProgram(_graph(), executor="interpret")
    compiled = ScriptedProgram(_graph(), executor="compiled")
    assert not interpreted.uses_codegen
    assert compiled.uses_codegen
    assert compiled.compiled_source is not None
    a = interpreted.run(inputs)[0].numpy()
    b = compiled.run(inputs)[0].numpy()
    np.testing.assert_array_equal(a, b)


def test_auto_uses_codegen_when_supported():
    program = ScriptedProgram(_graph(), executor="auto")
    assert program.uses_codegen
    assert program.fallback_reason is None


def test_compiled_fused_graph_matches_interpreter():
    graph = _fused_graph()
    compiled = ScriptedProgram(graph, executor="compiled")
    interpreted = ScriptedProgram(graph.clone(), executor="interpret")
    x = [ops.tensor([0.5, 1.5, -2.0])]
    np.testing.assert_array_equal(compiled.run(x)[0].numpy(),
                                  interpreted.run(x)[0].numpy())


# -- fallback triggers --------------------------------------------------------


def test_per_node_overhead_forces_interpreter():
    # The ONNX/WASM backends *model* an interpreter-loop burn per node;
    # generated straight-line code would not pay it, so codegen must refuse.
    reason = codegen.unsupported_reason(_graph(), per_node_overhead_s=1e-6)
    assert "overhead" in reason
    auto = ScriptedProgram(_graph(), per_node_overhead_s=1e-6,
                           executor="auto")
    assert not auto.uses_codegen
    assert "overhead" in auto.fallback_reason
    with pytest.raises(CodegenError, match="overhead"):
        ScriptedProgram(_graph(), per_node_overhead_s=1e-6,
                        executor="compiled")


def test_unknown_op_forces_interpreter():
    graph = _graph()
    graph.nodes[0].op = "frobnicate"
    assert "frobnicate" in codegen.unsupported_reason(graph)
    with pytest.raises(CodegenError, match="frobnicate"):
        codegen.compile_graph(graph)


def test_unknown_fused_step_forces_interpreter():
    graph = _fused_graph()
    fused = next(n for n in graph.nodes if n.op == "fused_kernel")
    fused.attrs["steps"][0]["op"] = "frobnicate"
    reason = codegen.unsupported_reason(graph)
    assert reason.startswith("fused step:") and "frobnicate" in reason
    with pytest.raises(CodegenError, match="fused step"):
        codegen.compile_graph(graph)


def test_unportable_attrs_force_interpreter():
    graph = _graph()
    graph.nodes[0].attrs["hook"] = object()   # does not survive the JSON IR
    assert "portable" in codegen.unsupported_reason(graph)
    with pytest.raises(CodegenError, match="portable"):
        codegen.compile_graph(graph)
    auto = ScriptedProgram(graph, executor="auto")
    assert not auto.uses_codegen and "portable" in auto.fallback_reason
    # ...and the fallback still executes the graph (attrs are ignored by the
    # kernel), so auto mode degrades without changing results.
    out = auto.run([ops.tensor([2.0, 3.0]), ops.tensor([4.0, 5.0])])
    assert out[0].numpy() == pytest.approx(24.0)


def test_numpy_scalar_attrs_are_portable():
    assert codegen._attrs_are_portable({"q": np.float64(24.0),
                                        "n": np.int64(3),
                                        "b": np.bool_(True)})
    assert not codegen._attrs_are_portable({"fn": lambda: None})


# -- parameter rebinding through the compiled serving path --------------------


@pytest.fixture
def prepared_pair(toy_session):
    """The same parameterized query prepared under both executors."""
    sql = """select customer, sum(price * quantity) as spend
             from orders join items on items.order_id = orders.order_id
             where quantity < :q group by customer order by customer"""

    def prepare(executor):
        options = ExecutionOptions(backend="torchscript", device="cpu",
                                   executor=executor)
        return toy_session.prepare(sql, options=options)

    return prepare("interpret"), prepare("compiled")


def test_compiled_rebinding_matches_interpreter(prepared_pair):
    interpreted, compiled = prepared_pair
    # Bindings sweep selectivity down to empty and back up: the single
    # compiled function must serve every intermediate shape.
    bindings = [{"q": 10}, {"q": 2}, {"q": 0}, {"q": 7}]
    interp_results = interpreted.execute_many(bindings)
    compiled_results = compiled.execute_many(bindings)
    assert all(r.executor_mode == "interpreted" for r in interp_results)
    assert all(r.executor_mode == "compiled" for r in compiled_results)
    for binding, left, right in zip(bindings, interp_results,
                                    compiled_results):
        tl, tr = left.table.decoded(), right.table.decoded()
        assert tl.column_names == tr.column_names
        for name in tl.column_names:
            np.testing.assert_array_equal(
                tl.column(name).tensor.data, tr.column(name).tensor.data,
                err_msg=f"binding {binding}, column {name}")


def test_compiled_rebind_to_empty_and_back(prepared_pair):
    _, compiled = prepared_pair
    full = compiled.bind(q=10).execute()
    empty = compiled.bind(q=0).execute()
    again = compiled.bind(q=10).execute()
    assert empty.table.num_rows == 0
    assert full.table.num_rows > 0
    np.testing.assert_array_equal(
        full.table.decoded().column("spend").tensor.data,
        again.table.decoded().column("spend").tensor.data)
    # One trace served every binding — rebinding never recompiled.
    assert compiled.compiled.executor.compile_count == 1


# -- profile-event parity -----------------------------------------------------


def _event_key(event):
    # Everything except the wall-clock fields, which legitimately differ.
    return (event.op, event.input_bytes, event.output_bytes, event.device,
            event.scope, event.lane)


def test_profiled_compiled_run_records_identical_events():
    graph = _fused_graph()
    compiled = ScriptedProgram(graph, executor="compiled")
    interpreted = ScriptedProgram(graph.clone(), executor="interpret")
    x = [ops.tensor([1.0, 2.0, 3.0, 4.0])]
    with Profiler() as interp_prof:
        interpreted.run(x, device="cuda")
    with Profiler() as compiled_prof:
        compiled.run(x, device="cuda")
    assert len(interp_prof.events) > 0
    assert ([_event_key(e) for e in interp_prof.events]
            == [_event_key(e) for e in compiled_prof.events])


def test_session_profile_events_match_across_executors(toy_session):
    sql = """select region, sum(price) as total from items
             join orders on items.order_id = orders.order_id
             group by region order by total desc"""
    profiles = {}
    for mode in ("interpret", "compiled"):
        options = ExecutionOptions(backend="torchscript", device="cuda",
                                   executor=mode)
        result = toy_session.compile(sql, options=options).execute(profile=True)
        assert result.executor_mode == ("compiled" if mode == "compiled"
                                        else "interpreted")
        profiles[mode] = result
    interp, compiled = profiles["interpret"], profiles["compiled"]
    assert ([_event_key(e) for e in interp.profile.events]
            == [_event_key(e) for e in compiled.profile.events])
    # Identical events mean identical simulated accounting.
    assert interp.reported_s == compiled.reported_s
