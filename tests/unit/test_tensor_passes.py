"""Unit tests for graph optimization passes."""

import numpy as np

from repro.tensor import GraphInterpreter, ops, passes, trace


def _run(graph, *arrays):
    return GraphInterpreter(graph).run([ops.tensor(a) for a in arrays])


def test_dead_code_elimination_removes_unused_nodes():
    def fn(x):
        ops.mul(x, 100.0)        # dead
        return ops.add(x, 1.0)

    graph = trace(fn, [ops.tensor([1.0])])
    assert len(graph.nodes) == 2
    passes.dead_code_elimination(graph)
    assert [n.op for n in graph.nodes] == ["add"]
    np.testing.assert_allclose(_run(graph, [5.0])[0].numpy(), [6.0])


def test_constant_folding_evaluates_constant_subgraphs():
    def fn(x):
        constant = ops.mul(ops.tensor([2.0, 2.0]), ops.tensor([3.0, 3.0]))
        return ops.add(x, constant)

    graph = trace(fn, [ops.tensor([1.0, 1.0])])
    passes.constant_folding(graph)
    assert [n.op for n in graph.nodes] == ["add"]
    np.testing.assert_allclose(_run(graph, [1.0, 2.0])[0].numpy(), [7.0, 8.0])


def test_cse_merges_identical_subexpressions():
    def fn(x):
        return ops.add(ops.mul(x, 2.0), ops.mul(x, 2.0))

    graph = trace(fn, [ops.tensor([1.0])])
    assert sum(1 for n in graph.nodes if n.op == "mul") == 2
    passes.common_subexpression_elimination(graph)
    passes.dead_code_elimination(graph)
    assert sum(1 for n in graph.nodes if n.op == "mul") == 1
    np.testing.assert_allclose(_run(graph, [3.0])[0].numpy(), [12.0])


def test_peephole_collapses_cast_chains():
    def fn(x):
        return ops.cast(ops.cast(x, "float32"), "int64")

    graph = trace(fn, [ops.tensor([1.9])])
    passes.peephole(graph)
    passes.dead_code_elimination(graph)
    assert sum(1 for n in graph.nodes if n.op == "cast") == 1
    assert _run(graph, [2.9])[0].tolist() == [2]


def test_peephole_removes_noop_cast():
    def fn(x):
        return ops.add(ops.cast(x, "float64"), 1.0)

    graph = trace(fn, [ops.tensor([1.0])])
    passes.optimize(graph)
    assert all(n.op != "cast" for n in graph.nodes)
    np.testing.assert_allclose(_run(graph, [1.0])[0].numpy(), [2.0])


def test_optimize_preserves_results_on_composite_program():
    def fn(x, y):
        mask = ops.logical_and(x > 1.0, x > 1.0)   # duplicate comparison (CSE)
        kept = ops.boolean_mask(y, mask)
        return ops.sum_(ops.mul(kept, ops.add(ops.tensor(1.0), ops.tensor(1.0))))

    example = [ops.tensor([0.5, 2.0, 3.0]), ops.tensor([10.0, 20.0, 30.0])]
    graph = trace(fn, example)
    expected = GraphInterpreter(graph.clone()).run(example)[0].item()
    optimized = passes.optimize(graph)
    assert GraphInterpreter(optimized).run(example)[0].item() == expected
    assert len(optimized.nodes) < 8


def test_impure_ops_not_folded_or_merged():
    def fn(x):
        a = ops.to_device(x, "cuda")
        b = ops.to_device(x, "cuda")
        return ops.add(a, b)

    graph = trace(fn, [ops.tensor([1.0])])
    passes.optimize(graph)
    assert sum(1 for n in graph.nodes if n.op == "to_device") == 2
