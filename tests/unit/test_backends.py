"""Unit tests for backend specs and device cost models."""

import pytest

from repro.backends import (
    BACKENDS,
    BackendSpec,
    CPUDevice,
    SimulatedGPU,
    SimulatedWASM,
    get_backend,
    get_device_model,
)
from repro.errors import ExecutionError
from repro.tensor import Profiler, ops


def _profile_with_ops(n_ops: int = 3, size: int = 1000) -> Profiler:
    with Profiler() as profiler:
        t = ops.tensor([1.0] * size)
        for _ in range(n_ops):
            t = ops.add(t, 1.0)
    return profiler


def test_backend_registry_contents():
    assert {"pytorch", "torchscript", "onnx", "torchscript-noopt"} <= set(BACKENDS)
    assert get_backend("pytorch").strategy == "eager"
    assert get_backend("torchscript").strategy == "graph"
    assert get_backend("onnx").serialize is True
    assert get_backend("torchscript-noopt").optimize_graph is False
    with pytest.raises(ExecutionError):
        get_backend("tvm")


def test_backend_spec_rejects_unknown_strategy():
    with pytest.raises(ValueError):
        BackendSpec(name="x", strategy="interpreted")


def test_device_model_selection():
    assert isinstance(get_device_model("cpu"), CPUDevice)
    assert isinstance(get_device_model("cuda"), SimulatedGPU)
    assert isinstance(get_device_model("wasm"), SimulatedWASM)


def test_cpu_reports_measured_time():
    model = CPUDevice()
    assert model.report_time(0.123, None) == 0.123
    assert model.describe()["simulated"] is False


def test_gpu_cost_model_is_bandwidth_and_launch_bound():
    model = SimulatedGPU(hbm_bandwidth_gbs=500, pcie_bandwidth_gbs=16,
                         kernel_launch_overhead_s=5e-6)
    profile = _profile_with_ops(n_ops=4)
    reported = model.report_time(measured_s=1.0, profile=profile)
    # Tiny kernels are launch-overhead bound: ~4 launches of 5us each.
    assert 4 * 5e-6 <= reported < 1e-3
    # Without a profile the fallback speedup is applied.
    assert model.report_time(1.0, None) == pytest.approx(1.0 / model.compute_speedup)


def test_gpu_cost_model_charges_transfers():
    model = SimulatedGPU()
    with Profiler() as profile:
        ops.to_device(ops.tensor([1.0] * 1_000_000), "cuda")
    with_transfer = model.report_time(0.0, profile)
    assert with_transfer > 1_000_000 * 8 / (model.pcie_bandwidth_gbs * 1e9)


def test_gpu_larger_scans_scale_with_bytes():
    model = SimulatedGPU(kernel_launch_overhead_s=0.0)
    small = Profiler()
    small.record("mul", 0.0, 8_000, 8_000, ops.tensor([1.0]).device)
    large = Profiler()
    large.record("mul", 0.0, 8_000_000, 8_000_000, ops.tensor([1.0]).device)
    assert model.report_time(0.0, large) > 100 * model.report_time(0.0, small)


def test_wasm_cost_model_slowdown_and_dispatch():
    model = SimulatedWASM(slowdown=6.0, per_op_overhead_s=1e-5)
    profile = _profile_with_ops(n_ops=10)
    reported = model.report_time(measured_s=0.01, profile=profile)
    assert reported >= 0.06  # slowdown applied
    assert reported >= 0.06 + 10 * 1e-5 - 1e-9  # dispatch overhead added
    assert model.describe()["simulated"] is True
