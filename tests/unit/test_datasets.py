"""Unit tests for the dataset generators (TPC-H, Amazon reviews, Iris)."""

import numpy as np

from repro.datasets import amazon_reviews, iris, tpch
from repro.datasets.tpch import schema


def test_tpch_tables_and_columns_present():
    tables = tpch.generate_tables(scale_factor=0.001, seed=3)
    assert set(tables) == set(schema.TABLE_NAMES)
    for name, frame in tables.items():
        assert frame.columns == schema.TABLE_COLUMNS[name]
        assert frame.num_rows > 0


def test_tpch_scaling_and_determinism():
    small = tpch.generate_tables(scale_factor=0.002, seed=9)
    large = tpch.generate_tables(scale_factor=0.004, seed=9)
    assert large["orders"].num_rows == 2 * small["orders"].num_rows
    assert large["part"].num_rows == 2 * small["part"].num_rows
    again = tpch.generate_tables(scale_factor=0.002, seed=9)
    assert np.array_equal(small["lineitem"]["l_extendedprice"],
                          again["lineitem"]["l_extendedprice"])
    assert small["nation"].num_rows == 25 and small["region"].num_rows == 5


def test_tpch_referential_integrity_and_value_rules():
    tables = tpch.generate_tables(scale_factor=0.002, seed=5)
    lineitem, orders = tables["lineitem"], tables["orders"]
    part, partsupp, customer = tables["part"], tables["partsupp"], tables["customer"]
    assert set(lineitem["l_orderkey"]) <= set(orders["o_orderkey"])
    assert set(lineitem["l_partkey"]) <= set(part["p_partkey"])
    assert set(orders["o_custkey"]) <= set(customer["c_custkey"])
    # every (l_partkey, l_suppkey) pair exists in partsupp (dbgen invariant)
    ps_pairs = set(zip(partsupp["ps_partkey"].tolist(),
                       partsupp["ps_suppkey"].tolist()))
    li_pairs = set(zip(lineitem["l_partkey"].tolist(), lineitem["l_suppkey"].tolist()))
    assert li_pairs <= ps_pairs
    # ship/commit/receipt date ordering
    assert (lineitem["l_receiptdate"] > lineitem["l_shipdate"]).all()
    assert (lineitem["l_discount"] >= 0).all() and (lineitem["l_discount"] <= 0.10).all()
    # one third of customers never order (needed by Q13/Q22)
    assert len(set(customer["c_custkey"]) - set(orders["o_custkey"])) > 0
    # order status values
    assert set(orders["o_orderstatus"]) <= {"F", "O", "P"}


def test_tpch_vocabularies_support_query_predicates():
    tables = tpch.generate_tables(scale_factor=0.002, seed=5)
    part, lineitem = tables["part"], tables["lineitem"]
    assert any(t.startswith("PROMO") for t in part["p_type"])        # Q14
    assert any("BRASS" in t for t in part["p_type"])                 # Q2
    assert any(b == "Brand#23" for b in part["p_brand"])             # Q17
    assert set(lineitem["l_shipmode"]) <= set(schema.SHIP_MODES)     # Q12
    assert any(m in ("MAIL", "SHIP") for m in lineitem["l_shipmode"])
    assert set(lineitem["l_returnflag"]) <= {"A", "N", "R"}          # Q1/Q10


def test_tpch_query_text_access():
    assert len(tpch.ALL_QUERY_IDS) == 22
    q11 = tpch.query(11, scale_factor=0.01)
    assert "0.01" in q11 or "0.0" in q11
    assert "{q11_fraction}" not in q11
    q6 = tpch.query(6)
    assert "l_discount between" in q6
    import pytest

    with pytest.raises(KeyError):
        tpch.query(23)


def test_amazon_reviews_generator_properties():
    reviews = amazon_reviews.generate_reviews(num_reviews=500, seed=2)
    assert reviews.num_rows == 500
    assert set(reviews["brand"]) <= set(amazon_reviews.BRANDS)
    assert reviews["rating"].min() >= 1 and reviews["rating"].max() <= 5
    positive = reviews["rating"] >= 4
    texts = reviews["text"]
    has_positive_word = np.array(
        [any(w in t for w in amazon_reviews.POSITIVE_WORDS) for t in texts])
    # sentiment vocabulary correlates with the rating
    assert has_positive_word[positive].mean() > has_positive_word[~positive].mean()
    train_x, train_y, test_x, test_y = amazon_reviews.training_split(reviews)
    assert len(train_x) + len(test_x) == 500
    assert set(np.unique(train_y)) <= {0, 1}


def test_iris_generator_properties():
    table = iris.generate_iris(samples_per_species=30, seed=4)
    assert table.num_rows == 90
    assert set(table["species"]) == set(iris.SPECIES)
    X, y = iris.regression_arrays(table)
    assert X.shape == (90, 3) and y.shape == (90,)
    # species clusters are ordered by petal size (as in the real data)
    petal = table["petal_length"]
    species = table["species"]
    assert petal[species == "setosa"].mean() < petal[species == "virginica"].mean()
    again = iris.generate_iris(samples_per_species=30, seed=4)
    assert table.equals(again)
