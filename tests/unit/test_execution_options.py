"""Unit tests for ExecutionOptions and the session entry-point signatures."""

import pytest

from repro import DataFrame, ExecutionOptions, TQPSession
from repro.errors import ExecutionError

import numpy as np


@pytest.fixture
def session():
    s = TQPSession()
    s.register("t", DataFrame({"a": np.array([1.0, 2.0, 3.0])}))
    return s


def test_resolved_fills_session_defaults():
    options = ExecutionOptions().resolved("torchscript", "cuda", 4)
    assert options.backend == "torchscript"
    assert options.device.kind == "cuda"
    assert options.parallelism == 4
    assert options.optimize and options.use_cache
    assert not options.auto_parameterize


def test_resolved_keeps_explicit_fields():
    options = ExecutionOptions(backend="onnx", device="wasm", parallelism=2)
    resolved = options.resolved("pytorch", "cpu", 1)
    assert resolved.backend == "onnx"
    assert resolved.device.kind == "wasm"
    assert resolved.parallelism == 2


def test_cache_key_covers_the_compile_knobs():
    a = ExecutionOptions(backend="torchscript").resolved("pytorch", "cpu")
    b = a.replace(optimize=False)
    c = a.replace(parallelism=4)
    d = a.replace(executor="interpret")
    assert len({a.cache_key(), b.cache_key(), c.cache_key(), d.cache_key()}) == 4


def test_executor_mode_is_validated():
    with pytest.raises(ValueError):
        ExecutionOptions(executor="jit")
    assert ExecutionOptions(executor="compiled").executor == "compiled"
    assert ExecutionOptions().executor == "auto"


def test_legacy_kwargs_are_gone(session):
    # The PR-3 deprecation shim was removed: the old spellings now fail
    # loudly instead of warning.
    with pytest.raises(TypeError):
        session.compile("select sum(a) as s from t", **{"backend": "torchscript"})
    with pytest.raises(TypeError):
        session.sql("select sum(a) as s from t", **{"device": "cuda"})
    with pytest.raises(TypeError):
        session.prepare("select sum(a) as s from t", **{"parallelism": 2})


def test_session_compile_accepts_options_object(session):
    compiled = session.compile("select sum(a) as s from t",
                               options=ExecutionOptions(backend="torchscript"))
    assert compiled.executor.backend.name == "torchscript"
    assert compiled.options.backend == "torchscript"
    assert compiled.run().to_dict() == {"s": [6.0]}


def test_equal_options_share_one_cache_entry(session):
    a = session.compile("select sum(a) as s from t",
                        options=ExecutionOptions(backend="torchscript"))
    b = session.compile("select sum(a) as s from t",
                        options=ExecutionOptions(backend="torchscript"))
    assert a is b


def test_executor_mode_splits_the_cache_entry(session):
    a = session.compile("select sum(a) as s from t",
                        options=ExecutionOptions(backend="torchscript",
                                                 executor="interpret"))
    b = session.compile("select sum(a) as s from t",
                        options=ExecutionOptions(backend="torchscript",
                                                 executor="compiled"))
    assert a is not b


def test_session_default_options():
    s = TQPSession(default_options=ExecutionOptions(backend="torchscript",
                                                    device="cuda",
                                                    parallelism=2))
    assert s.default_backend == "torchscript"
    assert s.default_device.kind == "cuda"
    assert s.default_parallelism == 2


def test_unknown_backend_still_rejected(session):
    with pytest.raises(ExecutionError):
        session.compile("select sum(a) as s from t",
                        options=ExecutionOptions(backend="nope"))
