"""Unit tests for the from-scratch ML models."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.ml.models import (
    BagOfWordsVectorizer,
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    GradientBoostingClassifier,
    GradientBoostingRegressor,
    LinearRegression,
    LogisticRegression,
    MLPClassifier,
    Pipeline,
    RandomForestClassifier,
    RandomForestRegressor,
    StandardScaler,
)


def _linear_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 3))
    y = 2.0 * X[:, 0] - 1.0 * X[:, 1] + 0.5 * X[:, 2] + 3.0
    return X, y


def _classification_data(n=300, seed=1):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 2))
    y = (X[:, 0] + X[:, 1] > 0).astype(np.int64)
    return X, y


def test_linear_regression_recovers_coefficients():
    X, y = _linear_data()
    model = LinearRegression().fit(X, y)
    np.testing.assert_allclose(model.coef_, [2.0, -1.0, 0.5], atol=1e-6)
    assert model.intercept_ == pytest.approx(3.0, abs=1e-6)
    np.testing.assert_allclose(model.predict(X), y, atol=1e-6)


def test_linear_regression_requires_fit():
    with pytest.raises(ModelError):
        LinearRegression().predict(np.zeros((2, 3)))


def test_logistic_regression_learns_separable_data():
    X, y = _classification_data()
    model = LogisticRegression(epochs=200).fit(X, y)
    assert (model.predict(X) == y).mean() > 0.95
    probs = model.predict_proba(X)
    assert probs.shape == (len(y), 2)
    np.testing.assert_allclose(probs.sum(axis=1), 1.0)


def test_decision_tree_classifier_and_regressor():
    X, y = _classification_data()
    clf = DecisionTreeClassifier(max_depth=4).fit(X, y)
    assert (clf.predict(X) == y).mean() > 0.9
    Xr, yr = _linear_data()
    reg = DecisionTreeRegressor(max_depth=5).fit(Xr, yr)
    assert np.abs(reg.predict(Xr) - yr).mean() < np.abs(yr - yr.mean()).mean()


def test_decision_tree_handles_constant_target():
    X = np.array([[1.0], [2.0], [3.0]])
    y = np.array([5.0, 5.0, 5.0])
    tree = DecisionTreeRegressor().fit(X, y)
    assert tree.root_.is_leaf
    np.testing.assert_allclose(tree.predict(X), [5.0, 5.0, 5.0])


def test_random_forest_beats_chance_and_requires_fit():
    X, y = _classification_data()
    forest = RandomForestClassifier(n_estimators=7, max_depth=3).fit(X, y)
    assert (forest.predict(X) == y).mean() > 0.9
    assert forest.predict_proba(X).shape == (len(y), 2)
    with pytest.raises(ModelError):
        RandomForestClassifier().predict(X)
    Xr, yr = _linear_data()
    reg = RandomForestRegressor(n_estimators=5, max_depth=4).fit(Xr, yr)
    assert np.abs(reg.predict(Xr) - yr).mean() < np.abs(yr - yr.mean()).mean()


def test_gradient_boosting_regressor_improves_with_rounds():
    X, y = _linear_data()
    small = GradientBoostingRegressor(n_estimators=2, max_depth=2).fit(X, y)
    large = GradientBoostingRegressor(n_estimators=30, max_depth=2).fit(X, y)
    assert np.abs(large.predict(X) - y).mean() < np.abs(small.predict(X) - y).mean()


def test_gradient_boosting_classifier():
    X, y = _classification_data()
    model = GradientBoostingClassifier(n_estimators=15, max_depth=2).fit(X, y)
    assert (model.predict(X) == y).mean() > 0.9
    assert model.predict_proba(X).shape == (len(y), 2)


def test_mlp_classifier_learns_nonlinear_boundary():
    rng = np.random.default_rng(3)
    X = rng.normal(size=(400, 2))
    y = ((X[:, 0] ** 2 + X[:, 1] ** 2) < 1.0).astype(np.int64)
    model = MLPClassifier(hidden_size=16, epochs=150, random_state=0).fit(X, y)
    assert (model.predict(X) == y).mean() > 0.85
    with pytest.raises(ModelError):
        MLPClassifier().decision_function(X)


def test_standard_scaler():
    X = np.array([[1.0, 10.0], [3.0, 10.0], [5.0, 10.0]])
    scaler = StandardScaler().fit(X)
    transformed = scaler.transform(X)
    np.testing.assert_allclose(transformed.mean(axis=0), [0.0, 0.0], atol=1e-12)
    # zero-variance column is left unscaled rather than dividing by zero
    assert np.isfinite(transformed).all()
    with pytest.raises(ModelError):
        StandardScaler().transform(X)


def test_bag_of_words_vectorizer_fixed_and_learned_vocabulary():
    fixed = BagOfWordsVectorizer(vocabulary=["great", "bad"])
    out = fixed.transform(["a great thing", "so bad", "neutral"])
    np.testing.assert_array_equal(out, [[1, 0], [0, 1], [0, 0]])
    learned = BagOfWordsVectorizer(max_features=3).fit(
        ["alpha beta", "alpha gamma", "alpha beta gamma delta"])
    assert len(learned.vocabulary) == 3 and "alpha" in learned.vocabulary
    with pytest.raises(ModelError):
        BagOfWordsVectorizer().transform(["x"])


def test_pipeline_composition():
    X, y = _classification_data()
    pipeline = Pipeline([
        ("scaler", StandardScaler()),
        ("clf", LogisticRegression(epochs=100)),
    ]).fit(X, y)
    assert (pipeline.predict(X) == y).mean() > 0.9
    assert pipeline.named_steps["scaler"].mean_ is not None
    with pytest.raises(ModelError):
        Pipeline([])
