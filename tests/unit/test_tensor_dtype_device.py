"""Unit tests for dtypes and devices."""

import numpy as np
import pytest

from repro.errors import DeviceError, DTypeError
from repro.tensor import CPU, CUDA, Device, dtype as dtypes, ops, parse_device


def test_dtype_lookup_by_name_and_numpy():
    assert dtypes.by_name("float32") is dtypes.float32
    assert dtypes.from_numpy(np.dtype(np.int64)) is dtypes.int64
    assert dtypes.from_numpy(np.int16) is dtypes.int64  # promoted
    assert dtypes.from_numpy(np.float16) is dtypes.float64  # promoted
    with pytest.raises(DTypeError):
        dtypes.by_name("decimal")
    with pytest.raises(DTypeError):
        dtypes.from_numpy(np.dtype("U4"))


def test_dtype_properties():
    assert dtypes.float64.is_floating and dtypes.float64.is_numeric
    assert dtypes.int32.is_integer and not dtypes.int32.is_floating
    assert not dtypes.bool_.is_numeric
    assert dtypes.int64.itemsize == 8


def test_result_type_promotion():
    assert dtypes.result_type(dtypes.int64, dtypes.float32) is dtypes.float64
    assert dtypes.result_type(dtypes.int32, dtypes.int64) is dtypes.int64
    with pytest.raises(DTypeError):
        dtypes.result_type()


def test_parse_device():
    assert parse_device(None) == CPU
    assert parse_device("cpu") == CPU
    assert parse_device("cuda") == CUDA
    assert parse_device("cuda:1") == Device("cuda", 1)
    assert str(Device("cuda", 1)) == "cuda:1"
    assert parse_device(CUDA) is CUDA
    with pytest.raises(DeviceError):
        parse_device("tpu")
    with pytest.raises(DeviceError):
        Device("cuda", -1)
    with pytest.raises(DeviceError):
        parse_device("cuda:x")
    with pytest.raises(DeviceError):
        parse_device(42)


def test_device_simulation_flags():
    assert not CPU.is_simulated
    assert CUDA.is_simulated
    assert parse_device("wasm").is_simulated


def test_cross_device_operations_rejected():
    a = ops.tensor([1.0], device="cpu")
    b = ops.tensor([1.0], device="cuda")
    with pytest.raises(DeviceError):
        ops.add(a, b)


def test_to_device_round_trip():
    a = ops.tensor([1.0, 2.0])
    moved = a.to("cuda")
    assert str(moved.device) == "cuda:0"
    assert moved.to("cuda") is moved  # no-op move returns the same tensor
    np.testing.assert_array_equal(moved.numpy(), a.numpy())
