"""Unit tests for the columnar tensor data representation (paper §2.1)."""

import numpy as np
import pytest

from repro.core.columnar import (
    LogicalType,
    TensorColumn,
    TensorTable,
    date_literal_to_ns,
    decode_dates,
    decode_strings,
    encode_dates,
    encode_string_literal,
    encode_strings,
)
from repro.dataframe import DataFrame
from repro.errors import ExecutionError
from repro.tensor import ops


def test_string_encoding_shape_and_padding():
    codes = encode_strings(["hi", "teacup", ""])
    assert codes.shape == (3, 6)              # (n x m), m = max length
    assert codes.dtype == np.int32
    assert codes[0, 0] == ord("h") and codes[0, 2] == 0   # right-padded with 0
    np.testing.assert_array_equal(decode_strings(codes), ["hi", "teacup", ""])


def test_string_encoding_explicit_width_truncates():
    codes = encode_strings(["abcdef"], width=3)
    assert codes.shape == (1, 3)
    assert decode_strings(codes)[0] == "abc"
    literal = encode_string_literal("ab", width=4)
    assert literal.shape == (4,) and literal[2] == 0


def test_string_encoding_handles_none_and_unicode():
    codes = encode_strings([None, "café"])
    decoded = decode_strings(codes)
    assert decoded[0] == "" and decoded[1] == "café"


def test_date_encoding_is_epoch_nanoseconds():
    dates = np.array(["1970-01-02", "1994-01-01"], dtype="datetime64[D]")
    ns = encode_dates(dates)
    assert ns.dtype == np.int64
    assert ns[0] == 86_400_000_000_000
    np.testing.assert_array_equal(decode_dates(ns), dates)
    assert date_literal_to_ns("1970-01-02") == 86_400_000_000_000


def test_column_type_inference_from_numpy():
    assert TensorColumn.from_numpy(np.array([1, 2])).ltype == LogicalType.INT
    assert TensorColumn.from_numpy(np.array([1.0])).ltype == LogicalType.FLOAT
    assert TensorColumn.from_numpy(np.array([True])).ltype == LogicalType.BOOL
    assert TensorColumn.from_numpy(
        np.array(["1994-01-01"], dtype="datetime64[D]")).ltype == LogicalType.DATE
    string_col = TensorColumn.from_numpy(np.array(["ab", "c"], dtype=object))
    assert string_col.ltype == LogicalType.STRING
    assert string_col.tensor.ndim == 2 and string_col.string_width == 2


def test_column_shape_validation():
    with pytest.raises(ExecutionError):
        TensorColumn(ops.tensor([[1, 2]]), LogicalType.INT)      # numeric must be 1-d
    with pytest.raises(ExecutionError):
        TensorColumn(ops.tensor([1, 2]), LogicalType.STRING)      # strings must be 2-d


def test_column_gather_mask_and_validity():
    column = TensorColumn.from_numpy(np.array([10.0, 20.0, 30.0]))
    gathered = column.gather(ops.tensor([2, 0]))
    np.testing.assert_array_equal(gathered.to_numpy(), [30.0, 10.0])
    masked = column.mask(ops.tensor([True, False, True]))
    assert masked.num_rows == 2
    assert column.validity().tolist() == [True, True, True]


def test_column_null_round_trip():
    column = TensorColumn(ops.tensor([1.0, 2.0]), LogicalType.FLOAT,
                          valid=ops.tensor([True, False]))
    values = column.to_numpy()
    assert values[0] == 1.0 and values[1] is None


def test_table_round_trip_from_dataframe():
    frame = DataFrame({
        "k": np.array([1, 2, 3], dtype=np.int64),
        "v": np.array([0.5, 1.5, 2.5]),
        "s": np.array(["x", "yy", "zzz"], dtype=object),
        "d": np.array(["2020-05-01", "2021-06-02", "2022-07-03"],
                      dtype="datetime64[D]"),
    })
    table = TensorTable.from_dataframe(frame)
    assert table.num_rows == 3 and table.num_columns == 4
    assert table.column("s").ltype == LogicalType.STRING
    assert frame.equals(table.to_dataframe())


def test_table_select_rename_gather_mask():
    table = TensorTable.from_dataframe(DataFrame({
        "a": np.array([1, 2, 3], dtype=np.int64),
        "b": np.array(["p", "q", "r"], dtype=object),
    }))
    assert table.select(["b"]).column_names == ["b"]
    renamed = table.rename({"a": "x.a"})
    assert "x.a" in renamed and "b" in renamed
    gathered = table.gather(ops.tensor([1]))
    assert gathered.to_dataframe()["b"].tolist() == ["q"]
    masked = table.mask(ops.tensor([True, False, True]))
    assert masked.num_rows == 2
    with pytest.raises(ExecutionError):
        table.column("zzz")


def test_table_rejects_inconsistent_lengths():
    a = TensorColumn.from_numpy(np.array([1, 2]))
    b = TensorColumn.from_numpy(np.array([1, 2, 3]))
    with pytest.raises(ExecutionError):
        TensorTable({"a": a, "b": b})


def test_empty_table_properties():
    table = TensorTable()
    assert table.num_rows == 0 and table.num_columns == 0
    assert table.device.is_cpu
