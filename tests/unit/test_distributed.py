"""Shard-boundary edge cases for multi-device distributed execution.

Distribution must be invisible in the answers: every test here runs the same
query serially (``devices=1``) and distributed (``devices`` ∈ {2, 4}, hash
and range sharding) and requires identical results — including the corners
where per-shard inputs degenerate (empty shards, single-destination
shuffles, NULL join keys crossing an exchange) and across table
re-registration while a sharded plan is cached.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import DataFrame, ExecutionOptions, TQPSession
from repro.core.columnar import TensorTable
from repro.distributed import (
    SHARD_MIN_ROWS,
    ShardSpec,
    shard_bounds,
    shard_table,
)
from repro.errors import ExecutionError

#: Comfortably above the per-table distribution threshold.
N_FACTS = 3 * SHARD_MIN_ROWS
N_DIMS = SHARD_MIN_ROWS + 100


@pytest.fixture(scope="module")
def frames():
    rng = np.random.default_rng(20260808)
    facts = DataFrame({
        "fact_id": np.arange(N_FACTS, dtype=np.int64),
        "key": rng.integers(0, N_DIMS, size=N_FACTS).astype(np.int64),
        "val": np.round(rng.uniform(0.0, 100.0, size=N_FACTS), 2),
        "grp": rng.choice(["red", "green", "blue"], size=N_FACTS).astype(object),
    })
    dims = DataFrame({
        "key": np.arange(N_DIMS, dtype=np.int64),
        "name": rng.choice(["a", "b", "c", "d"], size=N_DIMS).astype(object),
    })
    return {"facts": facts, "dims": dims}


@pytest.fixture()
def session(frames):
    sess = TQPSession()
    for name, frame in frames.items():
        sess.register(name, frame)
    return sess


def run(sess, sql, devices=1, shard="hash"):
    return sess.sql(sql, options=ExecutionOptions(devices=devices,
                                                  shard=shard))


def assert_distribution_invisible(sess, sql, frames_match):
    reference = run(sess, sql)
    for devices in (2, 4):
        for shard in ("hash", "range"):
            frames_match(run(sess, sql, devices, shard), reference,
                         context=f"devices={devices}, shard={shard}")


# -- sharding primitives ------------------------------------------------------


def test_shard_bounds_cover_input_exactly():
    assert shard_bounds(10, 4) == [(0, 3), (3, 3), (6, 2), (8, 2)]
    assert shard_bounds(2, 4) == [(0, 1), (1, 1), (2, 0), (2, 0)]
    assert shard_bounds(0, 2) == [(0, 0), (0, 0)]


def test_shard_spec_validation():
    with pytest.raises(ExecutionError):
        ShardSpec(mode="diagonal", devices=2)
    with pytest.raises(ExecutionError):
        ShardSpec(mode="hash", devices=0)


@pytest.mark.parametrize("mode", ["hash", "range"])
def test_shard_table_partitions_every_row_once(frames, mode):
    table = TensorTable.from_dataframe(frames["facts"])
    sharded = shard_table(table, 4, mode=mode)
    assert len(sharded.shards) == 4
    assert sum(s.num_rows for s in sharded.shards) == table.num_rows
    ids = np.concatenate([s.column("fact_id").tensor.numpy()
                          for s in sharded.shards])
    assert sorted(ids.tolist()) == list(range(table.num_rows))


def test_hash_sharding_is_deterministic(frames):
    table = TensorTable.from_dataframe(frames["facts"])
    first = shard_table(table, 2, mode="hash")
    second = shard_table(table, 2, mode="hash")
    for left, right in zip(first.shards, second.shards):
        assert np.array_equal(left.column("fact_id").tensor.numpy(),
                              right.column("fact_id").tensor.numpy())


# -- empty shards -------------------------------------------------------------


def test_filter_emptying_some_shards(session, frames_match):
    # Range placement puts fact_id in contiguous blocks, so this predicate
    # leaves every shard but the first completely empty; hash placement
    # spreads the survivors.  Both must agree with the serial answer.
    sql = (f"SELECT grp, COUNT(*) AS n, SUM(val) AS total FROM facts "
           f"WHERE fact_id < {SHARD_MIN_ROWS // 2} "
           f"GROUP BY grp ORDER BY grp")
    assert_distribution_invisible(session, sql, frames_match)


def test_filter_emptying_every_shard(session, frames_match):
    sql = ("SELECT grp, COUNT(*) AS n FROM facts WHERE val < -1.0 "
           "GROUP BY grp")
    for devices in (1, 2, 4):
        assert run(session, sql, devices).num_rows == 0
    # A distributed join over universally-empty shards must also survive.
    sql = ("SELECT d.name, SUM(f.val) AS total FROM facts f "
           "JOIN dims d ON f.key = d.key WHERE f.val < -1.0 GROUP BY d.name")
    assert_distribution_invisible(session, sql, frames_match)


def test_join_with_one_side_emptied(session, frames_match):
    sql = (f"SELECT d.name, COUNT(*) AS n FROM facts f "
           f"JOIN dims d ON f.key = d.key "
           f"WHERE f.fact_id >= {N_FACTS - 10} GROUP BY d.name ORDER BY d.name")
    assert_distribution_invisible(session, sql, frames_match)


# -- skewed shuffles ----------------------------------------------------------


def test_all_rows_hash_to_one_destination(frames, frames_match):
    # A constant join key sends every row of both sides to the same shuffle
    # destination; the other shards' local joins see zero rows.
    rng = np.random.default_rng(3)
    skewed = DataFrame({
        "key": np.full(N_FACTS, 42, dtype=np.int64),
        "val": np.round(rng.uniform(0.0, 10.0, size=N_FACTS), 2),
    })
    lookup = DataFrame({
        "key": np.full(N_DIMS, 42, dtype=np.int64),
        "weight": np.arange(N_DIMS, dtype=np.int64) % 5,
    })
    sess = TQPSession()
    sess.register("skewed", skewed)
    sess.register("lookup", lookup)
    sql = ("SELECT l.weight, COUNT(*) AS n FROM skewed s "
           "JOIN lookup l ON s.key = l.key GROUP BY l.weight ORDER BY l.weight")
    assert_distribution_invisible(sess, sql, frames_match)


# -- NULL join keys crossing an exchange --------------------------------------


NULL_KEY_SQL = (
    "SELECT d.name, COUNT(*) AS n, SUM(f.val) AS total FROM "
    "(SELECT CASE WHEN key % 7 <> 0 THEN key END AS jk, val FROM facts) f "
    "JOIN dims d ON f.jk = d.key GROUP BY d.name ORDER BY d.name"
)


def test_null_join_keys_cross_exchange(session, frames_match):
    # CASE without ELSE makes every seventh key NULL *inside* the sharded
    # region, so NULL keys ride the shuffle exchange; the inner join must
    # drop them exactly as the serial plan does.
    assert_distribution_invisible(session, NULL_KEY_SQL, frames_match)


def test_null_join_keys_plan_stays_distributed(session):
    from repro.distributed import DistributedRenameOperator, ShuffleJoinOperator

    query = session.compile(NULL_KEY_SQL,
                            options=ExecutionOptions(devices=2))
    ops_seen = set()

    def walk(op):
        ops_seen.add(type(op))
        for child in op.children:
            walk(child)

    walk(query.operator_plan.root)
    assert ShuffleJoinOperator in ops_seen
    assert DistributedRenameOperator in ops_seen


def test_null_keys_survive_left_join_across_exchange(session, frames_match):
    # LEFT JOIN keeps the NULL-key probe rows; they hash to shard 0, cross
    # the exchange, match nothing, and must come back exactly once each.
    sql = (
        "SELECT f.grp, COUNT(*) AS rows, COUNT(d.name) AS matched FROM "
        "(SELECT CASE WHEN key % 7 <> 0 THEN key END AS jk, grp FROM facts) f "
        "LEFT JOIN dims d ON f.jk = d.key GROUP BY f.grp ORDER BY f.grp"
    )
    assert_distribution_invisible(session, sql, frames_match)


# -- re-registration while sharded --------------------------------------------


def test_reregister_while_sharded_serves_fresh_shards(session, frames):
    sql = "SELECT SUM(val) AS total FROM facts"
    options = ExecutionOptions(devices=2)
    before = session.sql(sql, options=options).to_dict()["total"][0]

    doubled = DataFrame({name: (np.asarray(frames["facts"][name]) * 2
                                if name == "val"
                                else np.asarray(frames["facts"][name]))
                         for name in frames["facts"].columns})
    session.register("facts", doubled)

    after = session.sql(sql, options=options).to_dict()["total"][0]
    assert after == pytest.approx(2 * before)
    # The generation flip must hold for every shard: per-shard sums of the
    # re-registered table must cover the new data exactly.
    roundtrip = session.sql(sql, options=ExecutionOptions(devices=4,
                                                          shard="range"))
    assert roundtrip.to_dict()["total"][0] == pytest.approx(2 * before)


def test_reregister_does_not_leak_between_shard_modes(session, frames,
                                                      frames_match):
    sql = ("SELECT grp, COUNT(*) AS n FROM facts GROUP BY grp ORDER BY grp")
    hash_first = run(session, sql, devices=2, shard="hash")
    range_first = run(session, sql, devices=2, shard="range")
    frames_match(range_first, hash_first, context="hash vs range")

    smaller = frames["facts"].head(SHARD_MIN_ROWS + 17)
    session.register("facts", smaller)
    reference = run(session, sql)
    frames_match(run(session, sql, devices=2, shard="hash"), reference,
                 context="hash after re-register")
    frames_match(run(session, sql, devices=2, shard="range"), reference,
                 context="range after re-register")


# -- shuffle vs broadcast cost crossover --------------------------------------
#
# Both-sides-sharded joins pick the exchange by estimated bytes moved:
# shuffling repartitions (N-1)/N of both inputs, broadcasting gathers and
# replicates the chosen side to every device.  Broadcasting the right side
# wins once the left outweighs it by more than the replication overhead
# (at N devices: N²·right < (N-1)·left); comparable sides keep the shuffle.


def _sharded_join_session(n_facts: int, n_dims: int) -> TQPSession:
    rng = np.random.default_rng(20260808)
    sess = TQPSession()
    sess.register("facts", DataFrame({
        "fact_id": np.arange(n_facts, dtype=np.int64),
        "key": rng.integers(0, n_dims, size=n_facts).astype(np.int64),
        "val": np.round(rng.uniform(0.0, 100.0, size=n_facts), 2),
    }))
    sess.register("dims", DataFrame({
        "key": np.arange(n_dims, dtype=np.int64),
        "name": rng.choice(["a", "b", "c"], size=n_dims).astype(object),
    }))
    return sess


_JOIN_SQL = ("SELECT d.name, SUM(f.val) AS tv FROM facts f "
             "JOIN dims d ON f.key = d.key GROUP BY d.name")


def _join_line(sess, sql, **options) -> str:
    compiled = sess.compile(sql, options=ExecutionOptions(shard="hash",
                                                          **options))
    lines = [line.strip()
             for line in compiled.operator_plan.root.pretty().splitlines()
             if "Join" in line]
    assert len(lines) == 1, lines
    return lines[0]


def test_sharded_join_crossover_flips_shuffle_to_broadcast(frames_match):
    # Far past the crossover: the dimension side is 32× smaller in rows (and
    # more in bytes), so replicating it moves far less than repartitioning
    # the fact side.
    lopsided = _sharded_join_session(32 * SHARD_MIN_ROWS, SHARD_MIN_ROWS)
    line = _join_line(lopsided, _JOIN_SQL, devices=2)
    assert line.startswith("BroadcastJoin"), line
    assert "broadcast=right" in line

    # Comparable sides (≈3:1, inside the N²·R vs (N-1)·L margin): shuffling
    # both is cheaper than replicating either.
    comparable = _sharded_join_session(3 * SHARD_MIN_ROWS,
                                       SHARD_MIN_ROWS + 100)
    assert _join_line(comparable, _JOIN_SQL, devices=2).startswith(
        "ShuffleJoin")

    # The decision must never show in the answers.
    for sess in (lopsided, comparable):
        reference = run(sess, _JOIN_SQL)
        frames_match(run(sess, _JOIN_SQL, devices=2), reference,
                     context="broadcast-vs-shuffle crossover")


def test_sharded_join_broadcasts_small_left_only_when_inner():
    sess = _sharded_join_session(SHARD_MIN_ROWS, 32 * SHARD_MIN_ROWS)
    # Inner join: the tiny left (build) side replicates.
    line = _join_line(sess, _JOIN_SQL, devices=2)
    assert line.startswith("BroadcastJoin"), line
    assert "broadcast=left" in line
    # LEFT OUTER join: broadcasting the preserved side would duplicate its
    # unmatched rows on every device, so the planner must keep the shuffle.
    outer = ("SELECT f.val, d.name FROM facts f "
             "LEFT JOIN dims d ON f.key = d.key")
    assert _join_line(sess, outer, devices=2).startswith("ShuffleJoin")
