"""Unit tests for the morsel-driven parallel execution layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro import DataFrame, TQPSession
from repro.backends.base import split_parallel
from repro.backends.cpu import CPUDevice
from repro.backends.gpu_sim import SimulatedGPU
from repro.core.columnar import (
    DEFAULT_MORSEL_ROWS,
    LogicalType,
    TensorColumn,
    TensorTable,
    morsel_bounds,
)
from repro.core.operators import PARALLEL_THRESHOLD_ROWS, MorselWorkerPool
from repro.core.operators.parallel import effective_morsel_rows
from repro.errors import CatalogError, ExecutionError
from repro.tensor import Profiler, current_lane, lane_scope, ops, passes, tracing
from repro import ExecutionOptions

N_ROWS = 3 * PARALLEL_THRESHOLD_ROWS  # comfortably above the parallel threshold


# -- data ---------------------------------------------------------------------


@pytest.fixture(scope="module")
def frames():
    rng = np.random.default_rng(4242)
    orders = DataFrame({
        "order_id": np.arange(N_ROWS, dtype=np.int64),
        "customer_id": rng.integers(0, 500, size=N_ROWS).astype(np.int64),
        "amount": np.round(rng.uniform(1.0, 500.0, size=N_ROWS), 2),
        "quantity": rng.integers(1, 50, size=N_ROWS).astype(np.int64),
        "segment": rng.choice(["web", "store", "phone"], size=N_ROWS).astype(object),
    })
    customers = DataFrame({
        "customer_id": np.arange(600, dtype=np.int64),
        "region": rng.choice(["EU", "US", "APAC"], size=600).astype(object),
    })
    return {"orders": orders, "customers": customers}


@pytest.fixture(scope="module")
def session(frames):
    sess = TQPSession()
    for name, frame in frames.items():
        sess.register(name, frame)
    return sess


# -- morsel partitioning (columnar layer) -------------------------------------


def test_morsel_bounds_cover_input_exactly():
    bounds = morsel_bounds(10_000, 4096)
    assert bounds == [(0, 4096), (4096, 4096), (8192, 1808)]
    assert morsel_bounds(0, 4096) == []
    assert morsel_bounds(1, 4096) == [(0, 1)]
    with pytest.raises(ExecutionError):
        morsel_bounds(10, 0)


def test_effective_morsel_rows_adapts_to_input():
    # Small inputs stay at the floor; large inputs split across the lanes.
    assert effective_morsel_rows(1_000, 2048, 4) == 2048
    assert effective_morsel_rows(1_000_000, 2048, 4) == 250_000


def test_table_slice_and_morsels_roundtrip(frames):
    table = TensorTable.from_dataframe(frames["orders"])
    piece = table.slice(100, 50)
    assert piece.num_rows == 50
    assert piece.column("order_id").tensor.numpy().tolist() == list(range(100, 150))
    # String columns keep their width; a full morsel sweep covers every row.
    total = sum(m.num_rows for m in table.morsels(DEFAULT_MORSEL_ROWS))
    assert total == table.num_rows


def test_slice_preserves_validity_mask(frames):
    table = TensorTable.from_dataframe(frames["orders"])
    column = table.column("amount")
    valid = ops.tensor([i % 2 == 0 for i in range(table.num_rows)], dtype="bool")
    masked = TensorColumn(column.tensor, column.ltype, valid)
    piece = masked.slice(0, 4)
    assert piece.valid is not None
    assert piece.valid.numpy().tolist() == [True, False, True, False]


# -- worker pool and lane annotations -----------------------------------------


def test_pool_assigns_lanes_round_robin():
    seen = []

    def task_factory(i):
        def task(lane):
            seen.append((i, lane, current_lane()))
            return TensorTable({})
        return task

    MorselWorkerPool(parallelism=3).run([task_factory(i) for i in range(7)])
    assert [(i, lane) for i, lane, _ in seen] == [
        (0, 0), (1, 1), (2, 2), (3, 0), (4, 1), (5, 2), (6, 0)]
    # Inside the pool each task observes its own lane via the thread-local.
    assert all(observed == lane for _, lane, observed in seen)
    assert current_lane() is None


def test_pool_thread_mode_returns_ordered_results():
    pool = MorselWorkerPool(parallelism=4, use_threads=True)
    results = pool.run([
        (lambda lane, i=i: TensorTable(
            {"v": TensorColumn(ops.tensor([float(i)]), LogicalType.FLOAT)}))
        for i in range(8)
    ])
    assert [t.column("v").tensor.numpy()[0] for t in results] == list(range(8))


def test_profiler_records_lanes_and_dispatch():
    with Profiler() as prof:
        with lane_scope(2):
            ops.add(ops.tensor([1.0, 2.0]), 1.0)
            ops.morsel_dispatch(ops.tensor([1.0]), lane=2, morsel=0)
        ops.add(ops.tensor([1.0]), 1.0)
    serial, lanes, dispatches = split_parallel(prof.events)
    assert len(serial) == 1 and set(lanes) == {2} and len(dispatches) == 1
    assert lanes[2][0].lane == 2


def test_lane_annotation_survives_trace_and_replay():
    def fn(t):
        with lane_scope(1):
            t = ops.morsel_dispatch(t, lane=1, morsel=0)
            t = ops.mul(t, 2.0)
        return ops.add(t, 1.0)

    example = ops.tensor([1.0, 2.0])
    graph = tracing.trace(fn, [example])
    lanes_in_graph = [n.attrs.get("lane") for n in graph.nodes]
    assert lanes_in_graph == [1, 1, None]
    # DCE keeps dispatch nodes alive; fusion never crosses a lane boundary.
    optimized = passes.optimize(graph.clone())
    assert "morsel_dispatch" in optimized.op_counts()

    from repro.tensor import GraphInterpreter

    with Profiler() as prof:
        out = GraphInterpreter(graph).run([ops.tensor([3.0, 4.0])])
    assert out[0].numpy().tolist() == [7.0, 9.0]
    _, lanes, dispatches = split_parallel(prof.events)
    assert set(lanes) == {1} and len(dispatches) == 1


# -- parallel operators match serial execution --------------------------------


PARALLEL_QUERIES = [
    "select order_id, amount * quantity as total from orders where amount > 250",
    "select segment, count(*) as n, sum(amount) as s, avg(amount) as m, "
    "min(quantity) as lo, max(quantity) as hi from orders group by segment",
    "select count(*) as n, sum(amount) as s, avg(quantity) as q from orders",
    "select region, sum(amount) as revenue from orders, customers "
    "where orders.customer_id = customers.customer_id group by region",
    "select order_id from orders where exists (select * from customers "
    "where customers.customer_id = orders.customer_id and region = 'EU') "
    "and amount > 400",
]


@pytest.mark.parametrize("sql", PARALLEL_QUERIES)
def test_parallel_matches_serial(session, frames_match, sql):
    serial = session.sql(sql, options=ExecutionOptions(parallelism=1))
    for parallelism in (2, 4, 7):
        frames_match(session.sql(sql, options=ExecutionOptions(parallelism=parallelism)), serial,
                     f"{sql} @ parallelism={parallelism}")


def test_parallel_nullable_aggregates_match_serial_and_oracle(session, frames,
                                                               frames_match):
    """Partial-then-merge must skip NULL inputs exactly like the serial path
    and the row-engine oracle (per-group valid counts, masked min/max)."""
    from repro.baselines import RowEngine
    from repro.frontend import sql_to_physical

    sql = ("select segment, avg(case when amount > 250 then amount end) as a, "
           "min(case when amount > 450 then amount end) as lo, "
           "max(case when amount > 450 then amount end) as hi, "
           "sum(case when amount > 250 then amount end) as s, "
           "count(case when amount > 250 then amount end) as c "
           "from orders group by segment order by segment")
    serial = session.sql(sql, options=ExecutionOptions(parallelism=1))
    frames_match(session.sql(sql, options=ExecutionOptions(parallelism=4)), serial, sql)
    oracle = RowEngine(frames).execute_to_dataframe(
        sql_to_physical(sql, session.catalog))
    frames_match(serial, oracle, sql)
    # A group where nothing contributes must be NULL, at every parallelism.
    sql = "select min(case when amount > 1e9 then amount end) as lo from orders"
    assert session.sql(sql, options=ExecutionOptions(parallelism=1)).to_dict() == {"lo": [None]}
    assert session.sql(sql, options=ExecutionOptions(parallelism=4)).to_dict() == {"lo": [None]}


def test_threaded_parallel_matches_serial(frames, frames_match):
    sess = TQPSession(default_parallelism=4, parallel_mode="threads")
    for name, frame in frames.items():
        sess.register(name, frame)
    sql = PARALLEL_QUERIES[0]
    serial = sess.sql(sql, options=ExecutionOptions(parallelism=1))
    frames_match(sess.sql(sql), serial, sql)


def test_partitioned_join_kinds_match_serial(session, frames_match):
    joins = [
        "select order_id, region from orders left outer join customers "
        "on orders.customer_id = customers.customer_id where amount > 450",
        "select order_id from orders where customer_id in "
        "(select customer_id from customers where region = 'US')",
    ]
    for sql in joins:
        frames_match(session.sql(sql, options=ExecutionOptions(parallelism=4)),
                     session.sql(sql, options=ExecutionOptions(parallelism=1)), sql)


# -- planner choices ----------------------------------------------------------


def test_planner_parallelizes_above_threshold_only(session):
    big = session.compile("select * from orders where amount > 10", options=ExecutionOptions(parallelism=4, use_cache=False))
    assert "MorselFilter(workers=4)" in big.operator_plan.root.pretty()
    small = session.compile("select * from customers where region = 'EU'", options=ExecutionOptions(parallelism=4, use_cache=False))
    plan = small.operator_plan.root.pretty()
    assert "Morsel" not in plan  # 600 rows is below the threshold
    serial = session.compile("select * from orders where amount > 10", options=ExecutionOptions(parallelism=1, use_cache=False))
    assert "Morsel" not in serial.operator_plan.root.pretty()


def test_planner_keeps_subqueries_and_distinct_serial(session):
    sql = ("select count(distinct customer_id) as n from orders "
           "where amount > 10")
    compiled = session.compile(sql, options=ExecutionOptions(parallelism=4, use_cache=False))
    plan = compiled.operator_plan.root.pretty()
    assert "ParallelHashAggregate" not in plan  # COUNT DISTINCT cannot merge
    assert "MorselFilter" in plan               # the filter still parallelizes
    sql = ("select order_id from orders where amount > "
           "(select avg(amount) from orders)")
    compiled = session.compile(sql, options=ExecutionOptions(parallelism=4, use_cache=False))
    assert "MorselFilter" not in compiled.operator_plan.root.pretty()


def test_plan_cache_keys_include_parallelism(session):
    sql = "select sum(amount) as s from orders"
    p1 = session.compile(sql, options=ExecutionOptions(parallelism=1))
    p4 = session.compile(sql, options=ExecutionOptions(parallelism=4))
    assert p1 is not p4
    assert session.compile(sql, options=ExecutionOptions(parallelism=4)) is p4
    assert p1.executor.parallelism == 1 and p4.executor.parallelism == 4


# -- executor input validation ------------------------------------------------


def test_prepare_inputs_validates_tables_and_columns(session):
    compiled = session.compile("select sum(amount) as s from orders", options=ExecutionOptions(use_cache=False))
    with pytest.raises(CatalogError, match="'orders'"):
        compiled.executor.prepare_inputs({})
    # Case-insensitive table matching, like the session catalog.
    upper = {"ORDERS": session.dataframe("orders")}
    assert "orders" in compiled.executor.prepare_inputs(upper)
    bad = {"orders": DataFrame({"order_id": np.arange(3, dtype=np.int64)})}
    with pytest.raises(ExecutionError, match="amount"):
        compiled.executor.prepare_inputs(bad)


# -- cost models --------------------------------------------------------------


def _synthetic_profile(lanes: int, events_per_lane: int, bytes_per_event: int,
                       elapsed_s: float = 1e-4) -> Profiler:
    prof = Profiler()
    device = ops.tensor([1.0]).device
    for lane in range(lanes):
        with lane_scope(lane):
            prof.record("morsel_dispatch", 0.0, 0, 0, device)
            for _ in range(events_per_lane):
                prof.record("mul", elapsed_s, bytes_per_event, bytes_per_event,
                            device)
    return prof


def test_gpu_model_charges_slowest_lane_plus_dispatch():
    model = SimulatedGPU()
    serial = Profiler()
    device = ops.tensor([1.0]).device
    for _ in range(4 * 3):
        serial.record("mul", 1e-4, 10_000_000, 10_000_000, device)
    parallel = _synthetic_profile(lanes=4, events_per_lane=3,
                                  bytes_per_event=10_000_000)
    t_serial = model.report_time(1.0, serial)
    t_parallel = model.report_time(1.0, parallel)
    # 4 concurrent lanes: ~4x faster, minus the per-morsel dispatch charge.
    assert t_parallel < t_serial / 3
    assert t_parallel >= t_serial / 4
    expected_lane = 3 * max(model.kernel_launch_overhead_s,
                            20_000_000 / (model.hbm_bandwidth_gbs * 1e9))
    assert t_parallel == pytest.approx(
        expected_lane + 4 * model.morsel_dispatch_overhead_s)


def test_cpu_model_reports_kernel_time_and_lanes():
    model = CPUDevice()
    assert model.report_time(0.5, None) == 0.5
    parallel = _synthetic_profile(lanes=4, events_per_lane=2,
                                  bytes_per_event=1000, elapsed_s=1e-3)
    reported = model.report_time(1.0, parallel)
    assert reported == pytest.approx(
        2e-3 + 4 * model.morsel_dispatch_overhead_s)


def test_dispatch_event_bytes_are_ignored():
    model = SimulatedGPU()
    prof = Profiler()
    device = ops.tensor([1.0]).device
    # A dispatch is an identity pass-through: huge byte counts, zero charge
    # beyond the fixed scheduling cost.
    prof.record("morsel_dispatch", 0.0, 10**12, 10**12, device)
    assert model.report_time(0.0, prof) == pytest.approx(
        model.morsel_dispatch_overhead_s)
