"""Unit tests for the row-at-a-time baseline engine."""

import numpy as np
import pytest

from repro.baselines import RowEngine, run_sql
from repro.dataframe import DataFrame
from repro.errors import ExecutionError
from repro.frontend import Catalog, sql_to_physical


@pytest.fixture
def tables():
    return {
        "emp": DataFrame({
            "emp_id": np.array([1, 2, 3, 4], dtype=np.int64),
            "dept": np.array(["eng", "eng", "ops", "hr"], dtype=object),
            "salary": np.array([100.0, 120.0, 90.0, 80.0]),
            "hired": np.array(["2020-01-01", "2021-06-15", "2019-03-01", "2022-11-30"],
                              dtype="datetime64[D]"),
        }),
        "dept": DataFrame({
            "dept": np.array(["eng", "ops"], dtype=object),
            "floor": np.array([3, 1], dtype=np.int64),
        }),
    }


def _run(sql, tables, models=None):
    return run_sql(sql, tables, models=models)


def test_scan_filter_project(tables):
    out = _run("select emp_id, salary * 2 as doubled from emp where salary >= 100",
               tables)
    assert out.to_dict() == {"emp_id": [1, 2], "doubled": [200.0, 240.0]}


def test_joins_inner_left_semi_anti(tables):
    inner = _run("select emp_id, floor from emp, dept where emp.dept = dept.dept "
                 "order by emp_id", tables)
    assert inner.to_dict()["floor"] == [3, 3, 1]
    left = _run("select emp_id, floor from emp left outer join dept "
                "on emp.dept = dept.dept order by emp_id", tables)
    assert left.to_dict()["floor"][3] is None  # int NULL survives as None
    semi = _run("select emp_id from emp where exists "
                "(select * from dept where dept.dept = emp.dept) order by emp_id",
                tables)
    assert semi.to_dict() == {"emp_id": [1, 2, 3]}
    anti = _run("select emp_id from emp where not exists "
                "(select * from dept where dept.dept = emp.dept)", tables)
    assert anti.to_dict() == {"emp_id": [4]}


def test_aggregation_and_having(tables):
    out = _run("select dept, count(*) as n, avg(salary) as mean from emp "
               "group by dept having count(*) > 1", tables)
    assert out.to_dict() == {"dept": ["eng"], "n": [2], "mean": [110.0]}


def test_order_limit_distinct_case_like(tables):
    out = _run("select distinct dept from emp order by dept limit 2", tables)
    assert out.to_dict() == {"dept": ["eng", "hr"]}
    out = _run("select emp_id, case when dept like 'e%' then 1 else 0 end as is_eng "
               "from emp order by emp_id", tables)
    assert out.to_dict()["is_eng"] == [1, 1, 0, 0]


def test_date_and_scalar_subquery(tables):
    out = _run("select emp_id from emp where hired >= date '2021-01-01' order by emp_id",
               tables)
    assert out.to_dict() == {"emp_id": [2, 4]}
    out = _run("select emp_id from emp where salary > (select avg(salary) from emp) "
               "order by emp_id", tables)
    assert out.to_dict() == {"emp_id": [1, 2]}
    out = _run("select emp_id from emp where dept in (select dept from dept) "
               "order by emp_id", tables)
    assert out.to_dict() == {"emp_id": [1, 2, 3]}


def test_extract_substring_functions(tables):
    out = _run("select emp_id, extract(year from hired) as y, "
               "substring(dept from 1 for 2) as prefix from emp order by emp_id",
               tables)
    assert out.to_dict()["y"] == [2020, 2021, 2019, 2022]
    assert out.to_dict()["prefix"] == ["en", "en", "op", "hr"]


def test_predict_uses_registered_row_model(tables):
    out = _run("select emp_id, predict('threshold', salary) as flag from emp "
               "order by emp_id", tables,
               models={"threshold": lambda values: float(values[0] > 95.0)})
    assert out.to_dict()["flag"] == [1.0, 1.0, 0.0, 0.0]


def test_unknown_table_and_model_errors(tables):
    engine = RowEngine(tables)
    catalog = Catalog()
    for name, frame in tables.items():
        catalog.register(name, frame)
    plan = sql_to_physical("select emp_id, predict('nope', salary) as p from emp",
                           catalog)
    with pytest.raises(ExecutionError):
        engine.execute(plan)
    with pytest.raises(ExecutionError):
        RowEngine({}).execute(sql_to_physical("select emp_id from emp", catalog))


def test_row_engine_matches_tqp_on_random_data():
    rng = np.random.default_rng(0)
    frame = DataFrame({
        "g": np.array(list("abcde"), dtype=object)[rng.integers(0, 5, 200)],
        "x": np.round(rng.normal(size=200), 3),
        "k": rng.integers(0, 20, 200).astype(np.int64),
    })
    sql = ("select g, count(*) as n, sum(x) as total, max(k) as top "
           "from data where x > -0.5 group by g order by g")
    baseline = _run(sql, {"data": frame})

    from repro import TQPSession

    session = TQPSession()
    session.register("data", frame)
    tqp = session.sql(sql)
    assert tqp.to_dict()["g"] == baseline.to_dict()["g"]
    assert tqp.to_dict()["n"] == baseline.to_dict()["n"]
    np.testing.assert_allclose(tqp["total"], baseline["total"], atol=1e-9)
    np.testing.assert_array_equal(tqp["top"], baseline["top"])
