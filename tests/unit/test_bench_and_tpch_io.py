"""Unit tests for the benchmark harness helpers and TPC-H .tbl I/O."""

import numpy as np

from repro.bench import figure_table, series_dict, time_rowengine, time_tqp, tpch_session
from repro.datasets import tpch
from repro.datasets.tpch.io import (
    cache_directory,
    cached_tables,
    load_tables,
    save_tables,
)


def test_tpch_session_is_cached():
    first, tables_a = tpch_session(scale_factor=0.001, seed=42)
    second, tables_b = tpch_session(scale_factor=0.001, seed=42)
    assert first is second and tables_a is tables_b
    assert set(tables_a) == set(tpch.TABLE_NAMES)


def test_time_tqp_and_rowengine_protocol():
    session, tables = tpch_session(scale_factor=0.001, seed=42)
    sql = tpch.query(6, 0.001)
    tqp = time_tqp(session, sql, backend="torchscript", device="cpu", runs=3, warmup=1)
    assert len(tqp.times_s) == 3 and tqp.median_s > 0
    assert tqp.system == "TQP-CPU" and not tqp.simulated
    gpu = time_tqp(session, sql, backend="torchscript", device="cuda", runs=2, warmup=0)
    assert gpu.simulated and gpu.system == "TQP-CUDA"
    baseline = time_rowengine(session, tables, sql, runs=1)
    assert baseline.result.num_rows == tqp.result.num_rows
    table = figure_table("Figure X", [tqp, gpu], baseline)
    assert "Figure X" in table and "simulated time" in table and "measured" in table
    series = series_dict([tqp, gpu, baseline])
    assert set(series) == {"TQP-CPU", "TQP-CUDA", baseline.system}


def test_tpch_tbl_round_trip(tmp_path):
    tables = tpch.generate_tables(scale_factor=0.001, seed=1)
    subset = {"region": tables["region"], "nation": tables["nation"],
              "supplier": tables["supplier"]}
    paths = save_tables(subset, tmp_path)
    assert all(path.exists() for path in paths.values())
    loaded = load_tables(tmp_path)
    assert set(loaded) == set(subset)
    assert loaded["nation"].columns == tables["nation"].columns
    np.testing.assert_array_equal(loaded["supplier"]["s_suppkey"],
                                  tables["supplier"]["s_suppkey"])
    np.testing.assert_allclose(loaded["supplier"]["s_acctbal"],
                               tables["supplier"]["s_acctbal"])
    assert loaded["nation"]["n_name"].tolist() == tables["nation"]["n_name"].tolist()


def test_cached_tables_round_trip_and_reuse(tmp_path):
    """First call generates and saves, second call loads — with frames
    identical to fresh generation (floats round-trip through repr)."""
    first = cached_tables(scale_factor=0.001, seed=3, root=tmp_path)
    directory = cache_directory(0.001, 3, root=tmp_path)
    assert directory.is_dir()
    assert (directory / "lineitem.tbl").exists()
    stamp = (directory / "lineitem.tbl").stat().st_mtime_ns

    second = cached_tables(scale_factor=0.001, seed=3, root=tmp_path)
    assert (directory / "lineitem.tbl").stat().st_mtime_ns == stamp  # no rewrite
    generated = tpch.generate_tables(scale_factor=0.001, seed=3)
    for name, frame in generated.items():
        assert first[name].equals(frame, float_tol=0.0), name
        assert second[name].equals(frame, float_tol=0.0), name

    # A different (sf, seed) pair gets its own directory.
    other = cache_directory(0.002, 4, root=tmp_path)
    assert other != directory


def test_cached_tables_falls_back_on_partial_cache(tmp_path):
    cached_tables(scale_factor=0.001, seed=5, root=tmp_path)
    directory = cache_directory(0.001, 5, root=tmp_path)
    (directory / "orders.tbl").unlink()  # simulate a torn write
    tables = cached_tables(scale_factor=0.001, seed=5, root=tmp_path)
    assert set(tables) == set(tpch.TABLE_NAMES)
    assert (directory / "orders.tbl").exists()  # regenerated and re-saved


def test_cache_disabled_by_empty_env(monkeypatch):
    monkeypatch.setenv("REPRO_TPCH_CACHE", "")
    assert cache_directory(0.001, 1) is None
    tables = cached_tables(scale_factor=0.001, seed=6)
    assert set(tables) == set(tpch.TABLE_NAMES)
