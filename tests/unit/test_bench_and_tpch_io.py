"""Unit tests for the benchmark harness helpers and TPC-H .tbl I/O."""

import numpy as np

from repro.bench import figure_table, series_dict, time_rowengine, time_tqp, tpch_session
from repro.datasets import tpch
from repro.datasets.tpch.io import load_tables, save_tables


def test_tpch_session_is_cached():
    first, tables_a = tpch_session(scale_factor=0.001, seed=42)
    second, tables_b = tpch_session(scale_factor=0.001, seed=42)
    assert first is second and tables_a is tables_b
    assert set(tables_a) == set(tpch.TABLE_NAMES)


def test_time_tqp_and_rowengine_protocol():
    session, tables = tpch_session(scale_factor=0.001, seed=42)
    sql = tpch.query(6, 0.001)
    tqp = time_tqp(session, sql, backend="torchscript", device="cpu", runs=3, warmup=1)
    assert len(tqp.times_s) == 3 and tqp.median_s > 0
    assert tqp.system == "TQP-CPU" and not tqp.simulated
    gpu = time_tqp(session, sql, backend="torchscript", device="cuda", runs=2, warmup=0)
    assert gpu.simulated and gpu.system == "TQP-CUDA"
    baseline = time_rowengine(session, tables, sql, runs=1)
    assert baseline.result.num_rows == tqp.result.num_rows
    table = figure_table("Figure X", [tqp, gpu], baseline)
    assert "Figure X" in table and "simulated time" in table and "measured" in table
    series = series_dict([tqp, gpu, baseline])
    assert set(series) == {"TQP-CPU", "TQP-CUDA", baseline.system}


def test_tpch_tbl_round_trip(tmp_path):
    tables = tpch.generate_tables(scale_factor=0.001, seed=1)
    subset = {"region": tables["region"], "nation": tables["nation"],
              "supplier": tables["supplier"]}
    paths = save_tables(subset, tmp_path)
    assert all(path.exists() for path in paths.values())
    loaded = load_tables(tmp_path)
    assert set(loaded) == set(subset)
    assert loaded["nation"].columns == tables["nation"].columns
    np.testing.assert_array_equal(loaded["supplier"]["s_suppkey"],
                                  tables["supplier"]["s_suppkey"])
    np.testing.assert_allclose(loaded["supplier"]["s_acctbal"],
                               tables["supplier"]["s_acctbal"])
    assert loaded["nation"]["n_name"].tolist() == tables["nation"]["n_name"].tolist()
