"""Unit tests for the SQL lexer and parser."""

import pytest

from repro.core.columnar import LogicalType, date_literal_to_ns
from repro.errors import SQLSyntaxError
from repro.frontend import ast, parse
from repro.frontend.lexer import TokenType, tokenize


# -- lexer -------------------------------------------------------------------


def test_tokenize_keywords_identifiers_numbers_strings():
    tokens = tokenize("SELECT l_quantity, 'BRASS', 3.5, 42 FROM lineitem")
    kinds = [t.type for t in tokens]
    values = [t.value for t in tokens]
    assert kinds[0] == TokenType.KEYWORD and values[0] == "select"
    assert TokenType.STRING in kinds and "BRASS" in values
    assert values[-1] == "" and kinds[-1] == TokenType.EOF
    assert "3.5" in values and "42" in values
    assert "l_quantity" in values  # identifiers lower-cased


def test_tokenize_operators_and_comments():
    tokens = tokenize("a <> b -- comment\n and c >= 1 /* block\ncomment */ or d != 2")
    ops = [t.value for t in tokens if t.type == TokenType.OPERATOR]
    assert ops == ["<>", ">=", "!="]


def test_tokenize_quoted_identifier_and_escaped_string():
    tokens = tokenize("select \"Weird Name\", 'it''s' from t")
    assert any(t.type == TokenType.IDENTIFIER and t.value == "Weird Name" for t in tokens)
    assert any(t.type == TokenType.STRING and t.value == "it's" for t in tokens)


@pytest.mark.parametrize("bad", ["select 'unterminated", "select \"open", "select a ; ðŸ¦†"])
def test_tokenize_errors(bad):
    with pytest.raises(SQLSyntaxError):
        tokenize(bad)


def test_tokenize_reports_position():
    with pytest.raises(SQLSyntaxError) as excinfo:
        tokenize("select\n  'oops")
    assert excinfo.value.line == 2


# -- parser -------------------------------------------------------------------


def test_parse_simple_select():
    stmt = parse("select a, b as bee from t where a > 1 order by bee desc limit 5")
    assert len(stmt.select_items) == 2
    assert stmt.select_items[1].alias == "bee"
    assert isinstance(stmt.from_items[0], ast.TableRef)
    assert isinstance(stmt.where, ast.BinaryOp)
    assert stmt.order_by[0].ascending is False
    assert stmt.limit == 5


def test_parse_group_by_having_distinct():
    stmt = parse("select distinct a, sum(b) from t group by a having sum(b) > 10")
    assert stmt.distinct is True
    assert len(stmt.group_by) == 1
    assert isinstance(stmt.having, ast.BinaryOp)
    agg = stmt.select_items[1].expr
    assert isinstance(agg, ast.FuncCall) and agg.name == "sum"


def test_parse_count_star_and_count_distinct():
    stmt = parse("select count(*), count(distinct x) from t")
    first, second = (item.expr for item in stmt.select_items)
    assert isinstance(first.args[0], ast.Star)
    assert second.distinct is True


def test_parse_joins_and_aliases():
    stmt = parse("""
        select * from a x join b on x.k = b.k
        left outer join c as sea on b.k2 = sea.k2
    """)
    join = stmt.from_items[0]
    assert isinstance(join, ast.JoinClause) and join.kind == "left"
    inner = join.left
    assert isinstance(inner, ast.JoinClause) and inner.kind == "inner"
    assert isinstance(stmt.select_items[0].expr, ast.Star)


def test_parse_comma_joins():
    stmt = parse("select 1 from a, b, c where a.x = b.x")
    assert len(stmt.from_items) == 3


def test_parse_date_and_interval_literals():
    stmt = parse("select 1 from t where d >= date '1994-01-01' + interval '3' month")
    comparison = stmt.where
    addition = comparison.right
    assert isinstance(addition, ast.BinaryOp) and addition.op == "+"
    assert addition.left.kind == LogicalType.DATE
    assert addition.left.value == date_literal_to_ns("1994-01-01")
    assert isinstance(addition.right, ast.IntervalLiteral)
    assert addition.right.unit == "month" and addition.right.value == 3


def test_parse_case_when_like_between_in():
    stmt = parse("""
        select case when a like 'PROMO%' then 1 else 0 end
        from t
        where b between 1 and 10 and c in (1, 2, 3) and d not like '%x%'
    """)
    case = stmt.select_items[0].expr
    assert isinstance(case, ast.CaseWhen) and len(case.whens) == 1
    assert isinstance(case.whens[0][0], ast.LikeExpr)
    conjuncts = stmt.where
    assert isinstance(conjuncts, ast.BinaryOp) and conjuncts.op == "and"


def test_parse_subqueries():
    stmt = parse("""
        select a from t
        where b in (select b from u)
          and exists (select * from v where v.k = t.k)
          and c > (select avg(c) from t)
    """)
    kinds = set()

    def collect(expr):
        kinds.add(type(expr).__name__)
        for child in expr.children():
            collect(child)
    collect(stmt.where)
    assert {"InSubquery", "ExistsSubquery", "ScalarSubquery"} <= kinds


def test_parse_derived_table_and_cte():
    stmt = parse("""
        with totals as (select k, sum(v) as s from t group by k)
        select * from (select k from totals) as only_keys
    """)
    assert stmt.ctes and stmt.ctes[0][0] == "totals"
    assert isinstance(stmt.from_items[0], ast.SubquerySource)
    assert stmt.from_items[0].alias == "only_keys"


def test_parse_extract_substring_cast_predict():
    stmt = parse("""
        select extract(year from d), substring(p from 1 for 2),
               cast(x as double), predict('model', a, b)
        from t
    """)
    exprs = [item.expr for item in stmt.select_items]
    assert isinstance(exprs[0], ast.ExtractExpr) and exprs[0].field == "year"
    assert isinstance(exprs[1], ast.SubstringExpr)
    assert isinstance(exprs[2], ast.Cast) and exprs[2].target == "double"
    assert isinstance(exprs[3], ast.PredictExpr)
    assert exprs[3].model_name == "model" and len(exprs[3].args) == 2


def test_parse_operator_precedence():
    stmt = parse("select 1 + 2 * 3 from t")
    expr = stmt.select_items[0].expr
    assert expr.op == "+" and expr.right.op == "*"
    stmt = parse("select 1 from t where a = 1 or b = 2 and c = 3")
    assert stmt.where.op == "or"
    assert stmt.where.right.op == "and"


def test_parse_not_exists_and_unary_not():
    stmt = parse("select 1 from t where not exists (select * from u) and not a > 1")
    left = stmt.where.left
    assert isinstance(left, ast.UnaryOp) and isinstance(left.operand, ast.ExistsSubquery)


@pytest.mark.parametrize("bad_sql", [
    "select from t",
    "select a t where",
    "select a from t where a like 5",
    "select a from t group a",
    "select a from t limit x",
    "select a from (select b from u)",        # derived table without alias
    "select case end from t",
    "select a from t; select b from u",       # trailing input
    "select extract(hour from d) from t",
    "select a from t where b in ()",
])
def test_parse_errors(bad_sql):
    with pytest.raises(SQLSyntaxError):
        parse(bad_sql)
