"""Unit tests for graph capture (tracing) and the graph interpreter."""

import numpy as np
import pytest

from repro import tensor as T
from repro.errors import GraphError
from repro.tensor import GraphInterpreter, ops, trace


def test_trace_simple_expression():
    a = ops.tensor([1.0, 2.0])
    b = ops.tensor([3.0, 4.0])

    def fn(x, y):
        return ops.sum_(x * y + 1.0)

    graph = trace(fn, [a, b])
    assert [node.op for node in graph.nodes] == ["mul", "add", "sum"]
    assert len(graph.inputs) == 2
    # the literal 1.0 became a captured constant
    assert len(graph.initializers) == 1


def test_trace_replay_on_new_inputs():
    def fn(x):
        return ops.mul(x, 3.0)

    graph = trace(fn, [ops.tensor([1.0, 2.0])])
    out = GraphInterpreter(graph).run([ops.tensor([5.0, 7.0])])
    np.testing.assert_allclose(out[0].numpy(), [15.0, 21.0])


def test_trace_multiple_outputs():
    def fn(x):
        return ops.min_(x), ops.max_(x)

    graph = trace(fn, [ops.tensor([4.0, 9.0, 2.0])])
    assert len(graph.outputs) == 2
    out = GraphInterpreter(graph).run([ops.tensor([4.0, 9.0, 2.0])])
    assert out[0].item() == 2.0 and out[1].item() == 9.0


def test_trace_captures_external_tensor_as_constant():
    weights = ops.tensor([2.0, 2.0, 2.0])

    def fn(x):
        return ops.sum_(ops.mul(x, weights))

    graph = trace(fn, [ops.tensor([1.0, 1.0, 1.0])])
    assert len(graph.initializers) == 1
    out = GraphInterpreter(graph).run([ops.tensor([1.0, 2.0, 3.0])])
    assert out[0].item() == 12.0


def test_trace_output_that_is_an_input():
    def fn(x):
        return x

    graph = trace(fn, [ops.tensor([1.0])])
    out = GraphInterpreter(graph).run([ops.tensor([42.0])])
    assert out[0].item() == 42.0


def test_nested_traces_rejected():
    def fn(x):
        trace(lambda y: y + 1, [ops.tensor([1.0])])
        return x

    with pytest.raises(GraphError):
        trace(fn, [ops.tensor([1.0])])


def test_trace_rejects_non_tensor_inputs_and_outputs():
    with pytest.raises(GraphError):
        trace(lambda x: x, [3.0])
    with pytest.raises(GraphError):
        trace(lambda x: 3.0, [ops.tensor([1.0])])


def test_interpreter_validates_input_arity():
    graph = trace(lambda x: x + 1, [ops.tensor([1.0])])
    with pytest.raises(GraphError):
        GraphInterpreter(graph).run([])


def test_graph_validate_detects_undefined_values():
    graph = T.Graph("broken")
    value = graph.new_value("phantom")
    graph.add_node("neg", [value.id], 1)
    with pytest.raises(GraphError):
        graph.validate()


def test_graph_clone_is_independent():
    graph = trace(lambda x: x * 2, [ops.tensor([1.0])])
    clone = graph.clone()
    clone.nodes.clear()
    assert len(graph.nodes) == 1


def test_graph_op_counts_and_repr():
    graph = trace(lambda x: ops.add(ops.mul(x, 2.0), ops.mul(x, 2.0)),
                  [ops.tensor([1.0])])
    counts = graph.op_counts()
    assert counts["mul"] == 2 and counts["add"] == 1
    assert "graph" in repr(graph)
