"""Property-based differential tests for the expression compiler.

A seeded generator (plain ``random`` — no hypothesis dependency) produces
random arithmetic / comparison / NULL-logic expressions; each one is evaluated
by the tensor expression compiler (via a full ``SELECT``) and by the row
engine's per-row interpreter over the same physical plan.  Any semantic
divergence between the two interpreters is a bug in one of them.

NULLs enter through ``CASE WHEN ... THEN ... END`` without an ELSE branch and
flow through arithmetic, comparisons, ``IS [NOT] NULL``, ``COALESCE`` and the
three-valued logic of ``WHERE``.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro import DataFrame, TQPSession
from repro.baselines import RowEngine
from repro.frontend import sql_to_physical

N_ROWS = 64
N_CASES = 60
SEED = 20220701


@pytest.fixture(scope="module")
def tables():
    rng = np.random.default_rng(SEED)
    frame = DataFrame({
        "a": rng.integers(-20, 21, size=N_ROWS).astype(np.int64),
        "b": rng.integers(-5, 6, size=N_ROWS).astype(np.int64),
        "x": np.round(rng.uniform(-10.0, 10.0, size=N_ROWS), 3),
        "y": np.round(rng.uniform(-2.0, 2.0, size=N_ROWS), 3),
    })
    return {"t": frame}


@pytest.fixture(scope="module")
def session(tables):
    sess = TQPSession()
    for name, frame in tables.items():
        sess.register(name, frame)
    return sess


class ExprGen:
    """Random SQL expression source text, depth-bounded.

    Integer magnitudes stay small so no chain of multiplications can overflow
    int64 (numpy would wrap where Python promotes to bigint).
    """

    NUM_COLUMNS = ("a", "b", "x", "y")
    COMPARATORS = ("<", "<=", "=", "<>", ">", ">=")

    def __init__(self, rng: random.Random):
        self.rng = rng

    def literal(self) -> str:
        if self.rng.random() < 0.5:
            return str(self.rng.randint(-20, 20))
        return f"{self.rng.uniform(-10.0, 10.0):.3f}"

    def numeric(self, depth: int) -> str:
        if depth <= 0:
            return (self.rng.choice(self.NUM_COLUMNS)
                    if self.rng.random() < 0.7 else self.literal())
        pick = self.rng.random()
        if pick < 0.45:
            op = self.rng.choice(("+", "-", "*"))
            return f"({self.numeric(depth - 1)} {op} {self.numeric(depth - 1)})"
        if pick < 0.60:  # NULL injection: CASE without ELSE
            return (f"(case when {self.boolean(depth - 1)} "
                    f"then {self.numeric(depth - 1)} end)")
        if pick < 0.75:
            return (f"(case when {self.boolean(depth - 1)} "
                    f"then {self.numeric(depth - 1)} "
                    f"else {self.numeric(depth - 1)} end)")
        if pick < 0.85:
            return f"coalesce({self.numeric(depth - 1)}, {self.numeric(depth - 1)})"
        if pick < 0.95:
            return f"(- {self.numeric(depth - 1)})"
        return self.numeric(depth - 1)

    def boolean(self, depth: int) -> str:
        if depth <= 0:
            left = self.rng.choice(self.NUM_COLUMNS)
            return f"({left} {self.rng.choice(self.COMPARATORS)} {self.literal()})"
        pick = self.rng.random()
        if pick < 0.40:
            return (f"({self.numeric(depth - 1)} "
                    f"{self.rng.choice(self.COMPARATORS)} "
                    f"{self.numeric(depth - 1)})")
        if pick < 0.60:
            op = self.rng.choice(("and", "or"))
            return f"({self.boolean(depth - 1)} {op} {self.boolean(depth - 1)})"
        if pick < 0.72:
            return f"(not {self.boolean(depth - 1)})"
        if pick < 0.88:
            null_kind = self.rng.choice(("is null", "is not null"))
            return f"({self.numeric(depth - 1)} {null_kind})"
        return self.boolean(depth - 1)

    def query(self) -> str:
        exprs = [self.numeric(self.rng.randint(1, 3))
                 for _ in range(self.rng.randint(1, 3))]
        select = ", ".join(f"{expr} as v{i}" for i, expr in enumerate(exprs))
        sql = f"select a, {select} from t"
        if self.rng.random() < 0.6:
            sql += f" where {self.boolean(self.rng.randint(1, 2))}"
        return sql


def _generated_queries():
    rng = random.Random(SEED)
    gen = ExprGen(rng)
    return [gen.query() for _ in range(N_CASES)]


@pytest.mark.parametrize("sql", _generated_queries())
def test_random_expression_matches_row_engine(session, tables, frames_match, sql):
    tensor_frame = session.sql(sql)
    plan = sql_to_physical(sql, session.catalog)
    oracle_frame = RowEngine(tables).execute_to_dataframe(plan)
    # No ORDER BY: both engines preserve input row order through filters, so
    # compare ordered, with a tight tolerance (identical fp operation order).
    frames_match(tensor_frame, oracle_frame, sql, ordered=True,
                 rel_tol=1e-9, abs_tol=1e-9)


NULLABLE_AGGREGATE_QUERIES = [
    # Aggregates over nullable expressions: SQL skips NULL inputs, and a group
    # (or global aggregate) with no non-NULL input reports NULL.
    "select b, avg(case when x > 0 then x end) as a, "
    "min(case when x > 5 then x end) as lo, "
    "max(case when x > 5 then x end) as hi, "
    "sum(case when x > 0 then x end) as s, "
    "count(case when x > 0 then x end) as c from t group by b order by b",
    "select avg(case when x > 100 then x end) as a, "
    "min(case when x > 100 then x end) as lo, "
    "sum(case when x > 100 then x end) as s, "
    "count(case when x > 100 then x end) as c from t",
    "select b, sum(case when a > 0 then a end) as s, "
    "max(case when a > 15 then a end) as hi from t group by b order by b",
    "select avg(coalesce(case when x > 0 then x end, y)) as a from t",
]


@pytest.mark.parametrize("sql", NULLABLE_AGGREGATE_QUERIES)
def test_nullable_aggregates_match_row_engine(session, tables, frames_match, sql):
    oracle = RowEngine(tables).execute_to_dataframe(
        sql_to_physical(sql, session.catalog))
    frames_match(session.sql(sql), oracle, sql, ordered=True,
                 rel_tol=1e-9, abs_tol=1e-9)


def test_generator_is_deterministic():
    assert _generated_queries() == _generated_queries()
