"""Unit tests for the execution layer (Executor) and the public session API."""

import numpy as np
import pytest

from repro import DataFrame, TQPSession
from repro.core import ir
from repro.errors import CatalogError, ExecutionError
from repro.tensor import onnxlike
from repro import ExecutionOptions

SQL = ("select region, sum(amount) as total from sales "
       "where amount > 10 group by region order by total desc")


@pytest.fixture
def session():
    frame = DataFrame({
        "region": np.array(["eu", "us", "eu", "apac", "us"], dtype=object),
        "amount": np.array([10.0, 25.0, 35.0, 15.0, 5.0]),
    })
    session = TQPSession()
    session.register("sales", frame)
    return session


def test_compile_produces_all_artifacts(session):
    compiled = session.compile(SQL)
    assert compiled.physical_plan is not None
    assert isinstance(compiled.ir, ir.IRNode)
    assert compiled.operator_plan.scans and compiled.operator_plan.output_fields
    explain = compiled.explain()
    assert "Physical plan" in explain and "TQP IR" in explain and "Operator plan" in explain


def test_execute_returns_result_metadata(session):
    outcome = session.compile(SQL, options=ExecutionOptions(backend="pytorch")).execute()
    assert outcome.backend == "pytorch" and outcome.device == "cpu"
    assert outcome.measured_s > 0 and outcome.reported_s == outcome.measured_s
    assert outcome.to_dataframe().to_dict() == {
        "region": ["eu", "us", "apac"], "total": [35.0, 25.0, 15.0]}


@pytest.mark.parametrize("backend", ["pytorch", "torchscript", "onnx",
                                     "torchscript-noopt"])
def test_all_backends_agree(session, backend):
    reference = session.compile(SQL, options=ExecutionOptions(backend="pytorch")).run()
    assert session.compile(SQL, options=ExecutionOptions(backend=backend)).run().equals(reference)


@pytest.mark.parametrize("device", ["cpu", "cuda"])
def test_devices_agree_and_simulated_time_reported(session, device):
    outcome = session.compile(SQL, options=ExecutionOptions(backend="torchscript", device=device)).execute()
    assert outcome.to_dataframe()["total"].tolist() == [35.0, 25.0, 15.0]
    if device == "cuda":
        assert outcome.profile is not None
        assert outcome.reported_s != outcome.measured_s


def test_wasm_device_requires_onnx_backend(session):
    with pytest.raises(ExecutionError):
        session.compile(SQL, options=ExecutionOptions(backend="torchscript", device="wasm"))
    outcome = session.compile(SQL, options=ExecutionOptions(backend="onnx", device="wasm")).execute()
    assert outcome.to_dataframe().num_rows == 3


def test_profile_collects_operator_scopes(session):
    outcome = session.compile(SQL, options=ExecutionOptions(backend="pytorch")).execute(profile=True)
    scopes = {row.key for row in outcome.profile.by_scope()}
    assert any(scope.startswith("HashAggregate") for scope in scopes)
    assert any(scope.startswith("Filter") for scope in scopes)


def test_executor_graph_and_onnx_export(session, tmp_path):
    compiled = session.compile(SQL, options=ExecutionOptions(backend="torchscript"))
    graph = compiled.executor_graph()
    assert graph.op_counts().get("scatter_add", 0) >= 1
    path = tmp_path / "query.onnx.json"
    compiled.export_onnx(str(path))
    restored = onnxlike.load(str(path))
    assert restored.op_counts() == graph.op_counts()


def test_compiled_program_is_cached_and_input_layout_checked(session):
    compiled = session.compile(SQL, options=ExecutionOptions(backend="torchscript"))
    inputs = session.prepare_inputs(compiled.executor)
    compiled.executor.execute(inputs)
    first_program = compiled.executor._program
    compiled.executor.execute(inputs)
    assert compiled.executor._program is first_program
    with pytest.raises(ExecutionError):
        compiled.executor._run_graph({})


def test_register_replaces_table_and_invalidates_cache(session):
    compiled = session.compile("select sum(amount) as s from sales")
    assert compiled.run().to_dict() == {"s": [90.0]}
    session.register("sales", DataFrame({
        "region": np.array(["eu"], dtype=object),
        "amount": np.array([1.0]),
    }))
    assert session.compile("select sum(amount) as s from sales").run().to_dict() == \
        {"s": [1.0]}


def test_session_validation_errors(session):
    with pytest.raises(ExecutionError):
        TQPSession(default_backend="tvm")
    with pytest.raises(Exception):
        session.compile(SQL, options=ExecutionOptions(backend="not-a-backend"))
    with pytest.raises(CatalogError):
        session.dataframe("missing")
    assert session.table_names() == ["sales"]


def test_prepare_inputs_converts_only_needed_columns(session):
    compiled = session.compile("select sum(amount) as s from sales")
    inputs = session.prepare_inputs(compiled.executor)
    table = inputs[compiled.operator_plan.scans[0].alias]
    assert table.column_names == ["sales.amount"]


def test_sql_convenience_method(session):
    assert session.sql("select count(*) as n from sales").to_dict() == {"n": [5]}
