"""Unit tests for the visualization artifacts (breakdowns, graph exports)."""

import json

import numpy as np

from repro import DataFrame, TQPSession
from repro.viz import (
    breakdown_dict,
    format_breakdown,
    format_outline,
    graph_summary,
    graph_to_dot,
    kernel_breakdown,
    operator_breakdown,
    save_graph_dot,
    save_graph_json,
)


def _compiled_query():
    session = TQPSession()
    session.register("t", DataFrame({
        "g": np.array(["a", "b", "a", "c"], dtype=object),
        "v": np.array([1.0, 2.0, 3.0, 4.0]),
    }))
    return session, session.compile(
        "select g, sum(v) as s from t where v > 1 group by g order by s desc")


def test_operator_and_kernel_breakdowns():
    session, compiled = _compiled_query()
    outcome = compiled.execute(profile=True)
    operators = operator_breakdown(outcome.profile)
    kernels = kernel_breakdown(outcome.profile, top_k=5)
    assert operators and kernels
    assert len(kernels) <= 5
    text = format_breakdown(operators, "title")
    assert "title" in text and "share" in text
    payload = breakdown_dict(operators)
    assert {"name", "calls", "total_s"} <= set(payload[0])
    json.dumps(payload)  # must be JSON serializable


def test_graph_exports(tmp_path):
    session, compiled = _compiled_query()
    graph = compiled.executor_graph()

    dot = graph_to_dot(graph)
    assert dot.startswith("digraph") and "->" in dot

    summary = graph_summary(graph)
    assert summary["num_nodes"] == len(graph.nodes)
    assert summary["op_counts"]

    dot_path = tmp_path / "graph.dot"
    json_path = tmp_path / "graph.json"
    save_graph_dot(graph, str(dot_path))
    save_graph_json(graph, str(json_path))
    assert dot_path.read_text().startswith("digraph")
    assert json.loads(json_path.read_text())["num_nodes"] == len(graph.nodes)

    outline = format_outline(graph, max_nodes=3)
    assert "executor graph" in outline and "more ops" in outline
