"""Unit tests for the expression → tensor-program compiler."""

import numpy as np
import pytest

from repro.core.columnar import LogicalType, TensorTable, date_literal_to_ns
from repro.core.expressions import EvaluationContext, as_mask, evaluate, to_column
from repro.dataframe import DataFrame
from repro.errors import ExecutionError, UnsupportedOperationError
from repro.frontend import ast


def _table():
    return TensorTable.from_dataframe(DataFrame({
        "t.qty": np.array([1, 5, 10], dtype=np.int64),
        "t.price": np.array([2.0, 3.0, 4.0]),
        "t.day": np.array(["1994-06-01", "1995-01-15", "1996-12-31"],
                          dtype="datetime64[D]"),
        "t.name": np.array(["PROMO BRASS", "ECONOMY TIN", "PROMO STEEL"], dtype=object),
    }))


def _col(name, ltype):
    ref = ast.ColumnRef(None, name.split(".")[-1], resolved=name)
    ref.otype = ltype
    return ref


def _lit(value, ltype):
    lit = ast.Literal(value, ltype)
    lit.otype = ltype
    return lit


CTX = EvaluationContext()
QTY = lambda: _col("t.qty", LogicalType.INT)          # noqa: E731
PRICE = lambda: _col("t.price", LogicalType.FLOAT)    # noqa: E731
DAY = lambda: _col("t.day", LogicalType.DATE)         # noqa: E731
NAME = lambda: _col("t.name", LogicalType.STRING)     # noqa: E731


def _binary(op, left, right, otype=LogicalType.BOOL):
    expr = ast.BinaryOp(op, left, right)
    expr.otype = otype
    return expr


def test_column_and_literal_evaluation():
    value = evaluate(QTY(), _table(), CTX)
    assert value.ltype == LogicalType.INT
    np.testing.assert_array_equal(value.tensor.numpy(), [1, 5, 10])
    scalar = evaluate(_lit(2.5, LogicalType.FLOAT), _table(), CTX)
    assert scalar.is_scalar and scalar.tensor.item() == 2.5


def test_arithmetic_and_comparison():
    expr = _binary("*", QTY(), PRICE(), LogicalType.FLOAT)
    np.testing.assert_allclose(evaluate(expr, _table(), CTX).tensor.numpy(),
                               [2.0, 15.0, 40.0])
    cmp = _binary(">=", QTY(), _lit(5, LogicalType.INT))
    np.testing.assert_array_equal(evaluate(cmp, _table(), CTX).tensor.numpy(),
                                  [False, True, True])


def test_date_comparison_with_literal():
    cutoff = _lit(date_literal_to_ns("1995-01-01"), LogicalType.DATE)
    expr = _binary("<", DAY(), cutoff)
    np.testing.assert_array_equal(evaluate(expr, _table(), CTX).tensor.numpy(),
                                  [True, False, False])


def test_between_and_in_list():
    between = ast.Between(QTY(), _lit(2, LogicalType.INT), _lit(10, LogicalType.INT))
    between.otype = LogicalType.BOOL
    np.testing.assert_array_equal(evaluate(between, _table(), CTX).tensor.numpy(),
                                  [False, True, True])
    negated = ast.Between(QTY(), _lit(2, LogicalType.INT), _lit(10, LogicalType.INT),
                          negated=True)
    negated.otype = LogicalType.BOOL
    np.testing.assert_array_equal(evaluate(negated, _table(), CTX).tensor.numpy(),
                                  [True, False, False])
    inlist = ast.InList(QTY(), [_lit(1, LogicalType.INT), _lit(10, LogicalType.INT)])
    inlist.otype = LogicalType.BOOL
    np.testing.assert_array_equal(evaluate(inlist, _table(), CTX).tensor.numpy(),
                                  [True, False, True])


def test_string_equality_like_and_in_list():
    eq = _binary("=", NAME(), _lit("PROMO STEEL", LogicalType.STRING))
    np.testing.assert_array_equal(evaluate(eq, _table(), CTX).tensor.numpy(),
                                  [False, False, True])
    ne = _binary("<>", NAME(), _lit("PROMO STEEL", LogicalType.STRING))
    np.testing.assert_array_equal(evaluate(ne, _table(), CTX).tensor.numpy(),
                                  [True, True, False])
    like = ast.LikeExpr(NAME(), "PROMO%")
    like.otype = LogicalType.BOOL
    np.testing.assert_array_equal(evaluate(like, _table(), CTX).tensor.numpy(),
                                  [True, False, True])
    inlist = ast.InList(NAME(), [_lit("ECONOMY TIN", LogicalType.STRING)])
    inlist.otype = LogicalType.BOOL
    np.testing.assert_array_equal(evaluate(inlist, _table(), CTX).tensor.numpy(),
                                  [False, True, False])
    with pytest.raises(UnsupportedOperationError):
        evaluate(_binary("<", NAME(), _lit("A", LogicalType.STRING)), _table(), CTX)


def test_case_when_and_cast():
    case = ast.CaseWhen(
        whens=[(_binary(">", QTY(), _lit(4, LogicalType.INT)),
                _lit(1.0, LogicalType.FLOAT))],
        else_value=_lit(0.0, LogicalType.FLOAT),
    )
    case.otype = LogicalType.FLOAT
    np.testing.assert_allclose(evaluate(case, _table(), CTX).tensor.numpy(),
                               [0.0, 1.0, 1.0])
    cast = ast.Cast(PRICE(), "int")
    cast.otype = LogicalType.INT
    assert evaluate(cast, _table(), CTX).tensor.tolist() == [2, 3, 4]


def test_extract_and_substring_and_scalar_functions():
    extract = ast.ExtractExpr("year", DAY())
    extract.otype = LogicalType.INT
    assert evaluate(extract, _table(), CTX).tensor.tolist() == [1994, 1995, 1996]
    substring = ast.SubstringExpr(NAME(), _lit(1, LogicalType.INT),
                                  _lit(5, LogicalType.INT))
    substring.otype = LogicalType.STRING
    out = evaluate(substring, _table(), CTX)
    assert out.tensor.shape == (3, 5)
    length = ast.FuncCall("length", [NAME()])
    length.otype = LogicalType.INT
    assert evaluate(length, _table(), CTX).tensor.tolist() == [11, 11, 11]


def test_logical_operators_and_not():
    expr = _binary("and", _binary(">", QTY(), _lit(1, LogicalType.INT)),
                   _binary("<", PRICE(), _lit(4.0, LogicalType.FLOAT)))
    np.testing.assert_array_equal(evaluate(expr, _table(), CTX).tensor.numpy(),
                                  [False, True, False])
    negation = ast.UnaryOp("not", _binary(">", QTY(), _lit(1, LogicalType.INT)))
    negation.otype = LogicalType.BOOL
    np.testing.assert_array_equal(evaluate(negation, _table(), CTX).tensor.numpy(),
                                  [True, False, False])


def test_to_column_broadcasts_scalars_and_as_mask():
    scalar = evaluate(_lit(7, LogicalType.INT), _table(), CTX)
    column = to_column(scalar, 3)
    assert column.tensor.tolist() == [7, 7, 7]
    mask_value = evaluate(_binary(">", QTY(), _lit(1, LogicalType.INT)), _table(), CTX)
    assert as_mask(mask_value, 3).tolist() == [False, True, True]
    with pytest.raises(ExecutionError):
        as_mask(evaluate(QTY(), _table(), CTX), 3)


def test_null_literal_and_is_null():
    isnull = ast.IsNull(QTY())
    isnull.otype = LogicalType.BOOL
    assert evaluate(isnull, _table(), CTX).tensor.tolist() == [False, False, False]
    isnotnull = ast.IsNull(QTY(), negated=True)
    isnotnull.otype = LogicalType.BOOL
    assert evaluate(isnotnull, _table(), CTX).tensor.tolist() == [True, True, True]


def test_predict_requires_registered_model():
    predict = ast.PredictExpr("missing_model", [PRICE()])
    predict.otype = LogicalType.FLOAT
    with pytest.raises(ExecutionError):
        evaluate(predict, _table(), CTX)


def test_subqueries_require_runner():
    scalar = ast.ScalarSubquery(query=None)
    scalar.subplan = object()
    scalar.otype = LogicalType.FLOAT
    with pytest.raises(ExecutionError):
        evaluate(scalar, _table(), CTX)


def test_validity_propagates_through_comparisons():
    from repro.core.columnar import TensorColumn
    from repro.tensor import ops

    table = TensorTable({
        "t.v": TensorColumn(ops.tensor([1.0, 2.0, 3.0]), LogicalType.FLOAT,
                            valid=ops.tensor([True, False, True])),
    })
    cmp = _binary(">", _col("t.v", LogicalType.FLOAT), _lit(0.0, LogicalType.FLOAT))
    value = evaluate(cmp, table, CTX)
    # NULL comparisons are not true: the mask removes the invalid row.
    assert as_mask(value, 3).tolist() == [True, False, True]
