"""Unit tests for the tensor-program relational operators (via SQL execution).

Each test runs a small SQL query through the full TQP stack and checks the
result against values computed by hand, exercising one operator family at a
time (the integration suite covers multi-operator TPC-H queries).
"""

import numpy as np
import pytest

from repro import DataFrame, TQPSession
from repro.errors import ExecutionError


def _session():
    left = DataFrame({
        "k": np.array([1, 2, 3, 4], dtype=np.int64),
        "grp": np.array(["a", "b", "a", "c"], dtype=object),
        "v": np.array([10.0, 20.0, 30.0, 40.0]),
    })
    right = DataFrame({
        "k": np.array([1, 1, 3, 5], dtype=np.int64),
        "w": np.array([100.0, 200.0, 300.0, 500.0]),
    })
    session = TQPSession()
    session.register("left_t", left)
    session.register("right_t", right)
    return session


def test_filter_and_project():
    session = _session()
    out = session.sql("select k, v * 2 as double_v from left_t where v >= 20")
    assert out.to_dict() == {"k": [2, 3, 4], "double_v": [40.0, 60.0, 80.0]}


def test_inner_join_duplicate_build_keys():
    session = _session()
    out = session.sql(
        "select left_t.k, w from left_t, right_t where left_t.k = right_t.k "
        "order by left_t.k, w")
    assert out.to_dict() == {"k": [1, 1, 3], "w": [100.0, 200.0, 300.0]}


def test_left_outer_join_produces_nulls():
    session = _session()
    out = session.sql(
        "select left_t.k, w from left_t left outer join right_t "
        "on left_t.k = right_t.k order by left_t.k, w")
    data = out.to_dict()
    assert data["k"] == [1, 1, 2, 3, 4]
    assert data["w"][2] is None and data["w"][4] is None


def test_join_with_residual_condition():
    session = _session()
    out = session.sql(
        "select left_t.k, w from left_t join right_t on left_t.k = right_t.k "
        "and w > 150 order by left_t.k")
    assert out.to_dict() == {"k": [1, 3], "w": [200.0, 300.0]}


def test_semi_and_anti_join_via_exists():
    session = _session()
    semi = session.sql(
        "select k from left_t where exists "
        "(select * from right_t where right_t.k = left_t.k) order by k")
    assert semi.to_dict() == {"k": [1, 3]}
    anti = session.sql(
        "select k from left_t where not exists "
        "(select * from right_t where right_t.k = left_t.k) order by k")
    assert anti.to_dict() == {"k": [2, 4]}


def test_cross_join_via_nested_loop():
    session = _session()
    out = session.sql("select count(*) as pairs from left_t, right_t")
    assert out.to_dict() == {"pairs": [16]}


def test_group_by_aggregates():
    session = _session()
    out = session.sql(
        "select grp, count(*) as n, sum(v) as total, avg(v) as mean, "
        "min(v) as low, max(v) as high from left_t group by grp order by grp")
    assert out.to_dict() == {
        "grp": ["a", "b", "c"],
        "n": [2, 1, 1],
        "total": [40.0, 20.0, 40.0],
        "mean": [20.0, 20.0, 40.0],
        "low": [10.0, 20.0, 40.0],
        "high": [30.0, 20.0, 40.0],
    }


def test_global_aggregate_and_count_distinct():
    session = _session()
    out = session.sql("select count(*) as n, count(distinct grp) as groups, "
                      "sum(v) as total from left_t")
    assert out.to_dict() == {"n": [4], "groups": [3], "total": [100.0]}


def test_global_aggregate_over_empty_input_is_null():
    session = _session()
    out = session.sql("select sum(v) as total, count(*) as n from left_t where v > 999")
    assert out.to_dict() == {"total": [None], "n": [0]}


def test_sort_multi_key_and_desc():
    session = _session()
    out = session.sql("select grp, v from left_t order by grp desc, v asc")
    assert out.to_dict()["grp"] == ["c", "b", "a", "a"]
    assert out.to_dict()["v"] == [40.0, 20.0, 10.0, 30.0]


def test_sort_by_string_key():
    session = _session()
    out = session.sql("select grp from left_t order by grp")
    assert out.to_dict()["grp"] == ["a", "a", "b", "c"]


def test_limit_and_distinct():
    session = _session()
    assert session.sql("select k from left_t order by k limit 2").to_dict() == \
        {"k": [1, 2]}
    assert session.sql("select k from left_t order by k limit 99").num_rows == 4
    distinct = session.sql("select distinct grp from left_t order by grp")
    assert distinct.to_dict() == {"grp": ["a", "b", "c"]}


def test_in_subquery_and_scalar_subquery_runtime():
    session = _session()
    out = session.sql(
        "select k from left_t where k in (select k from right_t) order by k")
    assert out.to_dict() == {"k": [1, 3]}
    out = session.sql(
        "select k from left_t where v > (select avg(v) from left_t) order by k")
    assert out.to_dict() == {"k": [3, 4]}
    out = session.sql(
        "select k from left_t where k not in (select k from right_t) order by k")
    assert out.to_dict() == {"k": [2, 4]}


def test_derived_table_and_cte():
    session = _session()
    out = session.sql(
        "with totals as (select grp, sum(v) as s from left_t group by grp) "
        "select grp, s from totals where s > 25 order by grp")
    assert out.to_dict() == {"grp": ["a", "c"], "s": [40.0, 40.0]}
    out = session.sql(
        "select big.grp from (select grp, sum(v) as s from left_t group by grp) "
        "as big where big.s >= 40 order by big.grp")
    assert out.to_dict() == {"grp": ["a", "c"]}


def test_empty_filter_result_propagates_through_join_and_aggregate():
    session = _session()
    out = session.sql(
        "select grp, count(*) as n from left_t, right_t "
        "where left_t.k = right_t.k and v > 1000 group by grp")
    assert out.num_rows == 0


def test_missing_table_raises():
    session = _session()
    with pytest.raises(Exception):
        session.sql("select * from nonexistent")


def test_executor_rejects_mismatched_inputs():
    session = _session()
    compiled = session.compile("select k from left_t where v > 0")
    with pytest.raises(ExecutionError):
        compiled.executor.execute({})
