"""Unit tests for the tensor op vocabulary."""

import numpy as np
import pytest

from repro import tensor as T
from repro.errors import DTypeError, TensorRuntimeError
from repro.tensor import ops


def test_tensor_creation_and_properties():
    t = ops.tensor([1.0, 2.0, 3.0])
    assert t.shape == (3,)
    assert t.dtype is T.float64
    assert t.device.is_cpu
    assert t.size == 3
    assert len(t) == 3
    np.testing.assert_array_equal(t.numpy(), [1.0, 2.0, 3.0])


def test_tensor_with_explicit_dtype():
    t = ops.tensor([1, 2, 3], dtype="int32")
    assert t.dtype is T.int32


def test_item_requires_single_element():
    assert ops.tensor(5).item() == 5
    with pytest.raises(TensorRuntimeError):
        ops.tensor([1, 2]).item()


def test_elementwise_arithmetic_and_broadcasting():
    a = ops.tensor([1.0, 2.0, 3.0])
    np.testing.assert_allclose((a + 1).numpy(), [2, 3, 4])
    np.testing.assert_allclose((2 * a).numpy(), [2, 4, 6])
    np.testing.assert_allclose((a - a).numpy(), [0, 0, 0])
    np.testing.assert_allclose((a / 2).numpy(), [0.5, 1.0, 1.5])
    np.testing.assert_allclose((-a).numpy(), [-1, -2, -3])
    np.testing.assert_allclose(ops.pow(a, 2).numpy(), [1, 4, 9])


def test_comparisons_and_logical():
    a = ops.tensor([1, 2, 3])
    b = ops.tensor([3, 2, 1])
    np.testing.assert_array_equal((a < b).numpy(), [True, False, False])
    np.testing.assert_array_equal((a == b).numpy(), [False, True, False])
    np.testing.assert_array_equal((a >= b).numpy(), [False, True, True])
    np.testing.assert_array_equal(
        ops.logical_and(a > 1, b > 1).numpy(), [False, True, False])
    np.testing.assert_array_equal(ops.logical_not(a > 2).numpy(), [True, True, False])


def test_where_and_isin():
    cond = ops.tensor([True, False, True])
    np.testing.assert_array_equal(ops.where(cond, 1, 0).numpy(), [1, 0, 1])
    values = ops.tensor([1, 5, 7, 5])
    np.testing.assert_array_equal(
        ops.isin(values, ops.tensor([5, 9])).numpy(), [False, True, False, True])


def test_reductions_with_axis_and_keepdims():
    m = ops.tensor(np.arange(6.0).reshape(2, 3))
    assert ops.sum_(m).item() == 15.0
    np.testing.assert_array_equal(ops.sum_(m, axis=0).numpy(), [3, 5, 7])
    np.testing.assert_array_equal(ops.max_(m, axis=1).numpy(), [2, 5])
    assert ops.mean(m).item() == 2.5
    assert ops.sum_(m, axis=1, keepdims=True).shape == (2, 1)
    assert ops.any_(m > 4).item()
    assert not ops.all_(m > 0).item()


def test_sorting_and_searching():
    a = ops.tensor([3, 1, 2])
    np.testing.assert_array_equal(ops.argsort(a).numpy(), [1, 2, 0])
    np.testing.assert_array_equal(ops.sort(a).numpy(), [1, 2, 3])
    sorted_vals = ops.tensor([1, 3, 5, 7])
    np.testing.assert_array_equal(
        ops.searchsorted(sorted_vals, ops.tensor([0, 4, 7])).numpy(), [0, 2, 3])
    np.testing.assert_array_equal(
        ops.searchsorted(sorted_vals, ops.tensor([7]), side="right").numpy(), [4])


def test_lexsort_last_key_is_primary():
    primary = ops.tensor([1, 0, 1, 0])
    secondary = ops.tensor([9, 8, 7, 6])
    order = ops.lexsort([secondary, primary])
    np.testing.assert_array_equal(order.numpy(), [3, 1, 2, 0])


def test_unique_returns_values_inverse_counts():
    values, inverse, counts = ops.unique(ops.tensor([3, 1, 3, 2, 1]))
    np.testing.assert_array_equal(values.numpy(), [1, 2, 3])
    np.testing.assert_array_equal(counts.numpy(), [2, 1, 2])
    np.testing.assert_array_equal(values.numpy()[inverse.numpy()], [3, 1, 3, 2, 1])


def test_gather_scatter_and_masks():
    a = ops.tensor([10, 20, 30, 40])
    np.testing.assert_array_equal(ops.take(a, ops.tensor([3, 0])).numpy(), [40, 10])
    np.testing.assert_array_equal(
        ops.boolean_mask(a, ops.tensor([True, False, True, False])).numpy(), [10, 30])
    np.testing.assert_array_equal(ops.nonzero(a > 25).numpy(), [2, 3])
    out = ops.scatter_add(ops.tensor([0, 1, 0]), ops.tensor([1.0, 2.0, 3.0]), size=3)
    np.testing.assert_allclose(out.numpy(), [4.0, 2.0, 0.0])
    np.testing.assert_array_equal(
        ops.scatter_min(ops.tensor([0, 0, 1]), ops.tensor([5, 2, 7]), size=2).numpy(),
        [2, 7])
    np.testing.assert_array_equal(
        ops.scatter_max(ops.tensor([0, 0, 1]), ops.tensor([5, 2, 7]), size=2).numpy(),
        [5, 7])
    np.testing.assert_array_equal(
        ops.bincount(ops.tensor([0, 2, 2]), minlength=4).numpy(), [1, 0, 2, 0])


def test_repeat_and_cumsum():
    np.testing.assert_array_equal(
        ops.repeat(ops.tensor([1, 2, 3]), ops.tensor([2, 0, 1])).numpy(), [1, 1, 3])
    np.testing.assert_array_equal(ops.cumsum(ops.tensor([1, 2, 3])).numpy(), [1, 3, 6])


def test_shape_manipulation():
    a = ops.arange(6)
    assert ops.reshape(a, (2, 3)).shape == (2, 3)
    assert ops.concat([a, a]).shape == (12,)
    assert ops.stack([a, a], axis=1).shape == (6, 2)
    assert ops.narrow(a, 0, 2, 3).tolist() == [2, 3, 4]
    padded = ops.pad2d(ops.tensor([[1, 2]]), 4)
    np.testing.assert_array_equal(padded.numpy(), [[1, 2, 0, 0]])
    truncated = ops.pad2d(ops.tensor([[1, 2, 3]]), 2)
    np.testing.assert_array_equal(truncated.numpy(), [[1, 2]])


def test_sliding_window_shape_and_content():
    m = ops.tensor(np.arange(8).reshape(2, 4))
    windows = ops.sliding_window(m, 2)
    assert windows.shape == (2, 3, 2)
    np.testing.assert_array_equal(windows.numpy()[0], [[0, 1], [1, 2], [2, 3]])


def test_matmul_softmax_onehot():
    a = ops.tensor(np.ones((2, 3)))
    b = ops.tensor(np.ones((3, 4)))
    assert ops.matmul(a, b).shape == (2, 4)
    probs = ops.softmax(ops.tensor([[1.0, 1.0]]))
    np.testing.assert_allclose(probs.numpy(), [[0.5, 0.5]])
    np.testing.assert_array_equal(
        ops.one_hot(ops.tensor([0, 2]), 3).numpy(), [[1, 0, 0], [0, 0, 1]])


def test_cast_and_clip():
    a = ops.tensor([1.7, -2.2])
    assert ops.cast(a, "int64").tolist() == [1, -2]
    np.testing.assert_allclose(ops.clip(a, min_value=0.0).numpy(), [1.7, 0.0])
    with pytest.raises(DTypeError):
        ops.cast(a, "complex128")


def test_unknown_op_rejected():
    with pytest.raises(TensorRuntimeError):
        ops.execute_op("definitely_not_an_op", [])


def test_creation_ops():
    assert ops.zeros((2, 2)).tolist() == [[0, 0], [0, 0]]
    assert ops.ones(3, dtype="int64").tolist() == [1, 1, 1]
    assert ops.full(2, 7).tolist() == [7, 7]
    assert ops.arange(2, 8, 2).tolist() == [2, 4, 6]
