"""Unit tests for the op-level profiler."""

import json

from repro.tensor import Profiler, current_profiler, ops
from repro.tensor.profiler import merge_profiles


def test_profiler_records_ops_and_bytes():
    with Profiler() as profiler:
        a = ops.tensor([1.0, 2.0, 3.0])
        ops.sum_(ops.mul(a, a))
    ops.mul(ops.tensor([1.0]), 2.0)  # outside the context: not recorded
    names = [event.op for event in profiler.events]
    assert "mul" in names and "sum" in names
    assert all(event.elapsed_s >= 0 for event in profiler.events)
    assert any(event.input_bytes > 0 for event in profiler.events)
    assert profiler.total_time_s() > 0
    assert profiler.total_bytes() > 0


def test_profiler_scopes_attribute_ops_to_operators():
    with Profiler() as profiler:
        with profiler.scope("Filter"):
            ops.gt(ops.tensor([1.0, 5.0]), 2.0)
        with profiler.scope("Project"):
            ops.mul(ops.tensor([1.0]), 3.0)
    scopes = {event.scope for event in profiler.events}
    assert scopes == {"Filter", "Project"}
    by_scope = {row.key: row.calls for row in profiler.by_scope()}
    assert by_scope["Filter"] >= 1 and by_scope["Project"] >= 1


def test_profiler_aggregation_sorted_by_time():
    with Profiler() as profiler:
        ops.matmul(ops.tensor([[1.0] * 64] * 64), ops.tensor([[1.0] * 64] * 64))
        ops.add(ops.tensor([1.0]), 1.0)
    rows = profiler.by_op()
    assert rows[0].total_s >= rows[-1].total_s
    assert {row.key for row in rows} == {"matmul", "add"}


def test_nested_profilers_use_innermost():
    with Profiler() as outer:
        with Profiler() as inner:
            assert current_profiler() is inner
            ops.add(ops.tensor([1.0]), 1.0)
        assert current_profiler() is outer
    assert len(inner.events) == 1
    assert len(outer.events) == 0
    assert current_profiler() is None


def test_chrome_trace_export(tmp_path):
    with Profiler() as profiler:
        ops.add(ops.tensor([1.0]), 1.0)
    path = tmp_path / "trace.json"
    profiler.save_chrome_trace(str(path))
    payload = json.loads(path.read_text())
    assert payload["traceEvents"]
    event = payload["traceEvents"][0]
    assert event["ph"] == "X" and event["name"] == "add"
    assert "device" in event["args"]


def test_merge_profiles():
    with Profiler() as first:
        ops.add(ops.tensor([1.0]), 1.0)
    with Profiler() as second:
        ops.mul(ops.tensor([1.0]), 2.0)
    merged = merge_profiles([first, second])
    assert len(merged.events) == 2
