"""Unit tests for the exception hierarchy and the package-level API surface."""

import pytest

import repro
from repro import errors


def test_exception_hierarchy():
    assert issubclass(errors.SQLSyntaxError, errors.SQLError)
    assert issubclass(errors.AnalysisError, errors.SQLError)
    assert issubclass(errors.CatalogError, errors.SQLError)
    assert issubclass(errors.SQLError, errors.TQPError)
    assert issubclass(errors.GraphError, errors.TensorRuntimeError)
    assert issubclass(errors.DeviceError, errors.TensorRuntimeError)
    assert issubclass(errors.DTypeError, errors.TensorRuntimeError)
    assert issubclass(errors.TensorRuntimeError, errors.TQPError)
    assert issubclass(errors.UnsupportedOperationError, errors.PlanningError)
    assert issubclass(errors.PlanningError, errors.TQPError)
    assert issubclass(errors.ExecutionError, errors.TQPError)
    assert issubclass(errors.ModelError, errors.TQPError)


def test_sql_syntax_error_carries_position():
    error = errors.SQLSyntaxError("bad token", line=3, column=7)
    assert error.line == 3 and error.column == 7
    assert "line 3" in str(error)
    bare = errors.SQLSyntaxError("no position")
    assert bare.line is None and "line" not in str(bare)


def test_every_layer_error_catchable_as_tqperror():
    from repro import DataFrame, TQPSession

    session = TQPSession()
    with pytest.raises(errors.TQPError):
        session.sql("select broken from")          # syntax error
    import numpy as np

    session.register("t", DataFrame({"a": np.array([1], dtype=np.int64)}))
    with pytest.raises(errors.TQPError):
        session.sql("select missing_column from t")  # analysis error
    with pytest.raises(errors.TQPError):
        session.sql("select a from not_a_table")     # catalog error


def test_package_exports_and_version():
    assert hasattr(repro, "TQPSession")
    assert hasattr(repro, "DataFrame")
    assert isinstance(repro.__version__, str) and repro.__version__
    from repro import backends, baselines, core, datasets, ml, tensor, viz  # noqa: F401

    assert callable(tensor.tensor)
    assert "pytorch" in backends.BACKENDS
