"""Unit tests for the adaptive execution subsystem.

Covers the feedback store (bounded history, LRU bucket cap, thread-safety
under a serving pool), binding-region bucketing and estimate-correction
isolation across rebinds, the strategy exploration/settling loop, and the
learned cost model's training gate.
"""

from __future__ import annotations

import datetime
import threading

import numpy as np
import pytest

from repro import DataFrame, ExecutionOptions, TQPSession
from repro.adaptive import (
    EstimateCorrector,
    ExecutionFeedback,
    FeedbackStore,
    OperatorObservation,
    StrategyCostModel,
    binding_region,
    scope_family,
)
from repro.serve import ServingRuntime

N_ROWS = 20000


def make_feedback(key="q", region=(), strategy="auto", reported_s=1e-3,
                  selectivity=None, operators=(), features=None):
    return ExecutionFeedback(
        statement_key=key, region=region, strategy=strategy,
        reported_s=reported_s, result_rows=10,
        filter_selectivity=selectivity, operators=tuple(operators),
        features=features)


@pytest.fixture(scope="module")
def frames():
    rng = np.random.default_rng(20260808)
    return DataFrame({
        "k": np.arange(N_ROWS, dtype=np.int64),
        "grp": (np.arange(N_ROWS, dtype=np.int64) % 17),
        "v": np.round(rng.uniform(0.0, 100.0, size=N_ROWS), 2),
    })


@pytest.fixture()
def session(frames):
    sess = TQPSession()
    sess.register("t", frames)
    return sess


ADAPTIVE = ExecutionOptions(adaptive=True)
SQL = "select grp, sum(v) as sv from t where v < :cut group by grp"


# -- feedback store ------------------------------------------------------------


def test_store_bounds_history_per_bucket():
    store = FeedbackStore(history=4)
    for i in range(10):
        store.record(make_feedback(reported_s=float(i)))
    rows = store.records("q", ())
    assert len(rows) == 4
    # Oldest evicted first: only the newest four survive.
    assert [fb.reported_s for fb in rows] == [6.0, 7.0, 8.0, 9.0]
    assert store.total_recorded == 10


def test_store_bounds_bucket_count_lru():
    store = FeedbackStore(history=4, max_buckets=3)
    for name in ("a", "b", "c", "d"):
        store.record(make_feedback(key=name))
    # "a" was least recently used and fell off.
    assert store.records("a", ()) == []
    assert len(store.records("d", ())) == 1
    # Touching "b" protects it from the next eviction.
    store.record(make_feedback(key="b"))
    store.record(make_feedback(key="e"))
    assert len(store.records("b", ())) == 2
    assert store.records("c", ()) == []


def test_store_forget_statement_drops_every_region():
    store = FeedbackStore()
    store.record(make_feedback(region=(("p", 1),)))
    store.record(make_feedback(region=(("p", 2),)))
    store.record(make_feedback(key="other"))
    assert store.forget_statement("q") == 2
    assert store.records("q") == []
    assert len(store.records("other", ())) == 1


def test_store_concurrent_recording_is_consistent():
    store = FeedbackStore(history=64)
    barrier = threading.Barrier(8)

    def hammer(worker):
        barrier.wait()
        for i in range(50):
            store.record(make_feedback(key=f"q{worker % 4}",
                                       reported_s=float(i)))
            store.records(f"q{worker % 4}", ())
            store.median_reported_s(f"q{worker % 4}", (), "auto")

    threads = [threading.Thread(target=hammer, args=(w,)) for w in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert store.total_recorded == 400
    assert len(store) == 4 * 64  # each of the 4 buckets filled to history


# -- scope canonicalization ----------------------------------------------------


def test_scope_family_canonicalizes_strategy_variants():
    assert scope_family("Filter") == "Filter"
    assert scope_family("MorselFilter(workers=4)") == "Filter"
    assert scope_family("DistributedFilter(devices=2)") == "Filter"
    assert scope_family("ShuffleJoin[inner](devices=2)") == "HashJoin"
    assert scope_family("PartitionedHashJoin[left](workers=4)") == "HashJoin"
    assert scope_family("ParallelHashAggregate(groups=1, workers=4)@w2") \
        == "HashAggregate"
    # Scans keep their table so two scans in one plan stay distinct.
    assert scope_family("TableScan(lineitem)") == "Scan(lineitem)"
    assert scope_family("MorselScan(lineitem, workers=4)") == "Scan(lineitem)"


# -- binding regions & estimate correction -------------------------------------


def test_binding_region_buckets_magnitudes_and_dates():
    assert binding_region(None) == ()
    assert binding_region({}) == ()
    # Same factor-of-two band -> same bucket; far apart -> different.
    assert binding_region({"q": 50.0}) == binding_region({"q": 60.0})
    assert binding_region({"q": 50.0}) != binding_region({"q": 0.05})
    assert binding_region({"q": -50.0}) != binding_region({"q": 50.0})
    # Dates bucket by year, including date-as-nanosecond-epoch integers.
    jan = datetime.date(1995, 1, 15)
    dec = datetime.date(1995, 12, 1)
    other = datetime.date(1998, 6, 1)
    assert binding_region({"d": jan}) == binding_region({"d": dec})
    assert binding_region({"d": jan}) != binding_region({"d": other})
    ns_1995 = int(datetime.datetime(1995, 6, 1).timestamp() * 1e9)
    ns_1998 = int(datetime.datetime(1998, 6, 1).timestamp() * 1e9)
    assert binding_region({"d": ns_1995}) != binding_region({"d": ns_1998})
    # Multi-parameter regions are order-insensitive.
    assert binding_region({"a": 1, "b": "x"}) \
        == binding_region({"b": "x", "a": 1})


def test_correction_buckets_are_isolated_across_rebinds():
    store = FeedbackStore()
    broad = binding_region({"cut": 50.0})
    narrow = binding_region({"cut": 0.05})
    for _ in range(4):
        store.record(make_feedback(region=broad, selectivity=0.5))
        store.record(make_feedback(region=narrow, selectivity=0.001))
    corrector = EstimateCorrector(store)
    sel_broad, n_broad = corrector.observed_selectivity("q", broad)
    sel_narrow, n_narrow = corrector.observed_selectivity("q", narrow)
    assert sel_broad == pytest.approx(0.5)
    assert sel_narrow == pytest.approx(0.001)
    assert n_broad == n_narrow == 4
    # The corrections pull the same static estimate in opposite directions.
    correct_broad = corrector.correction_fn("q", broad)
    correct_narrow = corrector.correction_fn("q", narrow)
    assert correct_broad(0.1) > 0.3
    assert correct_narrow(0.1) < 0.05
    # A region with no history yields no correction at all.
    assert corrector.correction_fn("q", binding_region({"cut": 1e9})) is None


def test_correction_weight_grows_with_history():
    store = FeedbackStore()
    corrector = EstimateCorrector(store)
    store.record(make_feedback(selectivity=0.9))
    one = corrector.correction_fn("q", ())(0.1)
    for _ in range(15):
        store.record(make_feedback(selectivity=0.9))
    many = corrector.correction_fn("q", ())(0.1)
    assert 0.1 < one < many < 0.9
    assert many == pytest.approx(0.9, abs=0.11)


# -- cost model ----------------------------------------------------------------


def test_cost_model_trains_after_min_samples_and_predicts():
    store = FeedbackStore()
    model = StrategyCostModel(min_samples=8, retrain_every=4)
    # Synthetic regime: feature[0] alone determines cost.
    for i in range(12):
        x = float(i % 4)
        features = (x,) + (0.0,) * 12
        store.record(make_feedback(reported_s=1e-3 * (1.0 + x),
                                   features=features))
        model.maybe_train(store)
    assert model.ready
    cheap = model.predict_seconds((0.0,) + (0.0,) * 12)
    dear = model.predict_seconds((3.0,) + (0.0,) * 12)
    assert cheap is not None and dear is not None
    assert dear > cheap


def test_cost_model_not_ready_below_min_samples():
    store = FeedbackStore()
    model = StrategyCostModel(min_samples=8)
    for _ in range(7):
        store.record(make_feedback(features=(1.0,) * 13))
        assert model.maybe_train(store) is False
    assert model.predict_seconds((1.0,) * 13) is None


# -- end-to-end adaptive loop --------------------------------------------------


def test_adaptive_explores_then_settles_per_region(session):
    query = session.prepare(SQL, options=ADAPTIVE)
    runtime = session.adaptive
    seen = []
    for _ in range(3 * runtime.min_observations + 4):
        query.bind(cut=50.0).execute()
        seen.append(query.compiled.strategy)
    # Every candidate explored, then the choice settles (stops changing).
    assert set(seen) == {"auto", "serial", "parallel"}
    settle = 3 * runtime.min_observations
    assert len(set(seen[settle:])) == 1
    # Feedback was recorded under the statement's plan-cache key, with the
    # observed selectivity attached.
    records = runtime.feedback.dump()
    assert all(r["statement_key"] == query.compiled.sql.strip().lower()
               or r["statement_key"] for r in records)
    assert any(r["filter_selectivity"] is not None for r in records)


def test_adaptive_keeps_independent_choices_per_region(session):
    query = session.prepare(SQL, options=ADAPTIVE)
    runtime = session.adaptive
    rounds = 3 * runtime.min_observations + 4
    for _ in range(rounds):
        query.bind(cut=99.0).execute()
    broad_choice = query.compiled.strategy
    broad_shape = query.compiled.operator_plan.root.pretty()
    for _ in range(rounds):
        query.bind(cut=0.02).execute()
    narrow_shape = query.compiled.operator_plan.root.pretty()
    # Flipping back needs no re-exploration: the broad region's history is
    # intact, so the first broad execution re-plans straight to its winner.
    query.bind(cut=99.0).execute()
    assert query.compiled.strategy == broad_choice
    regions = {r["region"] for r in runtime.feedback.dump()}
    assert len(regions) == 2
    # On 20k rows the broad regime profits from lanes ("auto" and
    # "parallel" plan identically there, so either name may win the tie);
    # the needle regime settles on a serial shape — either the "serial"
    # strategy or "auto" whose corrected estimate fell under the threshold.
    assert "Morsel" in broad_shape
    assert "Morsel" not in narrow_shape


def test_adaptive_results_match_static_execution(session, frames_match):
    adaptive = session.prepare(SQL, options=ADAPTIVE)
    static = session.prepare(
        "select grp, sum(v) as sv2 from t where v < :cut group by grp")
    reference = static.bind(cut=50.0).run()
    for _ in range(8):
        frames_match(adaptive.bind(cut=50.0).run(), reference,
                     context=f"strategy={adaptive.compiled.strategy}")


def test_adaptive_feedback_under_serving_pool(session):
    """Many workers over one adaptive statement: no lost or torn records."""
    # Integer aggregation: exact under every strategy, so concurrent
    # exploration cannot produce float round-off differences.
    sql = "select grp, sum(k) as sk from t where v < :cut group by grp"
    expected = None
    # batch_window=1 keeps every request on the single-request path, the
    # one that records feedback (batched replays skip observation).
    with ServingRuntime(session, workers=4, max_queue_depth=256,
                        batch_window=1) as serving:
        statement = serving.prepare(sql, options=ADAPTIVE)
        tickets = [serving.submit(statement, params={"cut": 50.0})
                   for _ in range(24)]
        results = [t.result(timeout=60) for t in tickets]
        for result in results:
            frame = result.to_dataframe()
            rows = sorted(zip(*[frame[c] for c in frame.columns]))
            if expected is None:
                expected = rows
            assert rows == expected
    store = session.adaptive.feedback
    assert store.total_recorded == 24
    assert len(store) == 24
    # All observations landed in the single broad-binding region.
    assert len({r["region"] for r in store.dump()}) == 1


def test_non_adaptive_statements_record_nothing(session):
    session.prepare(SQL).bind(cut=50.0).execute()
    assert len(session.adaptive.feedback) == 0
    assert session.adaptive.replan_count == 0
