"""Unit tests for the ingestion DataFrame and its CSV I/O."""

import numpy as np
import pytest

from repro.dataframe import DataFrame, DataFrameError, concat_frames, read_csv, write_csv


def _frame():
    return DataFrame({
        "id": np.array([1, 2, 3], dtype=np.int64),
        "price": np.array([1.5, 2.5, 3.5]),
        "name": np.array(["a", "b", "c"], dtype=object),
        "day": np.array(["2024-01-01", "2024-01-02", "2024-01-03"],
                        dtype="datetime64[D]"),
    })


def test_construction_and_basic_accessors():
    frame = _frame()
    assert frame.columns == ["id", "price", "name", "day"]
    assert frame.num_rows == 3 and len(frame) == 3
    assert "price" in frame
    np.testing.assert_array_equal(frame["id"], [1, 2, 3])
    with pytest.raises(DataFrameError):
        frame["missing"]


def test_dtypes_classification():
    assert _frame().dtypes() == {"id": "int", "price": "float", "name": "string",
                                 "day": "date"}


def test_mismatched_lengths_rejected():
    with pytest.raises(DataFrameError):
        DataFrame({"a": [1, 2], "b": [1, 2, 3]})


def test_unsupported_and_2d_columns_rejected():
    with pytest.raises(DataFrameError):
        DataFrame({"a": np.zeros((2, 2))})
    with pytest.raises(DataFrameError):
        DataFrame({"a": np.array([1 + 2j, 3 + 4j])})


def test_from_records_and_to_records():
    frame = DataFrame.from_records([{"x": 1, "y": "a"}, {"x": 2, "y": "b"}])
    assert frame.columns == ["x", "y"]
    assert frame.to_records()[1]["y"] == "b"
    assert DataFrame.from_records([], columns=["x"]).num_rows == 0


def test_select_with_column_head_take_filter():
    frame = _frame()
    assert frame.select(["name", "id"]).columns == ["name", "id"]
    extended = frame.with_column("double", frame["price"] * 2)
    np.testing.assert_allclose(extended["double"], [3.0, 5.0, 7.0])
    assert frame.head(2).num_rows == 2
    assert frame.take([2, 0])["id"].tolist() == [3, 1]
    assert frame.filter(frame["price"] > 2.0).num_rows == 2


def test_equals_with_float_tolerance():
    frame = _frame()
    other = frame.with_column("price", frame["price"] + 1e-9)
    assert frame.equals(other)
    assert not frame.equals(other.with_column("id", np.array([9, 9, 9])))
    assert not frame.equals(frame.select(["id"]))


def test_rows_iteration_and_repr():
    frame = _frame()
    rows = list(frame.rows())
    assert rows[0][0] == 1 and rows[0][2] == "a"
    assert "DataFrame(3 rows" in repr(frame)


def test_concat_frames():
    frame = _frame()
    combined = concat_frames([frame, frame])
    assert combined.num_rows == 6
    with pytest.raises(DataFrameError):
        concat_frames([frame, frame.select(["id"])])
    assert concat_frames([]).num_rows == 0


def test_csv_round_trip(tmp_path):
    frame = _frame()
    path = tmp_path / "data.csv"
    write_csv(frame, path)
    loaded = read_csv(path)
    assert loaded.columns == frame.columns
    np.testing.assert_array_equal(loaded["id"], frame["id"])
    np.testing.assert_allclose(loaded["price"], frame["price"])
    assert loaded.dtypes()["day"] == "date"
    assert loaded.dtypes()["name"] == "string"


def test_csv_pipe_delimited_without_header(tmp_path):
    path = tmp_path / "data.tbl"
    path.write_text("1|foo|2.5|\n2|bar|3.5|\n", encoding="utf-8")
    frame = read_csv(path, delimiter="|", header=False, columns=["k", "s", "v"])
    assert frame.columns == ["k", "s", "v"]
    assert frame["s"].tolist() == ["foo", "bar"]
    np.testing.assert_allclose(frame["v"], [2.5, 3.5])


def test_read_empty_csv(tmp_path):
    path = tmp_path / "empty.csv"
    path.write_text("", encoding="utf-8")
    assert read_csv(path, columns=["a"]).num_rows == 0
