"""Unit tests for the Hummingbird-like model → tensor compiler."""

import numpy as np
import pytest

from repro.core.columnar import LogicalType, encode_strings
from repro.core.expressions import ExprValue
from repro.errors import ModelError
from repro.ml import compile_model, compile_row_fn, tree_to_gemm_matrices
from repro.ml.models import (
    BagOfWordsVectorizer,
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    GradientBoostingClassifier,
    GradientBoostingRegressor,
    LinearRegression,
    LogisticRegression,
    MLPClassifier,
    Pipeline,
    RandomForestClassifier,
    RandomForestRegressor,
    StandardScaler,
)


def _data(n=150, seed=5, features=3):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, features))
    y_reg = X @ np.arange(1, features + 1) + 0.5
    y_clf = (y_reg > y_reg.mean()).astype(np.int64)
    return X, y_reg, y_clf


def _args_from_matrix(X):
    from repro.tensor import ops

    return [ExprValue(ops.tensor(X[:, i]), LogicalType.FLOAT)
            for i in range(X.shape[1])]


def test_gemm_matrices_shapes_and_values():
    X, y, _ = _data()
    tree = DecisionTreeRegressor(max_depth=3).fit(X, y)
    a, b, c, d, e = tree_to_gemm_matrices(tree.root_, X.shape[1])
    n_internal, n_leaves = a.shape[1], e.shape[0]
    assert a.shape == (X.shape[1], n_internal)
    assert b.shape == (n_internal,)
    assert c.shape == (n_internal, n_leaves)
    assert d.shape == (n_leaves,)
    assert set(np.unique(a)) <= {0.0, 1.0}
    assert set(np.unique(c)) <= {-1.0, 0.0, 1.0}
    # GEMM evaluation reproduces the python tree walk exactly.
    decisions = (X @ a <= b).astype(np.float64)
    selected = (decisions @ c == d).astype(np.float64)
    assert (selected.sum(axis=1) == 1).all(), "exactly one leaf per row"
    np.testing.assert_allclose(selected @ e, tree.predict(X))


def test_gemm_degenerate_single_leaf_tree():
    X = np.ones((5, 2))
    y = np.full(5, 7.0)
    tree = DecisionTreeRegressor(max_depth=2).fit(X, y)
    compiled = compile_model(tree)
    out = compiled(_args_from_matrix(X), 5)
    np.testing.assert_allclose(out.tensor.numpy(), [7.0] * 5)


@pytest.mark.parametrize("model_factory,is_classifier", [
    (lambda: LinearRegression(), False),
    (lambda: LogisticRegression(epochs=80), True),
    (lambda: DecisionTreeRegressor(max_depth=4), False),
    (lambda: DecisionTreeClassifier(max_depth=4), True),
    (lambda: RandomForestRegressor(n_estimators=5, max_depth=3), False),
    (lambda: RandomForestClassifier(n_estimators=5, max_depth=3), True),
    (lambda: GradientBoostingRegressor(n_estimators=8, max_depth=2), False),
    (lambda: GradientBoostingClassifier(n_estimators=8, max_depth=2), True),
    (lambda: MLPClassifier(hidden_size=8, epochs=40), True),
])
def test_compiled_models_match_python_predictions(model_factory, is_classifier):
    X, y_reg, y_clf = _data()
    model = model_factory().fit(X, y_clf if is_classifier else y_reg)
    compiled = compile_model(model)
    tensor_predictions = compiled(_args_from_matrix(X), X.shape[0]).tensor.numpy()
    np.testing.assert_allclose(tensor_predictions, model.predict(X).astype(np.float64),
                               atol=1e-9)


def test_compiled_pipeline_with_scaler():
    X, y_reg, y_clf = _data()
    pipeline = Pipeline([
        ("scaler", StandardScaler()),
        ("clf", LogisticRegression(epochs=80)),
    ]).fit(X, y_clf)
    compiled = compile_model(pipeline)
    out = compiled(_args_from_matrix(X), X.shape[0]).tensor.numpy()
    np.testing.assert_allclose(out, pipeline.predict(X).astype(np.float64))


def test_compiled_text_pipeline_matches_python():
    texts = ["great product love it", "terrible waste broken", "works great",
             "bad and slow", "love love love", "meh"]
    labels = np.array([1, 0, 1, 0, 1, 0])
    pipeline = Pipeline([
        ("vec", BagOfWordsVectorizer(vocabulary=["great", "love", "terrible",
                                                 "waste", "bad", "slow"])),
        ("clf", LogisticRegression(epochs=120)),
    ]).fit(texts, labels)
    compiled = compile_model(pipeline)

    from repro.tensor import ops

    codes = ExprValue(ops.tensor(encode_strings(texts)), LogicalType.STRING)
    tensor_out = compiled([codes], len(texts)).tensor.numpy()
    np.testing.assert_allclose(tensor_out, pipeline.predict(texts).astype(np.float64))
    # text models must receive a string column
    with pytest.raises(ModelError):
        compiled(_args_from_matrix(np.zeros((2, 2))), 2)


def test_row_fn_matches_compiled_model():
    X, y_reg, _ = _data()
    model = GradientBoostingRegressor(n_estimators=5, max_depth=2).fit(X, y_reg)
    row_fn = compile_row_fn(model)
    row_predictions = np.array([row_fn(list(row)) for row in X])
    np.testing.assert_allclose(row_predictions, model.predict(X))


def test_compile_rejects_unknown_model_and_empty_args():
    class Unknown:
        pass

    with pytest.raises(ModelError):
        compile_model(Unknown())
    X, _, y_clf = _data()
    compiled = compile_model(LogisticRegression(epochs=10).fit(X, y_clf))
    with pytest.raises(ModelError):
        compiled([], 0)
