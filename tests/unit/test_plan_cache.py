"""Unit tests for the session-level compiled-plan cache."""

import numpy as np
import pytest

from repro import DataFrame, TQPSession
from repro.core.plan_cache import PlanCache, normalize_sql
from repro import ExecutionOptions

SQL = ("select region, sum(amount) as total from sales "
       "where amount > 10 group by region order by total desc")


@pytest.fixture
def session():
    frame = DataFrame({
        "region": np.array(["eu", "us", "eu", "apac", "us"], dtype=object),
        "amount": np.array([10.0, 25.0, 35.0, 15.0, 5.0]),
    })
    session = TQPSession()
    session.register("sales", frame)
    return session


# -- normalization ---------------------------------------------------------


def test_normalize_collapses_whitespace_and_case():
    assert normalize_sql("SELECT  *\n FROM   Sales ;") == "select * from sales"


def test_normalize_preserves_double_quoted_identifiers():
    # "A" and "a" may be distinct case-sensitive columns; conflating them
    # in the cache key would serve the wrong query's plan.
    assert (normalize_sql('select "A" from t')
            != normalize_sql('select "a" from t'))
    assert normalize_sql('select "Weird  Col" from t') == 'select "Weird  Col" from t'


def test_normalize_preserves_string_literals():
    normalized = normalize_sql("select * from t where note = 'Gift  Wrap'")
    assert "'Gift  Wrap'" in normalized
    assert normalize_sql("select 'it''s  ok'") == "select 'it''s  ok'"
    assert (normalize_sql("select * from t where a='X'")
            != normalize_sql("select * from t where a='x'"))


# -- LRU mechanics ---------------------------------------------------------


def test_plan_cache_lru_eviction_and_counters():
    cache = PlanCache(capacity=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1          # refreshes 'a'
    cache.put("c", 3)                   # evicts 'b' (least recently used)
    assert cache.get("b") is None
    assert cache.get("c") == 3
    stats = cache.stats()
    assert stats["hits"] == 2 and stats["misses"] == 1
    assert stats["evictions"] == 1 and stats["size"] == 2


def test_plan_cache_rejects_bad_capacity():
    with pytest.raises(ValueError):
        PlanCache(capacity=0)


# -- session integration ---------------------------------------------------


def test_repeated_compile_hits_cache_and_returns_same_object(session):
    first = session.compile(SQL, options=ExecutionOptions(backend="torchscript"))
    second = session.compile("  " + SQL.upper() + " ; ", options=ExecutionOptions(backend="torchscript"))
    assert second is first
    stats = session.plan_cache.stats()
    assert stats["hits"] == 1 and stats["misses"] == 1


def test_cache_hit_skips_trace_compilation(session):
    compiled = session.compile(SQL, options=ExecutionOptions(backend="torchscript"))
    compiled.run()
    assert compiled.executor.compile_count == 1
    again = session.compile(SQL, options=ExecutionOptions(backend="torchscript"))
    again.run()
    assert again.executor is compiled.executor
    assert again.executor.compile_count == 1   # trace was not redone


def test_backend_and_device_are_part_of_the_key(session):
    a = session.compile(SQL, options=ExecutionOptions(backend="torchscript", device="cpu"))
    b = session.compile(SQL, options=ExecutionOptions(backend="torchscript", device="cuda"))
    c = session.compile(SQL, options=ExecutionOptions(backend="pytorch", device="cpu"))
    d = session.compile(SQL, options=ExecutionOptions(backend="torchscript", device="cpu", optimize=False))
    assert len({id(a), id(b), id(c), id(d)}) == 4
    assert session.plan_cache.stats()["hits"] == 0


def test_use_cache_false_bypasses_the_cache(session):
    a = session.compile(SQL, options=ExecutionOptions(use_cache=False))
    b = session.compile(SQL, options=ExecutionOptions(use_cache=False))
    assert a is not b
    assert session.plan_cache.stats()["misses"] == 0


def test_reregistering_a_table_invalidates_its_plans(session):
    compiled = session.compile("select sum(amount) as s from sales")
    assert compiled.run().to_dict() == {"s": [90.0]}
    session.register("sales", DataFrame({
        "region": np.array(["eu"], dtype=object),
        "amount": np.array([1.0]),
    }))
    assert session.plan_cache.stats()["invalidations"] >= 1
    fresh = session.compile("select sum(amount) as s from sales")
    assert fresh is not compiled
    assert fresh.run().to_dict() == {"s": [1.0]}


def test_registering_unrelated_table_keeps_plans_warm(session):
    compiled = session.compile(SQL)
    session.register("other", DataFrame({"x": np.array([1.0])}))
    # The sales plan survives and keeps serving hits: its scanned tables'
    # versions are unchanged, so the fingerprint revalidation passes.
    assert session.plan_cache.stats()["size"] == 1
    assert session.compile(SQL) is compiled
    assert session.plan_cache.stats()["hits"] == 1


def test_register_model_invalidates_only_plans_referencing_it(session):
    session.register_model("m", lambda args, num_rows: args[0])
    plain = session.compile(SQL)
    predicting = session.compile(
        "select predict('m', amount) as score from sales")
    assert session.plan_cache.stats()["size"] == 2
    assert predicting.model_names == frozenset({"m"})
    # Re-registering "m" drops only the plan whose PREDICT references it.
    session.register_model("m", lambda args, num_rows: args[0])
    assert session.plan_cache.stats()["size"] == 1
    assert session.compile(SQL) is plain
    assert session.compile(
        "select predict('m', amount) as score from sales") is not predicting
    # A model no plan references invalidates nothing.
    before = session.plan_cache.stats()["size"]
    session.register_model("unused", lambda args, num_rows: args[0])
    assert session.plan_cache.stats()["size"] == before


def test_cached_plan_returns_correct_results_across_calls(session):
    expected = {"region": ["eu", "us", "apac"], "total": [35.0, 25.0, 15.0]}
    assert session.sql(SQL).to_dict() == expected
    assert session.sql(SQL).to_dict() == expected
    assert session.plan_cache.stats()["hits"] >= 1
