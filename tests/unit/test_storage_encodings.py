"""Unit tests for the compressed storage encodings (dictionary / run-length).

Covers the encoding round trips themselves, the auto-encoding policy, the
encoded execution paths (equality / IN / LIKE / GROUP BY / ORDER BY /
DISTINCT on dictionary codes), layout keying of the plan and conversion
caches, and the version bump on re-registration.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ExecutionOptions, TQPSession
from repro.core.columnar import LogicalType, TensorColumn, concat_columns
from repro.dataframe import DataFrame
from repro.storage import (
    DictionaryEncoding,
    RunLengthEncoding,
    dictionary_encode,
    encode_column,
    run_length_encode,
)
from repro.tensor import ops


def make_session(num_rows: int = 64, encoding: str = "auto") -> TQPSession:
    rng = np.random.default_rng(7)
    frame = DataFrame({
        "k": np.repeat(np.arange(num_rows // 4, dtype=np.int64), 4),
        "v": rng.random(num_rows),
        "d": (np.datetime64("2024-01-01")
              + np.sort(rng.integers(0, 10, num_rows))).astype("datetime64[D]"),
        "tag": np.array(["alpha", "beta", "gamma"], dtype=object)[
            rng.integers(0, 3, num_rows)],
        "note": np.array([f"unique note {i}" for i in range(num_rows)],
                         dtype=object),
    })
    session = TQPSession(default_options=ExecutionOptions(encoding=encoding))
    session.register("t", frame)
    return session


# -- round trips --------------------------------------------------------------


def test_dictionary_encode_round_trip():
    values = ["cherry", "apple", "banana", "apple", None, "cherry"]
    column = dictionary_encode(values)
    assert isinstance(column.encoding, DictionaryEncoding)
    assert column.encoding.cardinality == 4  # "", apple, banana, cherry
    assert column.tensor.ndim == 1 and column.tensor.dtype.name == "int32"
    decoded = column.to_numpy()
    assert list(decoded) == ["cherry", "apple", "banana", "apple", "", "cherry"]
    # The dictionary is sorted, so codes are order-preserving.
    codes = column.tensor.numpy()
    assert codes[1] < codes[2] < codes[0]  # apple < banana < cherry


def test_run_length_encode_round_trip():
    array = np.repeat(np.array([5, 5, 9, 1], dtype=np.int64), [3, 1, 4, 2])
    column = run_length_encode(array, LogicalType.INT)
    assert isinstance(column.encoding, RunLengthEncoding)
    assert column.encoding.num_runs == 3  # 5-run merges
    assert column.num_rows == len(array)
    np.testing.assert_array_equal(column.to_numpy(), array)
    # Positional access decodes transparently.
    np.testing.assert_array_equal(column.slice(2, 5).to_numpy(), array[2:7])
    taken = column.gather(ops.tensor(np.array([0, 9, 4]), dtype="int64"))
    np.testing.assert_array_equal(taken.to_numpy(), array[[0, 9, 4]])


def test_constant_column_is_one_run():
    column = run_length_encode(np.full(100, 7, dtype=np.int64), LogicalType.INT)
    assert column.encoding.is_constant
    assert column.encoding.num_runs == 1
    assert column.num_rows == 100


def test_encode_column_policy():
    n = 1000
    rng = np.random.default_rng(1)
    low_card = np.array(["a", "b"], dtype=object)[rng.integers(0, 2, n)]
    unique = np.array([f"s{i}" for i in range(n)], dtype=object)
    sorted_ints = np.sort(rng.integers(0, 50, n)).astype(np.int64)
    random_ints = rng.integers(0, 10**9, n)

    assert isinstance(encode_column(low_card).encoding, DictionaryEncoding)
    assert encode_column(unique).encoding is None          # NDV too high
    assert isinstance(encode_column(sorted_ints).encoding, RunLengthEncoding)
    assert encode_column(random_ints).encoding is None     # too many runs
    assert encode_column(low_card, mode="off").encoding is None
    assert encode_column(sorted_ints, mode="dictionary").encoding is None
    assert encode_column(low_card, mode="rle").encoding is None
    # Tiny columns are never encoded.
    assert encode_column(np.array(["a", "a"], dtype=object)).encoding is None


def test_concat_columns_shared_dictionary_stays_encoded():
    column = dictionary_encode(["x", "y", "x", "z", "y", "z"])
    top, bottom = column.slice(0, 3), column.slice(3, 3)
    merged = concat_columns([top, bottom])
    assert merged.encoding is column.encoding
    assert list(merged.to_numpy()) == ["x", "y", "x", "z", "y", "z"]
    # Mixed encoded/plain chunks decode to the padded representation.
    plain = TensorColumn.from_numpy(np.array(["long-string", "y"], dtype=object))
    mixed = concat_columns([top, plain])
    assert mixed.encoding is None
    assert list(mixed.to_numpy()) == ["x", "y", "x", "long-string", "y"]


# -- encoded execution matches plain execution --------------------------------


ENCODED_QUERIES = [
    "select k, tag from t where tag = 'beta' order by k, tag",
    "select tag, count(*) as c, sum(v) as s from t group by tag order by tag",
    "select k from t where tag in ('alpha', 'gamma') order by k",
    "select tag from t where note like '%note 1%' order by tag",
    "select distinct tag from t order by tag",
    "select tag, length(tag) as l from t where tag <> 'alpha' order by tag",
    "select count(distinct tag) as n from t",
    "select max(d) as hi from t where k between 3 and 9",
]


@pytest.mark.parametrize("backend", ["pytorch", "torchscript"])
@pytest.mark.parametrize("sql", ENCODED_QUERIES)
def test_encoded_execution_matches_plain(frames_match, sql, backend):
    encoded = make_session(encoding="auto")
    plain = make_session(encoding="off")
    frames_match(encoded.sql(sql, options=ExecutionOptions(backend=backend)),
                 plain.sql(sql, options=ExecutionOptions(backend=backend)), f"{sql} [{backend}]")


def test_session_conversion_actually_encodes():
    session = make_session()
    compiled = session.compile("select tag, d, note from t")
    inputs = session.prepare_inputs(compiled.executor)
    table = inputs["t"]
    assert isinstance(table.column("t.tag").encoding, DictionaryEncoding)
    assert isinstance(table.column("t.d").encoding, RunLengthEncoding)
    assert table.column("t.note").encoding is None  # unique strings stay plain


def test_parameterized_equality_on_dictionary_codes(frames_match):
    encoded = make_session(encoding="auto")
    plain = make_session(encoding="off")
    options = ExecutionOptions(backend="torchscript", encoding="auto")
    query = encoded.prepare("select k from t where tag = :tag order by k",
                            options=options)
    for tag in ("alpha", "beta", "nosuch"):
        expected = plain.sql(f"select k from t where tag = '{tag}' order by k")
        frames_match(query.bind(tag=tag).run(), expected, f"tag={tag}")
    assert query.compiled.executor.compile_count == 1


# -- cache keying and invalidation --------------------------------------------


def test_encoding_mode_is_part_of_the_plan_cache_key():
    session = make_session()
    sql = "select sum(v) as s from t"
    auto = session.compile(sql, options=ExecutionOptions(encoding="auto"))
    off = session.compile(sql, options=ExecutionOptions(encoding="off"))
    assert auto is not off
    again = session.compile(sql, options=ExecutionOptions(encoding="auto"))
    assert again is auto


def test_conversion_cache_keyed_by_encoding_and_version():
    session = make_session()
    compiled_auto = session.compile("select tag from t",
                                    options=ExecutionOptions(encoding="auto"))
    compiled_off = session.compile("select tag from t",
                                   options=ExecutionOptions(encoding="off"))
    encoded = session.prepare_inputs(compiled_auto.executor)["t"]
    plain = session.prepare_inputs(compiled_off.executor)["t"]
    assert encoded.column("t.tag").encoding is not None
    assert plain.column("t.tag").encoding is None


def test_reregister_with_different_dtype_bumps_version():
    """Re-registering a table with a different layout (dtype or encoding
    eligibility) must invalidate cached plans and converted columns."""
    session = make_session()
    sql = "select k, tag from t where tag = 'alpha' order by k"
    first = session.compile(sql, options=ExecutionOptions(backend="torchscript"))
    result_first = first.run()
    assert result_first.num_rows > 0

    # New data under the same name: k becomes float, tag becomes high-NDV
    # (no longer dictionary-encodable), and the matching rows change.
    n = 64
    frame = DataFrame({
        "k": np.linspace(0.0, 1.0, n),
        "v": np.zeros(n),
        "d": np.repeat(np.datetime64("2024-06-01"), n).astype("datetime64[D]"),
        "tag": np.array([f"tag-{i}" for i in range(n)], dtype=object),
        "note": np.array(["x"] * n, dtype=object),
    })
    session.register("t", frame)
    second = session.compile(sql, options=ExecutionOptions(backend="torchscript"))
    assert second is not first, "stale plan served after re-registration"
    assert second.run().num_rows == 0
    converted = session.prepare_inputs(second.executor)["t"]
    assert converted.column("t.tag").encoding is None
    assert converted.column("t.k").ltype == LogicalType.FLOAT
