"""Unit tests for the prepared-statement API: prepare/bind/execute,
parameter typing, bind-time validation, plan-cache interaction, and
auto-parameterization."""

import numpy as np
import pytest

from repro import DataFrame, ExecutionOptions, TQPSession
from repro.core.columnar import LogicalType
from repro.core.parameters import (
    PARAM_STRING_WIDTH,
    auto_parameterize,
)
from repro.errors import AnalysisError, BindingError, SQLSyntaxError


@pytest.fixture
def session():
    s = TQPSession()
    s.register("items", DataFrame({
        "item_id": np.array([1, 2, 3, 4, 5, 6], dtype=np.int64),
        "price": np.array([5.0, 7.5, 2.5, 10.0, 1.0, 4.0]),
        "quantity": np.array([2, 1, 4, 1, 6, 3], dtype=np.int64),
        "shipped": np.array(["2024-01-05", "2024-01-20", "2024-02-10",
                             "2024-02-28", "2024-03-05", "2024-03-20"],
                            dtype="datetime64[D]"),
        "note": np.array(["fast", "gift", "fragile", "fast", "plain", "gift"],
                         dtype=object),
    }))
    return s


# -- parameter typing -------------------------------------------------------


def test_parameter_types_inferred_from_comparison_context(session):
    prepared = session.prepare(
        "select count(*) as c from items "
        "where price < :p and quantity = :q and note = :n and shipped >= :d")
    types = {spec.name: spec.ltype for spec in prepared.parameters}
    assert types == {"p": LogicalType.FLOAT, "q": LogicalType.INT,
                     "n": LogicalType.STRING, "d": LogicalType.DATE}


def test_parameter_type_inferred_from_arithmetic_and_between(session):
    prepared = session.prepare(
        "select sum(price * :rate) as s from items "
        "where quantity between :lo and :hi")
    types = {spec.name: spec.ltype for spec in prepared.parameters}
    assert types == {"rate": LogicalType.FLOAT, "lo": LogicalType.INT,
                     "hi": LogicalType.INT}


def test_uninferable_parameter_raises_analysis_error(session):
    with pytest.raises(AnalysisError, match="cannot infer the type"):
        session.prepare("select :mystery as v from items")


def test_mixing_positional_and_named_markers_rejected(session):
    with pytest.raises(SQLSyntaxError, match="cannot mix"):
        session.prepare("select count(*) as c from items "
                        "where price < :p and quantity = ?")


# -- binding ----------------------------------------------------------------


def test_bind_execute_and_rebind(session):
    prepared = session.prepare("select sum(price) as s from items where price < :p")
    assert prepared.bind(p=5.0).run().to_dict() == {"s": [7.5]}
    assert prepared.bind(p=100.0).run().to_dict() == {"s": [30.0]}
    # convenience forms
    assert prepared.run(p=5.0).to_dict() == {"s": [7.5]}


def test_positional_binding_in_marker_order(session):
    prepared = session.prepare(
        "select item_id from items where quantity >= ? and price < ? order by item_id")
    assert prepared.bind(3, 5.0).run().to_dict() == {"item_id": [3, 5, 6]}
    with pytest.raises(BindingError, match="2 positional"):
        prepared.bind(3)
    with pytest.raises(BindingError, match="not both"):
        prepared.bind(3, p=1.0)


def test_missing_unknown_and_ill_typed_bindings(session):
    prepared = session.prepare(
        "select count(*) as c from items where price < :p and note = :n")
    with pytest.raises(BindingError, match=r"missing value\(s\).*:n"):
        prepared.bind(p=1.0)
    with pytest.raises(BindingError, match=r"unknown parameter\(s\): :zzz"):
        prepared.bind(p=1.0, n="fast", zzz=1)
    with pytest.raises(BindingError, match=":p expects a float"):
        prepared.bind(p="cheap", n="fast")
    with pytest.raises(BindingError, match=":n expects a string"):
        prepared.bind(p=1.0, n=42)


def test_int_accepted_for_float_parameter_and_bool_rejected_for_int(session):
    prepared = session.prepare("select count(*) as c from items where price < :p")
    assert prepared.bind(p=5).run().to_dict() == {"c": [3]}
    q = session.prepare("select count(*) as c from items where quantity = :q")
    with pytest.raises(BindingError):
        q.bind(q=True)


def test_string_parameter_width_limit(session):
    prepared = session.prepare("select count(*) as c from items where note = :n")
    with pytest.raises(BindingError, match="longer than"):
        prepared.bind(n="x" * (PARAM_STRING_WIDTH + 1))


def test_date_parameter_accepts_string_and_date(session):
    import datetime

    prepared = session.prepare(
        "select count(*) as c from items where shipped < :d")
    assert prepared.bind(d="2024-02-01").run().to_dict() == {"c": [2]}
    assert prepared.bind(d=datetime.date(2024, 2, 1)).run().to_dict() == {"c": [2]}
    with pytest.raises(BindingError):
        prepared.bind(d="not-a-date")


def test_execute_without_binding_parameterized_statement_fails(session):
    compiled = session.compile("select count(*) as c from items where price < :p")
    with pytest.raises(BindingError, match="missing"):
        compiled.execute()


# -- compile-once / bind-many ----------------------------------------------


def test_one_trace_serves_many_bindings(session):
    prepared = session.prepare(
        "select sum(price) as s from items where price < :p",
        options=ExecutionOptions(backend="torchscript"))
    results = prepared.execute_many([{"p": float(p)} for p in range(1, 12)])
    assert len(results) == 11
    assert prepared.compiled.executor.compile_count == 1


def test_preparing_twice_shares_one_cache_entry(session):
    sql = "select sum(price) as s from items where price < :p"
    first = session.prepare(sql, options=ExecutionOptions(backend="torchscript"))
    second = session.prepare(sql, options=ExecutionOptions(backend="torchscript"))
    assert second.compiled is first.compiled
    assert session.plan_cache.stats()["hits"] == 1


def test_parameterized_shape_is_the_cache_key(session):
    sql = "select count(*) as c from items where price < :p"
    a = session.prepare(sql)
    b = session.prepare(sql.replace(":p", ":other"))
    assert a.compiled is not b.compiled  # different shapes, different entries


def test_explain_lists_parameters(session):
    prepared = session.prepare("select count(*) as c from items where price < :p")
    assert ":p float" in prepared.explain()


# -- auto-parameterization --------------------------------------------------


def test_auto_parameterize_lifts_and_dedups_literals():
    lifted = auto_parameterize(
        "select price + 1 as p from items where quantity > 1 and price < 2.5")
    assert lifted.sql.count(":__a0") == 2          # the two 1s share one marker
    assert lifted.values == {"__a0": 1, "__a1": 2.5}
    assert lifted.types["__a0"] == LogicalType.INT
    assert lifted.types["__a1"] == LogicalType.FLOAT


def test_auto_parameterize_skips_structural_literals():
    lifted = auto_parameterize(
        "select substring(note, 1, 3) as s from items "
        "where note like '%a%' and shipped < date '2024-02-01' "
        "  and shipped > date '2024-01-01' - interval '10' day and price < 9 "
        "order by s limit 2")
    assert "like '%a%'" in lifted.sql
    assert "date '2024-02-01'" in lifted.sql
    assert "interval '10' day" in lifted.sql
    assert "substring ( note , 1 , 3 )" in lifted.sql
    assert "limit 2" in lifted.sql
    assert lifted.values == {"__a0": 9}


def test_auto_parameterize_leaves_explicit_parameters_alone():
    assert auto_parameterize("select 1 + 1 as x from t where a < :p") is None
    assert auto_parameterize("select a from t") is None


def test_auto_parameterized_sql_shares_one_plan_and_matches_literals(session):
    options = ExecutionOptions(backend="torchscript", auto_parameterize=True)
    plain = [session.sql(f"select sum(price) as s from items where quantity > {q}")
             .to_dict() for q in (1, 2, 3)]
    session.plan_cache.clear()
    hits0, misses0 = session.plan_cache.hits, session.plan_cache.misses
    lifted = [session.sql(f"select sum(price) as s from items where quantity > {q}",
                          options=options).to_dict() for q in (1, 2, 3)]
    assert lifted == plain
    assert session.plan_cache.stats()["size"] == 1
    assert session.plan_cache.misses - misses0 == 1
    assert session.plan_cache.hits - hits0 == 2


def test_auto_parameterization_distinguishes_literal_types(session):
    options = ExecutionOptions(auto_parameterize=True)
    a = session.sql("select sum(price) as s from items where quantity > 1",
                    options=options)
    b = session.sql("select sum(price) as s from items where quantity > 1.5",
                    options=options)
    # int vs float literal shapes must not collide on one typed plan
    assert a.to_dict() == {"s": [12.5]}
    assert b.to_dict() == {"s": [12.5]}
    assert session.plan_cache.stats()["size"] == 2


def test_sql_with_params_kwarg(session):
    got = session.sql("select count(*) as c from items where note = :n",
                      params={"n": "gift"})
    assert got.to_dict() == {"c": [2]}


# -- conversion-cache versioning (satellite) --------------------------------


def test_long_lived_compiled_query_never_reads_stale_converted_columns(session):
    compiled = session.compile("select sum(price) as s from items")
    assert compiled.run().to_dict() == {"s": [30.0]}
    session.register("items", DataFrame({
        "item_id": np.array([1], dtype=np.int64),
        "price": np.array([2.0]),
        "quantity": np.array([1], dtype=np.int64),
        "shipped": np.array(["2024-01-05"], dtype="datetime64[D]"),
        "note": np.array(["fast"], dtype=object),
    }))
    # The old CompiledQuery object is held across the register(): its inputs
    # must be converted from the *new* table, not served from the old
    # conversion-cache entry.
    assert compiled.run().to_dict() == {"s": [2.0]}
