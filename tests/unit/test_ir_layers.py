"""Unit tests for the IR, the IR builder, and the IR optimizer rules."""

import numpy as np
import pytest

from repro import DataFrame
from repro.core import ir
from repro.core.ir_builder import build_ir
from repro.core.ir_optimizer import (
    annotate_topk,
    fuse_filters,
    optimize_ir,
    remove_identity_projects,
    remove_identity_renames,
)
from repro.frontend import Catalog, sql_to_physical


@pytest.fixture
def catalog():
    catalog = Catalog()
    catalog.register("t", DataFrame({
        "a": np.array([1, 2, 3], dtype=np.int64),
        "b": np.array([1.0, 2.0, 3.0]),
        "s": np.array(["x", "y", "z"], dtype=object),
    }))
    return catalog


def _ir_for(sql, catalog):
    return build_ir(sql_to_physical(sql, catalog))


def test_build_ir_covers_operators(catalog):
    node = _ir_for("select a, count(*) as n from t where b > 1 group by a "
                   "order by n desc limit 2", catalog)
    counts = node.op_counts()
    for op in (ir.SCAN, ir.FILTER, ir.PROJECT, ir.HASH_AGGREGATE, ir.SORT, ir.LIMIT):
        assert counts.get(op, 0) >= 1
    assert node.op == ir.LIMIT
    assert "scan(t)" in node.pretty() or "scan" in node.pretty()


def test_build_ir_preserves_schema(catalog):
    node = _ir_for("select a as key, b * 2 as double_b from t", catalog)
    assert [f.name for f in node.fields] == ["key", "double_b"]


def test_fuse_filters_rule(catalog):
    node = _ir_for("select a from t where b > 1", catalog)
    # Manually stack a second filter to exercise the rule.
    inner_filter = node.children[0]
    assert inner_filter.op == ir.FILTER
    stacked = ir.IRNode(ir.FILTER, [inner_filter], dict(inner_filter.attrs),
                        inner_filter.fields)
    node.children[0] = stacked
    fused = fuse_filters(node)
    filters = [n for n in fused.walk() if n.op == ir.FILTER]
    assert len(filters) == 1


def test_remove_identity_projects_rule(catalog):
    node = _ir_for("select a, b, s from t", catalog)
    # The top project is an identity over the scan columns except for naming;
    # construct an explicit identity to validate the rule triggers.
    scan = [n for n in node.walk() if n.op == ir.SCAN][0]
    from repro.frontend import ast

    exprs = []
    for field in scan.fields:
        ref = ast.ColumnRef(None, field.name.split(".")[-1], resolved=field.name)
        ref.otype = field.ltype
        exprs.append(ref)
    identity = ir.IRNode(ir.PROJECT, [scan], {
        "exprs": exprs, "names": [f.name for f in scan.fields],
        "types": [f.ltype for f in scan.fields],
    }, scan.fields)
    assert remove_identity_projects(identity).op == ir.SCAN


def test_remove_identity_renames_rule(catalog):
    node = _ir_for("select a from t", catalog)
    scan = [n for n in node.walk() if n.op == ir.SCAN][0]
    rename = ir.IRNode(ir.RENAME, [scan], {"output_fields": list(scan.fields)},
                       scan.fields)
    assert remove_identity_renames(rename).op == ir.SCAN
    different = ir.IRNode(ir.RENAME, [scan], {
        "output_fields": [type(f)(name=f.name + "_x", ltype=f.ltype)
                          for f in scan.fields]}, scan.fields)
    assert remove_identity_renames(different).op == ir.RENAME


def test_annotate_topk_rule(catalog):
    node = _ir_for("select a from t order by a limit 2", catalog)
    annotated = annotate_topk(node)
    sort = [n for n in annotated.walk() if n.op == ir.SORT][0]
    assert sort.attrs.get("topk") == 2


def test_optimize_ir_pipeline_keeps_semantics(catalog):
    node = optimize_ir(_ir_for("select a from t where a > 1 order by a", catalog))
    assert node.op in (ir.SORT, ir.PROJECT, ir.LIMIT)
    assert ir.SCAN in node.op_counts()
