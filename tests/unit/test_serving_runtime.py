"""Unit tests for the concurrent serving runtime and the thread-safety fixes
that make it possible: admission control, queueing timeouts, inter-query bind
batching, single-flight plan compilation, profiler-scope propagation across
worker threads, concurrent dataset-cache writers, and re-registration while
requests are in flight."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro import DataFrame, ExecutionOptions, TQPSession
from repro.core.plan_cache import PlanCache
from repro.datasets.tpch import io as tpch_io
from repro.datasets.tpch import schema as tpch_schema
from repro.errors import (
    AdmissionError,
    BatchBindingError,
    BindingError,
    ExecutionError,
    RequestTimeoutError,
    ServingError,
)
from repro.serve import ServingRuntime
from repro.storage import BLOCK_ROWS
from repro.tensor.profiler import Profiler, capture_scope

SQL = "select sum(amount) as total from sales where amount >= :lo"
OPTIONS = ExecutionOptions(backend="torchscript", device="cpu")
#: PREDICT through a gated model callable runs on the eager backend, where
#: the model executes on every request — the hook the tests use to hold a
#: worker mid-request deterministically.
BLOCKER_SQL = "select sum(predict('gate', amount)) as total from sales"
EAGER = ExecutionOptions(backend="pytorch", device="cpu")


def make_session() -> TQPSession:
    frame = DataFrame({
        "region": np.array(["eu", "us", "eu", "apac", "us", "eu"], dtype=object),
        "amount": np.array([10.0, 25.0, 35.0, 15.0, 5.0, 20.0]),
    })
    session = TQPSession()
    session.register("sales", frame)
    return session


class WorkerGate:
    """Registered as a model; blocks the executing worker until released."""

    def __init__(self):
        self.entered = threading.Event()
        self.release = threading.Event()

    def __call__(self, args, num_rows):
        self.entered.set()
        assert self.release.wait(20), "test gate never released"
        return args[0]


def gated_runtime(session=None, **kwargs):
    session = session or make_session()
    gate = WorkerGate()
    session.register_model("gate", gate)
    runtime = ServingRuntime(session, workers=kwargs.pop("workers", 1),
                             default_options=OPTIONS, **kwargs)
    return runtime, gate, session


# -- basic routing ----------------------------------------------------------


def test_execute_matches_direct_session_result():
    session = make_session()
    expected = session.prepare(SQL, options=OPTIONS).run(lo=15.0).to_dict()
    with ServingRuntime(session, workers=2, default_options=OPTIONS) as runtime:
        result = runtime.execute(SQL, params={"lo": 15.0})
        assert result.to_dataframe().to_dict() == expected
        statement = runtime.prepare(SQL)
        assert statement.run(lo=15.0).to_dict() == expected
        assert statement.execute(lo=15.0).to_dataframe().to_dict() == expected
    stats = runtime.stats()
    assert stats["submitted"] == 3 and stats["completed"] == 3
    assert stats["failed"] == 0


def test_statements_share_one_compiled_artifact():
    session = make_session()
    with ServingRuntime(session, default_options=OPTIONS) as runtime:
        first = runtime.prepare(SQL)
        second = runtime.prepare("  SELECT sum(amount) AS total "
                                 "FROM sales WHERE amount >= :lo ")
        assert first.prepared.compiled is second.prepared.compiled


def test_submit_validates_bindings_on_the_client_thread():
    runtime, gate, _ = gated_runtime()
    try:
        with pytest.raises(BindingError):
            runtime.submit(SQL, params={"wrong": 1.0})
        with pytest.raises(BindingError):
            runtime.submit(SQL, params={"lo": "not-a-number"})
        # Failed validation consumed no queue slot and admitted nothing.
        stats = runtime.stats()
        assert stats["submitted"] == 0 and stats["queue_depth"] == 0
    finally:
        gate.release.set()
        runtime.close()


def test_closed_runtime_rejects_submissions():
    runtime, gate, _ = gated_runtime()
    gate.release.set()
    runtime.close()
    with pytest.raises(ServingError):
        runtime.submit(SQL, params={"lo": 0.0})


# -- admission control and timeouts ----------------------------------------


def test_admission_control_bounds_the_queue():
    runtime, gate, _ = gated_runtime(max_queue_depth=2)
    try:
        blocker = runtime.submit(BLOCKER_SQL, options=EAGER)
        assert gate.entered.wait(10)  # the only worker is now held
        queued = [runtime.submit(SQL, params={"lo": 0.0}) for _ in range(2)]
        with pytest.raises(AdmissionError) as excinfo:
            runtime.submit(SQL, params={"lo": 0.0})
        assert excinfo.value.queue_depth == 2
        assert isinstance(excinfo.value, ServingError)
        assert isinstance(excinfo.value, ExecutionError)
        assert runtime.stats()["rejected"] == 1
        gate.release.set()
        assert blocker.result(20) is not None
        for ticket in queued:
            assert ticket.result(20) is not None
        # The queue drained; admission opens up again.
        assert runtime.execute(SQL, params={"lo": 0.0}) is not None
    finally:
        gate.release.set()
        runtime.close()


def test_request_timeout_expires_in_queue():
    runtime, gate, _ = gated_runtime(max_queue_depth=8)
    try:
        blocker = runtime.submit(BLOCKER_SQL, options=EAGER)
        assert gate.entered.wait(10)
        victim = runtime.submit(SQL, params={"lo": 0.0}, timeout=0.02)
        survivor = runtime.submit(SQL, params={"lo": 0.0})
        time.sleep(0.1)  # the victim's deadline passes while queued
        gate.release.set()
        with pytest.raises(RequestTimeoutError):
            victim.result(20)
        # Expiry is per request: neighbours and the runtime are unaffected.
        assert survivor.result(20) is not None
        assert blocker.result(20) is not None
        stats = runtime.stats()
        assert stats["timed_out"] == 1
        assert stats["completed"] == 2
    finally:
        gate.release.set()
        runtime.close()


def test_close_without_drain_fails_pending_requests():
    runtime, gate, _ = gated_runtime(max_queue_depth=8)
    blocker = runtime.submit(BLOCKER_SQL, options=EAGER)
    assert gate.entered.wait(10)
    victim = runtime.submit(SQL, params={"lo": 0.0})
    closer = threading.Thread(target=runtime.close, kwargs={"drain": False})
    closer.start()
    with pytest.raises(ServingError):
        victim.result(20)
    gate.release.set()
    closer.join(20)
    assert not closer.is_alive()
    assert blocker.result(20) is not None
    assert runtime.stats()["cancelled"] == 1


# -- bind batching ----------------------------------------------------------


def test_queued_bindings_batch_into_one_replay():
    runtime, gate, session = gated_runtime(batch_window=8, max_queue_depth=64)
    try:
        blocker = runtime.submit(BLOCKER_SQL, options=EAGER)
        assert gate.entered.wait(10)
        statement = runtime.prepare(SQL)
        values = [0.0, 10.0, 15.0, 20.0, 25.0, 30.0]
        tickets = [statement.submit(lo=value) for value in values]
        gate.release.set()
        results = [ticket.result(20) for ticket in tickets]
        blocker.result(20)
        expected = [session.prepare(SQL, options=OPTIONS).run(lo=value).to_dict()
                    for value in values]
        assert [r.to_dataframe().to_dict() for r in results] == expected
        stats = runtime.stats()
        assert stats["batches"] == 1
        assert stats["batched_requests"] == len(values)
        assert stats["max_batch"] == len(values)
    finally:
        gate.release.set()
        runtime.close()


def test_identical_bindings_share_one_replay():
    runtime, gate, _ = gated_runtime(batch_window=8, max_queue_depth=64)
    try:
        blocker = runtime.submit(BLOCKER_SQL, options=EAGER)
        assert gate.entered.wait(10)
        statement = runtime.prepare(SQL)
        tickets = [statement.submit(lo=15.0) for _ in range(5)]
        gate.release.set()
        results = [ticket.result(20) for ticket in tickets]
        blocker.result(20)
        values = {r.to_dataframe().to_dict()["total"][0] for r in results}
        assert values == {95.0}
        stats = runtime.stats()
        assert stats["batches"] == 1
        assert stats["deduped_requests"] == 4
    finally:
        gate.release.set()
        runtime.close()


def test_batch_window_one_disables_batching():
    runtime, gate, _ = gated_runtime(batch_window=1, max_queue_depth=64)
    try:
        blocker = runtime.submit(BLOCKER_SQL, options=EAGER)
        assert gate.entered.wait(10)
        statement = runtime.prepare(SQL)
        tickets = [statement.submit(lo=value) for value in (0.0, 10.0, 20.0)]
        gate.release.set()
        for ticket in tickets:
            assert ticket.result(20) is not None
        blocker.result(20)
        assert runtime.stats()["batches"] == 0
    finally:
        gate.release.set()
        runtime.close()


# -- batch binding errors ---------------------------------------------------


def test_execute_many_raises_indexed_batch_binding_error():
    session = make_session()
    prepared = session.prepare(SQL, options=OPTIONS)
    with pytest.raises(BatchBindingError) as excinfo:
        prepared.execute_many([{"lo": 0.0}, {"bad": 1.0}, {"lo": 5.0}])
    assert excinfo.value.index == 1
    assert isinstance(excinfo.value, BindingError)
    assert isinstance(excinfo.value.cause, BindingError)


def test_execute_many_collect_isolates_the_bad_binding():
    session = make_session()
    prepared = session.prepare(SQL, options=OPTIONS)
    outcomes = prepared.execute_many(
        [{"lo": 0.0}, {"bad": 1.0}, {"lo": 15.0}], on_error="collect")
    assert isinstance(outcomes[1], BatchBindingError)
    assert outcomes[1].index == 1
    assert outcomes[0].to_dataframe().to_dict()["total"] == [110.0]
    assert outcomes[2].to_dataframe().to_dict()["total"] == [95.0]
    # The failure poisoned nothing: the same statement keeps serving.
    again = prepared.execute_many([{"lo": 15.0}])
    assert again[0].to_dataframe().to_dict()["total"] == [95.0]


def test_execute_many_positional_arity_error_is_indexed():
    session = make_session()
    prepared = session.prepare(
        "select count(*) as c from sales where amount >= ?", options=OPTIONS)
    outcomes = prepared.execute_many([(0.0,), (1.0, 2.0), (15.0,)],
                                     on_error="collect")
    assert isinstance(outcomes[1], BatchBindingError)
    assert outcomes[1].index == 1
    assert outcomes[0].to_dataframe().to_dict()["c"] == [6]
    assert outcomes[2].to_dataframe().to_dict()["c"] == [4]


def test_all_bad_bindings_short_circuits_without_tracing():
    session = make_session()
    prepared = session.prepare(SQL, options=OPTIONS)
    outcomes = prepared.execute_many([{"bad": 1.0}], on_error="collect")
    assert len(outcomes) == 1 and isinstance(outcomes[0], BatchBindingError)


# -- single-flight compilation ----------------------------------------------


def test_plan_cache_get_or_create_single_flight():
    cache = PlanCache(capacity=8)
    calls, results, barrier = [], [], threading.Barrier(6)

    def factory():
        calls.append(threading.get_ident())
        time.sleep(0.02)
        return object()

    def contender():
        barrier.wait()
        results.append(cache.get_or_create("key", factory))

    threads = [threading.Thread(target=contender) for _ in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(calls) == 1, "concurrent misses must share one compilation"
    assert all(entry is results[0] for entry in results)


def test_plan_cache_get_or_create_retries_after_factory_failure():
    cache = PlanCache(capacity=8)
    attempts = []

    def flaky():
        attempts.append(None)
        if len(attempts) == 1:
            raise RuntimeError("first build fails")
        return "built"

    with pytest.raises(RuntimeError):
        cache.get_or_create("key", flaky)
    assert cache.get_or_create("key", flaky) == "built"
    assert len(attempts) == 2


def test_concurrent_session_compiles_share_one_entry():
    session = make_session()
    compiled, barrier = [], threading.Barrier(4)

    def compile_it():
        barrier.wait()
        compiled.append(session.compile(SQL, options=OPTIONS))

    threads = [threading.Thread(target=compile_it) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert all(entry is compiled[0] for entry in compiled)
    assert session.plan_cache.stats()["size"] == 1


# -- profiler scope propagation ---------------------------------------------


def test_profiled_results_identical_on_caller_and_pool_thread():
    session = make_session()
    inline = session.prepare(SQL, options=OPTIONS).bind(lo=15.0).execute(
        profile=True)
    with ServingRuntime(session, workers=2, default_options=OPTIONS) as runtime:
        pooled = runtime.execute(SQL, params={"lo": 15.0}, profile=True)
    assert pooled.profile is not None
    assert ([(e.op, e.scope, e.lane) for e in inline.profile.events]
            == [(e.op, e.scope, e.lane) for e in pooled.profile.events])
    assert (inline.to_dataframe().to_dict() == pooled.to_dataframe().to_dict())


def test_capture_scope_carries_active_profiler_to_worker_thread():
    session = make_session()
    with Profiler("baseline") as baseline:
        session.prepare(SQL, options=EAGER).bind(lo=15.0).execute()
    assert baseline.events, "eager ops should record into the active profiler"

    with ServingRuntime(session, workers=2, default_options=EAGER) as runtime:
        with Profiler("outer") as outer:
            # The submission happens under an active profiler; the captured
            # scope re-activates it on whichever worker runs the request.
            runtime.execute(SQL, params={"lo": 15.0}, options=EAGER)
    assert ([e.op for e in outer.events] == [e.op for e in baseline.events])


def test_capture_scope_restores_previous_thread_state():
    scope = capture_scope()
    assert scope.is_empty
    profiler = Profiler("p")
    with profiler:
        captured = capture_scope()
        assert not captured.is_empty
    recorded = []

    def worker():
        with captured:
            from repro.tensor.profiler import current_profiler
            recorded.append(current_profiler())
        from repro.tensor.profiler import current_profiler
        recorded.append(current_profiler())

    thread = threading.Thread(target=worker)
    thread.start()
    thread.join()
    assert recorded[0] is profiler
    assert recorded[1] is None


# -- concurrent dataset-cache writers ---------------------------------------


def test_concurrent_tpch_cache_writers_share_one_generation(tmp_path):
    root = tmp_path / "tpch-cache"
    results: list[dict] = []
    barrier = threading.Barrier(5)

    def writer():
        barrier.wait()
        results.append(tpch_io.cached_tables(scale_factor=0.0001, seed=3,
                                             root=root))

    threads = [threading.Thread(target=writer) for _ in range(5)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(results) == 5
    for tables in results:
        assert set(tables) == set(tpch_schema.TABLE_COLUMNS)
    # Every caller saw the same data (one generation, not five).
    reference = results[0]["lineitem"]["l_quantity"]
    for tables in results[1:]:
        assert np.array_equal(tables["lineitem"]["l_quantity"], reference)
    # No staging or trash residue, and the published cache is complete.
    leftovers = [p.name for p in root.iterdir()
                 if ".tmp-" in p.name or ".trash-" in p.name]
    assert leftovers == []
    reloaded = tpch_io.cached_tables(scale_factor=0.0001, seed=3, root=root)
    assert np.array_equal(reloaded["lineitem"]["l_quantity"], reference)


def test_half_written_tpch_cache_is_never_served(tmp_path):
    root = tmp_path / "tpch-cache"
    directory = tpch_io.cache_directory(0.0001, 3, root)
    directory.mkdir(parents=True)
    (directory / "lineitem.tbl").write_text("1|garbage|\n")  # truncated cache
    tables = tpch_io.cached_tables(scale_factor=0.0001, seed=3, root=root)
    assert set(tables) == set(tpch_schema.TABLE_COLUMNS)
    assert tables["lineitem"].num_rows > 1
    # The rebuilt cache replaced the half-written one on disk.
    reloaded = tpch_io.load_tables(directory)
    assert set(reloaded) == set(tpch_schema.TABLE_COLUMNS)


# -- re-registration while serving ------------------------------------------


def _generation_frame(flipped: bool) -> DataFrame:
    """Four zone-map blocks of x; both generations sum to the same value
    under ``x >= 5`` but prune *different* blocks, so a traced program, zone
    maps, and converted columns from different generations can never agree."""
    n = 4 * BLOCK_ROWS
    x = np.empty(n)
    if flipped:
        x[:n // 2], x[n // 2:] = 9.0, 1.0
    else:
        x[:n // 2], x[n // 2:] = 1.0, 9.0
    return DataFrame({"x": x})


def test_reregister_while_serving_never_mixes_generations():
    expected = 9.0 * 2 * BLOCK_ROWS  # either generation's correct answer
    session = TQPSession()
    session.register("t", _generation_frame(False))
    stop = threading.Event()
    failures: list = []

    with ServingRuntime(session, workers=4, max_queue_depth=4096,
                        default_options=OPTIONS) as runtime:
        statement = runtime.prepare("select sum(x) as s from t where x >= 5")

        def hammer():
            while not stop.is_set():
                try:
                    value = statement.run()["s"][0]
                except Exception as exc:  # noqa: BLE001 - recorded for assert
                    failures.append(exc)
                    return
                if value != expected:
                    failures.append(AssertionError(
                        f"mixed-generation result: {value} != {expected}"))
                    return

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for flip in range(10):
            session.register("t", _generation_frame(flip % 2 == 0))
            time.sleep(0.01)
        stop.set()
        for thread in threads:
            thread.join(30)
    assert not failures, failures[0]
