"""Unit tests for the elementwise kernel-fusion pass."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.tensor import GraphInterpreter, Profiler, onnxlike, ops, passes, trace


def _run(graph, arrays, device=None):
    tensors = [ops.tensor(a) for a in arrays]
    return GraphInterpreter(graph).run(tensors, device=device)


def _trace_and_reference(fn, arrays, device=None):
    example = [ops.tensor(a) for a in arrays]
    graph = trace(fn, example)
    reference = [t.numpy()
                 for t in GraphInterpreter(graph.clone()).run(example, device=device)]
    return graph, reference


def test_fuse_merges_elementwise_chain_into_one_node():
    def fn(x):
        return ops.mul(ops.add(ops.mul(x, 2.0), 1.0), ops.sub(x, 0.5))

    graph, reference = _trace_and_reference(fn, [[1.0, 2.0, 3.0]])
    passes.fuse_elementwise(graph)
    assert [n.op for n in graph.nodes] == ["fused_kernel"]
    assert graph.nodes[0].attrs["label"] == "mul+add+sub+mul"
    np.testing.assert_allclose(_run(graph, [[1.0, 2.0, 3.0]])[0].numpy(), reference[0])


def test_fused_graph_records_one_profiler_event_per_kernel():
    def fn(x):
        y = ops.add(ops.mul(x, 3.0), 1.0)
        z = ops.sum_(y)                       # reduction breaks the chain
        return ops.mul(ops.add(z, 1.0), 2.0)

    graph, reference = _trace_and_reference(fn, [[1.0, 2.0]])
    unfused_ops = len(graph.nodes)
    passes.fuse_elementwise(graph)
    with Profiler() as profile:
        result = _run(graph, [[1.0, 2.0]])
    np.testing.assert_allclose(result[0].numpy(), reference[0])
    assert len(profile.events) == 3 < unfused_ops
    assert [e.op for e in profile.events] == ["fused_kernel", "sum", "fused_kernel"]


def test_fusion_exposes_intermediates_used_outside_the_group():
    def fn(x):
        a = ops.mul(x, 2.0)
        b = ops.add(a, 1.0)
        return ops.sum_(b), a                 # `a` escapes the fused group

    graph, reference = _trace_and_reference(fn, [[1.0, 4.0]])
    passes.fuse_elementwise(graph)
    fused = [n for n in graph.nodes if n.op == "fused_kernel"]
    assert len(fused) == 1 and len(fused[0].outputs) == 2
    out = _run(graph, [[1.0, 4.0]])
    np.testing.assert_allclose(out[0].numpy(), reference[0])
    np.testing.assert_allclose(out[1].numpy(), reference[1])


def test_fusion_covers_cmp_where_cast_clip():
    def fn(x):
        kept = ops.where(ops.gt(x, 1.0), x, ops.mul(x, -1.0))
        return ops.cast(ops.clip(kept, 0.0, 2.5), "float32")

    arrays = [[-3.0, 0.5, 2.0, 9.0]]
    graph, reference = _trace_and_reference(fn, arrays)
    passes.fuse_elementwise(graph)
    assert [n.op for n in graph.nodes] == ["fused_kernel"]
    result = _run(graph, arrays)[0]
    np.testing.assert_allclose(result.numpy(), reference[0])
    assert result.numpy().dtype == np.float32


def test_non_elementwise_and_impure_ops_break_the_chain():
    def fn(x):
        a = ops.add(x, 1.0)
        b = ops.to_device(a, "cuda")          # impure: never fused
        c = ops.mul(b, 2.0)
        d = ops.argsort(c)                    # not elementwise
        return ops.take(c, d)

    graph, _ = _trace_and_reference(fn, [[3.0, 1.0, 2.0]], device="cuda")
    passes.fuse_elementwise(graph)
    assert all(n.op != "fused_kernel" for n in graph.nodes)  # no run of length 2


def test_single_elementwise_node_is_left_unfused():
    graph, _ = _trace_and_reference(lambda x: ops.add(x, 1.0), [[1.0]])
    passes.fuse_elementwise(graph)
    assert [n.op for n in graph.nodes] == ["add"]


def test_fuse_is_idempotent():
    def fn(x):
        return ops.add(ops.mul(x, 2.0), 1.0)

    graph, reference = _trace_and_reference(fn, [[2.0]])
    passes.fuse_elementwise(graph)
    once = [n.op for n in graph.nodes]
    passes.fuse_elementwise(graph)
    assert [n.op for n in graph.nodes] == once == ["fused_kernel"]
    np.testing.assert_allclose(_run(graph, [[2.0]])[0].numpy(), reference[0])


def test_default_passes_fuse_and_validate():
    def fn(x):
        return ops.mul(ops.add(x, 1.0), ops.add(x, 1.0))  # CSE then fuse

    graph, reference = _trace_and_reference(fn, [[1.0, 2.0]])
    optimized = passes.optimize(graph)
    assert [n.op for n in optimized.nodes] == ["fused_kernel"]
    np.testing.assert_allclose(_run(optimized, [[1.0, 2.0]])[0].numpy(), reference[0])


def test_fused_graph_roundtrips_through_onnxlike():
    def fn(x):
        return ops.add(ops.mul(x, 2.0), ops.where(ops.lt(x, 0.0), 0.0, x))

    graph, reference = _trace_and_reference(fn, [[-1.0, 1.0]])
    optimized = passes.optimize(graph)
    restored = onnxlike.loads(onnxlike.dumps(optimized))
    assert restored.op_counts() == optimized.op_counts()
    np.testing.assert_allclose(_run(restored, [[-1.0, 1.0]])[0].numpy(), reference[0])


def test_onnxlike_rejects_malformed_fused_node():
    def fn(x):
        return ops.add(ops.mul(x, 2.0), 1.0)

    graph, _ = _trace_and_reference(fn, [[1.0]])
    passes.fuse_elementwise(graph)
    node = graph.nodes[0]
    node.attrs["steps"][0]["inputs"] = [99]   # undefined local slot
    with pytest.raises(GraphError):
        onnxlike.dumps(graph)
    del node.attrs["steps"][0]["inputs"]      # missing inputs entirely
    with pytest.raises(GraphError):
        onnxlike.dumps(graph)


def test_interpreter_skips_noop_device_moves():
    def fn(x):
        return ops.mul(ops.to_device(x, "cuda"), 2.0)

    graph, _ = _trace_and_reference(fn, [[1.0, 2.0]], device="cuda")
    with Profiler() as profile:
        # Inputs are moved to cuda by the interpreter; the traced to_device
        # node then sees an already-on-device tensor and must not re-dispatch.
        result = _run(graph, [[1.0, 2.0]], device="cuda")
    np.testing.assert_allclose(result[0].numpy(), [2.0, 4.0])
    assert [e.op for e in profile.events].count("to_device") == 1


def test_fusion_prunes_internal_value_metadata():
    def fn(x):
        return ops.add(ops.mul(x, 2.0), 1.0)

    graph, _ = _trace_and_reference(fn, [[1.0]])
    n_values_before = len(graph.values)
    passes.fuse_elementwise(graph)
    assert len(graph.values) < n_values_before
    graph.validate()
