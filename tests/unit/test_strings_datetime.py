"""Unit tests for string-tensor predicates and date extraction."""

import numpy as np
import pytest

from repro.core import datetime_ops, strings
from repro.core.columnar import encode_dates, encode_strings
from repro.errors import UnsupportedOperationError
from repro.tensor import ops


def _codes(values):
    return ops.tensor(encode_strings(values))


WORDS = ["PROMO BRASS", "STANDARD COPPER", "PROMO STEEL", "ECONOMY BRASS", ""]


def test_row_lengths():
    assert strings.row_lengths(_codes(["abc", "", "zz"])).tolist() == [3, 0, 2]


def test_equals_literal_and_columns():
    codes = _codes(WORDS)
    np.testing.assert_array_equal(
        strings.equals_literal(codes, "PROMO STEEL").numpy(),
        [False, False, True, False, False])
    # literal longer than the column width can never match
    assert not strings.equals_literal(_codes(["ab"]), "abc").numpy()[0]
    left = _codes(["aa", "bb"])
    right = ops.tensor(encode_strings(["aa", "bc"], width=5))
    np.testing.assert_array_equal(strings.equals_columns(left, right).numpy(),
                                  [True, False])


def test_starts_with_and_ends_with():
    codes = _codes(WORDS)
    np.testing.assert_array_equal(strings.starts_with(codes, "PROMO").numpy(),
                                  [True, False, True, False, False])
    np.testing.assert_array_equal(strings.ends_with(codes, "BRASS").numpy(),
                                  [True, False, False, True, False])
    assert strings.ends_with(codes, "").tolist() == [True] * 5
    assert strings.starts_with(codes, "").tolist() == [True] * 5


def test_contains():
    codes = _codes(WORDS)
    np.testing.assert_array_equal(strings.contains(codes, "AND").numpy(),
                                  [False, True, False, False, False])
    assert strings.contains(codes, "").tolist() == [True] * 5
    assert strings.contains(_codes(["ab"]), "abcdef").tolist() == [False]


@pytest.mark.parametrize("pattern,expected", [
    ("PROMO%", [True, False, True, False, False]),
    ("%BRASS", [True, False, False, True, False]),
    ("%OPP%", [False, True, False, False, False]),
    ("PROMO BRASS", [True, False, False, False, False]),
    ("%", [True, True, True, True, True]),
    ("PROMO%STEEL", [False, False, True, False, False]),
    ("%O%BRASS", [True, False, False, True, False]),
])
def test_like_patterns(pattern, expected):
    np.testing.assert_array_equal(strings.like(_codes(WORDS), pattern).numpy(),
                                  expected)


def test_like_multi_segment_in_order():
    codes = _codes(["wake special packages requests daily", "requests then special",
                    "specialrequests", "nothing here"])
    np.testing.assert_array_equal(
        strings.like(codes, "%special%requests%").numpy(),
        [True, False, True, False])


def test_like_rejects_underscore_wildcard():
    with pytest.raises(UnsupportedOperationError):
        strings.like(_codes(["ab"]), "a_")


def test_substring():
    codes = _codes(["12-555-867", "33-111-222"])
    out = strings.substring(codes, 1, 2)
    from repro.core.columnar import decode_strings

    assert decode_strings(out.numpy()).tolist() == ["12", "33"]
    assert decode_strings(strings.substring(codes, 4, None).numpy()).tolist() == \
        ["555-867", "111-222"]
    with pytest.raises(UnsupportedOperationError):
        strings.substring(codes, 0, 2)


def test_dense_rank_matches_lexicographic_order():
    values = ["pear", "apple", "pear", "fig", "apple"]
    ranks = strings.dense_rank(_codes(values)).tolist()
    # equal strings share ids; ids follow sorted order (apple < fig < pear)
    assert ranks == [2, 0, 2, 1, 0]
    assert strings.dense_rank(_codes(["solo"])).tolist() == [0]


def test_extract_field_matches_numpy_calendar():
    dates = np.array(["1992-01-01", "1994-02-28", "1996-02-29", "1998-12-31",
                      "2000-03-01", "1970-01-01"], dtype="datetime64[D]")
    ns = ops.tensor(encode_dates(dates))
    years = datetime_ops.extract_field(ns, "year").numpy()
    months = datetime_ops.extract_field(ns, "month").numpy()
    days = datetime_ops.extract_field(ns, "day").numpy()
    np.testing.assert_array_equal(years, [1992, 1994, 1996, 1998, 2000, 1970])
    np.testing.assert_array_equal(months, [1, 2, 2, 12, 3, 1])
    np.testing.assert_array_equal(days, [1, 28, 29, 31, 1, 1])
    with pytest.raises(ValueError):
        datetime_ops.extract_field(ns, "hour")
