"""Integration: adaptive re-planning on data drift, differential vs oracle.

The scenario the adaptive subsystem exists for: a statement's strategy
settles against one data distribution, the table is re-registered with the
skew inverted, and the runtime must (a) notice the drift from its own
observations, (b) flush the stale history and re-explore, (c) settle on a
different strategy — while every single execution, before, during and after
the flip, returns results bit-identical to a fresh non-adaptive oracle
session over the same data.

All aggregates here are integer-typed, so "bit-identical" is exact equality:
no strategy (serial, morsel-parallel, threshold-gated) may change a single
bit of the answer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import DataFrame, ExecutionOptions, TQPSession

N_ROWS = 20000
SQL = ("SELECT grp, COUNT(*) AS n, SUM(k) AS sk FROM events "
       "WHERE score < 50 GROUP BY grp")


def broad_frame() -> DataFrame:
    # ~99% of rows pass score < 50: big intermediate, lanes pay off.
    rng = np.random.default_rng(20260808)
    return DataFrame({
        "k": np.arange(N_ROWS, dtype=np.int64),
        "grp": (np.arange(N_ROWS, dtype=np.int64) % 13),
        "score": np.where(np.arange(N_ROWS) % 100 == 0, 90.0, 1.0)
                   + rng.uniform(0.0, 0.5, size=N_ROWS),
    })


def narrow_frame() -> DataFrame:
    # Inverted skew: ~1% of rows pass, the parallel overheads dominate.
    rng = np.random.default_rng(20260808)
    return DataFrame({
        "k": np.arange(N_ROWS, dtype=np.int64),
        "grp": (np.arange(N_ROWS, dtype=np.int64) % 13),
        "score": np.where(np.arange(N_ROWS) % 100 == 0, 1.0, 90.0)
                   + rng.uniform(0.0, 0.5, size=N_ROWS),
    })


def oracle_rows(frame: DataFrame) -> list:
    """The answer from a fresh, non-adaptive session over ``frame``."""
    oracle = TQPSession()
    oracle.register("events", frame)
    result = oracle.sql(SQL).to_dict()
    return sorted(zip(result["grp"], result["n"], result["sk"]))


def result_rows(result) -> list:
    data = result.to_dataframe().to_dict()
    return sorted(zip(data["grp"], data["n"], data["sk"]))


def test_drift_replans_and_stays_bit_identical():
    broad, narrow = broad_frame(), narrow_frame()
    broad_oracle, narrow_oracle = oracle_rows(broad), oracle_rows(narrow)

    session = TQPSession()
    session.register("events", broad)
    query = session.prepare(SQL, options=ExecutionOptions(adaptive=True))
    runtime = session.adaptive
    settle = 3 * runtime.min_observations + 4

    # Phase 1: settle against the broad distribution.
    for _ in range(settle):
        assert result_rows(query.execute()) == broad_oracle
    before_shape = query.compiled.operator_plan.root.pretty()
    before_strategy = query.compiled.strategy
    assert "Morsel" in before_shape  # lanes win while 99% of rows survive

    # Phase 2: invert the skew.  Every execution from the first one on must
    # serve the new data exactly; the runtime detects the selectivity drift
    # from its own feedback, flushes the stale history, re-explores, and
    # settles on a different strategy.
    recorded_before = runtime.feedback.total_recorded
    session.register("events", narrow)
    strategies = []
    for _ in range(settle):
        assert result_rows(query.execute()) == narrow_oracle
        strategies.append(query.compiled.strategy)
    after_shape = query.compiled.operator_plan.root.pretty()

    # The drift flush discarded the settled history: the store holds fewer
    # records than were ever recorded, and exploration visited every
    # candidate again.
    assert len(runtime.feedback) < recorded_before \
        + len(strategies)
    assert set(strategies) == {"auto", "serial", "parallel"}
    # The settled choice flipped to a serial shape for the 1%-pass regime.
    assert "Morsel" not in after_shape
    assert (query.compiled.strategy, after_shape) \
        != (before_strategy, before_shape)

    # Phase 3: drift back.  The same machinery flips the statement again.
    session.register("events", broad)
    for _ in range(settle):
        assert result_rows(query.execute()) == broad_oracle
    assert "Morsel" in query.compiled.operator_plan.root.pretty()


def test_reregister_alone_does_not_flush_without_drift():
    """Re-registering *equivalent* data re-plans (version bump) but must not
    discard the learned history: no drift, no flush, no re-exploration."""
    session = TQPSession()
    session.register("events", broad_frame())
    query = session.prepare(SQL, options=ExecutionOptions(adaptive=True))
    runtime = session.adaptive
    for _ in range(3 * runtime.min_observations + 2):
        query.execute()
    settled = query.compiled.strategy
    stored = len(runtime.feedback)

    session.register("events", broad_frame())  # same distribution
    oracle = oracle_rows(broad_frame())
    for _ in range(3):
        assert result_rows(query.execute()) == oracle
        # The settled choice holds: equal data yields no drift signal.
        assert query.compiled.strategy == settled
    assert len(runtime.feedback) >= stored
