"""Differential distributed TPC-H conformance suite (tier 2).

Every TPC-H query runs distributed — ``devices`` ∈ {2, 4}, hash *and* range
sharding of the base tables — and must return row-for-row the result the
row-at-a-time oracle produces from the same physical plan.  Queries with
runtime subqueries fall back to single-device planning wholesale (by
design); they still run here, proving the fallback path answers correctly
under distributed options.

Rows are compared *sorted* with a float tolerance (the shared
``frames_match`` helper): shuffles reorder join output and the two-phase
aggregation re-associates partial sums, so bitwise row order / float
identity with the serial engine is explicitly not promised — set equality
within fp tolerance is.
"""

from __future__ import annotations

import pytest

from repro import ExecutionOptions
from repro.baselines import RowEngine
from repro.datasets import tpch
from repro.frontend import sql_to_physical

pytestmark = pytest.mark.tier2

SCALE_FACTOR = 0.002

DEVICES = (2, 4)
SHARD_MODES = ("hash", "range")

#: Queries whose plans must actually distribute at this scale factor — the
#: subquery-free ones with a large enough base table.  The others contain
#: In/Exists/scalar subqueries and legitimately plan single-device.
DISTRIBUTED_QUERIES = frozenset(
    {1, 3, 4, 5, 6, 7, 8, 9, 10, 12, 13, 14, 17, 19, 21})

#: Of those, the multi-way joins whose both-sides-sharded joins the
#: bytes-moved cost model keeps on the shuffle path at this scale factor...
SHUFFLE_QUERIES = frozenset({3, 4, 10, 12})

#: ...and the ones where it finds broadcasting the (much smaller)
#: gathered side cheaper than re-partitioning the wide ``lineitem`` rows —
#: at SF 0.002 the orders-side intermediates are a fraction of lineitem's
#: bytes, so the crossover picks broadcast.  Both sets together guard the
#: cost decision from both directions: a regression that makes every join
#: shuffle (or every join broadcast) fails one of them.
BROADCAST_QUERIES = frozenset({5, 7, 8, 9, 21})


@pytest.fixture(scope="module")
def oracle(tpch_tiny):
    """Row-engine result per query id, computed once and shared."""
    session, tables = tpch_tiny
    cache = {}

    def result_for(query_id):
        if query_id not in cache:
            plan = sql_to_physical(tpch.query(query_id, SCALE_FACTOR),
                                   session.catalog)
            cache[query_id] = RowEngine(tables).execute_to_dataframe(plan)
        return cache[query_id]

    return result_for


@pytest.mark.parametrize("shard", SHARD_MODES)
@pytest.mark.parametrize("devices", DEVICES)
@pytest.mark.parametrize("query_id", tpch.ALL_QUERY_IDS)
def test_tpch_distributed_differential(tpch_tiny, oracle, frames_match,
                                       query_id, devices, shard):
    session, _ = tpch_tiny
    sql = tpch.query(query_id, SCALE_FACTOR)
    result = session.sql(sql, options=ExecutionOptions(devices=devices,
                                                       shard=shard))
    frames_match(result, oracle(query_id),
                 f"Q{query_id} [devices={devices}, shard={shard}]")


def test_distributed_plans_actually_distribute(tpch_tiny):
    """Guard against the suite silently comparing serial plans against the
    oracle 4 times over: the subquery-free queries must plan a sharded
    region, and the multi-way joins must pick the exchange the bytes-moved
    cost model says is cheaper — shuffle or broadcast, per query."""
    session, _ = tpch_tiny
    for query_id in tpch.ALL_QUERY_IDS:
        sql = tpch.query(query_id, SCALE_FACTOR)
        plan = session.compile(
            sql, options=ExecutionOptions(devices=2)).operator_plan.root.pretty()
        if query_id in DISTRIBUTED_QUERIES:
            assert "DistributedScan" in plan, f"Q{query_id} planned serially"
        else:
            assert "DistributedScan" not in plan, (
                f"Q{query_id} has runtime subqueries and must fall back")
        if query_id in SHUFFLE_QUERIES:
            assert "ShuffleJoin" in plan, f"Q{query_id} lost its shuffle join"
        if query_id in BROADCAST_QUERIES:
            assert "BroadcastJoin" in plan, (
                f"Q{query_id} lost its broadcast join")


def test_aggregation_only_queries_merge_partials(tpch_tiny):
    """Q1/Q6 close the sharded region with the partial-gather-merge, not a
    row gather followed by a serial re-aggregation."""
    session, _ = tpch_tiny
    for query_id in (1, 6):
        sql = tpch.query(query_id, SCALE_FACTOR)
        plan = session.compile(
            sql, options=ExecutionOptions(devices=2)).operator_plan.root.pretty()
        assert "ShardedAggregate" in plan, f"Q{query_id}"
