"""Differential TPC-H conformance suite (tier 2).

Every TPC-H query runs through the tensor engine across parallelism levels,
backends and devices, and must return row-for-row the result the row-at-a-time
oracle (:mod:`repro.baselines.rowengine`) produces from the same physical
plan.  Rows are compared *sorted* with a float tolerance (the shared
``frames_match`` helper): morsel-parallel plans reorder join output and
re-associate partial-aggregate sums, so bitwise row order / float identity
with the serial engine is explicitly not promised — set equality within fp
tolerance is.
"""

from __future__ import annotations

import pytest

from repro.baselines import RowEngine
from repro.datasets import tpch
from repro.frontend import sql_to_physical
from repro import ExecutionOptions

pytestmark = pytest.mark.tier2

SCALE_FACTOR = 0.002

#: backend × device grid; wasm requires the onnx backend and pays a per-node
#: interpreter burn, so it covers a representative query subset.
SYSTEMS = [("pytorch", "cpu"), ("torchscript", "cuda")]
WASM_QUERIES = (1, 3, 6, 13, 18)

PARALLELISMS = (1, 4)


@pytest.fixture(scope="module")
def oracle(tpch_tiny):
    """Row-engine result per query id, computed once and shared."""
    session, tables = tpch_tiny
    cache = {}

    def result_for(query_id):
        if query_id not in cache:
            plan = sql_to_physical(tpch.query(query_id, SCALE_FACTOR),
                                   session.catalog)
            cache[query_id] = RowEngine(tables).execute_to_dataframe(plan)
        return cache[query_id]

    return result_for


@pytest.mark.parametrize("parallelism", PARALLELISMS)
@pytest.mark.parametrize("backend,device", SYSTEMS,
                         ids=[f"{b}-{d}" for b, d in SYSTEMS])
@pytest.mark.parametrize("query_id", tpch.ALL_QUERY_IDS)
def test_tpch_differential(tpch_tiny, oracle, frames_match, query_id, backend,
                           device, parallelism):
    session, _ = tpch_tiny
    sql = tpch.query(query_id, SCALE_FACTOR)
    result = session.sql(sql, options=ExecutionOptions(backend=backend, device=device, parallelism=parallelism))
    frames_match(result, oracle(query_id),
                 f"Q{query_id} [{backend}/{device}/parallelism={parallelism}]")


@pytest.mark.parametrize("parallelism", PARALLELISMS)
@pytest.mark.parametrize("query_id", WASM_QUERIES)
def test_tpch_differential_wasm(tpch_tiny, oracle, frames_match, query_id,
                                parallelism):
    session, _ = tpch_tiny
    sql = tpch.query(query_id, SCALE_FACTOR)
    result = session.sql(sql, options=ExecutionOptions(backend="onnx", device="wasm", parallelism=parallelism))
    frames_match(result, oracle(query_id),
                 f"Q{query_id} [onnx/wasm/parallelism={parallelism}]")


def test_parallel_plans_actually_parallelize(tpch_tiny):
    """Guard against the suite silently testing serial plans twice: at
    parallelism 4 the scan-heavy queries must plan morsel operators, and at
    parallelism 1 none may appear."""
    session, _ = tpch_tiny
    for query_id in (1, 6):
        sql = tpch.query(query_id, SCALE_FACTOR)
        parallel_plan = session.compile(sql, options=ExecutionOptions(parallelism=4)).operator_plan.root.pretty()
        serial_plan = session.compile(sql, options=ExecutionOptions(parallelism=1)).operator_plan.root.pretty()
        assert "MorselScan" in parallel_plan and "workers=4" in parallel_plan
        assert "Morsel" not in serial_plan and "Parallel" not in serial_plan
    # Q3's join inputs stay above the parallelism threshold even after the
    # statistics-based selectivity estimates shrink filtered cardinalities
    # (Q14's ~1.4%-selective one-month date range now correctly plans a
    # serial join over the few surviving rows).
    q3 = session.compile(tpch.query(3, SCALE_FACTOR), options=ExecutionOptions(parallelism=4))
    assert "PartitionedHashJoin[inner]" in q3.operator_plan.root.pretty()
    q14 = session.compile(tpch.query(14, SCALE_FACTOR), options=ExecutionOptions(parallelism=4))
    assert "PartitionedHashJoin" not in q14.operator_plan.root.pretty()
    q1 = session.compile(tpch.query(1, SCALE_FACTOR), options=ExecutionOptions(parallelism=4))
    assert "ParallelHashAggregate" in q1.operator_plan.root.pretty()
