"""Integration tests: all 22 TPC-H queries, TQP vs the row-engine oracle.

This is the test behind the paper's expressiveness claim ("TQP is generic
enough to support the TPC-H benchmark"): every query must compile through the
full stack and return exactly the rows the row-at-a-time baseline produces
from the same physical plan.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import RowEngine
from repro.datasets import tpch
from repro.frontend import sql_to_physical
from repro import ExecutionOptions

SCALE_FACTOR = 0.002


def _normalize_cell(value):
    if value is None:
        return None
    if isinstance(value, np.datetime64):
        return str(value.astype("datetime64[D]"))
    if isinstance(value, (float, np.floating)):
        return None if np.isnan(value) else round(float(value), 4)
    if isinstance(value, (int, np.integer, bool, np.bool_)):
        return round(float(value), 4)
    return str(value)


def _normalized_rows(frame):
    columns = [frame[name] for name in frame.columns]
    rows = []
    for i in range(frame.num_rows):
        rows.append(tuple(_normalize_cell(column[i]) for column in columns))
    return rows


def assert_same_result(tqp_frame, baseline_frame, ordered: bool):
    assert len(tqp_frame.columns) == len(baseline_frame.columns)
    assert tqp_frame.num_rows == baseline_frame.num_rows
    left, right = _normalized_rows(tqp_frame), _normalized_rows(baseline_frame)
    if not ordered:
        left, right = sorted(left, key=str), sorted(right, key=str)
    assert left == right


@pytest.mark.parametrize("query_id", tpch.ALL_QUERY_IDS)
def test_tpch_query_matches_row_engine(tpch_tiny, query_id):
    session, tables = tpch_tiny
    sql = tpch.query(query_id, SCALE_FACTOR)

    tqp_result = session.sql(sql)
    baseline = RowEngine(tables).execute_to_dataframe(
        sql_to_physical(sql, session.catalog))

    assert_same_result(tqp_result, baseline, ordered="order by" in sql.lower())


@pytest.mark.parametrize("query_id", [1, 3, 6, 13, 14, 18])
def test_tpch_results_stable_across_backends(tpch_tiny, query_id):
    """The compiled (traced) backends must agree with eager execution."""
    session, _ = tpch_tiny
    sql = tpch.query(query_id, SCALE_FACTOR)
    eager = session.compile(sql, options=ExecutionOptions(backend="pytorch")).run()
    traced = session.compile(sql, options=ExecutionOptions(backend="torchscript")).run()
    portable = session.compile(sql, options=ExecutionOptions(backend="onnx")).run()
    assert traced.equals(eager)
    assert portable.equals(eager)


@pytest.mark.parametrize("query_id", [6, 14])
def test_tpch_results_stable_across_devices(tpch_tiny, query_id):
    session, _ = tpch_tiny
    sql = tpch.query(query_id, SCALE_FACTOR)
    cpu = session.compile(sql, options=ExecutionOptions(backend="torchscript", device="cpu")).run()
    gpu = session.compile(sql, options=ExecutionOptions(backend="torchscript", device="cuda")).run()
    web = session.compile(sql, options=ExecutionOptions(backend="onnx", device="wasm")).run()
    assert gpu.equals(cpu)
    assert web.equals(cpu)


def test_tpch_queries_use_expected_operator_shapes(tpch_tiny):
    """Spot-check that the plans have the shapes the paper describes."""
    session, _ = tpch_tiny
    q6 = session.compile(tpch.query(6, SCALE_FACTOR))
    assert "HashJoin" not in q6.operator_plan.root.pretty()
    q14 = session.compile(tpch.query(14, SCALE_FACTOR))
    assert "HashJoin[inner]" in q14.operator_plan.root.pretty()
    q13 = session.compile(tpch.query(13, SCALE_FACTOR))
    assert "HashJoin[left]" in q13.operator_plan.root.pretty()
    q21 = session.compile(tpch.query(21, SCALE_FACTOR))
    plan_text = q21.operator_plan.root.pretty()
    assert "HashJoin[semi]" in plan_text and "HashJoin[anti]" in plan_text
