"""Differential TPC-H conformance for the compiled executor (tier 2).

Every TPC-H query runs under both executors — interpreted graph replay and
the codegen path (``executor="compiled"``, which *raises* rather than falls
back, so a query silently losing codegen support fails loudly here) — across
serial and morsel-parallel plans, and must match the row-at-a-time oracle
row-for-row (sorted, float tolerance, as everywhere in the differential
suites: morsel-parallel plans reorder and re-associate).

``bench_compiled_executor.py`` separately holds the two modes to *bitwise*
equality against each other; this suite pins both to the independent oracle.
"""

from __future__ import annotations

import pytest

from repro.baselines import RowEngine
from repro.datasets import tpch
from repro.frontend import sql_to_physical
from repro import ExecutionOptions

pytestmark = pytest.mark.tier2

SCALE_FACTOR = 0.002

EXECUTORS = ("interpret", "compiled")

PARALLELISMS = (1, 4)


@pytest.fixture(scope="module")
def oracle(tpch_tiny):
    """Row-engine result per query id, computed once and shared."""
    session, tables = tpch_tiny
    cache = {}

    def result_for(query_id):
        if query_id not in cache:
            plan = sql_to_physical(tpch.query(query_id, SCALE_FACTOR),
                                   session.catalog)
            cache[query_id] = RowEngine(tables).execute_to_dataframe(plan)
        return cache[query_id]

    return result_for


@pytest.mark.parametrize("parallelism", PARALLELISMS)
@pytest.mark.parametrize("executor", EXECUTORS)
@pytest.mark.parametrize("query_id", tpch.ALL_QUERY_IDS)
def test_tpch_compiled_differential(tpch_tiny, oracle, frames_match, query_id,
                                    executor, parallelism):
    session, _ = tpch_tiny
    sql = tpch.query(query_id, SCALE_FACTOR)
    options = ExecutionOptions(backend="torchscript", device="cpu",
                               executor=executor, parallelism=parallelism)
    compiled = session.compile(sql, options=options)
    result = compiled.execute()
    expected = "compiled" if executor == "compiled" else "interpreted"
    assert result.executor_mode == expected, (
        f"Q{query_id} did not run on the {expected} executor")
    frames_match(result.to_dataframe(), oracle(query_id),
                 f"Q{query_id} [{executor}/parallelism={parallelism}]")
