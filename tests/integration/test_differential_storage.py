"""Differential TPC-H conformance with compressed storage + pruning (tier 2).

The companion suite to ``test_differential_tpch``: the same all-22-queries
row-engine oracle check, but over a **date-clustered** ``lineitem`` (sorted by
``l_shipdate``, the classic clustering choice for the TPC-H fact table).
Clustering makes the storage layer actually bite: ``l_shipdate`` run-length
encodes, the low-cardinality string columns dictionary-encode, and the date
predicates of Q1/Q6/Q14/Q20 prune whole zone-map blocks — so every query
result here proves encoded execution *and* pruning return exactly what the
row-at-a-time oracle returns.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ExecutionOptions, TQPSession
from repro.baselines import RowEngine
from repro.datasets import tpch
from repro.frontend import sql_to_physical
from repro.storage import DictionaryEncoding, RunLengthEncoding

pytestmark = pytest.mark.tier2

SCALE_FACTOR = 0.002

SYSTEMS = [("pytorch", "cpu"), ("torchscript", "cpu")]


@pytest.fixture(scope="module")
def clustered_env():
    tables = dict(tpch.cached_tables(scale_factor=SCALE_FACTOR))
    lineitem = tables["lineitem"]
    order = np.argsort(lineitem["l_shipdate"], kind="stable")
    tables["lineitem"] = lineitem.take(order)
    session = TQPSession()
    for name, frame in tables.items():
        session.register(name, frame)
    return session, tables


@pytest.fixture(scope="module")
def oracle(clustered_env):
    session, tables = clustered_env
    cache = {}

    def result_for(query_id):
        if query_id not in cache:
            plan = sql_to_physical(tpch.query(query_id, SCALE_FACTOR),
                                   session.catalog)
            cache[query_id] = RowEngine(tables).execute_to_dataframe(plan)
        return cache[query_id]

    return result_for


@pytest.mark.parametrize("backend,device", SYSTEMS,
                         ids=[f"{b}-{d}" for b, d in SYSTEMS])
@pytest.mark.parametrize("query_id", tpch.ALL_QUERY_IDS)
def test_tpch_encoded_pruned_differential(clustered_env, oracle, frames_match,
                                          query_id, backend, device):
    session, _ = clustered_env
    sql = tpch.query(query_id, SCALE_FACTOR)
    result = session.sql(sql, options=ExecutionOptions(
        backend=backend, device=device, encoding="auto"))
    frames_match(result, oracle(query_id),
                 f"Q{query_id} [{backend}/{device}/encoded+pruned]")


def test_clustered_conversion_is_actually_encoded(clustered_env):
    """Guard against the suite silently testing plain storage: the clustered
    lineitem must dictionary-encode its flag columns and run-length-encode
    the sort column."""
    session, _ = clustered_env
    compiled = session.compile(tpch.query(1, SCALE_FACTOR))
    table = session.prepare_inputs(compiled.executor)["lineitem"]
    assert isinstance(table.column("lineitem.l_returnflag").encoding,
                      DictionaryEncoding)
    assert isinstance(table.column("lineitem.l_shipdate").encoding,
                      RunLengthEncoding)


def test_clustered_scans_actually_prune(clustered_env):
    """Q6's date range must skip blocks on the clustered table (and still be
    covered by the differential assertions above)."""
    session, _ = clustered_env
    compiled = session.compile(tpch.query(6, SCALE_FACTOR))
    result = compiled.execute()
    outcome = result.pruning.get("lineitem")
    assert outcome is not None and outcome["blocks_skipped"] > 0
