"""Differential tests for parameter binding.

Every parameterized query is prepared once per (backend, device, parallelism)
configuration and executed under several bindings; each result is compared
against the row-engine oracle running the *same* SQL with the literal values
bound.  The traced backends must produce correct results for every binding
from a single trace — the compile-once/bind-many contract.
"""

from __future__ import annotations

import pytest

from repro import ExecutionOptions
from repro.baselines.rowengine import run_sql
from repro.datasets import tpch

SCALE_FACTOR = 0.002

#: (backend, device, parallelism) — all execution configurations.
CONFIGS = [
    ("pytorch", "cpu", 1),
    ("torchscript", "cpu", 1),
    ("torchscript", "cpu", 4),
    ("torchscript", "cuda", 1),
    ("torchscript", "cuda", 4),
    ("torchscript-noopt", "cpu", 1),
    ("onnx", "cpu", 1),
    ("onnx", "wasm", 1),
    ("onnx", "cpu", 4),
]

#: name → (parameterized SQL, list of bindings).  Bindings deliberately vary
#: the selectivity (including down to empty) so replays exercise intermediate
#: sizes different from the ones observed while tracing.
QUERIES = {
    "q6_filter_aggregate": (
        """select sum(l_extendedprice * l_discount) as revenue
           from lineitem
           where l_shipdate >= date '1994-01-01'
             and l_shipdate < date '1994-01-01' + interval '1' year
             and l_discount between :lo and :hi
             and l_quantity < :q""",
        [{"lo": 0.05, "hi": 0.07, "q": 24.0},
         {"lo": 0.03, "hi": 0.09, "q": 49.0},
         {"lo": 0.05, "hi": 0.07, "q": 1.0},
         {"lo": 0.99, "hi": 0.999, "q": 24.0}],   # empty
    ),
    "groupby_param_filter": (
        """select l_returnflag, l_linestatus, sum(l_quantity) as s,
                  avg(l_extendedprice) as a, count(*) as c
           from lineitem where l_shipdate < :cut
           group by l_returnflag, l_linestatus""",
        [{"cut": "1998-09-02"}, {"cut": "1993-01-01"}, {"cut": "1992-02-01"}],
    ),
    # The FIRST binding selects nothing: the trace is captured on an empty
    # intermediate, and every later binding must still group/sort/distinct
    # correctly (no Python branch on the row count may be baked in).
    "empty_first_binding": (
        """select l_returnflag, count(distinct l_linestatus) as d,
                  sum(l_quantity) as s
           from lineitem where l_quantity < :q
           group by l_returnflag order by l_returnflag""",
        [{"q": 0.5}, {"q": 49.0}, {"q": 3.0}],
    ),
    "join_param_both_sides": (
        """select o_orderpriority, count(*) as c
           from orders join lineitem on l_orderkey = o_orderkey
           where l_quantity < :q and o_totalprice > :p
           group by o_orderpriority""",
        [{"q": 10.0, "p": 1000.0}, {"q": 45.0, "p": 100000.0},
         {"q": 2.0, "p": 500.0}],
    ),
    "strings_like_case_after_filter": (
        """select count(*) as c,
                  sum(case when l_returnflag = :f then 1 else 0 end) as flagged
           from lineitem
           where l_quantity < :q and l_comment like '%a%'""",
        [{"q": 5.0, "f": "A"}, {"q": 49.0, "f": "R"}, {"q": 0.5, "f": "N"}],
    ),
    "in_list_params": (
        """select count(*) as c from lineitem
           where l_returnflag in (:a, :b) and l_linenumber in (:x, 2)""",
        [{"a": "A", "b": "R", "x": 1}, {"a": "N", "b": "N", "x": 4}],
    ),
    "order_by_limit": (
        """select l_orderkey, l_extendedprice from lineitem
           where l_extendedprice > :p
           order by l_extendedprice desc, l_orderkey limit 5""",
        [{"p": 1000.0}, {"p": 90000.0}],
    ),
    "distinct_after_filter": (
        """select distinct l_returnflag from lineitem where l_quantity < :q""",
        [{"q": 3.0}, {"q": 50.0}, {"q": 0.5}],
    ),
    "scalar_subquery_with_param": (
        """select count(*) as c from lineitem
           where l_quantity > (select avg(l_quantity) from lineitem
                               where l_quantity < :q)""",
        [{"q": 10.0}, {"q": 50.0}],
    ),
    "date_between_params": (
        """select count(*) as c from orders
           where o_orderdate between :lo and :hi""",
        [{"lo": "1993-01-01", "hi": "1994-01-01"},
         {"lo": "1995-06-01", "hi": "1998-01-01"}],
    ),
}


@pytest.fixture(scope="module")
def env(tpch_tiny):
    return tpch_tiny


@pytest.mark.tier2
@pytest.mark.parametrize("backend,device,parallelism", CONFIGS,
                         ids=[f"{b}-{d}-p{p}" for b, d, p in CONFIGS])
@pytest.mark.parametrize("name", sorted(QUERIES))
def test_prepared_bindings_match_oracle(env, frames_match, name, backend,
                                        device, parallelism):
    session, tables = env
    sql, bindings = QUERIES[name]
    prepared = session.prepare(sql, options=ExecutionOptions(
        backend=backend, device=device, parallelism=parallelism,
        use_cache=False))
    for binding in bindings:
        got = prepared.bind(**binding).run()
        expected = run_sql(sql, tables, params=binding)
        ordered = "order by" in sql
        frames_match(got, expected, ordered=ordered,
                     context=f"{name} {backend}/{device}/p{parallelism} {binding}")
    # compile-once: the graph backends must have traced at most once.
    assert prepared.compiled.executor.compile_count <= 1


@pytest.mark.tier2
@pytest.mark.parametrize("backend,device,parallelism", CONFIGS,
                         ids=[f"{b}-{d}-p{p}" for b, d, p in CONFIGS])
def test_auto_parameterized_q6_matches_literal_execution(env, frames_match,
                                                         backend, device,
                                                         parallelism):
    """Ad-hoc sql() with auto-parameterization must agree with the oracle for
    every distinct literal, while sharing one plan-cache entry."""
    session, tables = env
    options = ExecutionOptions(backend=backend, device=device,
                               parallelism=parallelism, auto_parameterize=True)
    template = tpch.QUERIES[6]
    session.plan_cache.clear()
    misses_before = session.plan_cache.misses
    for quantity in (4, 24, 44):
        sql = template.replace("l_quantity < 24", f"l_quantity < {quantity}")
        got = session.sql(sql, options=options)
        expected = run_sql(sql, tables)
        frames_match(got, expected, context=f"auto-param q={quantity}")
    assert session.plan_cache.misses - misses_before == 1
    assert session.plan_cache.stats()["size"] == 1
