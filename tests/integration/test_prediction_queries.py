"""Integration tests for Scenario 3: PREDICT queries end-to-end."""

from __future__ import annotations

import numpy as np
import pytest

from repro import TQPSession
from repro.baselines import RowEngine
from repro.datasets import amazon_reviews, iris
from repro.frontend import sql_to_physical
from repro.ml import compile_row_fn
from repro import ExecutionOptions
from repro.ml.models import (
    BagOfWordsVectorizer,
    GradientBoostingRegressor,
    LogisticRegression,
    MLPClassifier,
    Pipeline,
    RandomForestClassifier,
)

SENTIMENT_SQL = """
select brand,
       sum(case when rating >= 3 then 1 else 0 end) as actual_positive,
       sum(predict('sentiment_classifier', text)) as predicted_positive
from amazon_reviews
group by brand
order by brand
"""


@pytest.fixture(scope="module")
def sentiment_setup():
    reviews = amazon_reviews.generate_reviews(num_reviews=1200, seed=3)
    train_texts, train_labels, test_texts, test_labels = \
        amazon_reviews.training_split(reviews)
    model = Pipeline([
        ("vec", BagOfWordsVectorizer(vocabulary=amazon_reviews.SENTIMENT_VOCABULARY)),
        ("clf", LogisticRegression(epochs=150)),
    ]).fit(train_texts, train_labels)
    accuracy = float((model.predict(test_texts) == test_labels).mean())
    session = TQPSession()
    session.register("amazon_reviews", reviews)
    session.register_model("sentiment_classifier", model)
    return session, reviews, model, accuracy


def test_sentiment_model_has_signal(sentiment_setup):
    _, _, _, accuracy = sentiment_setup
    assert accuracy > 0.85


def test_figure4_query_on_all_backends(sentiment_setup):
    session, _, _, _ = sentiment_setup
    eager = session.compile(SENTIMENT_SQL, options=ExecutionOptions(backend="pytorch")).run()
    assert eager.columns == ["brand", "actual_positive", "predicted_positive"]
    assert eager.num_rows == len(amazon_reviews.BRANDS)
    # predictions are counts between 0 and the per-brand review count
    assert all(0 <= v <= 1200 for v in eager["predicted_positive"])
    for backend, device in [("torchscript", "cpu"), ("torchscript", "cuda"),
                            ("onnx", "wasm")]:
        other = session.compile(SENTIMENT_SQL, options=ExecutionOptions(backend=backend, device=device)).run()
        assert other.equals(eager)


def test_figure4_query_matches_separate_runtime_baseline(sentiment_setup):
    session, reviews, model, _ = sentiment_setup
    plan = sql_to_physical(SENTIMENT_SQL, session.catalog)
    baseline = RowEngine({"amazon_reviews": reviews},
                         models={"sentiment_classifier": compile_row_fn(model)}
                         ).execute_to_dataframe(plan)
    tqp = session.sql(SENTIMENT_SQL)
    assert tqp.to_dict()["brand"] == baseline.to_dict()["brand"]
    np.testing.assert_allclose(tqp["predicted_positive"],
                               baseline["predicted_positive"])
    np.testing.assert_allclose(tqp["actual_positive"], baseline["actual_positive"])


def test_prediction_inside_where_clause(sentiment_setup):
    session, reviews, model, _ = sentiment_setup
    out = session.sql(
        "select count(*) as predicted_positive_reviews from amazon_reviews "
        "where predict('sentiment_classifier', text) = 1")
    expected = int(model.predict(list(reviews["text"])).sum())
    assert out.to_dict() == {"predicted_positive_reviews": [expected]}


def test_iris_regression_and_classification_queries():
    table = iris.generate_iris(samples_per_species=60, seed=12)
    X, y = iris.regression_arrays(table)
    regressor = GradientBoostingRegressor(n_estimators=12, max_depth=2).fit(X, y)

    Xc = np.stack([table["sepal_length"], table["sepal_width"],
                   table["petal_length"], table["petal_width"]], axis=1)
    yc = (table["species"] == "virginica").astype(np.int64)
    classifiers = {
        "forest": RandomForestClassifier(n_estimators=6, max_depth=3).fit(Xc, yc),
        "mlp": MLPClassifier(hidden_size=8, epochs=80).fit(Xc, yc),
    }

    session = TQPSession()
    session.register("iris", table)
    session.register_model("petal_width_regressor", regressor)
    for name, model in classifiers.items():
        session.register_model(name, model)

    regression = session.sql(
        "select species, avg(predict('petal_width_regressor', sepal_length, "
        "sepal_width, petal_length)) as predicted from iris group by species "
        "order by species")
    actual = session.sql(
        "select species, avg(petal_width) as actual from iris group by species "
        "order by species")
    predicted = np.array(regression["predicted"], dtype=np.float64)
    observed = np.array(actual["actual"], dtype=np.float64)
    assert np.abs(predicted - observed).max() < 0.4

    for name, model in classifiers.items():
        out = session.sql(
            f"select sum(predict('{name}', sepal_length, sepal_width, petal_length, "
            "petal_width)) as positives from iris")
        assert out.to_dict() == {"positives": [float(model.predict(Xc).sum())]}
