"""Concurrency stress for the serving runtime: many client threads hammering
one shared runtime, checked bit-identically against serial execution of the
same request stream, across pool sizes {1, 4, 8} — plus overload behaviour
(admission rejections and queue-deadline timeouts) and recovery after it."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import ExecutionOptions, TQPSession
from repro.bench.harness import tpch_session
from repro.errors import AdmissionError, RequestTimeoutError
from repro.serve import (
    ServingRuntime,
    build_shapes,
    register_prediction_model,
    zipfian_workload,
)

SERVING_SF = 0.0001
OPTIONS = ExecutionOptions(backend="torchscript", device="cpu")
NUM_CLIENTS = 6
REQUESTS_PER_CLIENT = 25


@pytest.fixture(scope="module")
def serving_setup():
    """Shared session, shapes, and the per-client deterministic workloads."""
    _, tables = tpch_session(SERVING_SF)
    session = TQPSession()
    for name, frame in tables.items():
        session.register(name, frame)
    register_prediction_model(session)
    shapes = build_shapes(SERVING_SF, tail_queries=2)
    workloads = [
        zipfian_workload(shapes, REQUESTS_PER_CLIENT, seed=500 + client, s=1.3)
        for client in range(NUM_CLIENTS)
    ]
    return session, shapes, workloads


def _serial_results(session, workloads):
    """Every client's stream executed one-at-a-time on the caller thread."""
    handles: dict = {}
    serial = []
    for workload in workloads:
        client_results = []
        for request in workload:
            prepared = handles.get(request.shape.name)
            if prepared is None:
                prepared = handles[request.shape.name] = session.prepare(
                    request.shape.sql, options=OPTIONS)
            bound = (prepared.bind(**request.params) if request.params
                     else prepared.bind())
            client_results.append(bound.execute())
        serial.append(client_results)
    return serial


def _assert_result_identical(left, right, context):
    table_l, table_r = left.table.decoded(), right.table.decoded()
    assert table_l.column_names == table_r.column_names, context
    for name in table_l.column_names:
        data_l = table_l.column(name).tensor.data
        data_r = table_r.column(name).tensor.data
        assert data_l.dtype == data_r.dtype, f"{context}, column {name!r}"
        assert np.array_equal(data_l, data_r), (
            f"{context}, column {name!r}: concurrent result differs from "
            f"serial execution")


@pytest.mark.parametrize("workers", [1, 4, 8])
def test_concurrent_clients_match_serial_bitwise(serving_setup, workers):
    session, shapes, workloads = serving_setup
    serial = _serial_results(session, workloads)

    with ServingRuntime(session, workers=workers, max_queue_depth=4096,
                        batch_window=16, default_options=OPTIONS) as runtime:
        statements = {shape.name: runtime.prepare(shape.sql) for shape in shapes}
        concurrent: list = [None] * NUM_CLIENTS
        errors: list = []

        def client(client_id: int) -> None:
            try:
                tickets = [runtime.submit(statements[request.shape.name],
                                          params=request.params)
                           for request in workloads[client_id]]
                concurrent[client_id] = [t.result(120) for t in tickets]
            except Exception as exc:  # noqa: BLE001 - surfaced by the assert
                errors.append((client_id, exc))

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(NUM_CLIENTS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(300)
        assert not errors, errors[0]
        stats = runtime.stats()

    assert stats["completed"] == NUM_CLIENTS * REQUESTS_PER_CLIENT
    assert stats["failed"] == 0 and stats["timed_out"] == 0
    for client_id in range(NUM_CLIENTS):
        assert concurrent[client_id] is not None
        for index, (left, right) in enumerate(
                zip(serial[client_id], concurrent[client_id])):
            _assert_result_identical(
                left, right,
                f"workers={workers}, client {client_id}, request {index} "
                f"({workloads[client_id][index].shape.name})")


def test_overload_rejects_then_recovers(serving_setup):
    session, shapes, workloads = serving_setup
    flat = [request for workload in workloads for request in workload]
    with ServingRuntime(session, workers=2, max_queue_depth=8,
                        batch_window=4, default_options=OPTIONS) as runtime:
        statements = {shape.name: runtime.prepare(shape.sql) for shape in shapes}
        admitted, rejected, timed_out = [], 0, 0
        for request in flat:
            try:
                admitted.append(runtime.submit(statements[request.shape.name],
                                               params=request.params,
                                               timeout=0.002))
            except AdmissionError:
                rejected += 1
        for ticket in admitted:
            try:
                ticket.result(120)
            except RequestTimeoutError:
                timed_out += 1
        stats = runtime.stats()
        assert stats["rejected"] == rejected
        assert stats["timed_out"] == timed_out
        # The tight queue + 2ms deadline under a full blast must trip at
        # least one of the overload paths, and nothing may fail any other way.
        assert rejected + timed_out > 0
        assert stats["failed"] == 0
        assert stats["completed"] == len(admitted) - timed_out

        # After the storm drains, the runtime serves normally again.
        request = flat[0]
        result = runtime.execute(statements[request.shape.name],
                                 params=request.params)
        assert result is not None
        assert runtime.stats()["queue_depth"] == 0
