"""Integration tests: kernel fusion over the full TPC-H suite.

Fused and unfused graphs must produce bit-identical results on all 22
queries, and fusion must strictly reduce the number of profiler events
(i.e. simulated kernel launches) on every query — the property that makes
the GPU cost model's launch-overhead accounting physical.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import tpch
from repro.tensor import GraphInterpreter, Profiler, passes
from repro import ExecutionOptions

SCALE_FACTOR = 0.002

#: The optimization pipeline with fusion ablated away.
_NO_FUSION = tuple(p for p in passes.DEFAULT_PASSES if p is not passes.fuse_elementwise)


def _trace_query(session, query_id):
    sql = tpch.query(query_id, SCALE_FACTOR)
    compiled = session.compile(sql, options=ExecutionOptions(backend="torchscript-noopt", use_cache=False))
    inputs = session.prepare_inputs(compiled.executor)
    compiled.executor.compile_program(inputs)
    raw_graph = compiled.executor._program.graph
    tensors, _ = compiled.executor._flatten_inputs(inputs)
    return raw_graph, tensors


@pytest.mark.parametrize("query_id", tpch.ALL_QUERY_IDS)
def test_fused_graph_matches_unfused_and_launches_fewer_kernels(tpch_tiny, query_id):
    session, _ = tpch_tiny
    raw_graph, tensors = _trace_query(session, query_id)

    unfused = passes.optimize(raw_graph.clone(), passes=_NO_FUSION)
    fused = passes.optimize(raw_graph.clone())
    fused.validate()
    assert any(node.op == "fused_kernel" for node in fused.nodes)

    with Profiler() as unfused_profile:
        unfused_out = GraphInterpreter(unfused).run(tensors)
    with Profiler() as fused_profile:
        fused_out = GraphInterpreter(fused).run(tensors)

    assert len(fused_out) == len(unfused_out)
    for expected, got in zip(unfused_out, fused_out):
        np.testing.assert_array_equal(expected.numpy(), got.numpy())
    assert len(fused_profile.events) < len(unfused_profile.events), (
        f"Q{query_id}: fusion must strictly reduce kernel launches")


def test_fusion_shrinks_q6_to_a_handful_of_kernels(tpch_tiny):
    """Q6 is the paper's scan-heavy poster child: its long elementwise filter
    chain must collapse into a handful of launches."""
    session, _ = tpch_tiny
    raw_graph, tensors = _trace_query(session, 6)
    fused = passes.optimize(raw_graph.clone())
    with Profiler() as profile:
        GraphInterpreter(fused).run(tensors)
    assert len(profile.events) <= 6


def test_fused_event_bytes_match_unfused_output_bytes(tpch_tiny):
    """The fused kernel's profile event carries the group's external bytes, so
    bandwidth-bound cost modeling still sees the data volume."""
    session, _ = tpch_tiny
    raw_graph, tensors = _trace_query(session, 6)
    fused = passes.optimize(raw_graph.clone())
    with Profiler() as profile:
        GraphInterpreter(fused).run(tensors)
    fused_events = [e for e in profile.events if e.op == "fused_kernel"]
    assert fused_events and all(e.total_bytes > 0 for e in fused_events)
