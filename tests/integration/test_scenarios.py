"""Integration tests for the demo scenarios (§3.1 and §3.2) as library workflows."""

from __future__ import annotations

import json

from repro.bench import time_rowengine, time_tqp
from repro.datasets import tpch
from repro import ExecutionOptions
from repro.viz import (
    kernel_breakdown,
    operator_breakdown,
    save_graph_dot,
    save_graph_json,
)

SCALE_FACTOR = 0.002


def test_scenario1_profiling_workflow(tpch_tiny, tmp_path):
    """Scenario 1: pip-install → ingest → compile → profile → inspect artifacts."""
    session, _ = tpch_tiny
    compiled = session.compile(tpch.query(6, SCALE_FACTOR), options=ExecutionOptions(backend="pytorch"))
    outcome = compiled.execute(profile=True)

    operators = operator_breakdown(outcome.profile, top_k=5)
    kernels = kernel_breakdown(outcome.profile, top_k=5)
    assert operators[0].total_s >= operators[-1].total_s
    assert sum(row.calls for row in kernels) <= len(outcome.profile.events)

    trace_path = tmp_path / "trace.json"
    outcome.profile.save_chrome_trace(str(trace_path))
    trace = json.loads(trace_path.read_text())
    assert len(trace["traceEvents"]) == len(outcome.profile.events)

    graph = compiled.executor_graph()
    save_graph_dot(graph, str(tmp_path / "graph.dot"))
    save_graph_json(graph, str(tmp_path / "graph.json"))
    assert (tmp_path / "graph.dot").read_text().startswith("digraph")


def test_scenario2_backend_switch_workflow(tpch_tiny):
    """Scenario 2: the same query runs on every backend/device with equal results."""
    session, tables = tpch_tiny
    sql = tpch.query(14, SCALE_FACTOR)
    reference = None
    for backend, device in [("pytorch", "cpu"), ("torchscript", "cpu"),
                            ("torchscript", "cuda"), ("onnx", "cpu"), ("onnx", "wasm")]:
        frame = session.compile(sql, options=ExecutionOptions(backend=backend, device=device)).run()
        if reference is None:
            reference = frame
        else:
            assert frame.equals(reference)


def test_figure1_shape_tqp_beats_row_baseline(tpch_tiny):
    """The Figure-1 qualitative shape at tiny scale: TQP-CPU is much faster than
    the row-at-a-time baseline, and all systems agree on the answer."""
    session, tables = tpch_tiny
    for query_id in (6, 14):
        sql = tpch.query(query_id, SCALE_FACTOR)
        baseline = time_rowengine(session, tables, sql, runs=1)
        tqp_cpu = time_tqp(session, sql, backend="torchscript", device="cpu",
                           runs=3, warmup=1)
        assert tqp_cpu.result.num_rows == baseline.result.num_rows
        assert tqp_cpu.median_s < baseline.median_s, (
            f"Q{query_id}: tensor execution should beat the row interpreter")


def test_gpu_cost_model_reports_speedup_on_scan_heavy_query(tpch_tiny):
    """GPU-simulated time must be lower than CPU time for the scan-heavy Q6
    (the qualitative GPU claim of Figure 1), and WASM must be the slowest TQP
    configuration."""
    session, _ = tpch_tiny
    sql = tpch.query(6, SCALE_FACTOR)
    cpu = time_tqp(session, sql, backend="torchscript", device="cpu", runs=3, warmup=1)
    gpu = time_tqp(session, sql, backend="torchscript", device="cuda", runs=3, warmup=1)
    web = time_tqp(session, sql, backend="onnx", device="wasm", runs=3, warmup=1)
    assert gpu.median_s < cpu.median_s
    assert web.median_s > cpu.median_s
