"""Quickstart: register a DataFrame, compile SQL into a tensor program, run it.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import DataFrame, TQPSession


def main() -> None:
    # 1. Ingest data (the paper uses Pandas; this repo ships a small stand-in).
    sales = DataFrame({
        "order_id": np.arange(1, 11, dtype=np.int64),
        "region": np.array(["EMEA", "EMEA", "APAC", "AMER", "APAC",
                            "AMER", "EMEA", "APAC", "AMER", "EMEA"], dtype=object),
        "amount": np.array([120.0, 80.0, 45.5, 210.0, 15.0,
                            99.9, 60.0, 310.0, 22.5, 140.0]),
        "order_date": np.array(["2024-01-03", "2024-01-15", "2024-02-01",
                                "2024-02-11", "2024-02-20", "2024-03-02",
                                "2024-03-09", "2024-03-15", "2024-04-01",
                                "2024-04-12"], dtype="datetime64[D]"),
    })

    # 2. Create a session and register the table.
    session = TQPSession()
    session.register("sales", sales)

    # 3. Compile a query.  The compilation stack is: SQL -> physical plan ->
    #    TQP IR -> tensor operator plan -> Executor.
    query = session.compile(
        """
        select region,
               count(*) as orders,
               sum(amount) as total_amount
        from sales
        where order_date >= date '2024-02-01'
        group by region
        order by total_amount desc
        """,
        backend="torchscript",   # trace + optimize the whole query as one graph
        device="cpu",
    )

    print("== Compiled plan ==")
    print(query.explain())

    # 4. Execute and fetch the result as a DataFrame.
    result = query.execute()
    print("\n== Result ==")
    print(result.to_dataframe())
    print(f"\nexecution time: {result.measured_s * 1e3:.2f} ms "
          f"on backend={result.backend} device={result.device}")

    # 5. One-line change to target another backend/device (Figure 3 of the paper).
    gpu_result = session.compile(query.sql, backend="torchscript", device="cuda").execute()
    print(f"simulated GPU time: {gpu_result.reported_s * 1e3:.3f} ms "
          "(results are identical)")
    assert gpu_result.to_dataframe().equals(result.to_dataframe())


if __name__ == "__main__":
    main()
