"""Scenario 1 (paper §3.1): DS-tool integration — profiling a query.

Runs TPC-H Q6 with the op-level profiler enabled and produces the artifacts a
TensorBoard-style UI consumes: the per-operator runtime breakdown (Figure 2),
the per-kernel breakdown, a Chrome-trace JSON file, and the executor graph in
DOT + JSON form (Figure 4's graph view).

Run with:  python examples/profiling_tensorboard.py [output_dir]
"""

import pathlib
import sys

from repro.bench import tpch_session
from repro.datasets import tpch
from repro.viz import (
    format_breakdown,
    format_outline,
    kernel_breakdown,
    operator_breakdown,
    save_graph_dot,
    save_graph_json,
)


def main(output_dir: str = "profiling_output") -> None:
    out = pathlib.Path(output_dir)
    out.mkdir(parents=True, exist_ok=True)

    session, _ = tpch_session(scale_factor=0.01)
    query = session.compile(tpch.query(6), backend="pytorch", device="cpu")

    # Execute with profiling enabled (what the PyTorch profiler does in the paper).
    result = query.execute(profile=True)
    profile = result.profile

    print(format_breakdown(operator_breakdown(profile, top_k=10),
                           "TPC-H Q6 — runtime breakdown by relational operator"))
    print()
    print(format_breakdown(kernel_breakdown(profile, top_k=10),
                           "TPC-H Q6 — runtime breakdown by tensor kernel"))

    trace_path = out / "q6_trace.json"
    profile.save_chrome_trace(str(trace_path))
    print(f"\nChrome trace written to {trace_path} "
          "(load it in chrome://tracing or the TensorBoard trace viewer)")

    graph = query.executor_graph()
    save_graph_dot(graph, str(out / "q6_executor_graph.dot"))
    save_graph_json(graph, str(out / "q6_executor_graph.json"))
    print(f"executor graph written to {out / 'q6_executor_graph.dot'}")
    print()
    print(format_outline(graph, max_nodes=20))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "profiling_output")
