"""Adaptive execution: settle on a strategy, drift the data, watch it flip.

One statement — a filter + GROUP BY whose best execution strategy depends
entirely on how many rows survive the filter — runs under
``ExecutionOptions(adaptive=True)``:

1. against a *broad* distribution (~99 % of rows pass) the runtime explores
   its three strategy candidates (``auto`` / ``serial`` / ``parallel``),
   then settles on a morsel-parallel plan — big intermediates pay for lanes;
2. the table is re-registered with the skew inverted (~1 % of rows pass):
   the runtime notices the selectivity drift *from its own feedback*,
   flushes the stale history, re-explores, and settles on a serial shape —
   morsel dispatch over a handful of rows costs more than it saves;
3. every single execution, before, during and after the flip, returns the
   exact answer for the data it ran against (integer aggregates, so
   "exact" means bit-identical): strategies change operator variants,
   never results.

Run with:  PYTHONPATH=src python examples/adaptive_replan.py
"""

import numpy as np

from repro import DataFrame, ExecutionOptions, TQPSession

N_ROWS = 20000
SQL = ("SELECT grp, COUNT(*) AS n, SUM(k) AS sk FROM events "
       "WHERE score < 50 GROUP BY grp")


def frame(pass_fraction_high: bool) -> DataFrame:
    """~99 % of rows pass ``score < 50`` when high, ~1 % when low."""
    rng = np.random.default_rng(20260808)
    hot, cold = (1.0, 90.0) if pass_fraction_high else (90.0, 1.0)
    return DataFrame({
        "k": np.arange(N_ROWS, dtype=np.int64),
        "grp": (np.arange(N_ROWS, dtype=np.int64) % 13),
        "score": np.where(np.arange(N_ROWS) % 100 == 0, cold, hot)
                   + rng.uniform(0.0, 0.5, size=N_ROWS),
    })


def exact_rows(data: DataFrame) -> list:
    oracle = TQPSession()
    oracle.register("events", data)
    result = oracle.sql(SQL).to_dict()
    return sorted(zip(result["grp"], result["n"], result["sk"]))


def drive(query, oracle_rows, rounds: int) -> None:
    for i in range(rounds):
        result = query.execute()
        data = result.to_dataframe().to_dict()
        rows = sorted(zip(data["grp"], data["n"], data["sk"]))
        assert rows == oracle_rows, "adaptive execution changed the answer"
        print(f"  run {i}: strategy={query.compiled.strategy:<8s} "
              f"reported {result.reported_s * 1e3:7.3f} ms  (exact)")


def main() -> None:
    broad, narrow = frame(True), frame(False)
    session = TQPSession()
    session.register("events", broad)
    query = session.prepare(SQL, options=ExecutionOptions(adaptive=True))
    runtime = session.adaptive
    rounds = 3 * runtime.min_observations + 3

    print("phase 1 — broad distribution (~99 % of rows pass the filter):")
    drive(query, exact_rows(broad), rounds)
    shape = query.compiled.operator_plan.root.pretty()
    assert "Morsel" in shape
    print(f"  settled: {query.compiled.strategy} "
          f"(morsel-parallel plan — lanes pay on big intermediates)\n")

    print("phase 2 — skew inverted (~1 % pass); the runtime detects the "
          "drift\nfrom its own feedback, flushes history, re-explores:")
    session.register("events", narrow)
    drive(query, exact_rows(narrow), rounds)
    shape = query.compiled.operator_plan.root.pretty()
    assert "Morsel" not in shape
    print(f"  settled: {query.compiled.strategy} (serial shape — morsel "
          f"dispatch over ~200 rows costs more than it saves)\n")

    print(f"re-plans triggered by the runtime: {runtime.replan_count}; "
          f"feedback records held: {len(runtime.feedback)}")


if __name__ == "__main__":
    main()
