"""Scenario 2 (paper §3.2): run TPC-H Q6 and Q14 on multiple backends/devices.

Compiles the two queries of the paper's evaluation on the CPU (TorchScript-like
backend), the simulated GPU, and the browser/WASM path (ONNX-like export), and
compares them against the row-at-a-time baseline — the Figure 1 experiment in
miniature.

Run with:  python examples/tpch_multi_backend.py [scale_factor]
"""

import sys

from repro.bench import figure_table, time_rowengine, time_tqp, tpch_session
from repro.datasets import tpch


def main(scale_factor: float = 0.01) -> None:
    session, tables = tpch_session(scale_factor)
    rows = {name: frame.num_rows for name, frame in tables.items()}
    print(f"TPC-H at SF={scale_factor}: lineitem={rows['lineitem']} rows, "
          f"orders={rows['orders']} rows\n")

    for query_id in (6, 14):
        sql = tpch.query(query_id, scale_factor)
        baseline = time_rowengine(session, tables, sql, runs=1)
        results = [
            time_tqp(session, sql, backend="pytorch", device="cpu", runs=3, warmup=1),
            time_tqp(session, sql, backend="torchscript", device="cpu", runs=3, warmup=1),
            time_tqp(session, sql, backend="torchscript", device="cuda", runs=3, warmup=1),
            time_tqp(session, sql, backend="onnx", device="wasm", runs=3, warmup=1),
        ]
        # All backends must agree with the baseline on the answer.
        for result in results:
            assert result.result.num_rows == baseline.result.num_rows
        print(figure_table(f"TPC-H Q{query_id} (SF {scale_factor})", results, baseline))
        print()


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.01)
