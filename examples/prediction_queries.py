"""Scenario 3 (paper §3.3): prediction queries with the PREDICT keyword.

Task 1 — sentiment classification over the (synthetic) Amazon reviews corpus,
reproducing the Figure-4 query: per brand, compare the number of positive
ratings with the number of reviews the model predicts as positive.

Task 2 — regression on the (synthetic) Iris dataset with a traditional ML
model compiled to tensors via the Hummingbird-like GEMM strategy.

Run with:  python examples/prediction_queries.py
"""

import numpy as np

from repro import DataFrame, TQPSession
from repro.datasets import amazon_reviews, iris
from repro.ml.models import (
    BagOfWordsVectorizer,
    GradientBoostingRegressor,
    LogisticRegression,
    Pipeline,
)
from repro.viz import format_outline


def sentiment_task(session: TQPSession) -> None:
    reviews = amazon_reviews.generate_reviews(num_reviews=2000)
    train_texts, train_labels, test_texts, test_labels = \
        amazon_reviews.training_split(reviews)

    model = Pipeline([
        ("vectorizer", BagOfWordsVectorizer(
            vocabulary=amazon_reviews.SENTIMENT_VOCABULARY)),
        ("classifier", LogisticRegression(epochs=200)),
    ]).fit(train_texts, train_labels)
    accuracy = float((model.predict(test_texts) == test_labels).mean())
    print(f"sentiment classifier accuracy on held-out reviews: {accuracy:.3f}")

    session.register("amazon_reviews", reviews)
    session.register_model("sentiment_classifier", model)

    # The Figure-4 query: relational operators and the ML model compile into a
    # single tensor program, executable end-to-end on any device.
    query = session.compile(
        """
        select brand,
               sum(case when rating >= 3 then 1 else 0 end) as actual_positive,
               sum(predict('sentiment_classifier', text)) as predicted_positive
        from amazon_reviews
        group by brand
        order by brand
        """,
        backend="torchscript", device="cuda",
    )
    result = query.execute()
    print(result.to_dataframe())
    print(f"simulated GPU execution time: {result.reported_s * 1e3:.2f} ms\n")

    print("executor graph (Figure-4 style outline):")
    print(format_outline(query.executor_graph(), max_nodes=15))
    print()


def iris_regression_task(session: TQPSession) -> None:
    table = iris.generate_iris()
    X, y = iris.regression_arrays(table)
    model = GradientBoostingRegressor(n_estimators=15, max_depth=2).fit(X, y)
    mae = float(np.abs(model.predict(X) - y).mean())
    print(f"iris petal-width regressor MAE: {mae:.3f}")

    session.register("iris", table)
    session.register_model("petal_width_regressor", model)

    result = session.sql(
        """
        select species,
               avg(petal_width) as actual_width,
               avg(predict('petal_width_regressor',
                           sepal_length, sepal_width, petal_length)) as predicted_width
        from iris
        group by species
        order by species
        """
    )
    print(result)


def main() -> None:
    session = TQPSession()
    sentiment_task(session)
    iris_regression_task(session)


if __name__ == "__main__":
    main()
