"""Serving loop: many concurrent clients multiplexed over one session.

This is the ROADMAP's serving target one step further than prepare/bind:
several logical clients submit Zipfian-skewed request streams to a shared
:class:`repro.serve.ServingRuntime`, which routes every request through the
session's statement cache, executes on a bounded worker pool, and stacks
concurrent bindings of the same prepared statement into single batched
replays of the traced program.

Run with:  PYTHONPATH=src python examples/serving_loop.py
"""

import threading

from repro import ExecutionOptions, TQPSession
from repro.datasets import tpch
from repro.serve import (
    ServingRuntime,
    build_shapes,
    register_prediction_model,
    zipfian_workload,
)

SCALE_FACTOR = 0.001
NUM_CLIENTS = 6
REQUESTS_PER_CLIENT = 40


def client(client_id: int, runtime: ServingRuntime, statements: dict,
           outcomes: list) -> None:
    """One logical client: submit a personal request stream, await results."""
    shapes = build_shapes(SCALE_FACTOR, tail_queries=4)
    stream = zipfian_workload(shapes, REQUESTS_PER_CLIENT,
                              seed=1000 + client_id, s=1.3)
    tickets = [(request, runtime.submit(statements[request.shape.name],
                                        params=request.params))
               for request in stream]
    for request, ticket in tickets:
        result = ticket.result(timeout=120)
        outcomes.append((client_id, request.shape.name, result))


def main() -> None:
    session = TQPSession()
    for name, frame in tpch.generate_tables(scale_factor=SCALE_FACTOR).items():
        session.register(name, frame)
    register_prediction_model(session)

    options = ExecutionOptions(backend="torchscript", device="cpu")
    with ServingRuntime(session, workers=4, max_queue_depth=512,
                        batch_window=32, default_options=options) as runtime:
        # All clients share one statement cache: preparing the same SQL from
        # different clients returns handles to the same compiled artifact.
        statements = {shape.name: runtime.prepare(shape.sql, options=options)
                      for shape in build_shapes(SCALE_FACTOR, tail_queries=4)}

        outcomes: list = []
        threads = [threading.Thread(target=client,
                                    args=(i, runtime, statements, outcomes))
                   for i in range(NUM_CLIENTS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        total = NUM_CLIENTS * REQUESTS_PER_CLIENT
        print(f"{NUM_CLIENTS} clients x {REQUESTS_PER_CLIENT} requests "
              f"= {total} served")
        client_id, shape_name, result = outcomes[0]
        print(f"sample: client {client_id}, shape {shape_name!r} -> "
              f"{list(result.to_dataframe().rows())[:1]}")

        stats = runtime.stats()
        print(f"runtime: {stats['completed']} completed, "
              f"{stats['batches']} batched replays covering "
              f"{stats['batched_requests']} requests "
              f"({stats['deduped_requests']} shared an identical binding)")
        print("plan cache:", session.plan_cache.stats())


if __name__ == "__main__":
    main()
