"""Serving loop: prepare a parameterized query once, bind it per request.

This is the shape of the ROADMAP's serving target — one statement, millions
of requests that differ only in their constants.  The statement is compiled
(and traced) exactly once; each request binds new values which the traced
tensor program consumes as runtime inputs.

Run with:  PYTHONPATH=src python examples/serving_loop.py
"""

from repro import ExecutionOptions, TQPSession
from repro.datasets import tpch


def main() -> None:
    session = TQPSession()
    for name, frame in tpch.generate_tables(scale_factor=0.01).items():
        session.register(name, frame)

    query = session.prepare(
        """
        select sum(l_extendedprice * l_discount) as revenue
        from lineitem
        where l_shipdate >= :start
          and l_shipdate < :stop
          and l_discount between :lo and :hi
          and l_quantity < :q
        """,
        options=ExecutionOptions(backend="torchscript", device="cpu"),
    )
    print("parameters:", ", ".join(str(spec) for spec in query.parameters))

    # Simulated request stream: every "user" asks with their own constants.
    requests = [
        {"start": "1994-01-01", "stop": "1995-01-01",
         "lo": 0.05, "hi": 0.07, "q": float(q)}
        for q in range(1, 50)
    ]
    results = query.execute_many(requests)

    for request, result in list(zip(requests, results))[:5]:
        revenue = result.to_dataframe().to_dict()["revenue"][0]
        print(f"q < {request['q']:>4}: revenue = {revenue}")

    compiles = query.compiled.executor.compile_count
    print(f"\n{len(results)} requests served by {compiles} trace compilation")
    print("plan cache:", session.plan_cache.stats())


if __name__ == "__main__":
    main()
