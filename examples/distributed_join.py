"""Distributed execution: a sharded join+aggregate across simulated devices.

Shards the two largest TPC-H tables across N simulated devices, runs a
shuffle-heavy join+aggregate, and shows what the distributed runtime
guarantees: the *answer* is bit-identical to the single-device run (every
shard computes with real kernels), only the *time* changes — the cost model
overlaps the per-shard timelines (a distributed region costs its slowest
device) and charges each explicit exchange op's payload bytes against its
interconnect tier.

The scaling curve uses the CPU kernel-time model, the same one
``benchmarks/bench_distributed_scaling.py`` gates on.  The exchange-traffic
exhibit uses *range* sharding on purpose: hash placement happens to
co-partition these tables on the join key (first column), so the shuffle
fragments it exchanges are empty — range placement puts entirely different
rows on each device, makes the shuffle move real bytes, and still returns
the identical answer.

Run with:  PYTHONPATH=src python examples/distributed_join.py
"""

import numpy as np

from repro import ExecutionOptions, TQPSession
from repro.backends.base import TRANSFER_OPS, split_sharded
from repro.datasets import tpch

SCALE_FACTOR = 0.02

QUERY = """
SELECT o_orderpriority, COUNT(*) AS orders, SUM(l_quantity) AS quantity
FROM lineitem JOIN orders ON l_orderkey = o_orderkey
GROUP BY o_orderpriority ORDER BY o_orderpriority
"""


def run(session: TQPSession, devices: int, shard: str = "hash"):
    options = ExecutionOptions(backend="pytorch", device="cpu",
                               devices=devices, shard=shard)
    query = session.compile(QUERY, options=options)
    inputs = session.prepare_inputs(query.executor)
    query.executor.execute(inputs, profile=True)          # warm-up
    outcome = query.executor.execute(inputs, profile=True)
    return query, outcome


def main() -> None:
    session = TQPSession()
    for name, frame in tpch.cached_tables(scale_factor=SCALE_FACTOR).items():
        session.register(name, frame)

    query, baseline = run(session, devices=1)
    reference = baseline.to_dataframe()
    print(f"single device: {baseline.reported_s * 1e3:8.3f} ms (simulated)")

    for devices in (2, 4):
        query, outcome = run(session, devices)
        frame = outcome.to_dataframe()
        for name in reference.columns:
            assert np.array_equal(np.asarray(reference[name]),
                                  np.asarray(frame[name])), name
        speedup = baseline.reported_s / outcome.reported_s
        print(f"{devices} devices:     {outcome.reported_s * 1e3:8.3f} ms "
              f"(simulated, {speedup:.2f}x, bit-identical)")

    # Range sharding places entirely different rows on each device — the
    # shuffle re-partitions by key *value*, so the answer cannot change, but
    # now the exchanged fragments actually carry rows.
    query, ranged = run(session, devices=2, shard="range")
    assert np.array_equal(np.asarray(reference["quantity"]),
                          np.asarray(ranged.to_dataframe()["quantity"]))
    _, kernels = ranged.profile.partition(TRANSFER_OPS)
    host, shards, exchanges = split_sharded(kernels)
    print("\nrange-sharded @ 2 devices (bit-identical as well):")
    for shard_id, events in sorted(shards.items()):
        print(f"  device {shard_id}: {len(events):4d} kernel events, "
              f"{sum(e.elapsed_s for e in events) * 1e3:8.3f} ms measured")
    moved = sum(e.output_bytes for e in exchanges)
    print(f"  exchanges: {len(exchanges)} ops moving {moved / 1e6:.2f} MB "
          f"across the interconnect")
    print(f"  host tail: {len(host)} events (partial-merge + sort)")

    print("\nOperator plan at 2 devices:")
    print(query.explain().split("== Operator plan ==")[1].strip())


if __name__ == "__main__":
    main()
