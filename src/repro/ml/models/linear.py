"""Linear and logistic models (from scratch, numpy training)."""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError


class LinearRegression:
    """Ordinary least squares via the normal equations (ridge-stabilized)."""

    def __init__(self, l2: float = 1e-8):
        self.l2 = l2
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearRegression":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        ones = np.ones((X.shape[0], 1))
        design = np.concatenate([X, ones], axis=1)
        gram = design.T @ design + self.l2 * np.eye(design.shape[1])
        weights = np.linalg.solve(gram, design.T @ y)
        self.coef_ = weights[:-1]
        self.intercept_ = float(weights[-1])
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return np.asarray(X, dtype=np.float64) @ self.coef_ + self.intercept_

    def _check_fitted(self) -> None:
        if self.coef_ is None:
            raise ModelError("LinearRegression is not fitted")


class LogisticRegression:
    """Binary logistic regression trained with full-batch gradient descent."""

    def __init__(self, learning_rate: float = 0.5, epochs: int = 300, l2: float = 1e-4):
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.l2 = l2
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        n, d = X.shape
        weights = np.zeros(d)
        bias = 0.0
        for _ in range(self.epochs):
            logits = X @ weights + bias
            probs = 1.0 / (1.0 + np.exp(-logits))
            error = probs - y
            grad_w = X.T @ error / n + self.l2 * weights
            grad_b = float(error.mean())
            weights -= self.learning_rate * grad_w
            bias -= self.learning_rate * grad_b
        self.coef_ = weights
        self.intercept_ = bias
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return np.asarray(X, dtype=np.float64) @ self.coef_ + self.intercept_

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        scores = self.decision_function(X)
        positive = 1.0 / (1.0 + np.exp(-scores))
        return np.stack([1.0 - positive, positive], axis=1)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.decision_function(X) >= 0).astype(np.int64)

    def _check_fitted(self) -> None:
        if self.coef_ is None:
            raise ModelError("LogisticRegression is not fitted")
