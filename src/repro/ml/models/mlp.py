"""A small multi-layer perceptron (the pre-trained neural network stand-in).

The paper's demo lets the audience pick pre-trained transformers; offline we
train a compact MLP instead — the point being demonstrated is that a neural
network's inference lowers into the same tensor program as the relational
operators around it, which holds for any matmul+activation network.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError


class MLPClassifier:
    """One-hidden-layer binary classifier trained with mini-batch SGD."""

    def __init__(self, hidden_size: int = 16, learning_rate: float = 0.1,
                 epochs: int = 200, batch_size: int = 64, random_state: int = 0):
        self.hidden_size = hidden_size
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.batch_size = batch_size
        self.random_state = random_state
        self.weights_: list[np.ndarray] | None = None
        self.biases_: list[np.ndarray] | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MLPClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).reshape(-1, 1)
        rng = np.random.default_rng(self.random_state)
        n, d = X.shape
        w1 = rng.normal(0, 1.0 / np.sqrt(d), size=(d, self.hidden_size))
        b1 = np.zeros(self.hidden_size)
        w2 = rng.normal(0, 1.0 / np.sqrt(self.hidden_size), size=(self.hidden_size, 1))
        b2 = np.zeros(1)
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                batch = order[start:start + self.batch_size]
                xb, yb = X[batch], y[batch]
                hidden = np.maximum(xb @ w1 + b1, 0.0)
                logits = hidden @ w2 + b2
                probs = 1.0 / (1.0 + np.exp(-logits))
                grad_logits = (probs - yb) / len(batch)
                grad_w2 = hidden.T @ grad_logits
                grad_b2 = grad_logits.sum(axis=0)
                grad_hidden = grad_logits @ w2.T
                grad_hidden[hidden <= 0] = 0.0
                grad_w1 = xb.T @ grad_hidden
                grad_b1 = grad_hidden.sum(axis=0)
                w1 -= self.learning_rate * grad_w1
                b1 -= self.learning_rate * grad_b1
                w2 -= self.learning_rate * grad_w2
                b2 -= self.learning_rate * grad_b2
        self.weights_ = [w1, w2]
        self.biases_ = [b1, b2]
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        if self.weights_ is None:
            raise ModelError("MLPClassifier is not fitted")
        hidden = np.maximum(np.asarray(X, dtype=np.float64) @ self.weights_[0]
                            + self.biases_[0], 0.0)
        return (hidden @ self.weights_[1] + self.biases_[1]).reshape(-1)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        positive = 1.0 / (1.0 + np.exp(-self.decision_function(X)))
        return np.stack([1.0 - positive, positive], axis=1)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.decision_function(X) >= 0).astype(np.int64)
