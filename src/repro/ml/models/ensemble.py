"""Tree ensembles: random forests and gradient-boosted trees."""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.ml.models.tree import DecisionTreeClassifier, DecisionTreeRegressor


class RandomForestClassifier:
    """Bagged binary classification trees (majority of per-tree probabilities)."""

    def __init__(self, n_estimators: int = 10, max_depth: int = 4,
                 random_state: int = 0):
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.random_state = random_state
        self.trees_: list[DecisionTreeClassifier] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        rng = np.random.default_rng(self.random_state)
        self.trees_ = []
        for _ in range(self.n_estimators):
            sample = rng.integers(0, len(y), size=len(y))
            tree = DecisionTreeClassifier(max_depth=self.max_depth)
            tree.fit(X[sample], y[sample])
            self.trees_.append(tree)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if not self.trees_:
            raise ModelError("RandomForestClassifier is not fitted")
        positive = np.mean([tree.predict_value(X) for tree in self.trees_], axis=0)
        return np.stack([1.0 - positive, positive], axis=1)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.predict_proba(X)[:, 1] >= 0.5).astype(np.int64)


class RandomForestRegressor:
    """Bagged regression trees (mean of per-tree predictions)."""

    def __init__(self, n_estimators: int = 10, max_depth: int = 4,
                 random_state: int = 0):
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.random_state = random_state
        self.trees_: list[DecisionTreeRegressor] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        rng = np.random.default_rng(self.random_state)
        self.trees_ = []
        for _ in range(self.n_estimators):
            sample = rng.integers(0, len(y), size=len(y))
            tree = DecisionTreeRegressor(max_depth=self.max_depth)
            tree.fit(X[sample], y[sample])
            self.trees_.append(tree)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self.trees_:
            raise ModelError("RandomForestRegressor is not fitted")
        return np.mean([tree.predict(X) for tree in self.trees_], axis=0)


class GradientBoostingRegressor:
    """Gradient boosting with squared loss and shallow regression trees."""

    def __init__(self, n_estimators: int = 20, learning_rate: float = 0.2,
                 max_depth: int = 2):
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.base_: float = 0.0
        self.trees_: list[DecisionTreeRegressor] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostingRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        self.base_ = float(y.mean())
        residual = y - self.base_
        self.trees_ = []
        for _ in range(self.n_estimators):
            tree = DecisionTreeRegressor(max_depth=self.max_depth)
            tree.fit(X, residual)
            update = tree.predict(X)
            residual = residual - self.learning_rate * update
            self.trees_.append(tree)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self.trees_:
            raise ModelError("GradientBoostingRegressor is not fitted")
        out = np.full(np.asarray(X).shape[0], self.base_, dtype=np.float64)
        for tree in self.trees_:
            out += self.learning_rate * tree.predict(X)
        return out


class GradientBoostingClassifier:
    """Binary gradient boosting: boosted regression trees on the logit scale."""

    def __init__(self, n_estimators: int = 20, learning_rate: float = 0.2,
                 max_depth: int = 2):
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.base_: float = 0.0
        self.trees_: list[DecisionTreeRegressor] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostingClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        positive_rate = np.clip(y.mean(), 1e-6, 1 - 1e-6)
        self.base_ = float(np.log(positive_rate / (1 - positive_rate)))
        logits = np.full(len(y), self.base_)
        self.trees_ = []
        for _ in range(self.n_estimators):
            probs = 1.0 / (1.0 + np.exp(-logits))
            residual = y - probs
            tree = DecisionTreeRegressor(max_depth=self.max_depth)
            tree.fit(X, residual)
            logits = logits + self.learning_rate * tree.predict(X)
            self.trees_.append(tree)
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        if not self.trees_:
            raise ModelError("GradientBoostingClassifier is not fitted")
        logits = np.full(np.asarray(X).shape[0], self.base_, dtype=np.float64)
        for tree in self.trees_:
            logits += self.learning_rate * tree.predict(X)
        return logits

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        positive = 1.0 / (1.0 + np.exp(-self.decision_function(X)))
        return np.stack([1.0 - positive, positive], axis=1)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.decision_function(X) >= 0).astype(np.int64)
