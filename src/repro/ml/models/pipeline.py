"""A minimal sklearn-style pipeline: transformers followed by a final estimator."""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import ModelError


class Pipeline:
    """Chain of (name, step) pairs; every step but the last must transform."""

    def __init__(self, steps: Sequence[tuple[str, Any]]):
        if not steps:
            raise ModelError("Pipeline needs at least one step")
        self.steps = list(steps)

    @property
    def named_steps(self) -> dict[str, Any]:
        return dict(self.steps)

    @property
    def final_estimator(self) -> Any:
        return self.steps[-1][1]

    def fit(self, X, y=None) -> "Pipeline":
        data = X
        for _, step in self.steps[:-1]:
            data = step.fit_transform(data)
        if y is None:
            self.final_estimator.fit(data)
        else:
            self.final_estimator.fit(data, y)
        return self

    def _transform(self, X):
        data = X
        for _, step in self.steps[:-1]:
            data = step.transform(data)
        return data

    def predict(self, X):
        return self.final_estimator.predict(self._transform(X))

    def predict_proba(self, X):
        return self.final_estimator.predict_proba(self._transform(X))
