"""From-scratch ML models (the scikit-learn stand-in used by PREDICT)."""

from repro.ml.models.ensemble import (
    GradientBoostingClassifier,
    GradientBoostingRegressor,
    RandomForestClassifier,
    RandomForestRegressor,
)
from repro.ml.models.linear import LinearRegression, LogisticRegression
from repro.ml.models.mlp import MLPClassifier
from repro.ml.models.pipeline import Pipeline
from repro.ml.models.preprocessing import BagOfWordsVectorizer, StandardScaler
from repro.ml.models.tree import DecisionTreeClassifier, DecisionTreeRegressor, TreeNode

__all__ = [
    "BagOfWordsVectorizer",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "GradientBoostingClassifier",
    "GradientBoostingRegressor",
    "LinearRegression",
    "LogisticRegression",
    "MLPClassifier",
    "Pipeline",
    "RandomForestClassifier",
    "RandomForestRegressor",
    "StandardScaler",
    "TreeNode",
]
