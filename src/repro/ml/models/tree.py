"""Decision trees (CART) for classification and regression.

Trees are trained with plain numpy; inference either walks the tree in Python
(``predict``) or — the interesting path for this reproduction — is compiled
into dense matrix operations by :mod:`repro.ml.compile`, following
Hummingbird's GEMM strategy.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.errors import ModelError


@dataclasses.dataclass
class TreeNode:
    """One node of a fitted tree (leaf iff ``feature is None``)."""

    feature: Optional[int] = None
    threshold: float = 0.0
    left: Optional["TreeNode"] = None
    right: Optional["TreeNode"] = None
    value: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


class _BaseDecisionTree:
    """Shared CART machinery (binary splits on ``feature <= threshold``)."""

    def __init__(self, max_depth: int = 4, min_samples_split: int = 2,
                 random_state: int | None = None):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.random_state = random_state
        self.root_: TreeNode | None = None
        self.n_features_: int = 0

    # -- training ----------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "_BaseDecisionTree":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2:
            raise ModelError("X must be 2-dimensional")
        self.n_features_ = X.shape[1]
        self.root_ = self._build(X, y, depth=0)
        return self

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> TreeNode:
        if (depth >= self.max_depth or len(y) < self.min_samples_split
                or self._is_pure(y)):
            return TreeNode(value=self._leaf_value(y))
        feature, threshold = self._best_split(X, y)
        if feature is None:
            return TreeNode(value=self._leaf_value(y))
        mask = X[:, feature] <= threshold
        if mask.all() or not mask.any():
            return TreeNode(value=self._leaf_value(y))
        return TreeNode(
            feature=feature,
            threshold=float(threshold),
            left=self._build(X[mask], y[mask], depth + 1),
            right=self._build(X[~mask], y[~mask], depth + 1),
        )

    def _best_split(self, X: np.ndarray, y: np.ndarray
                    ) -> tuple[Optional[int], float]:
        best_feature, best_threshold, best_score = None, 0.0, np.inf
        for feature in range(X.shape[1]):
            values = np.unique(X[:, feature])
            if len(values) < 2:
                continue
            thresholds = (values[:-1] + values[1:]) / 2.0
            # Cap the number of candidate thresholds to keep fitting fast.
            if len(thresholds) > 32:
                thresholds = np.quantile(values, np.linspace(0.05, 0.95, 32))
            for threshold in thresholds:
                mask = X[:, feature] <= threshold
                if not mask.any() or mask.all():
                    continue
                score = self._impurity(y[mask]) * mask.mean() + \
                    self._impurity(y[~mask]) * (1 - mask.mean())
                if score < best_score:
                    best_feature, best_threshold, best_score = feature, threshold, score
        return best_feature, float(best_threshold)

    # -- inference ------------------------------------------------------------

    def predict_value(self, X: np.ndarray) -> np.ndarray:
        """Raw leaf values for each row (class probability or regression value)."""
        if self.root_ is None:
            raise ModelError("tree is not fitted")
        X = np.asarray(X, dtype=np.float64)
        out = np.empty(X.shape[0], dtype=np.float64)
        for i, row in enumerate(X):
            node = self.root_
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out

    # -- subclass hooks -----------------------------------------------------------

    def _leaf_value(self, y: np.ndarray) -> float:
        raise NotImplementedError

    def _impurity(self, y: np.ndarray) -> float:
        raise NotImplementedError

    def _is_pure(self, y: np.ndarray) -> bool:
        return bool(np.all(y == y[0])) if len(y) else True


class DecisionTreeRegressor(_BaseDecisionTree):
    """CART regression tree (squared-error splits, mean leaves)."""

    def _leaf_value(self, y: np.ndarray) -> float:
        return float(y.mean()) if len(y) else 0.0

    def _impurity(self, y: np.ndarray) -> float:
        return float(y.var()) if len(y) else 0.0

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.predict_value(X)


class DecisionTreeClassifier(_BaseDecisionTree):
    """Binary CART classification tree (gini splits, positive-rate leaves)."""

    def _leaf_value(self, y: np.ndarray) -> float:
        return float(y.mean()) if len(y) else 0.0

    def _impurity(self, y: np.ndarray) -> float:
        if not len(y):
            return 0.0
        p = y.mean()
        return float(2.0 * p * (1.0 - p))

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        positive = self.predict_value(X)
        return np.stack([1.0 - positive, positive], axis=1)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.predict_value(X) >= 0.5).astype(np.int64)
