"""Feature preprocessing: scaling and text vectorization.

Both transformers can run in two worlds: a plain numpy ``transform`` used at
training time, and a tensor-program ``transform_tensor`` used when the fitted
pipeline is compiled into a prediction query (the Hummingbird-style path).
"""

from __future__ import annotations

import numpy as np

from repro.core import strings
from repro.errors import ModelError
from repro.tensor import Tensor, ops


class StandardScaler:
    """Zero-mean / unit-variance scaling."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = np.asarray(X, dtype=np.float64)
        self.mean_ = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return (np.asarray(X, dtype=np.float64) - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def transform_tensor(self, X: Tensor) -> Tensor:
        """The same transformation expressed with tensor ops."""
        self._check_fitted()
        mean = ops.tensor(self.mean_, device=X.device)
        scale = ops.tensor(self.scale_, device=X.device)
        return ops.div(ops.sub(ops.cast(X, "float64"), mean), scale)

    def _check_fitted(self) -> None:
        if self.mean_ is None:
            raise ModelError("StandardScaler is not fitted")


class BagOfWordsVectorizer:
    """Bag-of-words presence features over a fixed vocabulary.

    At training time it works on Python strings; at prediction-query time the
    same features are produced from the padded ``(n × m)`` string tensor using
    sliding-window containment — one tensor sub-program per vocabulary word —
    so text featurization becomes part of the end-to-end tensor program.
    """

    def __init__(self, vocabulary: list[str] | None = None, max_features: int = 64):
        self.vocabulary = list(vocabulary) if vocabulary is not None else None
        self.max_features = max_features

    def fit(self, texts: list[str]) -> "BagOfWordsVectorizer":
        if self.vocabulary is not None:
            return self
        counts: dict[str, int] = {}
        for text in texts:
            for token in set(text.lower().split()):
                counts[token] = counts.get(token, 0) + 1
        ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        self.vocabulary = [token for token, _ in ranked[: self.max_features]]
        return self

    def transform(self, texts: list[str]) -> np.ndarray:
        self._check_fitted()
        out = np.zeros((len(texts), len(self.vocabulary)), dtype=np.float64)
        for i, text in enumerate(texts):
            lowered = text.lower()
            for j, word in enumerate(self.vocabulary):
                if word in lowered:
                    out[i, j] = 1.0
        return out

    def fit_transform(self, texts: list[str]) -> np.ndarray:
        return self.fit(texts).transform(texts)

    def transform_tensor(self, codes: Tensor) -> Tensor:
        """Presence features from a padded string tensor (lower-cased match).

        The synthetic review corpus is lower-case, so a direct code-point
        containment test is sufficient; each vocabulary word contributes one
        sliding-window containment sub-program.
        """
        self._check_fitted()
        columns = [ops.cast(strings.contains(codes, word), "float64")
                   for word in self.vocabulary]
        return ops.stack(columns, axis=1) if columns else ops.zeros(
            (codes.shape[0], 0), dtype="float64", device=codes.device
        )

    def _check_fitted(self) -> None:
        if self.vocabulary is None:
            raise ModelError("BagOfWordsVectorizer is not fitted")
