"""Hummingbird-like model compiler: fitted models → tensor programs.

TQP supports ``PREDICT`` over traditional ML models by compiling them into the
same tensor op vocabulary used for relational operators (paper §3.3 builds on
Hummingbird for exactly this).  The centerpiece is the **GEMM strategy** for
decision trees: a fitted tree becomes five dense matrices/vectors

* ``A`` (features × internal nodes) — which feature each internal node tests,
* ``B`` (internal nodes)            — the split thresholds,
* ``C`` (internal nodes × leaves)   — +1 / −1 / 0 path-membership matrix,
* ``D`` (leaves)                    — per-leaf count of left-edges on its path,
* ``E`` (leaves)                    — leaf output values,

so inference is ``((X·A ≤ B)·C == D)·E`` — nothing but matmuls and
comparisons, which fuses seamlessly into the surrounding query's tensor graph.

``compile_model`` returns the callable the expression compiler invokes for
``PREDICT``; ``compile_row_fn`` returns a per-row Python callable used by the
row-engine baseline (the "separate runtimes" world the paper contrasts with).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.core.columnar import LogicalType
from repro.core.expressions import ExprValue
from repro.errors import ModelError
from repro.ml.models import (
    BagOfWordsVectorizer,
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    GradientBoostingClassifier,
    GradientBoostingRegressor,
    LinearRegression,
    LogisticRegression,
    MLPClassifier,
    Pipeline,
    RandomForestClassifier,
    RandomForestRegressor,
    StandardScaler,
)
from repro.ml.models.tree import TreeNode
from repro.tensor import Tensor, ops


# ---------------------------------------------------------------------------
# the GEMM strategy for trees
# ---------------------------------------------------------------------------


def tree_to_gemm_matrices(root: TreeNode, n_features: int
                          ) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                     np.ndarray, np.ndarray]:
    """Flatten a fitted tree into the (A, B, C, D, E) GEMM matrices."""
    internal: list[TreeNode] = []
    leaves: list[TreeNode] = []

    def collect(node: TreeNode) -> None:
        if node.is_leaf:
            leaves.append(node)
            return
        internal.append(node)
        collect(node.left)
        collect(node.right)

    collect(root)

    if not internal:
        # Degenerate single-leaf tree: constant output.
        a = np.zeros((n_features, 1))
        b = np.array([np.inf])
        c = np.zeros((1, 1))
        d = np.zeros(1)
        e = np.array([leaves[0].value])
        return a, b, c, d, e

    internal_index = {id(node): i for i, node in enumerate(internal)}
    leaf_index = {id(node): i for i, node in enumerate(leaves)}

    a = np.zeros((n_features, len(internal)))
    b = np.zeros(len(internal))
    for i, node in enumerate(internal):
        a[node.feature, i] = 1.0
        b[i] = node.threshold

    c = np.zeros((len(internal), len(leaves)))

    def mark(node: TreeNode, ancestors: list[tuple[TreeNode, bool]]) -> None:
        if node.is_leaf:
            column = leaf_index[id(node)]
            for ancestor, went_left in ancestors:
                c[internal_index[id(ancestor)], column] = 1.0 if went_left else -1.0
            return
        mark(node.left, ancestors + [(node, True)])
        mark(node.right, ancestors + [(node, False)])

    mark(root, [])
    d = (c == 1.0).sum(axis=0).astype(np.float64)
    e = np.array([leaf.value for leaf in leaves], dtype=np.float64)
    return a, b, c, d, e


def _tree_value_fn(root: TreeNode, n_features: int) -> Callable[[Tensor], Tensor]:
    """Tensor function computing the raw leaf value of every input row."""
    a, b, c, d, e = tree_to_gemm_matrices(root, n_features)

    def evaluate(X: Tensor) -> Tensor:
        device = X.device
        ta = ops.tensor(a, device=device)
        tb = ops.tensor(b, device=device)
        tc = ops.tensor(c, device=device)
        td = ops.tensor(d, device=device)
        te = ops.tensor(e, device=device)
        decisions = ops.cast(ops.le(ops.matmul(X, ta), tb), "float64")
        selected = ops.cast(ops.eq(ops.matmul(decisions, tc), td), "float64")
        return ops.matmul(selected, te)

    return evaluate


# ---------------------------------------------------------------------------
# feature assembly
# ---------------------------------------------------------------------------


def _numeric_matrix(args: Sequence[ExprValue], num_rows: int) -> Tensor:
    """Stack numeric PREDICT arguments into an (n × k) float64 design matrix."""
    columns = []
    for value in args:
        tensor = value.tensor
        if value.is_scalar:
            tensor = ops.add(ops.zeros((num_rows,), dtype="float64",
                                       device=tensor.device),
                             ops.cast(tensor, "float64"))
        columns.append(ops.cast(tensor, "float64"))
    return ops.stack(columns, axis=1)


# ---------------------------------------------------------------------------
# per-model tensor compilation
# ---------------------------------------------------------------------------


def _compile_matrix_fn(model) -> tuple[Callable[[Tensor], Tensor], bool]:
    """Return (f(X) -> prediction tensor, is_classifier) for a fitted model."""
    if isinstance(model, LinearRegression):
        def linear(X: Tensor) -> Tensor:
            w = ops.tensor(model.coef_, device=X.device)
            return ops.add(ops.matmul(X, w), model.intercept_)
        return linear, False

    if isinstance(model, LogisticRegression):
        def logistic(X: Tensor) -> Tensor:
            w = ops.tensor(model.coef_, device=X.device)
            scores = ops.add(ops.matmul(X, w), model.intercept_)
            return ops.cast(ops.ge(scores, 0.0), "float64")
        return logistic, True

    if isinstance(model, DecisionTreeRegressor):
        return _tree_value_fn(model.root_, model.n_features_), False

    if isinstance(model, DecisionTreeClassifier):
        value_fn = _tree_value_fn(model.root_, model.n_features_)

        def tree_classify(X: Tensor) -> Tensor:
            return ops.cast(ops.ge(value_fn(X), 0.5), "float64")
        return tree_classify, True

    if isinstance(model, (RandomForestRegressor, RandomForestClassifier)):
        value_fns = [_tree_value_fn(t.root_, t.n_features_) for t in model.trees_]

        def forest_value(X: Tensor) -> Tensor:
            total = value_fns[0](X)
            for fn in value_fns[1:]:
                total = ops.add(total, fn(X))
            return ops.div(total, float(len(value_fns)))

        if isinstance(model, RandomForestClassifier):
            def forest_classify(X: Tensor) -> Tensor:
                return ops.cast(ops.ge(forest_value(X), 0.5), "float64")
            return forest_classify, True
        return forest_value, False

    if isinstance(model, (GradientBoostingRegressor, GradientBoostingClassifier)):
        value_fns = [_tree_value_fn(t.root_, t.n_features_) for t in model.trees_]
        learning_rate = model.learning_rate
        base = model.base_

        def boosted_value(X: Tensor) -> Tensor:
            total = ops.full((X.shape[0],), base, dtype="float64", device=X.device)
            for fn in value_fns:
                total = ops.add(total, ops.mul(fn(X), learning_rate))
            return total

        if isinstance(model, GradientBoostingClassifier):
            def boosted_classify(X: Tensor) -> Tensor:
                return ops.cast(ops.ge(boosted_value(X), 0.0), "float64")
            return boosted_classify, True
        return boosted_value, False

    if isinstance(model, MLPClassifier):
        def mlp(X: Tensor) -> Tensor:
            w1 = ops.tensor(model.weights_[0], device=X.device)
            b1 = ops.tensor(model.biases_[0], device=X.device)
            w2 = ops.tensor(model.weights_[1], device=X.device)
            b2 = ops.tensor(model.biases_[1], device=X.device)
            hidden = ops.relu(ops.add(ops.matmul(X, w1), b1))
            logits = ops.reshape(ops.add(ops.matmul(hidden, w2), b2), (X.shape[0],))
            return ops.cast(ops.ge(logits, 0.0), "float64")
        return mlp, True

    raise ModelError(f"cannot compile model of type {type(model).__name__}")


def compile_model(model) -> Callable[[Sequence[ExprValue], int], ExprValue]:
    """Compile a fitted model (or Pipeline) for use inside ``PREDICT``.

    The returned callable takes the evaluated PREDICT arguments and the row
    count, and returns an :class:`ExprValue` whose tensor holds one prediction
    per row — entirely built from tensor ops, so the model participates in the
    end-to-end query graph on every backend and device.
    """
    transformers = []
    estimator = model
    if isinstance(model, Pipeline):
        transformers = [step for _, step in model.steps[:-1]]
        estimator = model.final_estimator
    matrix_fn, _ = _compile_matrix_fn(estimator)

    def predict(args: Sequence[ExprValue], num_rows: int) -> ExprValue:
        if not args:
            raise ModelError("PREDICT requires at least one argument column")
        if transformers and isinstance(transformers[0], BagOfWordsVectorizer):
            if args[0].ltype != LogicalType.STRING:
                raise ModelError("this model expects a text (string) column")
            features = transformers[0].transform_tensor(args[0].tensor)
            remaining = transformers[1:]
        else:
            features = _numeric_matrix(args, num_rows)
            remaining = transformers
        for step in remaining:
            if isinstance(step, StandardScaler):
                features = step.transform_tensor(features)
            elif isinstance(step, BagOfWordsVectorizer):
                raise ModelError("text vectorizer must be the first pipeline step")
            else:
                raise ModelError(f"cannot compile pipeline step {type(step).__name__}")
        predictions = matrix_fn(features)
        return ExprValue(predictions, LogicalType.FLOAT, False)

    return predict


def compile_row_fn(model) -> Callable[[Sequence], float]:
    """Per-row Python predictor for the row-engine baseline.

    This is the "separate ML runtime called row by row" execution mode the
    paper's Scenario 3 contrasts with TQP's unified tensor program.
    """
    transformers = []
    estimator = model
    if isinstance(model, Pipeline):
        transformers = [step for _, step in model.steps[:-1]]
        estimator = model.final_estimator

    def predict(values: Sequence) -> float:
        if transformers and isinstance(transformers[0], BagOfWordsVectorizer):
            features = transformers[0].transform([str(values[0])])
            remaining = transformers[1:]
        else:
            features = np.asarray([[float(v) for v in values]], dtype=np.float64)
            remaining = transformers
        for step in remaining:
            features = step.transform(features)
        return float(np.asarray(estimator.predict(features)).reshape(-1)[0])

    return predict
