"""ML subsystem: from-scratch models and the Hummingbird-like tensor compiler."""

from repro.ml import models
from repro.ml.compile import compile_model, compile_row_fn, tree_to_gemm_matrices

__all__ = ["compile_model", "compile_row_fn", "models", "tree_to_gemm_matrices"]
