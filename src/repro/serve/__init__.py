"""Concurrent serving runtime: many logical clients over one shared session.

:class:`~repro.serve.runtime.ServingRuntime` multiplexes concurrent request
streams over a :class:`~repro.core.session.TQPSession` — routing every
request through the shared plan/statement cache, bounding the in-flight work
with admission control, and stacking identical prepared statements from
different clients into one batched replay of the compiled program.

:mod:`repro.serve.simulator` generates the deterministic Zipfian traffic the
serving benchmark and the concurrency test suite replay against it.
"""

from repro.serve.runtime import ServingRuntime, ServingStatement, ServingTicket
from repro.serve.simulator import (
    QueryShape,
    SimulatedRequest,
    build_shapes,
    register_prediction_model,
    zipfian_workload,
)

__all__ = [
    "QueryShape",
    "ServingRuntime",
    "ServingStatement",
    "ServingTicket",
    "SimulatedRequest",
    "build_shapes",
    "register_prediction_model",
    "zipfian_workload",
]
