"""Deterministic Zipfian traffic for the serving benchmark and stress tests.

Real serving traffic is skewed: a few statement shapes dominate (the regime
bind batching exploits) with a long tail of ad-hoc analytics.  The simulator
reproduces that shape deterministically — same seed, same request stream —
so the benchmark's naive-loop and runtime measurements, and the concurrency
suite's serial and pooled replays, process *identical* work.

The shape catalog is a hot head of **parameterized** statements (Q6's
discount/quantity sweep, Q1's cutoff sweep, an orders date window, and a
``PREDICT`` scoring query over the Amazon-reviews corpus) followed by a tail
of the 22 raw TPC-H query texts.  Ranks follow a Zipf distribution
(``p ∝ 1/rank^s``), so the parameterized head absorbs most of the traffic —
exactly the repeated-statement pattern the plan cache and the batcher are
built for.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

import numpy as np

from repro.core.session import TQPSession
from repro.datasets import amazon_reviews, tpch

#: SQL of the hot parameterized shapes (module-level so tests and benchmarks
#: can prepare them directly).
Q6_SHAPE = """
select sum(l_extendedprice * l_discount) as revenue
from lineitem
where
    l_shipdate >= date '1994-01-01'
    and l_shipdate < date '1994-01-01' + interval '1' year
    and l_discount between :lo and :hi
    and l_quantity < :q
"""

Q1_SHAPE = """
select
    l_returnflag, l_linestatus,
    sum(l_quantity) as sum_qty,
    sum(l_extendedprice * (1 - l_discount)) as sum_disc_price,
    avg(l_discount) as avg_disc,
    count(*) as count_order
from lineitem
where l_shipdate <= :cutoff
group by l_returnflag, l_linestatus
order by l_returnflag, l_linestatus
"""

ORDERS_WINDOW_SHAPE = """
select o_orderpriority, count(*) as order_count
from orders
where o_orderdate >= :start and o_orderdate < :stop
group by o_orderpriority
order by o_orderpriority
"""

PREDICTION_SHAPE = """
select brand,
       sum(case when rating >= :cut then 1 else 0 end) as actual_positive,
       sum(predict('sentiment_classifier', text)) as predicted_positive
from amazon_reviews
group by brand
order by brand
"""


def _q6_binding(rng: np.random.RandomState) -> dict:
    """Spec-style Q6 substitution parameters (discount window + quantity)."""
    discount = 0.02 + int(rng.randint(0, 8)) * 0.01
    return {"lo": round(discount - 0.01, 2), "hi": round(discount + 0.01, 2),
            "q": float(24 + int(rng.randint(0, 2)))}


def _q1_binding(rng: np.random.RandomState) -> dict:
    return {"cutoff": f"1998-{int(rng.randint(6, 10)):02d}-"
                      f"{1 + int(rng.randint(0, 28)):02d}"}


def _orders_binding(rng: np.random.RandomState) -> dict:
    year = 1993 + int(rng.randint(0, 4))
    month = 1 + int(rng.randint(0, 10))
    stop_month, stop_year = month + 3, year
    if stop_month > 12:
        stop_month, stop_year = stop_month - 12, year + 1
    return {"start": f"{year}-{month:02d}-01",
            "stop": f"{stop_year}-{stop_month:02d}-01"}


def _prediction_binding(rng: np.random.RandomState) -> dict:
    return {"cut": 2 + int(rng.randint(0, 3))}


@dataclasses.dataclass(frozen=True)
class QueryShape:
    """One statement shape of the workload."""

    name: str
    sql: str
    #: Draws one parameter binding; ``None`` for unparameterized shapes.
    binder: Optional[Callable[[np.random.RandomState], dict]] = None


@dataclasses.dataclass(frozen=True)
class SimulatedRequest:
    """One request of the generated stream: a shape plus its binding."""

    shape: QueryShape
    params: Optional[dict]


def build_shapes(scale_factor: float, include_prediction: bool = True,
                 tail_queries: int = 22) -> list[QueryShape]:
    """The rank-ordered shape catalog: parameterized head, raw-TPC-H tail.

    ``tail_queries`` truncates the tail (CI smoke runs keep compile time down
    by carrying only the first few of the 22 shapes).
    """
    shapes = [
        QueryShape("q6_discount", Q6_SHAPE, _q6_binding),
        QueryShape("q1_cutoff", Q1_SHAPE, _q1_binding),
        QueryShape("orders_window", ORDERS_WINDOW_SHAPE, _orders_binding),
    ]
    if include_prediction:
        shapes.append(
            QueryShape("predict_sentiment", PREDICTION_SHAPE,
                       _prediction_binding))
    for number in tpch.ALL_QUERY_IDS[:tail_queries]:
        shapes.append(QueryShape(f"tpch_q{number}",
                                 tpch.query(number, scale_factor)))
    return shapes


def zipfian_workload(shapes: list[QueryShape], num_requests: int,
                     seed: int = 0, s: float = 1.2) -> list[SimulatedRequest]:
    """A deterministic request stream: shape ranks drawn Zipf(s), bindings
    drawn from each shape's parameter distribution.

    Same ``(shapes, num_requests, seed, s)`` → byte-identical stream, which
    is what lets the benchmark compare naive and runtime execution of *the
    same* traffic and the tests demand bit-identical per-request results.
    """
    if num_requests < 0:
        raise ValueError("num_requests must be >= 0")
    if s <= 0:
        raise ValueError("zipf exponent s must be > 0")
    rng = np.random.RandomState(seed)
    ranks = np.arange(1, len(shapes) + 1, dtype=np.float64)
    probs = ranks ** -s
    probs /= probs.sum()
    choices = rng.choice(len(shapes), size=num_requests, p=probs)
    requests = []
    for choice in choices:
        shape = shapes[int(choice)]
        params = shape.binder(rng) if shape.binder is not None else None
        requests.append(SimulatedRequest(shape=shape, params=params))
    return requests


def register_prediction_model(session: TQPSession, num_reviews: int = 400,
                              seed: int = 7) -> None:
    """Register the Amazon-reviews table and sentiment model the
    ``predict_sentiment`` shape scores with (small corpus, short training —
    the serving workload exercises inference, not fitting)."""
    from repro.ml.models import (
        BagOfWordsVectorizer,
        LogisticRegression,
        Pipeline,
    )

    reviews = amazon_reviews.generate_reviews(num_reviews=num_reviews,
                                              seed=seed)
    train_texts, train_labels, _, _ = amazon_reviews.training_split(reviews)
    model = Pipeline([
        ("vectorizer", BagOfWordsVectorizer(
            vocabulary=amazon_reviews.SENTIMENT_VOCABULARY)),
        ("classifier", LogisticRegression(epochs=40)),
    ]).fit(train_texts, train_labels)
    session.register("amazon_reviews", reviews)
    session.register_model("sentiment_classifier", model)
