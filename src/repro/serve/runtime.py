"""The serving runtime: a bounded worker pool over one shared session.

A deployed TQP instance does not run one query at a time — it serves many
logical clients whose requests arrive concurrently and mostly repeat a small
set of statement shapes.  :class:`ServingRuntime` is the piece between those
clients and a :class:`~repro.core.session.TQPSession`:

* **Shared statement routing.**  Every request — raw SQL text or a prepared
  handle plus bindings — resolves through the session's plan/statement
  cache, so all clients share one compiled (and traced) artifact per
  statement shape.  Concurrent misses on a cold statement are single-flighted
  by :meth:`~repro.core.plan_cache.PlanCache.get_or_create`.

* **Admission control.**  The request queue is bounded
  (``max_queue_depth``); a submit against a full queue fails fast with a
  typed :class:`~repro.errors.AdmissionError` instead of letting latency grow
  without bound.  A per-request ``timeout`` bounds queueing delay the same
  way: a request that waited past its deadline fails with
  :class:`~repro.errors.RequestTimeoutError` *instead of executing* (the
  timeout is a queueing deadline — a request already running is not
  preempted).

* **Inter-query bind batching.**  When a worker picks up a request, it also
  drains every queued request for the *same* compiled statement (up to
  ``batch_window``) and replays all their bindings through one
  :meth:`~repro.core.executor.Executor.execute_many` call — which on the
  compiled executor costs one input flattening plus one generated-function
  call per binding.  Requests from unrelated clients thus amortize each
  other's fixed costs, while every client still receives exactly the result
  of its own binding (``on_error="collect"`` keeps one bad request from
  poisoning its batch neighbours).  Within a batch, requests whose
  *validated* bindings are identical collapse onto one replay and share its
  result — under skewed traffic most of a hot statement's requests repeat a
  few bindings, so the batcher executes the distinct work, not the arrival
  count.

Profiler activation is captured at submission
(:func:`repro.tensor.profiler.capture_scope`) and re-entered on the worker
thread, so a profiled request reports the same events whether it runs on the
caller's thread or the pool's.
"""

from __future__ import annotations

import collections
import threading
import time
from typing import Any, Optional, Sequence

from repro.core.executor import ExecutionResult
from repro.core.options import ExecutionOptions
from repro.core.session import CompiledQuery, PreparedQuery, TQPSession
from repro.errors import (
    AdmissionError,
    BatchBindingError,
    BindingError,
    RequestTimeoutError,
    ServingError,
)
from repro.core.parameters import positional_binding
from repro.tensor.profiler import capture_scope


class ServingTicket:
    """Handle for one submitted request; resolves to its execution result.

    ``result()`` blocks until a worker completed the request, then returns
    its :class:`~repro.core.executor.ExecutionResult` or raises the typed
    error the request failed with (:class:`~repro.errors.AdmissionError`
    never reaches a ticket — admission failures raise at ``submit`` time).
    """

    __slots__ = ("_done", "_result", "_error", "submitted_at", "completed_at")

    def __init__(self):
        self._done = threading.Event()
        self._result: Optional[ExecutionResult] = None
        self._error: Optional[BaseException] = None
        #: ``perf_counter`` stamps for latency accounting (p50/p99 in the
        #: serving benchmark): set at admission and at completion.
        self.submitted_at = time.perf_counter()
        self.completed_at: Optional[float] = None

    # -- worker side -------------------------------------------------------

    def _complete(self, result: ExecutionResult) -> None:
        self._result = result
        self.completed_at = time.perf_counter()
        self._done.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self.completed_at = time.perf_counter()
        self._done.set()

    # -- client side -------------------------------------------------------

    def done(self) -> bool:
        return self._done.is_set()

    @property
    def latency_s(self) -> Optional[float]:
        """Admission-to-completion wall time, once the request finished."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at

    def result(self, timeout: Optional[float] = None) -> ExecutionResult:
        if not self._done.wait(timeout):
            raise RequestTimeoutError(
                f"request did not complete within {timeout} s")
        if self._error is not None:
            raise self._error
        return self._result

    def run(self, timeout: Optional[float] = None):
        """``result(...)`` as a DataFrame (mirrors ``BoundQuery.run``)."""
        return self.result(timeout).to_dataframe()


class _Request:
    """One admitted request, queued for a worker."""

    __slots__ = ("compiled", "bound", "profile", "scope", "deadline", "ticket")

    def __init__(self, compiled: CompiledQuery, bound: dict, profile: bool,
                 deadline: Optional[float]):
        self.compiled = compiled
        self.bound = bound
        self.profile = profile
        # Profiler/lane activation travels with the request so pooled
        # execution profiles exactly like caller-thread execution.
        self.scope = capture_scope()
        self.deadline = deadline
        self.ticket = ServingTicket()

    @property
    def batchable(self) -> bool:
        """Batch only plain requests: profiled ones (or ones submitted under
        an active profiler) need their own program invocation so their event
        streams stay per-request."""
        return not self.profile and self.scope.is_empty


class ServingStatement:
    """A prepared statement registered with a runtime; submit bindings to it.

    Thin wrapper pairing a :class:`~repro.core.session.PreparedQuery` (which
    lives in the session's shared statement cache) with the runtime that
    executes its bindings.  Two clients preparing the same SQL hold handles
    to the *same* compiled artifact, which is what makes their requests
    batchable with each other.
    """

    def __init__(self, runtime: "ServingRuntime", prepared: PreparedQuery):
        self.runtime = runtime
        self.prepared = prepared

    @property
    def parameters(self):
        return self.prepared.parameters

    def submit(self, *args: Any, timeout: Optional[float] = None,
               profile: bool = False, **kwargs: Any) -> ServingTicket:
        """Validate a binding and enqueue it; returns immediately."""
        return self.runtime.submit(self, params=_merge_binding(args, kwargs),
                                   timeout=timeout, profile=profile)

    def execute(self, *args: Any, timeout: Optional[float] = None,
                **kwargs: Any) -> ExecutionResult:
        """Submit and block for the result (one synchronous client turn)."""
        return self.submit(*args, timeout=timeout, **kwargs).result()

    def run(self, *args: Any, **kwargs: Any):
        return self.execute(*args, **kwargs).to_dataframe()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ServingStatement({self.prepared!r})"


def _merge_binding(args: Sequence[Any], kwargs: dict) -> "dict | tuple | None":
    if args and kwargs:
        raise BindingError(
            "bind either positionally (for '?' markers) or by name "
            "(for ':name' markers), not both")
    if args:
        return tuple(args)
    return kwargs or None


class ServingRuntime:
    """Multiplexes concurrent clients over one shared :class:`TQPSession`.

    Args:
        session: the shared session; its plan cache, conversion cache and
            registered tables are what all clients serve from.
        workers: worker threads executing admitted requests.
        max_queue_depth: bound on *queued* (not yet picked up) requests;
            submits beyond it raise :class:`~repro.errors.AdmissionError`.
        batch_window: max bindings of one compiled statement a worker folds
            into a single ``execute_many`` replay (1 disables batching).
        default_options: options for statements prepared through the
            runtime; ``None`` inherits the session defaults.
        default_timeout: queueing deadline (seconds) applied to requests
            submitted without an explicit ``timeout``.

    Use as a context manager, or call :meth:`close` — pending requests are
    drained before the workers exit.
    """

    def __init__(self, session: TQPSession, workers: int = 4,
                 max_queue_depth: int = 64, batch_window: int = 8,
                 default_options: Optional[ExecutionOptions] = None,
                 default_timeout: Optional[float] = None):
        if workers < 1:
            raise ServingError("workers must be >= 1")
        if max_queue_depth < 1:
            raise ServingError("max_queue_depth must be >= 1")
        if batch_window < 1:
            raise ServingError("batch_window must be >= 1")
        self.session = session
        self.workers = workers
        self.max_queue_depth = max_queue_depth
        self.batch_window = batch_window
        self.default_options = default_options
        self.default_timeout = default_timeout
        self._queue: "collections.deque[_Request]" = collections.deque()
        self._cond = threading.Condition()
        self._closed = False
        self._counters = {
            "submitted": 0, "completed": 0, "failed": 0, "timed_out": 0,
            "rejected": 0, "cancelled": 0, "batches": 0,
            "batched_requests": 0, "deduped_requests": 0, "max_batch": 0,
        }
        self._threads = [
            threading.Thread(target=self._worker, daemon=True,
                             name=f"serving-worker-{i}")
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- client API --------------------------------------------------------

    def prepare(self, sql: str,
                options: Optional[ExecutionOptions] = None) -> ServingStatement:
        """Prepare ``sql`` through the shared statement cache."""
        prepared = self.session.prepare(
            sql, options=options if options is not None else self.default_options)
        return ServingStatement(self, prepared)

    def submit(self, statement: "ServingStatement | PreparedQuery | str",
               params: "dict | Sequence[Any] | None" = None,
               timeout: Optional[float] = None,
               profile: bool = False,
               options: Optional[ExecutionOptions] = None) -> ServingTicket:
        """Admit one request; returns its :class:`ServingTicket` immediately.

        ``statement`` is raw SQL text (resolved through the statement cache,
        so repeats from any client hit the same compiled plan) or a prepared
        handle.  ``params`` binds its parameters — a dict for ``:name``
        markers, a sequence for ``?`` markers — and is validated *here*, on
        the client's thread: a bad binding raises a typed
        :class:`~repro.errors.BindingError` without consuming queue space.

        Raises :class:`~repro.errors.AdmissionError` when the queue is at
        ``max_queue_depth`` and :class:`~repro.errors.ServingError` once the
        runtime is closed.
        """
        compiled = self._resolve(statement, options)
        bound = self._validate_binding(compiled, params)
        deadline = None
        timeout = timeout if timeout is not None else self.default_timeout
        if timeout is not None:
            deadline = time.monotonic() + timeout
        request = _Request(compiled, bound, profile, deadline)
        with self._cond:
            if self._closed:
                raise ServingError("serving runtime is closed")
            depth = len(self._queue)
            if depth >= self.max_queue_depth:
                self._counters["rejected"] += 1
                raise AdmissionError(
                    f"serving queue is full ({depth} requests pending, "
                    f"limit {self.max_queue_depth})", queue_depth=depth)
            self._queue.append(request)
            self._counters["submitted"] += 1
            self._cond.notify()
        return request.ticket

    def execute(self, statement: "ServingStatement | PreparedQuery | str",
                params: "dict | Sequence[Any] | None" = None,
                timeout: Optional[float] = None,
                profile: bool = False,
                options: Optional[ExecutionOptions] = None) -> ExecutionResult:
        """Submit and block for the result."""
        return self.submit(statement, params=params, timeout=timeout,
                           profile=profile, options=options).result()

    @property
    def queue_depth(self) -> int:
        with self._cond:
            return len(self._queue)

    def stats(self) -> dict:
        """Counter snapshot (submissions, batches, rejections, ...)."""
        with self._cond:
            stats = dict(self._counters)
            stats["queue_depth"] = len(self._queue)
            stats["workers"] = self.workers
            return stats

    def close(self, drain: bool = True) -> None:
        """Stop the workers.  ``drain=True`` (default) runs every queued
        request first; ``drain=False`` fails pending tickets with a
        :class:`~repro.errors.ServingError` instead."""
        with self._cond:
            if self._closed and not self._threads:
                return
            self._closed = True
            pending: list[_Request] = []
            if not drain:
                pending = list(self._queue)
                self._queue.clear()
            self._cond.notify_all()
        for request in pending:
            self._counters["cancelled"] += 1
            request.ticket._fail(
                ServingError("serving runtime closed before the request ran"))
        for thread in self._threads:
            thread.join()
        self._threads = []

    def __enter__(self) -> "ServingRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- internals ---------------------------------------------------------

    def _resolve(self, statement: "ServingStatement | PreparedQuery | str",
                 options: Optional[ExecutionOptions]) -> CompiledQuery:
        if isinstance(statement, ServingStatement):
            return statement.prepared.compiled
        if isinstance(statement, PreparedQuery):
            return statement.compiled
        if isinstance(statement, CompiledQuery):
            return statement
        if isinstance(statement, str):
            return self.session.compile(
                statement,
                options=options if options is not None else self.default_options)
        raise ServingError(
            f"cannot serve a {type(statement).__name__}; submit SQL text, "
            "a ServingStatement, or a PreparedQuery")

    @staticmethod
    def _validate_binding(compiled: CompiledQuery,
                          params: "dict | Sequence[Any] | None") -> dict:
        if params is None:
            params = {}
        elif not isinstance(params, dict):
            params = positional_binding(compiled.params, tuple(params))
        return compiled.executor.bind(params)

    def _worker(self) -> None:
        while True:
            batch = self._next_batch()
            if batch is None:
                return
            self._process(batch)

    def _next_batch(self) -> "list[_Request] | None":
        """Block for work; returns up to ``batch_window`` requests for one
        compiled statement, or ``None`` when the runtime shut down."""
        with self._cond:
            while not self._queue:
                if self._closed:
                    return None
                self._cond.wait()
            first = self._queue.popleft()
            batch = [first]
            if first.batchable and self.batch_window > 1:
                kept: "collections.deque[_Request]" = collections.deque()
                while self._queue and len(batch) < self.batch_window:
                    request = self._queue.popleft()
                    if request.batchable and request.compiled is first.compiled:
                        batch.append(request)
                    else:
                        kept.append(request)
                kept.extend(self._queue)
                self._queue = kept
            return batch

    def _process(self, batch: "list[_Request]") -> None:
        # Enforce queueing deadlines at pickup: an expired request fails
        # typed instead of executing (running work is never preempted).
        now = time.monotonic()
        live: list[_Request] = []
        for request in batch:
            if request.deadline is not None and now > request.deadline:
                with self._cond:
                    self._counters["timed_out"] += 1
                request.ticket._fail(RequestTimeoutError(
                    "request spent longer than its timeout in the serving "
                    "queue"))
            else:
                live.append(request)
        if not live:
            return
        compiled = live[0].compiled
        try:
            # One atomic (executor, inputs, zone-map) snapshot for the whole
            # batch: a concurrent register() either precedes or follows all
            # of it, and a statement whose generation went stale (or whose
            # adaptive strategy preference changed) is re-planned before
            # anything executes.
            executor, inputs, stats = compiled.session.execution_state(
                compiled, live[0].bound or None)
        except Exception as exc:  # noqa: BLE001 - forwarded to the tickets
            self._fail_all(live, exc)
            return
        if len(live) == 1 or not live[0].batchable:
            # Strategy of this snapshot, read before executing so a
            # concurrent re-plan can't misattribute the observations.
            strategy = compiled.strategy
            for request in live:
                self._run_single(request, executor, inputs, stats, strategy)
            return
        self._run_batch(live, executor, inputs, stats)

    def _run_single(self, request: _Request, executor, inputs, stats,
                    strategy=None) -> None:
        adaptive = request.compiled.options.adaptive
        try:
            with request.scope:
                result = executor.execute(
                    inputs, profile=request.profile or adaptive,
                    params=request.bound, scan_stats=stats)
        except Exception as exc:  # noqa: BLE001 - forwarded to the ticket
            with self._cond:
                self._counters["failed"] += 1
            request.ticket._fail(exc)
            return
        if adaptive:
            # Outside the session lock (observe only takes the adaptive
            # runtime's own locks), so workers record feedback concurrently.
            request.compiled.session.adaptive.observe(
                request.compiled, request.bound or None, result,
                strategy=strategy,
                plan_signature=executor.plan.root.pretty())
        with self._cond:
            self._counters["completed"] += 1
        request.ticket._complete(result)

    def _run_batch(self, live: "list[_Request]", executor, inputs,
                   stats) -> None:
        # Zipfian traffic repeats not just statements but *bindings*: within
        # one batch, requests with identical (validated, normalized) values
        # collapse onto a single replay and share its result — the queries
        # are read-only, so every client still receives exactly the result
        # its own binding produces.
        slot_by_key: dict = {}
        distinct: list[dict] = []
        slots: list[int] = []
        for request in live:
            try:
                key = tuple(sorted(request.bound.items()))
                slot = slot_by_key.get(key)
            except TypeError:  # unhashable binding value: keep it distinct
                slot = None
                key = None
            if slot is None:
                slot = len(distinct)
                distinct.append(request.bound)
                if key is not None:
                    slot_by_key[key] = slot
            slots.append(slot)
        try:
            outcomes = executor.execute_many(
                inputs, distinct, on_error="collect", scan_stats=stats)
        except Exception as exc:  # noqa: BLE001 - forwarded to the tickets
            self._fail_all(live, exc)
            return
        completed = failed = 0
        for request, slot in zip(live, slots):
            outcome = outcomes[slot]
            if isinstance(outcome, BatchBindingError):
                failed += 1
                request.ticket._fail(outcome)
            else:
                completed += 1
                request.ticket._complete(outcome)
        with self._cond:
            self._counters["completed"] += completed
            self._counters["failed"] += failed
            self._counters["batches"] += 1
            self._counters["batched_requests"] += len(live)
            self._counters["deduped_requests"] += len(live) - len(distinct)
            self._counters["max_batch"] = max(self._counters["max_batch"],
                                              len(live))

    def _fail_all(self, requests: "list[_Request]",
                  error: BaseException) -> None:
        with self._cond:
            self._counters["failed"] += len(requests)
        for request in requests:
            request.ticket._fail(error)
