"""Estimate correction: blend observed selectivities into static estimates.

The planner's filter-selectivity estimates come from zone-map/NDV statistics
(:func:`repro.storage.pruning.estimate_selectivity`) and, for parameterized
conjuncts, a fixed prior — both can be badly wrong for a recurring prepared
statement whose bindings concentrate in one part of the value space.  For
statements with execution history, this module builds the
``filter_correction`` hook the planner accepts: a blend of the static
estimate with the selectivity the feedback store actually observed, weighted
by how much history backs it.

Corrections are bucketed per **binding region**: a coarse bucketing of the
statement's bound parameter values, so a statement alternately bound to a
selective and an unselective regime keeps two independent correction (and
strategy) histories instead of poisoning one shared blend.
"""

from __future__ import annotations

import datetime
import math
import statistics
from typing import Callable, Mapping, Optional

from repro.adaptive.feedback import FeedbackStore

#: Observation count at which the blend weighs observed and static equally;
#: more history shifts the blend toward the observation.
PRIOR_WEIGHT = 2.0

#: Nanosecond epoch values (bound dates normalized to integers) are bucketed
#: by year instead of magnitude — every plausible timestamp shares one
#: log2 bucket, which would collapse all date regimes into one region.
_NS_EPOCH_FLOOR = 1e15
_NS_PER_YEAR = 365.25 * 24 * 3600 * 1e9


def _bucket_value(value) -> object:
    """One bound value → its coarse region bucket.

    Numbers bucket by sign and magnitude (``round(log2(|v|+1))``: values in
    the same factor-of-~2 band share a bucket), dates by year, strings by
    value.  The goal is stability *within* a workload regime and separation
    *between* regimes, not precision.
    """
    if isinstance(value, bool):
        return value
    if isinstance(value, (datetime.date, datetime.datetime)):
        return value.year
    if isinstance(value, (int, float)):
        magnitude = float(abs(value))
        if not math.isfinite(magnitude):
            return str(value)
        if magnitude > _NS_EPOCH_FLOOR:
            return int(value / _NS_PER_YEAR)
        bucket = round(math.log2(magnitude + 1.0))
        return -bucket if value < 0 else bucket
    text = str(value)
    return text[:32]


def binding_region(params: Optional[Mapping[str, object]]) -> tuple:
    """The region key of one parameter binding (``()`` when unparameterized)."""
    if not params:
        return ()
    return tuple(sorted((name, _bucket_value(value))
                        for name, value in params.items()))


class EstimateCorrector:
    """Builds per-(statement, region) selectivity corrections from feedback."""

    def __init__(self, store: FeedbackStore,
                 prior_weight: float = PRIOR_WEIGHT):
        self.store = store
        self.prior_weight = prior_weight

    def observed_selectivity(self, statement_key: str,
                             region: tuple) -> Optional[tuple[float, int]]:
        """Median observed filter selectivity and its backing count."""
        ratios = [fb.filter_selectivity
                  for fb in self.store.records(statement_key, region)
                  if fb.filter_selectivity is not None]
        if not ratios:
            return None
        return statistics.median(ratios), len(ratios)

    def correction_fn(self, statement_key: str,
                      region: tuple) -> Optional[Callable[[float], float]]:
        """The planner's ``filter_correction`` hook, or ``None`` w/o history.

        The returned function blends ``static`` with the observed median:
        ``w·observed + (1-w)·static`` where ``w = n/(n + prior_weight)`` — a
        lone observation nudges the estimate, a settled history dominates it.
        """
        observed = self.observed_selectivity(statement_key, region)
        if observed is None:
            return None
        ratio, n = observed
        weight = n / (n + self.prior_weight)

        def correct(static: float) -> float:
            return weight * ratio + (1.0 - weight) * static

        return correct
