"""The adaptive runtime: strategy candidates, exploration, re-planning.

One :class:`AdaptiveRuntime` lives on each session.  For every statement
compiled with ``ExecutionOptions(adaptive=True)`` it plans a small set of
**strategy candidates** — the same query under different
:class:`~repro.core.tuning.Tuning` / parallelism settings:

* ``auto`` — the static planner's choice (threshold-gated parallel
  operators), with observed-selectivity corrections once history exists;
* ``serial`` — single-lane, serial operators only;
* ``parallel`` — the full lane budget with the parallel threshold forced to
  zero (parallel operators wherever they are semantically safe).

Strategies never change results — only which operator variants run — so the
runtime is free to *explore*: early executions of a statement rotate through
the candidates while the feedback store accumulates observed simulated
times, then the choice settles on the observed winner per binding region.
The learned cost model ranks exploration (and skips candidates predicted to
be far worse) for statements it has transferable history on.

A settled choice is revisited on every execution: when the preferred
strategy differs from the compiled one — new observations, a different
binding region, or a drift flush after observed cardinalities moved — the
session re-plans the statement **in place** through the existing
``CompiledQuery._refresh_from`` machinery, under the session lock, so
in-flight serving requests keep their snapshot and later ones get the new
plan.
"""

from __future__ import annotations

import dataclasses
import threading
from collections import OrderedDict
from typing import Optional

from repro.adaptive.cost_model import StrategyCostModel, featurize
from repro.adaptive.estimates import EstimateCorrector, binding_region
from repro.adaptive.feedback import ExecutionFeedback, FeedbackStore, harvest_feedback
from repro.core.plan_cache import normalize_sql
from repro.core.planner import ir_contains_subqueries, plan_ir
from repro.core.tuning import active_tuning

#: Lane budget when the statement's options don't ask for parallelism.
DEFAULT_ADAPTIVE_LANES = 4


@dataclasses.dataclass(frozen=True)
class Strategy:
    """One way to execute a statement: lanes + tuning deltas."""

    name: str
    parallelism: int
    #: Override of the tuning's parallel threshold (``None`` keeps it).
    parallel_threshold_rows: Optional[int] = None

    def tuning(self):
        base = active_tuning()
        if self.parallel_threshold_rows is None:
            return base
        return base.replace(
            parallel_threshold_rows=self.parallel_threshold_rows)


class AdaptiveRuntime:
    """Per-session feedback loop: observe, correct, choose, re-plan.

    Thread-safety: the runtime has its own lock for its decision state; the
    feedback store and cost model guard themselves.  The session calls
    :meth:`plan_statement` and :meth:`wants_replan` under the session lock
    (lock order session → runtime) and :meth:`observe` outside it.
    """

    def __init__(self, history: int = 32, max_statements: int = 256,
                 min_observations: int = 2, drift_factor: float = 4.0,
                 drift_floor_bytes: int = 16384,
                 prune_factor: float = 8.0):
        self.feedback = FeedbackStore(history=history,
                                      max_buckets=max_statements)
        self.corrector = EstimateCorrector(self.feedback)
        self.cost_model = StrategyCostModel()
        #: Observations required per (statement, region, strategy) before
        #: the choice settles on the fastest observed time.
        self.min_observations = max(1, int(min_observations))
        #: Output-bytes ratio between an execution and the bucket median at
        #: which cardinalities are considered drifted (history is flushed
        #: and exploration restarts against the current data).
        self.drift_factor = float(drift_factor)
        #: Operators moving fewer bytes than this never signal drift.
        self.drift_floor_bytes = int(drift_floor_bytes)
        #: Skip exploring a candidate the trained cost model predicts to be
        #: worse than this factor times the best candidate's prediction.
        self.prune_factor = float(prune_factor)
        self.max_statements = max(1, int(max_statements))
        self._lock = threading.Lock()
        #: statement key → candidate strategies, in exploration order.
        self._candidates: "OrderedDict[str, list[Strategy]]" = OrderedDict()
        #: (statement key, strategy name) → plan features of the candidate.
        self._features: dict[tuple[str, str], tuple[float, ...]] = {}
        #: statement key → binding region of the latest execution.
        self._last_region: dict[str, tuple] = {}
        #: Total in-place re-plans triggered by strategy changes (telemetry).
        self.replan_count = 0

    # -- candidate construction --------------------------------------------

    @staticmethod
    def statement_key(sql: str) -> str:
        return normalize_sql(sql)

    def _candidate_set(self, resolved, query_ir) -> list[Strategy]:
        lanes = resolved.parallelism if (resolved.parallelism or 0) > 1 \
            else DEFAULT_ADAPTIVE_LANES
        if ir_contains_subqueries(query_ir):
            # Planning mutates embedded subquery subplans in place, so the
            # same IR tree cannot be planned once per candidate; these
            # statements keep the static choice (still corrected, observed,
            # and used as training data).
            return [Strategy("auto", lanes)]
        return [Strategy("auto", lanes),
                Strategy("serial", 1),
                Strategy("parallel", lanes, parallel_threshold_rows=0)]

    # -- compile-time entry points ------------------------------------------

    def plan_statement(self, sql: str, query_ir, resolved, plan_kwargs):
        """Plan every candidate, pick one, return its artifacts.

        Called by the session's ``_compile_uncached`` (under the session
        lock) for adaptive statements.  Returns ``(operator_plan,
        executor_options, strategy_name)`` — the executor options carry the
        chosen strategy's lane count while the statement's cache identity
        keeps the caller's options.
        """
        key = self.statement_key(sql)
        candidates = self._candidate_set(resolved, query_ir)
        with self._lock:
            region = self._last_region.get(key, ())
        correction = self.corrector.correction_fn(key, region)
        plans = {}
        for strategy in candidates:
            plans[strategy.name] = plan_ir(
                query_ir, parallelism=strategy.parallelism,
                tuning=strategy.tuning(), filter_correction=correction,
                **plan_kwargs)
        with self._lock:
            self._candidates[key] = candidates
            self._candidates.move_to_end(key)
            for strategy in candidates:
                self._features[(key, strategy.name)] = featurize(
                    plans[strategy.name], strategy.parallelism)
            while len(self._candidates) > self.max_statements:
                stale_key, stale = self._candidates.popitem(last=False)
                for strategy in stale:
                    self._features.pop((stale_key, strategy.name), None)
                self._last_region.pop(stale_key, None)
        chosen = self._choose(key, region) or candidates[0].name
        strategy = next(s for s in candidates if s.name == chosen)
        exec_options = resolved.replace(parallelism=strategy.parallelism)
        return plans[chosen], exec_options, chosen

    def wants_replan(self, compiled, params: Optional[dict]) -> bool:
        """Should this statement be re-planned before executing?

        Called under the session lock on every adaptive execution.  Also
        notes the binding region, so a re-plan triggered here compiles with
        this execution's correction bucket.
        """
        key = self.statement_key(compiled.sql)
        region = binding_region(params)
        with self._lock:
            self._last_region[key] = region
        desired = self._choose(key, region)
        if desired is None or desired == compiled.strategy:
            return False
        self.replan_count += 1
        return True

    # -- the choice ---------------------------------------------------------

    def _predicted(self, key: str, name: str) -> Optional[float]:
        with self._lock:
            features = self._features.get((key, name))
        if features is None:
            return None
        return self.cost_model.predict_seconds(features)

    def _choose(self, key: str, region: tuple) -> Optional[str]:
        """The strategy this (statement, region) should run next.

        Under-observed candidates are explored first (fewest observations
        first, candidate order breaking ties), unless the trained cost model
        predicts one to be ``prune_factor``× worse than the best candidate —
        those are skipped and scored by prediction.  Once every surviving
        candidate has ``min_observations``, the *fastest* observed time per
        candidate decides: the underlying cost is deterministic for fixed
        data and the measurement noise is nonnegative, so the per-strategy
        minimum compares true costs where a median would compare noise.
        """
        with self._lock:
            candidates = self._candidates.get(key)
        if not candidates:
            return None
        names = [strategy.name for strategy in candidates]
        counts = {name: self.feedback.count(key, region, name)
                  for name in names}
        predictions = {name: self._predicted(key, name) for name in names}
        known = [p for p in predictions.values() if p is not None]
        floor = min(known) if known else None
        pruned = {
            name for name in names
            if counts[name] == 0 and floor is not None
            and predictions[name] is not None
            and predictions[name] > self.prune_factor * max(floor, 1e-9)
        }
        under = [name for name in names
                 if name not in pruned
                 and counts[name] < self.min_observations]
        if under:
            return min(under, key=lambda n: (counts[n], names.index(n)))
        scores = {}
        for name in names:
            observed = self.feedback.best_reported_s(key, region, name)
            if observed is None:
                observed = predictions[name]
            scores[name] = observed if observed is not None else float("inf")
        return min(names, key=lambda n: (scores[n], names.index(n)))

    # -- run-time entry point -----------------------------------------------

    def observe(self, compiled, params: Optional[dict], result,
                strategy: Optional[str] = None,
                plan_signature: Optional[str] = None) -> None:
        """Harvest one execution's profile into the feedback store.

        Flushes the statement's history first when the observed per-operator
        output cardinalities drifted past ``drift_factor`` against the
        bucket's median — the signal that the underlying data changed shape
        (e.g. a re-registered table with inverted skew) and the settled
        strategy choice must be re-earned against the new distribution.
        """
        if result.profile is None:
            return
        key = self.statement_key(compiled.sql)
        region = binding_region(params)
        strategy = strategy or compiled.strategy or "auto"
        if plan_signature is None:
            plan_signature = compiled.operator_plan.root.pretty()
        with self._lock:
            self._last_region[key] = region
            features = self._features.get((key, strategy))
        operators, selectivity = harvest_feedback(result.profile)
        feedback = ExecutionFeedback(
            statement_key=key, region=region, strategy=strategy,
            reported_s=result.reported_s,
            result_rows=result.table.num_rows,
            filter_selectivity=selectivity, operators=operators,
            features=features, plan_signature=plan_signature)
        if self._drifted(key, region, strategy, plan_signature,
                         operators, selectivity):
            self.feedback.forget_statement(key)
        self.feedback.record(feedback)
        self.cost_model.maybe_train(self.feedback)

    def _drifted(self, key: str, region: tuple, strategy: str,
                 plan_signature: Optional[str], operators,
                 selectivity: Optional[float]) -> bool:
        # Signal 1: the observed filter selectivity moved far from the
        # bucket's median.  Selectivity is plan-shape-independent (the same
        # mask ops run under every strategy), so it catches a re-registered
        # table whose value distribution inverted even when the per-family
        # bytes are diluted by unchanged scan traffic.
        if selectivity is not None:
            baseline_sel = self.corrector.observed_selectivity(key, region)
            if baseline_sel is not None:
                base, _ = baseline_sel
                hi, lo = max(selectivity, base), min(selectivity, base)
                if hi - lo > 0.02 and hi / max(lo, 1e-6) > self.drift_factor:
                    return True
        # Signal 2: per-operator-family output bytes moved.  Compare
        # same-strategy, same-plan-shape executions only: strategies (and
        # successive estimate-corrected generations of one strategy) fuse
        # operators differently, so other byte profiles differ by
        # construction, not because the data moved.
        baseline = self.feedback.median_operator_bytes(
            key, region, strategy, plan_signature)
        for obs in operators:
            base = baseline.get(obs.family)
            if base is None:
                continue
            hi = max(float(obs.output_bytes), base)
            lo = min(float(obs.output_bytes), base)
            if hi < self.drift_floor_bytes:
                continue
            if lo <= 0.0 or hi / lo > self.drift_factor:
                return True
        return False
