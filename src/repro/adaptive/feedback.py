"""Runtime feedback store: what each execution actually did.

After every adaptive execution the session harvests the profiler events the
run already produced (no extra instrumentation): per-operator observed
cardinalities (via input/output bytes) and per-(fused-)kernel simulated
times, aggregated per *operator family* — the scope strings the operators
stamp on their events, canonicalized so ``Filter`` and
``MorselFilter(workers=4)`` (the same relational operator under different
strategies) land in the same bucket and stay comparable across plans.

Records are keyed by ``(plan-cache statement key, binding region)`` — the
same normalized-SQL key the session's plan cache uses, plus the coarse
bucketing of the statement's bound parameter values
(:func:`repro.adaptive.estimates.binding_region`) — with bounded history per
key and an LRU bound on the number of keys, and appends are lock-guarded so
the serving runtime can record from many worker threads at once.
"""

from __future__ import annotations

import dataclasses
import statistics
import threading
from collections import OrderedDict, deque
from typing import Iterable, Optional

from repro.tensor.profiler import Profiler

#: Operator-name prefixes → canonical family.  Longest prefix wins, so the
#: serial, morsel-parallel and distributed variants of one relational
#: operator aggregate into one feedback bucket.
_FAMILY_PREFIXES = (
    ("PartitionedHashJoin", "HashJoin"),
    ("ShuffleJoin", "HashJoin"),
    ("BroadcastJoin", "HashJoin"),
    ("NestedLoopJoin", "NestedLoopJoin"),
    ("HashJoin", "HashJoin"),
    ("ParallelHashAggregate", "HashAggregate"),
    ("ShardedAggregate", "HashAggregate"),
    ("HashAggregate", "HashAggregate"),
    ("DistributedScan", "Scan"),
    ("MorselScan", "Scan"),
    ("TableScan", "Scan"),
    ("DistributedFilter", "Filter"),
    ("MorselFilter", "Filter"),
    ("Filter", "Filter"),
    ("DistributedProject", "Project"),
    ("MorselProject", "Project"),
    ("Project", "Project"),
    ("DistributedRename", "Rename"),
    ("Rename", "Rename"),
    ("Gather", "Gather"),
    ("Sort", "Sort"),
    ("Limit", "Limit"),
    ("Distinct", "Distinct"),
)

#: The op whose input→output byte ratio is the observed-selectivity proxy:
#: every filter materializes surviving rows by masking each column with
#: exactly this op.  It is counted inside ``Filter`` scopes and inside lane
#: sub-scopes (``...@w0``) — morsel pipelines fuse the filter into the
#: downstream operator's workers, so that is where its masks run.
_MASK_OP = "boolean_mask"


def scope_family(scope: str) -> str:
    """Canonical operator family of a profiler scope string.

    ``"MorselFilter(workers=4)"`` → ``"Filter"``;
    ``"ShuffleJoin[inner](devices=2)"`` → ``"HashJoin"``;
    scans keep their table so two scans in one plan stay distinct:
    ``"MorselScan(lineitem, workers=4)"`` → ``"Scan(lineitem)"``.
    """
    text = scope.split("@", 1)[0].strip()
    head, _, rest = text.partition("(")
    head = head.split("[", 1)[0].strip()
    family = head
    for prefix, canonical in _FAMILY_PREFIXES:
        if head.startswith(prefix):
            family = canonical
            break
    if family == "Scan":
        table = rest.rstrip(")").split(",", 1)[0].strip()
        if table and "=" not in table:
            return f"Scan({table})"
    return family


@dataclasses.dataclass(frozen=True)
class OperatorObservation:
    """Aggregated profiler events of one operator family in one execution."""

    family: str
    calls: int
    kernel_s: float
    input_bytes: int
    output_bytes: int


@dataclasses.dataclass(frozen=True)
class ExecutionFeedback:
    """Everything one adaptive execution taught us."""

    statement_key: str
    region: tuple
    strategy: str
    #: Cost-model reported time — on the CPU device with profiling on, the
    #: simulated kernel time (serial + slowest lane + dispatch overhead).
    reported_s: float
    result_rows: int
    #: Observed fraction of filter input bytes that survived the masks, or
    #: ``None`` when the plan had no filter.  The proxy for observed
    #: selectivity that corrects the static estimates.
    filter_selectivity: Optional[float]
    operators: tuple[OperatorObservation, ...]
    #: Plan features at execution time (see ``repro.adaptive.cost_model``);
    #: the learned cost model's training rows.
    features: Optional[tuple[float, ...]] = None
    #: Shape signature of the executed operator plan (``root.pretty()``).
    #: Drift detection only compares executions of the *same* shape: one
    #: strategy can legitimately change shape as estimate corrections land,
    #: and differently-shaped plans bucket their bytes differently.
    plan_signature: Optional[str] = None


def harvest_feedback(profile: Profiler) -> tuple[
        tuple[OperatorObservation, ...], Optional[float]]:
    """Fold a run's profiler events into per-family observations.

    Returns ``(observations, filter_selectivity)``.  Works entirely from the
    events the run already recorded — op name, bytes, and the operator scope
    each op executed under.
    """
    by_family: "OrderedDict[str, dict]" = OrderedDict()
    mask_in = mask_out = 0
    for event in profile.events:
        family = scope_family(event.scope) if event.scope else "<unscoped>"
        bucket = by_family.setdefault(
            family, {"calls": 0, "kernel_s": 0.0, "in": 0, "out": 0})
        bucket["calls"] += 1
        bucket["kernel_s"] += event.elapsed_s
        bucket["in"] += event.input_bytes
        bucket["out"] += event.output_bytes
        if event.op == _MASK_OP and (
                family == "Filter" or "@" in (event.scope or "")):
            mask_in += event.input_bytes
            mask_out += event.output_bytes
    observations = tuple(
        OperatorObservation(family=family, calls=bucket["calls"],
                            kernel_s=bucket["kernel_s"],
                            input_bytes=bucket["in"],
                            output_bytes=bucket["out"])
        for family, bucket in by_family.items())
    selectivity = (min(1.0, mask_out / mask_in) if mask_in > 0 else None)
    return observations, selectivity


class FeedbackStore:
    """Bounded, thread-safe history of :class:`ExecutionFeedback` records.

    ``history`` bounds the records kept per ``(statement, region)`` bucket
    (oldest evicted first); ``max_buckets`` bounds the bucket count LRU-wise,
    so a serving workload with an unbounded statement mix cannot grow the
    store without limit.
    """

    def __init__(self, history: int = 32, max_buckets: int = 256):
        self.history = max(1, int(history))
        self.max_buckets = max(1, int(max_buckets))
        self._buckets: "OrderedDict[tuple[str, tuple], deque[ExecutionFeedback]]" \
            = OrderedDict()
        self._lock = threading.Lock()
        #: Total records ever recorded (not bounded by eviction) — the
        #: cost model's retraining clock.
        self.total_recorded = 0

    # -- writing -----------------------------------------------------------

    def record(self, feedback: ExecutionFeedback) -> None:
        key = (feedback.statement_key, feedback.region)
        with self._lock:
            bucket = self._buckets.get(key)
            if bucket is None:
                bucket = deque(maxlen=self.history)
                self._buckets[key] = bucket
            self._buckets.move_to_end(key)
            bucket.append(feedback)
            self.total_recorded += 1
            while len(self._buckets) > self.max_buckets:
                self._buckets.popitem(last=False)

    def forget_statement(self, statement_key: str) -> int:
        """Drop every region's history for one statement (drift response)."""
        with self._lock:
            stale = [key for key in self._buckets if key[0] == statement_key]
            for key in stale:
                del self._buckets[key]
            return len(stale)

    # -- reading -----------------------------------------------------------

    def records(self, statement_key: str, region: Optional[tuple] = None,
                strategy: Optional[str] = None) -> list[ExecutionFeedback]:
        """Snapshot of matching records, oldest first."""
        with self._lock:
            if region is not None:
                rows: Iterable[ExecutionFeedback] = \
                    tuple(self._buckets.get((statement_key, region), ()))
            else:
                rows = [fb for (key, _), bucket in self._buckets.items()
                        if key == statement_key for fb in bucket]
        return [fb for fb in rows
                if strategy is None or fb.strategy == strategy]

    def count(self, statement_key: str, region: tuple,
              strategy: str) -> int:
        return len(self.records(statement_key, region, strategy))

    def median_reported_s(self, statement_key: str, region: tuple,
                          strategy: str) -> Optional[float]:
        rows = self.records(statement_key, region, strategy)
        if not rows:
            return None
        return statistics.median(fb.reported_s for fb in rows)

    def best_reported_s(self, statement_key: str, region: tuple,
                        strategy: str) -> Optional[float]:
        """Fastest observed time — the settling statistic.

        A strategy's cost is deterministic for fixed data while the measured
        kernel times carry nonnegative scheduling noise, so the minimum over
        observations estimates the true cost; a median would fold the noise
        of the slow runs into the comparison.
        """
        rows = self.records(statement_key, region, strategy)
        if not rows:
            return None
        return min(fb.reported_s for fb in rows)

    def median_operator_bytes(self, statement_key: str, region: tuple,
                              strategy: Optional[str] = None,
                              plan_signature: Optional[str] = None
                              ) -> dict[str, float]:
        """Median observed output bytes per operator family (drift baseline).

        Pass ``strategy`` and ``plan_signature`` to compare like with like:
        different strategies (and different generations of one strategy's
        plan) fuse operators differently — a morsel pipeline folds scan and
        filter into the aggregate's scope — so their per-family byte
        profiles are not comparable.
        """
        per_family: dict[str, list[int]] = {}
        for fb in self.records(statement_key, region, strategy):
            if plan_signature is not None \
                    and fb.plan_signature != plan_signature:
                continue
            for obs in fb.operators:
                per_family.setdefault(obs.family, []).append(obs.output_bytes)
        return {family: float(statistics.median(values))
                for family, values in per_family.items()}

    def training_data(self) -> tuple[list[list[float]], list[float]]:
        """Every record with features, as ``(X, y)`` for the cost model."""
        with self._lock:
            rows = [fb for bucket in self._buckets.values() for fb in bucket]
        X = [list(fb.features) for fb in rows if fb.features is not None]
        y = [fb.reported_s for fb in rows if fb.features is not None]
        return X, y

    def dump(self) -> list[dict]:
        """The store as plain dicts (for inspection / JSON serialization)."""
        with self._lock:
            rows = [fb for bucket in self._buckets.values() for fb in bucket]
        return [dataclasses.asdict(fb) for fb in rows]

    def __len__(self) -> int:
        with self._lock:
            return sum(len(bucket) for bucket in self._buckets.values())
