"""Adaptive execution: runtime feedback, learned cost models, self-tuning plans.

The planner's static choices (serial vs morsel-parallel operators, pruning
gates) rest on zone-map/NDV estimates — but the profiler already observes
*exact* per-operator cardinalities and simulated kernel times on every run.
This package closes that loop, the paper's leverage-the-ML-ecosystem thesis
pointed inward at our own engine:

* :mod:`repro.adaptive.feedback` — a bounded, thread-safe store of
  per-execution observations harvested from the existing profiler events,
  keyed by plan-cache statement key and binding region;
* :mod:`repro.adaptive.estimates` — blends observed filter selectivities
  into the static estimates feeding the parallel threshold, bucketed per
  binding region so rebinds into a different selectivity regime don't
  poison each other;
* :mod:`repro.adaptive.cost_model` — plan featurization plus a learned
  cost model (our own :mod:`repro.ml` linear/tree regressors) predicting
  simulated cost per execution strategy;
* :mod:`repro.adaptive.planner` — the :class:`AdaptiveRuntime` a session
  owns: plans strategy candidates, explores them, settles on the observed
  winner, and re-plans a cached statement in place (via the existing
  ``CompiledQuery._refresh_from`` machinery) when the preference changes or
  observed cardinalities drift.

Opt in per statement with ``ExecutionOptions(adaptive=True)``; inspect the
collected feedback via ``session.adaptive.feedback.dump()``.
"""

from repro.adaptive.cost_model import FEATURE_NAMES, StrategyCostModel, featurize
from repro.adaptive.estimates import EstimateCorrector, binding_region
from repro.adaptive.feedback import (
    ExecutionFeedback,
    FeedbackStore,
    OperatorObservation,
    harvest_feedback,
    scope_family,
)
from repro.adaptive.planner import AdaptiveRuntime, Strategy

__all__ = [
    "AdaptiveRuntime",
    "EstimateCorrector",
    "ExecutionFeedback",
    "FEATURE_NAMES",
    "FeedbackStore",
    "OperatorObservation",
    "Strategy",
    "StrategyCostModel",
    "binding_region",
    "featurize",
    "harvest_feedback",
    "scope_family",
]
