"""Learned strategy cost model: plan features → predicted simulated cost.

The paper's signature move — compile database workloads onto the ML stack —
pointed inward: the models are our own :mod:`repro.ml` linear/tree
regressors, trained on the feedback store's observed ``reported_s`` (the
simulated kernel time of past executions) against the plan features below.
The adaptive planner uses predictions to rank strategy candidates for
statements (or binding regions) that have no direct observation history yet;
once a candidate has real observations, those win.

Training happens in-process and is cheap by construction: the feature space
is a dozen floats, the training set is the bounded feedback store, and both
model families fit in well under a millisecond at that size.  Both are fit
on every (re)train and the one with the lower training error serves — linear
extrapolates smoothly across plan sizes, the tree captures the sharp
serial/parallel regime boundary; which one wins depends on the workload mix
recorded so far.
"""

from __future__ import annotations

import math
import threading
from typing import Optional, Sequence

from repro.core.planner import OperatorPlan
from repro.ml.models import DecisionTreeRegressor, LinearRegression

#: Feature vector layout, in order.  ``log_*`` features are ``log1p``-scaled:
#: cardinalities span orders of magnitude and both model families behave
#: better on compressed scales.
FEATURE_NAMES = (
    "n_scan", "n_filter", "n_project", "n_join", "n_aggregate", "n_sort",
    "n_other", "n_parallel_ops", "lanes",
    "log_root_rows", "log_max_scan_rows", "log_total_scan_rows", "log_max_ndv",
)

#: describe() prefixes of the morsel-driven parallel operator variants.
_PARALLEL_PREFIXES = ("Morsel", "Partitioned", "Parallel")

_FAMILY_COUNTS = {
    "Scan": "n_scan", "Filter": "n_filter", "Project": "n_project",
    "HashJoin": "n_join", "NestedLoopJoin": "n_join",
    "HashAggregate": "n_aggregate", "Sort": "n_sort",
}


def _walk(op) -> list:
    out = [op]
    for child in getattr(op, "children", ()) or ():
        out.extend(_walk(child))
    return out


def featurize(plan: OperatorPlan, lanes: int) -> tuple[float, ...]:
    """The feature vector of one planned strategy (see :data:`FEATURE_NAMES`)."""
    from repro.adaptive.feedback import scope_family

    counts = {name: 0.0 for name in FEATURE_NAMES}
    for op in _walk(plan.root):
        described = op.describe()
        family = scope_family(described)
        if family.startswith("Scan"):
            family = "Scan"
        counts[_FAMILY_COUNTS.get(family, "n_other")] += 1.0
        if described.startswith(_PARALLEL_PREFIXES):
            counts["n_parallel_ops"] += 1.0
    counts["lanes"] = float(max(1, lanes))
    estimates = plan.estimates or {}
    counts["log_root_rows"] = math.log1p(estimates.get("root_rows", 0))
    counts["log_max_scan_rows"] = math.log1p(estimates.get("max_scan_rows", 0))
    counts["log_total_scan_rows"] = math.log1p(
        estimates.get("total_scan_rows", 0))
    counts["log_max_ndv"] = math.log1p(estimates.get("max_ndv", 0))
    return tuple(counts[name] for name in FEATURE_NAMES)


class StrategyCostModel:
    """Predicts simulated seconds from plan features; retrains incrementally.

    ``min_samples`` gates the first fit; after that the model refits every
    ``retrain_every`` newly recorded executions.  Predictions are ``None``
    until trained — callers fall back to static planning.
    """

    def __init__(self, min_samples: int = 12, retrain_every: int = 8):
        self.min_samples = max(2, int(min_samples))
        self.retrain_every = max(1, int(retrain_every))
        self.kind: Optional[str] = None
        self._model = None
        self._trained_at = 0
        self._lock = threading.Lock()

    @property
    def ready(self) -> bool:
        return self._model is not None

    @staticmethod
    def _target(seconds: float) -> float:
        # log-compress: queries span microseconds to seconds, and squared
        # error on raw seconds would make the slowest statement the only
        # thing either model fits.
        return math.log1p(seconds * 1e3)

    @staticmethod
    def _untarget(value: float) -> float:
        return max(0.0, math.expm1(value)) / 1e3

    def maybe_train(self, store) -> bool:
        """Refit when enough new feedback accumulated.  Returns True if fit."""
        import numpy as np

        with self._lock:
            total = store.total_recorded
            if total < self.min_samples:
                return False
            if self._model is not None \
                    and total - self._trained_at < self.retrain_every:
                return False
            X_rows, y_rows = store.training_data()
            if len(X_rows) < self.min_samples:
                return False
            X = np.asarray(X_rows, dtype=np.float64)
            y = np.asarray([self._target(v) for v in y_rows], dtype=np.float64)
            candidates = []
            for kind, model in (("linear", LinearRegression()),
                                ("tree", DecisionTreeRegressor(max_depth=4))):
                model.fit(X, y)
                error = float(np.mean((model.predict(X) - y) ** 2))
                candidates.append((error, kind, model))
            candidates.sort(key=lambda item: item[0])
            _, self.kind, self._model = candidates[0]
            self._trained_at = total
            return True

    def predict_seconds(self, features: Sequence[float]) -> Optional[float]:
        """Predicted simulated seconds for one feature vector (None untrained)."""
        import numpy as np

        with self._lock:
            model = self._model
        if model is None:
            return None
        row = np.asarray([list(features)], dtype=np.float64)
        return self._untarget(float(model.predict(row)[0]))
