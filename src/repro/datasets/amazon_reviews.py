"""Synthetic Amazon product reviews (stand-in for the Kaggle dataset of §3.3).

The real "Consumer Reviews of Amazon Products" dataset requires a Kaggle
download; this generator produces a deterministic corpus with the same shape:
a brand column, a 1–5 star rating, and free-text reviews whose vocabulary is
correlated with the rating, so that sentiment classifiers trained on it have
signal and the paper's Figure-4 query (predicted vs. user-rated positives per
brand) produces meaningful output.
"""

from __future__ import annotations

import numpy as np

from repro.dataframe import DataFrame

BRANDS = ["Amazon", "Fire", "Kindle", "Echo", "Ring", "Eero"]

POSITIVE_WORDS = ["great", "excellent", "love", "perfect", "amazing", "fantastic",
                  "wonderful", "easy", "fast", "recommend"]
NEGATIVE_WORDS = ["terrible", "awful", "broken", "slow", "disappointed", "waste",
                  "refund", "poor", "bad", "useless"]
NEUTRAL_WORDS = ["tablet", "device", "battery", "screen", "bought", "price",
                 "works", "product", "using", "daily", "case", "charger"]

#: The vocabulary a text classifier should look at (used by the examples).
SENTIMENT_VOCABULARY = POSITIVE_WORDS + NEGATIVE_WORDS


def generate_reviews(num_reviews: int = 2000, seed: int = 7,
                     positive_fraction: float = 0.6) -> DataFrame:
    """Generate ``num_reviews`` synthetic reviews.

    Columns: ``review_id``, ``brand``, ``rating`` (1..5), ``text``.
    Ratings ≥ 4 draw mostly positive vocabulary, ratings ≤ 2 mostly negative,
    rating 3 is mixed — mirroring how sentiment correlates with stars.
    """
    rng = np.random.default_rng(seed)
    brands = np.array(BRANDS, dtype=object)[rng.integers(0, len(BRANDS), num_reviews)]
    positive = rng.random(num_reviews) < positive_fraction
    rating = np.where(positive, rng.integers(4, 6, num_reviews),
                      rng.integers(1, 4, num_reviews)).astype(np.int64)

    texts = []
    for i in range(num_reviews):
        sentiment_pool = POSITIVE_WORDS if rating[i] >= 4 else NEGATIVE_WORDS
        if rating[i] == 3:
            sentiment_pool = POSITIVE_WORDS + NEGATIVE_WORDS
        n_sentiment = rng.integers(1, 4)
        n_neutral = rng.integers(2, 6)
        words = list(rng.choice(sentiment_pool, size=n_sentiment))
        words += list(rng.choice(NEUTRAL_WORDS, size=n_neutral))
        rng.shuffle(words)
        texts.append(" ".join(words))

    return DataFrame({
        "review_id": np.arange(1, num_reviews + 1, dtype=np.int64),
        "brand": brands,
        "rating": rating,
        "text": np.array(texts, dtype=object),
    })


def training_split(frame: DataFrame, train_fraction: float = 0.7, seed: int = 11
                   ) -> tuple[list[str], np.ndarray, list[str], np.ndarray]:
    """Split reviews into (train_texts, train_labels, test_texts, test_labels).

    The label is 1 for ratings ≥ 4 ("positive") and 0 otherwise.
    """
    rng = np.random.default_rng(seed)
    n = frame.num_rows
    order = rng.permutation(n)
    cut = int(n * train_fraction)
    texts = frame["text"]
    labels = (frame["rating"] >= 4).astype(np.int64)
    train_idx, test_idx = order[:cut], order[cut:]
    return (list(texts[train_idx]), labels[train_idx],
            list(texts[test_idx]), labels[test_idx])
