"""Synthetic Iris dataset (stand-in for Fisher's Iris used in §3.3).

Three species clusters with per-species feature means/spreads close to the
classic dataset, generated deterministically so no download is required.
The demo's second prediction-query task is *regression* on Iris; the helper
:func:`regression_arrays` exposes the conventional target (petal width
predicted from the other three measurements).
"""

from __future__ import annotations

import numpy as np

from repro.dataframe import DataFrame

SPECIES = ["setosa", "versicolor", "virginica"]

#: Per-species means for (sepal_length, sepal_width, petal_length, petal_width).
_MEANS = {
    "setosa": (5.01, 3.43, 1.46, 0.25),
    "versicolor": (5.94, 2.77, 4.26, 1.33),
    "virginica": (6.59, 2.97, 5.55, 2.03),
}
_STDS = {
    "setosa": (0.35, 0.38, 0.17, 0.11),
    "versicolor": (0.52, 0.31, 0.47, 0.20),
    "virginica": (0.64, 0.32, 0.55, 0.27),
}


def generate_iris(samples_per_species: int = 50, seed: int = 1936) -> DataFrame:
    """Generate the synthetic Iris table (150 rows by default)."""
    rng = np.random.default_rng(seed)
    columns = {"sepal_length": [], "sepal_width": [], "petal_length": [],
               "petal_width": [], "species": []}
    for species in SPECIES:
        means = np.array(_MEANS[species])
        stds = np.array(_STDS[species])
        samples = rng.normal(means, stds, size=(samples_per_species, 4))
        samples = np.clip(samples, 0.1, None)
        columns["sepal_length"].extend(np.round(samples[:, 0], 2))
        columns["sepal_width"].extend(np.round(samples[:, 1], 2))
        columns["petal_length"].extend(np.round(samples[:, 2], 2))
        columns["petal_width"].extend(np.round(samples[:, 3], 2))
        columns["species"].extend([species] * samples_per_species)
    return DataFrame({
        "sepal_length": np.array(columns["sepal_length"], dtype=np.float64),
        "sepal_width": np.array(columns["sepal_width"], dtype=np.float64),
        "petal_length": np.array(columns["petal_length"], dtype=np.float64),
        "petal_width": np.array(columns["petal_width"], dtype=np.float64),
        "species": np.array(columns["species"], dtype=object),
    })


def regression_arrays(frame: DataFrame) -> tuple[np.ndarray, np.ndarray]:
    """(X, y) for the regression task: predict petal width from the other three."""
    X = np.stack([frame["sepal_length"], frame["sepal_width"],
                  frame["petal_length"]], axis=1)
    y = frame["petal_width"]
    return X, y
