"""TPC-H benchmark support: dbgen-like generator and the 22 queries."""

from repro.datasets.tpch.generator import generate_tables
from repro.datasets.tpch.io import cached_tables, load_tables, save_tables
from repro.datasets.tpch.queries import ALL_QUERY_IDS, QUERIES, query
from repro.datasets.tpch.schema import TABLE_COLUMNS, TABLE_NAMES

__all__ = [
    "ALL_QUERY_IDS",
    "QUERIES",
    "TABLE_COLUMNS",
    "TABLE_NAMES",
    "cached_tables",
    "generate_tables",
    "load_tables",
    "query",
    "save_tables",
]
