"""Persisting generated TPC-H tables as dbgen-style ``.tbl`` files.

dbgen writes pipe-delimited files without a header row; these helpers produce
and read the same layout so the generated data can be exchanged with other
TPC-H tooling (or cached on disk between benchmark runs).

:func:`cached_tables` is the benchmark/CI entry point: generated tables are
saved once under a directory keyed by ``(scale factor, seed)`` and every
later run loads the ``.tbl`` files instead of regenerating the dataset.  Set
the ``REPRO_TPCH_CACHE`` environment variable to move the cache root (default
``.tpch_cache/`` in the working directory); an empty value disables caching.
"""

from __future__ import annotations

import os
import shutil
from pathlib import Path

from repro.dataframe import DataFrame, read_csv, write_csv
from repro.datasets.tpch import schema

#: Environment variable overriding the on-disk cache root.
CACHE_ENV = "REPRO_TPCH_CACHE"

#: Default cache root, relative to the working directory.
DEFAULT_CACHE_DIR = ".tpch_cache"


def save_tables(tables: dict[str, DataFrame], directory: str | Path) -> dict[str, Path]:
    """Write every table as ``<directory>/<name>.tbl`` (pipe-delimited, no header)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths: dict[str, Path] = {}
    for name, frame in tables.items():
        path = directory / f"{name}.tbl"
        write_csv(frame, path, delimiter="|", header=False)
        paths[name] = path
    return paths


def load_tables(directory: str | Path) -> dict[str, DataFrame]:
    """Load every ``.tbl`` file in ``directory`` using the TPC-H column names."""
    directory = Path(directory)
    tables: dict[str, DataFrame] = {}
    for name, columns in schema.TABLE_COLUMNS.items():
        path = directory / f"{name}.tbl"
        if not path.exists():
            continue
        tables[name] = read_csv(path, delimiter="|", header=False, columns=columns)
    return tables


def cache_directory(scale_factor: float, seed: int,
                    root: str | Path | None = None) -> Path | None:
    """Cache directory for one ``(scale factor, seed)`` dataset, or ``None``
    when caching is disabled (``REPRO_TPCH_CACHE`` set to an empty string)."""
    if root is None:
        env = os.environ.get(CACHE_ENV)
        if env is not None and not env:
            return None
        root = env or DEFAULT_CACHE_DIR
    return Path(root) / f"sf{scale_factor:g}-seed{seed}"


def cached_tables(scale_factor: float = 0.01, seed: int = 19920101,
                  root: str | Path | None = None) -> dict[str, DataFrame]:
    """Generated TPC-H tables, round-tripped through an on-disk cache.

    The first call for a ``(scale factor, seed)`` pair generates the dataset
    and saves it as ``.tbl`` files; later calls (across processes — benchmark
    runs, CI jobs) load from disk instead of regenerating.  The loaded frames
    are exactly the saved ones (floats round-trip through ``repr``), and a
    partially written cache (missing tables) falls back to regeneration.
    """
    from repro.datasets.tpch.generator import generate_tables

    directory = cache_directory(scale_factor, seed, root)
    if directory is None:
        return generate_tables(scale_factor=scale_factor, seed=seed)
    if directory.is_dir():
        tables = load_tables(directory)
        if set(tables) == set(schema.TABLE_COLUMNS):
            return tables
        shutil.rmtree(directory, ignore_errors=True)  # incomplete: rebuild
    tables = generate_tables(scale_factor=scale_factor, seed=seed)
    # Crash-safe publish: write into a temp sibling and rename into place, so
    # a killed run can never leave a complete-looking but truncated cache for
    # later runs (and concurrent writers race on the rename, not the files).
    staging = directory.parent / f"{directory.name}.tmp-{os.getpid()}"
    save_tables(tables, staging)
    try:
        staging.rename(directory)
    except OSError:
        shutil.rmtree(staging, ignore_errors=True)  # another writer won
    return tables
