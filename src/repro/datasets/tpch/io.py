"""Persisting generated TPC-H tables as dbgen-style ``.tbl`` files.

dbgen writes pipe-delimited files without a header row; these helpers produce
and read the same layout so the generated data can be exchanged with other
TPC-H tooling (or cached on disk between benchmark runs).

:func:`cached_tables` is the benchmark/CI entry point: generated tables are
saved once under a directory keyed by ``(scale factor, seed)`` and every
later run loads the ``.tbl`` files instead of regenerating the dataset.  Set
the ``REPRO_TPCH_CACHE`` environment variable to move the cache root (default
``.tpch_cache/`` in the working directory); an empty value disables caching.
"""

from __future__ import annotations

import os
import shutil
import threading
import uuid
from pathlib import Path

from repro.dataframe import DataFrame, read_csv, write_csv
from repro.datasets.tpch import schema

#: Environment variable overriding the on-disk cache root.
CACHE_ENV = "REPRO_TPCH_CACHE"

#: Default cache root, relative to the working directory.
DEFAULT_CACHE_DIR = ".tpch_cache"


def save_tables(tables: dict[str, DataFrame], directory: str | Path) -> dict[str, Path]:
    """Write every table as ``<directory>/<name>.tbl`` (pipe-delimited, no header)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths: dict[str, Path] = {}
    for name, frame in tables.items():
        path = directory / f"{name}.tbl"
        write_csv(frame, path, delimiter="|", header=False)
        paths[name] = path
    return paths


def load_tables(directory: str | Path) -> dict[str, DataFrame]:
    """Load every ``.tbl`` file in ``directory`` using the TPC-H column names."""
    directory = Path(directory)
    tables: dict[str, DataFrame] = {}
    for name, columns in schema.TABLE_COLUMNS.items():
        path = directory / f"{name}.tbl"
        if not path.exists():
            continue
        tables[name] = read_csv(path, delimiter="|", header=False, columns=columns)
    return tables


def cache_directory(scale_factor: float, seed: int,
                    root: str | Path | None = None) -> Path | None:
    """Cache directory for one ``(scale factor, seed)`` dataset, or ``None``
    when caching is disabled (``REPRO_TPCH_CACHE`` set to an empty string)."""
    if root is None:
        env = os.environ.get(CACHE_ENV)
        if env is not None and not env:
            return None
        root = env or DEFAULT_CACHE_DIR
    return Path(root) / f"sf{scale_factor:g}-seed{seed}"


#: In-process build locks, one per cache directory: two threads of one
#: process asking for the same cold dataset generate it once, not twice.
#: (Cross-process coordination stays lock-free via the rename protocol.)
_BUILD_LOCKS: dict[str, threading.Lock] = {}
_BUILD_LOCKS_GUARD = threading.Lock()


def _build_lock(directory: Path) -> threading.Lock:
    key = str(directory)
    with _BUILD_LOCKS_GUARD:
        lock = _BUILD_LOCKS.get(key)
        if lock is None:
            lock = _BUILD_LOCKS[key] = threading.Lock()
        return lock


def _load_complete(directory: Path) -> dict[str, DataFrame] | None:
    """The cached dataset, or ``None`` if absent, missing tables, or corrupt."""
    if not directory.is_dir():
        return None
    try:
        tables = load_tables(directory)
    except OSError:
        return None  # directory vanished mid-load (a writer reclaimed it)
    except (ValueError, IndexError, KeyError):
        return None  # truncated rows / unparsable fields: half-written cache
    if set(tables) == set(schema.TABLE_COLUMNS):
        return tables
    return None


def _discard_incomplete(directory: Path) -> None:
    """Atomically claim and remove a half-written cache directory.

    The directory is renamed to a unique trash name *before* deletion: the
    rename either transfers exclusive ownership to us or fails because a
    concurrent writer claimed it (or already published a fresh cache under
    the name) — so two writers can never tear down the same tree, and a
    just-published complete cache is never deleted out from under a reader.
    """
    if not directory.is_dir():
        return
    trash = directory.parent / (
        f"{directory.name}.trash-{os.getpid()}-{uuid.uuid4().hex}")
    try:
        directory.rename(trash)
    except OSError:
        return  # lost the claim race: someone else is handling it
    shutil.rmtree(trash, ignore_errors=True)


def cached_tables(scale_factor: float = 0.01, seed: int = 19920101,
                  root: str | Path | None = None) -> dict[str, DataFrame]:
    """Generated TPC-H tables, round-tripped through an on-disk cache.

    The first call for a ``(scale factor, seed)`` pair generates the dataset
    and saves it as ``.tbl`` files; later calls (across processes — benchmark
    runs, CI jobs) load from disk instead of regenerating.  The loaded frames
    are exactly the saved ones (floats round-trip through ``repr``), and a
    partially written cache (missing tables) falls back to regeneration.

    Concurrent callers are safe: each writer stages into its own
    uniquely-named temp directory and publishes with an atomic rename, losing
    the rename race just means returning the tables it already generated.  A
    half-written cache left by a killed run is claimed via rename before
    removal, so it is never served and never torn down by two writers at
    once.
    """
    from repro.datasets.tpch.generator import generate_tables

    directory = cache_directory(scale_factor, seed, root)
    if directory is None:
        return generate_tables(scale_factor=scale_factor, seed=seed)
    tables = _load_complete(directory)
    if tables is not None:
        return tables
    with _build_lock(directory):
        # Re-check: another thread may have built while we waited.
        tables = _load_complete(directory)
        if tables is not None:
            return tables
        _discard_incomplete(directory)
        tables = generate_tables(scale_factor=scale_factor, seed=seed)
        # Crash-safe publish: write into a uniquely-named temp sibling and
        # rename into place, so a killed run can never leave a
        # complete-looking but truncated cache, and concurrent writers race
        # on the rename, not on the files.
        staging = directory.parent / (
            f"{directory.name}.tmp-{os.getpid()}-{uuid.uuid4().hex}")
        save_tables(tables, staging)
        try:
            staging.rename(directory)
        except OSError:
            # Another writer (in a different process) published first; its
            # cache is equivalent to ours — drop the staging copy.
            shutil.rmtree(staging, ignore_errors=True)
    return tables
