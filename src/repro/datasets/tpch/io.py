"""Persisting generated TPC-H tables as dbgen-style ``.tbl`` files.

dbgen writes pipe-delimited files without a header row; these helpers produce
and read the same layout so the generated data can be exchanged with other
TPC-H tooling (or cached on disk between benchmark runs).
"""

from __future__ import annotations

from pathlib import Path

from repro.dataframe import DataFrame, read_csv, write_csv
from repro.datasets.tpch import schema


def save_tables(tables: dict[str, DataFrame], directory: str | Path) -> dict[str, Path]:
    """Write every table as ``<directory>/<name>.tbl`` (pipe-delimited, no header)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths: dict[str, Path] = {}
    for name, frame in tables.items():
        path = directory / f"{name}.tbl"
        write_csv(frame, path, delimiter="|", header=False)
        paths[name] = path
    return paths


def load_tables(directory: str | Path) -> dict[str, DataFrame]:
    """Load every ``.tbl`` file in ``directory`` using the TPC-H column names."""
    directory = Path(directory)
    tables: dict[str, DataFrame] = {}
    for name, columns in schema.TABLE_COLUMNS.items():
        path = directory / f"{name}.tbl"
        if not path.exists():
            continue
        tables[name] = read_csv(path, delimiter="|", header=False, columns=columns)
    return tables
