"""TPC-H schema constants (table names, column order, value vocabularies)."""

from __future__ import annotations

#: Region and nation vocabularies (fixed by the TPC-H specification).
REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

#: (nation name, region index) in nationkey order, as in dbgen.
NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1), ("EGYPT", 4),
    ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3), ("INDIA", 2), ("INDONESIA", 2),
    ("IRAN", 4), ("IRAQ", 4), ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0),
    ("MOROCCO", 0), ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3), ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
]

MARKET_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]

ORDER_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]

SHIP_MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]

SHIP_INSTRUCTIONS = ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"]

#: p_name is a concatenation of five distinct colour words.
COLORS = [
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black", "blanched",
    "blue", "blush", "brown", "burlywood", "burnished", "chartreuse", "chiffon",
    "chocolate", "coral", "cornflower", "cornsilk", "cream", "cyan", "dark", "deep",
    "dim", "dodger", "drab", "firebrick", "floral", "forest", "frosted", "gainsboro",
    "ghost", "goldenrod", "green", "grey", "honeydew", "hot", "indian", "ivory",
    "khaki", "lace", "lavender", "lawn", "lemon", "light", "lime", "linen", "magenta",
    "maroon", "medium", "metallic", "midnight", "mint", "misty", "moccasin", "navajo",
    "navy", "olive", "orange", "orchid", "pale", "papaya", "peach", "peru", "pink",
    "plum", "powder", "puff", "purple", "red", "rose", "rosy", "royal", "saddle",
    "salmon", "sandy", "seashell", "sienna", "sky", "slate", "smoke", "snow",
    "spring", "steel", "tan", "thistle", "tomato", "turquoise", "violet", "wheat",
    "white", "yellow",
]

TYPE_SYLLABLE_1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
TYPE_SYLLABLE_2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
TYPE_SYLLABLE_3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]

CONTAINER_SYLLABLE_1 = ["SM", "LG", "MED", "JUMBO", "WRAP"]
CONTAINER_SYLLABLE_2 = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"]

#: Words used when synthesizing comment text.
COMMENT_WORDS = [
    "carefully", "quickly", "slyly", "furiously", "blithely", "regular", "final",
    "express", "bold", "ironic", "pending", "silent", "even", "special", "requests",
    "deposits", "instructions", "accounts", "packages", "theodolites", "foxes",
    "pinto", "beans", "dependencies", "excuses", "platelets", "asymptotes", "courts",
    "ideas", "dolphins", "sometimes", "wake", "sleep", "haggle", "nag", "cajole",
]

#: Column order of every table (used by the CSV writer and the catalog).
TABLE_COLUMNS = {
    "region": ["r_regionkey", "r_name", "r_comment"],
    "nation": ["n_nationkey", "n_name", "n_regionkey", "n_comment"],
    "supplier": ["s_suppkey", "s_name", "s_address", "s_nationkey", "s_phone",
                 "s_acctbal", "s_comment"],
    "part": ["p_partkey", "p_name", "p_mfgr", "p_brand", "p_type", "p_size",
             "p_container", "p_retailprice", "p_comment"],
    "partsupp": ["ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost",
                 "ps_comment"],
    "customer": ["c_custkey", "c_name", "c_address", "c_nationkey", "c_phone",
                 "c_acctbal", "c_mktsegment", "c_comment"],
    "orders": ["o_orderkey", "o_custkey", "o_orderstatus", "o_totalprice",
               "o_orderdate", "o_orderpriority", "o_clerk", "o_shippriority",
               "o_comment"],
    "lineitem": ["l_orderkey", "l_partkey", "l_suppkey", "l_linenumber",
                 "l_quantity", "l_extendedprice", "l_discount", "l_tax",
                 "l_returnflag", "l_linestatus", "l_shipdate", "l_commitdate",
                 "l_receiptdate", "l_shipinstruct", "l_shipmode", "l_comment"],
}

TABLE_NAMES = list(TABLE_COLUMNS)

#: Base cardinalities at scale factor 1 (lineitem is derived from orders).
BASE_ROW_COUNTS = {
    "supplier": 10_000,
    "part": 200_000,
    "partsupp": 800_000,   # 4 suppliers per part
    "customer": 150_000,
    "orders": 1_500_000,
}
