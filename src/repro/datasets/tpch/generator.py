"""A pure-Python, vectorized TPC-H ``dbgen`` stand-in.

The official dbgen binary is replaced by a deterministic numpy generator that
preserves the properties the 22 queries rely on: the fixed nation/region
vocabulary, the brand/type/container naming scheme, order/ship/receipt date
relationships, return-flag and line-status derivation, 4 suppliers per part,
customers without orders (for Q22), and comment text containing the words the
LIKE predicates search for.  Absolute row counts scale linearly with the scale
factor exactly like dbgen.
"""

from __future__ import annotations

import numpy as np

from repro.dataframe import DataFrame
from repro.datasets.tpch import schema

_START_DATE = np.datetime64("1992-01-01")
_END_ORDER_DATE = np.datetime64("1998-08-02")
_CURRENT_DATE = np.datetime64("1995-06-17")


def _comments(rng: np.random.Generator, count: int, words: int = 4) -> np.ndarray:
    """Random comment strings assembled from the TPC-H word list."""
    vocabulary = np.array(schema.COMMENT_WORDS, dtype=object)
    picks = rng.integers(0, len(vocabulary), size=(count, words))
    parts = vocabulary[picks]
    return np.array([" ".join(row) for row in parts], dtype=object)


def _inject(values: np.ndarray, rng: np.random.Generator, fraction: float,
            text: str) -> np.ndarray:
    """Overwrite a random ``fraction`` of ``values`` with ``text``-bearing comments."""
    count = len(values)
    hits = rng.random(count) < fraction
    values = values.copy()
    values[hits] = np.array([text] * int(hits.sum()), dtype=object)
    return values


def _money(rng: np.random.Generator, count: int, low: float, high: float) -> np.ndarray:
    return np.round(rng.uniform(low, high, size=count), 2)


def _phone(nation_keys: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    country = nation_keys + 10
    local = rng.integers(100, 1000, size=(len(nation_keys), 3))
    return np.array(
        [f"{c}-{a}-{b}-{d}" for c, (a, b, d) in zip(country, local)], dtype=object
    )


def generate_region() -> DataFrame:
    return DataFrame({
        "r_regionkey": np.arange(len(schema.REGIONS), dtype=np.int64),
        "r_name": np.array(schema.REGIONS, dtype=object),
        "r_comment": np.array(["region comment"] * len(schema.REGIONS), dtype=object),
    })


def generate_nation() -> DataFrame:
    names = np.array([name for name, _ in schema.NATIONS], dtype=object)
    regions = np.array([region for _, region in schema.NATIONS], dtype=np.int64)
    return DataFrame({
        "n_nationkey": np.arange(len(schema.NATIONS), dtype=np.int64),
        "n_name": names,
        "n_regionkey": regions,
        "n_comment": np.array(["nation comment"] * len(schema.NATIONS), dtype=object),
    })


def generate_supplier(scale_factor: float, rng: np.random.Generator) -> DataFrame:
    count = max(int(schema.BASE_ROW_COUNTS["supplier"] * scale_factor), 10)
    keys = np.arange(1, count + 1, dtype=np.int64)
    nation_keys = rng.integers(0, len(schema.NATIONS), size=count).astype(np.int64)
    comments = _comments(rng, count)
    # A small fraction of suppliers carries the Q16 "Customer ... Complaints"
    # marker and the Q20-excluded wording, as in dbgen.
    comments = _inject(comments, rng, 0.005, "Customer informed about Complaints")
    return DataFrame({
        "s_suppkey": keys,
        "s_name": np.array([f"Supplier#{k:09d}" for k in keys], dtype=object),
        "s_address": _comments(rng, count, words=2),
        "s_nationkey": nation_keys,
        "s_phone": _phone(nation_keys, rng),
        "s_acctbal": _money(rng, count, -999.99, 9999.99),
        "s_comment": comments,
    })


def generate_part(scale_factor: float, rng: np.random.Generator) -> DataFrame:
    count = max(int(schema.BASE_ROW_COUNTS["part"] * scale_factor), 200)
    keys = np.arange(1, count + 1, dtype=np.int64)
    colors = np.array(schema.COLORS, dtype=object)
    name_parts = colors[rng.integers(0, len(colors), size=(count, 5))]
    names = np.array([" ".join(row) for row in name_parts], dtype=object)
    mfgr_ids = rng.integers(1, 6, size=count)
    brand_ids = mfgr_ids * 10 + rng.integers(1, 6, size=count)
    syllables = (
        np.array(schema.TYPE_SYLLABLE_1, dtype=object)[rng.integers(0, 6, size=count)],
        np.array(schema.TYPE_SYLLABLE_2, dtype=object)[rng.integers(0, 5, size=count)],
        np.array(schema.TYPE_SYLLABLE_3, dtype=object)[rng.integers(0, 5, size=count)],
    )
    types = np.array([f"{a} {b} {c}" for a, b, c in zip(*syllables)], dtype=object)
    containers = np.array([
        f"{a} {b}" for a, b in zip(
            np.array(schema.CONTAINER_SYLLABLE_1, dtype=object)[
                rng.integers(0, 5, size=count)],
            np.array(schema.CONTAINER_SYLLABLE_2, dtype=object)[
                rng.integers(0, 8, size=count)],
        )
    ], dtype=object)
    retail_price = np.round(
        900 + (keys % 1000) * 0.1 + (keys % 10000) / 100.0, 2
    ).astype(np.float64)
    return DataFrame({
        "p_partkey": keys,
        "p_name": names,
        "p_mfgr": np.array([f"Manufacturer#{m}" for m in mfgr_ids], dtype=object),
        "p_brand": np.array([f"Brand#{b}" for b in brand_ids], dtype=object),
        "p_type": types,
        "p_size": rng.integers(1, 51, size=count).astype(np.int64),
        "p_container": containers,
        "p_retailprice": retail_price,
        "p_comment": _comments(rng, count, words=2),
    })


def generate_partsupp(part: DataFrame, supplier: DataFrame,
                      rng: np.random.Generator) -> DataFrame:
    part_keys = part["p_partkey"]
    supplier_count = len(supplier["s_suppkey"])
    ps_partkey = np.repeat(part_keys, 4)
    # dbgen's supplier spreading formula keeps (part, supplier) pairs unique.
    offsets = np.tile(np.arange(4, dtype=np.int64), len(part_keys))
    ps_suppkey = ((ps_partkey + offsets * (supplier_count // 4 + 1)) % supplier_count) + 1
    count = len(ps_partkey)
    return DataFrame({
        "ps_partkey": ps_partkey.astype(np.int64),
        "ps_suppkey": ps_suppkey.astype(np.int64),
        "ps_availqty": rng.integers(1, 10_000, size=count).astype(np.int64),
        "ps_supplycost": _money(rng, count, 1.0, 1000.0),
        "ps_comment": _comments(rng, count, words=3),
    })


def generate_customer(scale_factor: float, rng: np.random.Generator) -> DataFrame:
    count = max(int(schema.BASE_ROW_COUNTS["customer"] * scale_factor), 150)
    keys = np.arange(1, count + 1, dtype=np.int64)
    nation_keys = rng.integers(0, len(schema.NATIONS), size=count).astype(np.int64)
    segments = np.array(schema.MARKET_SEGMENTS, dtype=object)[
        rng.integers(0, len(schema.MARKET_SEGMENTS), size=count)]
    return DataFrame({
        "c_custkey": keys,
        "c_name": np.array([f"Customer#{k:09d}" for k in keys], dtype=object),
        "c_address": _comments(rng, count, words=2),
        "c_nationkey": nation_keys,
        "c_phone": _phone(nation_keys, rng),
        "c_acctbal": _money(rng, count, -999.99, 9999.99),
        "c_mktsegment": segments,
        "c_comment": _comments(rng, count, words=4),
    })


def generate_orders_and_lineitem(scale_factor: float, customer: DataFrame,
                                 part: DataFrame, partsupp: DataFrame,
                                 rng: np.random.Generator
                                 ) -> tuple[DataFrame, DataFrame]:
    # The floor keeps every query non-trivial at tiny scale factors while
    # still letting serving-regime benchmarks (SF < 1e-3) shrink per-request
    # kernel work instead of clamping every sub-milli SF to the same dataset.
    order_count = max(int(schema.BASE_ROW_COUNTS["orders"] * scale_factor), 150)
    order_keys = np.arange(1, order_count + 1, dtype=np.int64)

    # One third of customers never place orders (dbgen rule, needed by Q13/Q22).
    customer_keys = customer["c_custkey"]
    eligible = customer_keys[customer_keys % 3 != 0]
    o_custkey = rng.choice(eligible, size=order_count).astype(np.int64)

    span_days = int((_END_ORDER_DATE - _START_DATE).astype(int))
    o_orderdate = _START_DATE + rng.integers(0, span_days, size=order_count)

    priorities = np.array(schema.ORDER_PRIORITIES, dtype=object)[
        rng.integers(0, len(schema.ORDER_PRIORITIES), size=order_count)]
    clerks = np.array([f"Clerk#{c:09d}" for c in
                       rng.integers(1, max(int(1000 * scale_factor), 10) + 1,
                                    size=order_count)], dtype=object)
    o_comment = _comments(rng, order_count, words=5)
    o_comment = _inject(o_comment, rng, 0.01,
                        "handle special accounts requests carefully")

    # lineitems: 1..7 per order
    lines_per_order = rng.integers(1, 8, size=order_count)
    l_orderkey = np.repeat(order_keys, lines_per_order)
    line_count = len(l_orderkey)
    l_linenumber = (np.arange(line_count, dtype=np.int64)
                    - np.repeat(np.cumsum(lines_per_order) - lines_per_order,
                                lines_per_order) + 1)

    part_keys = part["p_partkey"]
    l_partkey = rng.choice(part_keys, size=line_count).astype(np.int64)
    # Pick one of the four suppliers dbgen assigns to the part.
    supplier_count = int(partsupp["ps_suppkey"].max())
    offsets = rng.integers(0, 4, size=line_count)
    l_suppkey = ((l_partkey + offsets * (supplier_count // 4 + 1)) % supplier_count) + 1

    l_quantity = rng.integers(1, 51, size=line_count).astype(np.float64)
    retail = part["p_retailprice"][l_partkey - 1]
    l_extendedprice = np.round(l_quantity * retail, 2)
    l_discount = np.round(rng.integers(0, 11, size=line_count) / 100.0, 2)
    l_tax = np.round(rng.integers(0, 9, size=line_count) / 100.0, 2)

    order_dates_per_line = np.repeat(o_orderdate, lines_per_order)
    l_shipdate = order_dates_per_line + rng.integers(1, 122, size=line_count)
    l_commitdate = order_dates_per_line + rng.integers(30, 91, size=line_count)
    l_receiptdate = l_shipdate + rng.integers(1, 31, size=line_count)

    received = l_receiptdate <= _CURRENT_DATE
    l_returnflag = np.where(received,
                            np.where(rng.random(line_count) < 0.5, "R", "A"),
                            "N").astype(object)
    shipped = l_shipdate <= _CURRENT_DATE
    l_linestatus = np.where(shipped, "F", "O").astype(object)

    instructions = np.array(schema.SHIP_INSTRUCTIONS, dtype=object)[
        rng.integers(0, len(schema.SHIP_INSTRUCTIONS), size=line_count)]
    modes = np.array(schema.SHIP_MODES, dtype=object)[
        rng.integers(0, len(schema.SHIP_MODES), size=line_count)]

    lineitem = DataFrame({
        "l_orderkey": l_orderkey,
        "l_partkey": l_partkey,
        "l_suppkey": l_suppkey.astype(np.int64),
        "l_linenumber": l_linenumber,
        "l_quantity": l_quantity,
        "l_extendedprice": l_extendedprice,
        "l_discount": l_discount,
        "l_tax": l_tax,
        "l_returnflag": l_returnflag,
        "l_linestatus": l_linestatus,
        "l_shipdate": l_shipdate.astype("datetime64[D]"),
        "l_commitdate": l_commitdate.astype("datetime64[D]"),
        "l_receiptdate": l_receiptdate.astype("datetime64[D]"),
        "l_shipinstruct": instructions,
        "l_shipmode": modes,
        "l_comment": _comments(rng, line_count, words=3),
    })

    # o_orderstatus: F if every line shipped, O if none shipped, P otherwise.
    shipped_per_order = np.add.reduceat(shipped.astype(np.int64),
                                        np.cumsum(lines_per_order) - lines_per_order)
    status = np.where(shipped_per_order == lines_per_order, "F",
                      np.where(shipped_per_order == 0, "O", "P")).astype(object)

    charge = l_extendedprice * (1.0 + l_tax) * (1.0 - l_discount)
    o_totalprice = np.round(
        np.add.reduceat(charge, np.cumsum(lines_per_order) - lines_per_order), 2
    )

    orders = DataFrame({
        "o_orderkey": order_keys,
        "o_custkey": o_custkey,
        "o_orderstatus": status,
        "o_totalprice": o_totalprice,
        "o_orderdate": o_orderdate.astype("datetime64[D]"),
        "o_orderpriority": priorities,
        "o_clerk": clerks,
        "o_shippriority": np.zeros(order_count, dtype=np.int64),
        "o_comment": o_comment,
    })
    return orders, lineitem


def generate_tables(scale_factor: float = 0.01, seed: int = 19920101
                    ) -> dict[str, DataFrame]:
    """Generate every TPC-H table at ``scale_factor`` (deterministic in ``seed``)."""
    rng = np.random.default_rng(seed)
    region = generate_region()
    nation = generate_nation()
    supplier = generate_supplier(scale_factor, rng)
    part = generate_part(scale_factor, rng)
    partsupp = generate_partsupp(part, supplier, rng)
    customer = generate_customer(scale_factor, rng)
    orders, lineitem = generate_orders_and_lineitem(scale_factor, customer, part,
                                                    partsupp, rng)
    return {
        "region": region,
        "nation": nation,
        "supplier": supplier,
        "part": part,
        "partsupp": partsupp,
        "customer": customer,
        "orders": orders,
        "lineitem": lineitem,
    }
