"""Datasets: TPC-H dbgen stand-in, synthetic Amazon reviews, synthetic Iris."""

from repro.datasets import amazon_reviews, iris, tpch

__all__ = ["amazon_reviews", "iris", "tpch"]
