"""Per-operator runtime breakdowns (the Figure-2 / TensorBoard-profiler artifact)."""

from __future__ import annotations

from repro.tensor.profiler import OpSummary, Profiler


def operator_breakdown(profile: Profiler, top_k: int | None = None) -> list[OpSummary]:
    """Aggregate a profile by relational operator (profiler scope)."""
    rows = profile.by_scope()
    return rows[:top_k] if top_k else rows


def kernel_breakdown(profile: Profiler, top_k: int | None = None) -> list[OpSummary]:
    """Aggregate a profile by tensor kernel (op name)."""
    rows = profile.by_op()
    return rows[:top_k] if top_k else rows


def format_breakdown(rows: list[OpSummary], title: str = "Runtime breakdown") -> str:
    """Render a breakdown as a fixed-width text table (printable in a notebook)."""
    total = sum(row.total_s for row in rows) or 1.0
    lines = [title, "-" * len(title),
             f"{'name':<40} {'calls':>7} {'total ms':>10} {'mean us':>10} {'share':>7}"]
    for row in rows:
        lines.append(
            f"{row.key:<40.40} {row.calls:>7} {row.total_s * 1e3:>10.3f} "
            f"{row.mean_s * 1e6:>10.1f} {row.total_s / total:>6.1%}"
        )
    return "\n".join(lines)


def breakdown_dict(rows: list[OpSummary]) -> list[dict]:
    """JSON-friendly representation (what a dashboard/TensorBoard would ingest)."""
    return [
        {"name": row.key, "calls": row.calls, "total_s": row.total_s,
         "mean_s": row.mean_s, "total_bytes": row.total_bytes}
        for row in rows
    ]
