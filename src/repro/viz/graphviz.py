"""Executor-graph export (the Figure-4 / TensorBoard graph-view artifact).

The traced tensor graph of a query can be exported as Graphviz DOT, a nested
JSON summary, or a compact text outline.  These are the files a TensorBoard-
style UI would render; producing them (rather than the interactive UI) is the
scope of this reproduction.
"""

from __future__ import annotations

import json

from repro.tensor.graph import Graph


def graph_to_dot(graph: Graph, name: str = "executor") -> str:
    """Render the graph in Graphviz DOT format."""
    lines = [f"digraph {name} {{", "  rankdir=TB;", "  node [shape=box, fontsize=10];"]
    for vid in graph.inputs:
        lines.append(f'  v{vid} [label="input: {graph.values[vid].name}", '
                     'style=filled, fillcolor=lightblue];')
    for vid in graph.initializers:
        lines.append(f'  v{vid} [label="const", style=filled, fillcolor=lightgrey];')
    for i, node in enumerate(graph.nodes):
        label = node.op
        lines.append(f'  n{i} [label="{label}"];')
        for vid in node.inputs:
            producer = _producer_index(graph, vid)
            source = f"n{producer}" if producer is not None else f"v{vid}"
            lines.append(f"  {source} -> n{i};")
    for vid in graph.outputs:
        producer = _producer_index(graph, vid)
        source = f"n{producer}" if producer is not None else f"v{vid}"
        lines.append(f'  out_{vid} [label="output", style=filled, fillcolor=lightgreen];')
        lines.append(f"  {source} -> out_{vid};")
    lines.append("}")
    return "\n".join(lines)


def _producer_index(graph: Graph, value_id: int) -> int | None:
    for i, node in enumerate(graph.nodes):
        if value_id in node.outputs:
            return i
    return None


def graph_summary(graph: Graph) -> dict:
    """A JSON-friendly structural summary of the executor graph."""
    return {
        "name": graph.name,
        "num_inputs": len(graph.inputs),
        "num_outputs": len(graph.outputs),
        "num_initializers": len(graph.initializers),
        "num_nodes": len(graph.nodes),
        "op_counts": graph.op_counts(),
    }


def save_graph_json(graph: Graph, path: str) -> None:
    with open(path, "w", encoding="utf-8") as f:
        json.dump(graph_summary(graph), f, indent=2, sort_keys=True)


def save_graph_dot(graph: Graph, path: str, name: str = "executor") -> None:
    with open(path, "w", encoding="utf-8") as f:
        f.write(graph_to_dot(graph, name))


def format_outline(graph: Graph, max_nodes: int = 60) -> str:
    """A compact text outline of the graph (op sequence with value ids)."""
    lines = [f"executor graph '{graph.name}': {len(graph.nodes)} ops, "
             f"{len(graph.inputs)} inputs, {len(graph.initializers)} constants"]
    for node in graph.nodes[:max_nodes]:
        ins = ", ".join(f"%{v}" for v in node.inputs)
        outs = ", ".join(f"%{v}" for v in node.outputs)
        lines.append(f"  {outs} = {node.op}({ins})")
    if len(graph.nodes) > max_nodes:
        lines.append(f"  ... {len(graph.nodes) - max_nodes} more ops")
    return "\n".join(lines)
