"""Visualization artifacts (TensorBoard stand-in): breakdowns, traces, graphs."""

from repro.viz.breakdown import (
    breakdown_dict,
    format_breakdown,
    kernel_breakdown,
    operator_breakdown,
)
from repro.viz.graphviz import (
    format_outline,
    graph_summary,
    graph_to_dot,
    save_graph_dot,
    save_graph_json,
)

__all__ = [
    "breakdown_dict",
    "format_breakdown",
    "format_outline",
    "graph_summary",
    "graph_to_dot",
    "kernel_breakdown",
    "operator_breakdown",
    "save_graph_dot",
    "save_graph_json",
]
