"""Backend and device cost-model abstractions.

A *backend* in TQP terms is a compilation target for the tensor program
(PyTorch eager, TorchScript, ONNX, ...).  A *device* is where the kernels run
(CPU, GPU, browser/WASM).  In this reproduction:

* backends decide the execution strategy (eager op dispatch vs. traced graph)
  and any per-node interpretation overhead,
* devices decide how the reported execution time is produced: the CPU reports
  measured wall time; the simulated CUDA and WASM devices report time from an
  analytic cost model fed with the op-level profile of the (real) execution.

Results are always computed by real kernels; only *time* is ever simulated.
"""

from __future__ import annotations

import dataclasses

from repro.tensor.op_semantics import EXCHANGE_OPS
from repro.tensor.profiler import Profiler

#: Ops charged by cost models as host<->device transfers rather than kernels.
TRANSFER_OPS = frozenset({"to_device"})

#: Ops that mark the hand-off of one morsel to a worker lane.  They are
#: zero-copy identities — cost models must ignore their pass-through byte
#: counts and charge a fixed per-dispatch scheduling cost instead.
DISPATCH_OPS = frozenset({"morsel_dispatch"})


def split_parallel(events):
    """Partition kernel events into the morsel-parallel execution structure.

    Returns ``(serial_events, lanes, dispatch_events)`` where ``lanes`` maps a
    worker-lane id to the events executed on that lane.  Events outside any
    ``lane_scope`` are serial.  Morsel-parallel reported time charges the
    *slowest lane* (lanes run concurrently) plus every serial event, plus a
    per-dispatch scheduling cost — morsels are handed out one at a time by the
    scheduler, so dispatch is the part of a parallel region that never scales.
    """
    serial, lanes, dispatches = [], {}, []
    for event in events:
        if event.op in DISPATCH_OPS:
            dispatches.append(event)
        elif event.lane is None:
            serial.append(event)
        else:
            lanes.setdefault(event.lane, []).append(event)
    return serial, lanes, dispatches


def split_sharded(events):
    """Partition kernel events into the multi-device execution structure.

    Returns ``(host_events, shards, exchange_events)`` where ``shards`` maps
    a device (shard) id to the events executed on that device.  Exchange ops
    (``shard_exchange`` / ``shard_broadcast`` / ``shard_gather``) are pulled
    out first, whatever shard annotation they carry — they are zero-copy
    identities whose *payload bytes* the cost models charge against an
    interconnect tier, never as kernels.  Events outside any ``shard_scope``
    run on the host.  Devices run concurrently, so a distributed region
    charges its *slowest shard*, plus every host event, plus the exchanges.
    """
    host, shards, exchanges = [], {}, []
    for event in events:
        if event.op in EXCHANGE_OPS:
            exchanges.append(event)
        elif event.shard is None:
            host.append(event)
        else:
            shards.setdefault(event.shard, []).append(event)
    return host, shards, exchanges


@dataclasses.dataclass(frozen=True)
class BackendSpec:
    """A compilation target.

    Attributes:
        name: backend name exposed to users (``"pytorch"``, ``"torchscript"``,
            ``"onnx"``).
        strategy: ``"eager"`` (op-by-op Python dispatch, the PyTorch-like
            default) or ``"graph"`` (trace once, optimize, replay).
        serialize: whether the traced graph is round-tripped through the
            ONNX-like portable format before execution (models the
            export-to-browser path).
        per_node_overhead_s: fixed dispatch overhead charged per graph node at
            execution time (used to model slower interpreters such as WASM).
        optimize_graph: whether graph optimization passes run after tracing.
    """

    name: str
    strategy: str
    serialize: bool = False
    per_node_overhead_s: float = 0.0
    optimize_graph: bool = True

    def __post_init__(self) -> None:
        if self.strategy not in ("eager", "graph"):
            raise ValueError(f"unknown backend strategy: {self.strategy!r}")


class DeviceCostModel:
    """Base cost model: report the measured wall-clock time unchanged."""

    name = "measured"

    def report_time(self, measured_s: float, profile: Profiler | None,
                    interpreter_overhead_s: float = 0.0) -> float:
        """Return the execution time to report for a run.

        Args:
            measured_s: wall-clock seconds of the real (numpy) execution.
            profile: op-level profile of that execution (may be ``None`` when
                profiling was disabled; cost models must degrade gracefully).
            interpreter_overhead_s: per-node dispatch overhead the executing
                backend already burned into ``measured_s`` (the ONNX-like
                interpreter's busy-wait).  Simulated devices that charge their
                own dispatch cost subtract this first so the native overhead
                is never charged twice.
        """
        return measured_s

    def describe(self) -> dict:
        """Human-readable parameters, recorded in benchmark output."""
        return {"name": self.name}
