"""CPU device: real execution, measured time.

Unprofiled runs report wall-clock time, exactly as before.  Profiled runs
report *kernel time* — the sum of the profiler's per-op durations — which
excludes the pure-Python dispatch overhead of this simulation harness (the
regime a compiled engine or the paper's TorchScript backend operates in).
Kernel time is also what makes morsel-parallel reporting meaningful: worker
lanes run concurrently on a multicore CPU, so a parallel plan charges its
serial kernels, the *slowest worker lane*, and a fixed task-scheduling cost
per morsel dispatch.  Serial plans charge every kernel — same basis, so
``parallelism=1`` vs ``parallelism=N`` speedup curves are apples to apples.
"""

from __future__ import annotations

from repro.backends.base import DeviceCostModel, split_parallel
from repro.tensor.profiler import Profiler


class CPUDevice(DeviceCostModel):
    """The host CPU — kernels run for real; see the module docstring for the
    measured-vs-kernel-time reporting rules."""

    name = "cpu"

    def __init__(self, morsel_dispatch_overhead_s: float = 2e-6):
        #: Task-queue push/pop cost charged per morsel handed to a worker.
        self.morsel_dispatch_overhead_s = morsel_dispatch_overhead_s

    def report_time(self, measured_s: float, profile: Profiler | None,
                    interpreter_overhead_s: float = 0.0) -> float:
        if profile is None or not profile.events:
            return measured_s
        serial, lanes, dispatches = split_parallel(profile.events)
        serial_s = sum(event.elapsed_s for event in serial)
        slowest_lane_s = max((sum(event.elapsed_s for event in lane_events)
                              for lane_events in lanes.values()), default=0.0)
        dispatch_s = len(dispatches) * self.morsel_dispatch_overhead_s
        return serial_s + slowest_lane_s + dispatch_s

    def describe(self) -> dict:
        return {
            "name": self.name,
            "simulated": False,
            "profiled_report": "kernel time: serial + slowest lane + dispatch",
            "morsel_dispatch_overhead_s": self.morsel_dispatch_overhead_s,
        }
