"""CPU device: real execution, measured time.

Unprofiled runs report wall-clock time, exactly as before.  Profiled runs
report *kernel time* — the sum of the profiler's per-op durations — which
excludes the pure-Python dispatch overhead of this simulation harness (the
regime a compiled engine or the paper's TorchScript backend operates in).
Kernel time is also what makes morsel-parallel reporting meaningful: worker
lanes run concurrently on a multicore CPU, so a parallel plan charges its
serial kernels, the *slowest worker lane*, and a fixed task-scheduling cost
per morsel dispatch.  Serial plans charge every kernel — same basis, so
``parallelism=1`` vs ``parallelism=N`` speedup curves are apples to apples.
"""

from __future__ import annotations

from repro.backends.base import DeviceCostModel, split_parallel, split_sharded
from repro.tensor.profiler import Profiler


class CPUDevice(DeviceCostModel):
    """The host CPU — kernels run for real; see the module docstring for the
    measured-vs-kernel-time reporting rules.

    With ``devices > 1`` the "devices" are NUMA-socket-like peers reached over
    a coherent interconnect: each shard's kernels run concurrently (the region
    charges its slowest shard), and every exchange op pays a per-message
    latency plus its payload bytes over the interconnect bandwidth.
    """

    name = "cpu"

    def __init__(self, morsel_dispatch_overhead_s: float = 2e-6,
                 interconnect_bandwidth_gbs: float = 25.0,
                 interconnect_latency_s: float = 1e-6):
        #: Task-queue push/pop cost charged per morsel handed to a worker.
        self.morsel_dispatch_overhead_s = morsel_dispatch_overhead_s
        #: Peer-to-peer bandwidth between simulated devices (UPI/xGMI-class).
        self.interconnect_bandwidth_gbs = interconnect_bandwidth_gbs
        #: Fixed per-message cost charged per exchange op.
        self.interconnect_latency_s = interconnect_latency_s

    def _group_time(self, events) -> float:
        serial, lanes, dispatches = split_parallel(events)
        serial_s = sum(event.elapsed_s for event in serial)
        slowest_lane_s = max((sum(event.elapsed_s for event in lane_events)
                              for lane_events in lanes.values()), default=0.0)
        return (serial_s + slowest_lane_s
                + len(dispatches) * self.morsel_dispatch_overhead_s)

    def report_time(self, measured_s: float, profile: Profiler | None,
                    interpreter_overhead_s: float = 0.0) -> float:
        if profile is None or not profile.events:
            return measured_s
        host, shards, exchanges = split_sharded(profile.events)
        bandwidth_bps = self.interconnect_bandwidth_gbs * 1e9
        # An exchange op's payload is its output tensor (it is an identity);
        # charging input+output bytes would count the same payload twice.
        exchange_s = sum(self.interconnect_latency_s
                         + event.output_bytes / bandwidth_bps
                         for event in exchanges)
        slowest_shard_s = max((self._group_time(events)
                               for events in shards.values()), default=0.0)
        return self._group_time(host) + slowest_shard_s + exchange_s

    def describe(self) -> dict:
        return {
            "name": self.name,
            "simulated": False,
            "profiled_report": "kernel time: serial + slowest lane + dispatch",
            "morsel_dispatch_overhead_s": self.morsel_dispatch_overhead_s,
            "interconnect_bandwidth_gbs": self.interconnect_bandwidth_gbs,
            "interconnect_latency_s": self.interconnect_latency_s,
        }
