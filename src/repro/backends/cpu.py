"""CPU device: real execution, measured time."""

from __future__ import annotations

from repro.backends.base import DeviceCostModel


class CPUDevice(DeviceCostModel):
    """The host CPU — kernels run for real, reported time is wall-clock."""

    name = "cpu"

    def describe(self) -> dict:
        return {"name": self.name, "simulated": False}
