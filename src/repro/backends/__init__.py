"""Execution backends (compilation targets) and device cost models."""

from repro.backends.base import BackendSpec, DeviceCostModel
from repro.backends.cpu import CPUDevice
from repro.backends.gpu_sim import SimulatedGPU
from repro.backends.registry import BACKENDS, get_backend, get_device_model
from repro.backends.wasm_sim import SimulatedWASM

__all__ = [
    "BACKENDS",
    "BackendSpec",
    "CPUDevice",
    "DeviceCostModel",
    "SimulatedGPU",
    "SimulatedWASM",
    "get_backend",
    "get_device_model",
]
