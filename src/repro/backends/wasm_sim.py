"""Simulated browser/WASM device (stand-in for ONNX Runtime Web).

The paper runs the ONNX export of a query inside a browser on a laptop and
observes that "the web execution is quite slow".  This device models that
path: the query must have been compiled through the ONNX-like serialized
format, execution goes through the graph interpreter with a per-node dispatch
overhead, and the reported time additionally applies a slowdown factor that
represents WASM code generation quality and the weaker client machine.
"""

from __future__ import annotations

from repro.backends.base import TRANSFER_OPS, DeviceCostModel, split_parallel
from repro.tensor.profiler import Profiler


class SimulatedWASM(DeviceCostModel):
    """Browser/WASM cost model: measured time × slowdown + dispatch overhead."""

    name = "wasm (simulated)"

    def __init__(self, slowdown: float = 6.0, per_op_overhead_s: float = 30e-6,
                 morsel_dispatch_overhead_s: float = 20e-6):
        #: Multiplier over native CPU time (WASM SIMD-less kernels + laptop CPU).
        self.slowdown = slowdown
        #: JS/WASM boundary crossing cost charged per executed op.
        self.per_op_overhead_s = per_op_overhead_s
        #: ``postMessage``-style cost charged per morsel handed to a Web
        #: Worker — on top of the boundary crossing the dispatch op pays like
        #: every other event, and deliberately steep: browsers make fine-
        #: grained task parallelism expensive.
        self.morsel_dispatch_overhead_s = morsel_dispatch_overhead_s

    def report_time(self, measured_s: float, profile: Profiler | None,
                    interpreter_overhead_s: float = 0.0) -> float:
        """``(measured - native_dispatch) × slowdown + events × per_op_overhead``.

        The native interpreter burns ``interpreter_overhead_s`` of real wall
        time per executed node (the ONNX backend's dispatch simulation), and
        ``per_op_overhead_s`` models the JS/WASM boundary cost for the same
        dispatches.  Charging both — and multiplying the burned time by the
        WASM slowdown on top — double-counted dispatch, so the burned share is
        subtracted before the kernel slowdown is applied.  Only kernel events
        were actually burned: the interpreter's initial input moves (the
        ``to_device`` transfer events) happen before its dispatch loop.  Each
        profiler event still pays the boundary cost once, so fused
        elementwise chains pay it once per fused kernel.

        Morsel-parallel plans model Web-Worker execution: the measured time of
        worker-lane kernels is replaced by the slowest lane's share before the
        slowdown is applied, and every morsel dispatch pays a ``postMessage``
        charge on top of its boundary crossing.
        """
        if profile is None:
            return measured_s * self.slowdown
        n_boundary_crossings = len(profile.events)
        _, kernels = profile.partition(TRANSFER_OPS)
        kernel_s = max(0.0, measured_s - len(kernels) * interpreter_overhead_s)
        _, lanes, dispatches = split_parallel(kernels)
        if lanes:
            laned_total_s = sum(event.elapsed_s
                                for lane_events in lanes.values()
                                for event in lane_events)
            slowest_lane_s = max(sum(event.elapsed_s for event in lane_events)
                                 for lane_events in lanes.values())
            kernel_s = max(0.0, kernel_s - laned_total_s + slowest_lane_s)
        return (kernel_s * self.slowdown
                + n_boundary_crossings * self.per_op_overhead_s
                + len(dispatches) * self.morsel_dispatch_overhead_s)

    def describe(self) -> dict:
        return {
            "name": self.name,
            "simulated": True,
            "slowdown": self.slowdown,
            "per_op_overhead_s": self.per_op_overhead_s,
            "morsel_dispatch_overhead_s": self.morsel_dispatch_overhead_s,
        }
