"""Simulated browser/WASM device (stand-in for ONNX Runtime Web).

The paper runs the ONNX export of a query inside a browser on a laptop and
observes that "the web execution is quite slow".  This device models that
path: the query must have been compiled through the ONNX-like serialized
format, execution goes through the graph interpreter with a per-node dispatch
overhead, and the reported time additionally applies a slowdown factor that
represents WASM code generation quality and the weaker client machine.
"""

from __future__ import annotations

from repro.backends.base import (
    TRANSFER_OPS,
    DeviceCostModel,
    split_parallel,
    split_sharded,
)
from repro.tensor.profiler import Profiler


class SimulatedWASM(DeviceCostModel):
    """Browser/WASM cost model: measured time × slowdown + dispatch overhead."""

    name = "wasm (simulated)"

    def __init__(self, slowdown: float = 6.0, per_op_overhead_s: float = 30e-6,
                 morsel_dispatch_overhead_s: float = 20e-6,
                 message_bandwidth_gbs: float = 1.0,
                 message_latency_s: float = 50e-6):
        #: Multiplier over native CPU time (WASM SIMD-less kernels + laptop CPU).
        self.slowdown = slowdown
        #: JS/WASM boundary crossing cost charged per executed op.
        self.per_op_overhead_s = per_op_overhead_s
        #: ``postMessage``-style cost charged per morsel handed to a Web
        #: Worker — on top of the boundary crossing the dispatch op pays like
        #: every other event, and deliberately steep: browsers make fine-
        #: grained task parallelism expensive.
        self.morsel_dispatch_overhead_s = morsel_dispatch_overhead_s
        #: Structured-clone serialization bandwidth for moving a shard
        #: fragment between Web Workers — the browser's "interconnect" copies
        #: payloads through ``postMessage``, orders of magnitude slower than
        #: any GPU link.
        self.message_bandwidth_gbs = message_bandwidth_gbs
        #: Fixed event-loop round-trip latency charged per exchanged message.
        self.message_latency_s = message_latency_s

    def report_time(self, measured_s: float, profile: Profiler | None,
                    interpreter_overhead_s: float = 0.0) -> float:
        """``(measured - native_dispatch) × slowdown + events × per_op_overhead``.

        The native interpreter burns ``interpreter_overhead_s`` of real wall
        time per executed node (the ONNX backend's dispatch simulation), and
        ``per_op_overhead_s`` models the JS/WASM boundary cost for the same
        dispatches.  Charging both — and multiplying the burned time by the
        WASM slowdown on top — double-counted dispatch, so the burned share is
        subtracted before the kernel slowdown is applied.  Only kernel events
        were actually burned: the interpreter's initial input moves (the
        ``to_device`` transfer events) happen before its dispatch loop.  Each
        profiler event still pays the boundary cost once, so fused
        elementwise chains pay it once per fused kernel.

        Morsel-parallel plans model Web-Worker execution: the measured time of
        worker-lane kernels is replaced by the slowest lane's share before the
        slowdown is applied, and every morsel dispatch pays a ``postMessage``
        charge on top of its boundary crossing.

        Multi-device plans model a Web-Worker *pool*: each shard's kernels run
        on their own worker, so the measured time of all shard kernels (and of
        the zero-cost exchange identities) is replaced by the slowest shard's
        share, and every exchange pays a ``postMessage`` latency plus its
        payload bytes over the structured-clone bandwidth.
        """
        if profile is None:
            return measured_s * self.slowdown
        n_boundary_crossings = len(profile.events)
        _, kernels = profile.partition(TRANSFER_OPS)
        kernel_s = max(0.0, measured_s - len(kernels) * interpreter_overhead_s)
        host_kernels, shards, exchanges = split_sharded(kernels)
        if shards or exchanges:
            off_host_s = sum(
                event.elapsed_s
                for events in shards.values() for event in events
            ) + sum(event.elapsed_s for event in exchanges)
            slowest_shard_s = max((sum(event.elapsed_s for event in events)
                                   for events in shards.values()), default=0.0)
            kernel_s = max(0.0, kernel_s - off_host_s + slowest_shard_s)
        _, lanes, dispatches = split_parallel(host_kernels)
        if lanes:
            laned_total_s = sum(event.elapsed_s
                                for lane_events in lanes.values()
                                for event in lane_events)
            slowest_lane_s = max(sum(event.elapsed_s for event in lane_events)
                                 for lane_events in lanes.values())
            kernel_s = max(0.0, kernel_s - laned_total_s + slowest_lane_s)
        bandwidth_bps = self.message_bandwidth_gbs * 1e9
        # Exchange ops are identities: their payload is their output tensor.
        message_s = sum(self.message_latency_s
                        + event.output_bytes / bandwidth_bps
                        for event in exchanges)
        return (kernel_s * self.slowdown
                + n_boundary_crossings * self.per_op_overhead_s
                + len(dispatches) * self.morsel_dispatch_overhead_s
                + message_s)

    def describe(self) -> dict:
        return {
            "name": self.name,
            "simulated": True,
            "slowdown": self.slowdown,
            "per_op_overhead_s": self.per_op_overhead_s,
            "morsel_dispatch_overhead_s": self.morsel_dispatch_overhead_s,
            "message_bandwidth_gbs": self.message_bandwidth_gbs,
            "message_latency_s": self.message_latency_s,
        }
