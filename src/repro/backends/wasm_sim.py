"""Simulated browser/WASM device (stand-in for ONNX Runtime Web).

The paper runs the ONNX export of a query inside a browser on a laptop and
observes that "the web execution is quite slow".  This device models that
path: the query must have been compiled through the ONNX-like serialized
format, execution goes through the graph interpreter with a per-node dispatch
overhead, and the reported time additionally applies a slowdown factor that
represents WASM code generation quality and the weaker client machine.
"""

from __future__ import annotations

from repro.backends.base import DeviceCostModel
from repro.tensor.profiler import Profiler


class SimulatedWASM(DeviceCostModel):
    """Browser/WASM cost model: measured time × slowdown + dispatch overhead."""

    name = "wasm (simulated)"

    def __init__(self, slowdown: float = 6.0, per_op_overhead_s: float = 30e-6):
        #: Multiplier over native CPU time (WASM SIMD-less kernels + laptop CPU).
        self.slowdown = slowdown
        #: JS/WASM boundary crossing cost charged per executed op.
        self.per_op_overhead_s = per_op_overhead_s

    def report_time(self, measured_s: float, profile: Profiler | None) -> float:
        dispatch = 0.0
        if profile is not None:
            dispatch = len(profile.events) * self.per_op_overhead_s
        return measured_s * self.slowdown + dispatch

    def describe(self) -> dict:
        return {
            "name": self.name,
            "simulated": True,
            "slowdown": self.slowdown,
            "per_op_overhead_s": self.per_op_overhead_s,
        }
