"""Simulated GPU device (stand-in for the paper's NVIDIA P100).

The paper's Figure 1 reports GPU execution 20× (Q6) and 6× (Q14) faster than
Spark-CPU.  Without a GPU we keep the *computation* on the CPU (so results are
always real) and report a time produced by a roofline-style cost model driven
by the op-level profile of the run:

``t = transfers/PCIe_bw + Σ_kernels max(launch_overhead, bytes/HBM_bw)``

The defaults approximate a P100: ~16 GB/s effective PCIe 3.0 x16 transfer
bandwidth, ~500 GB/s effective HBM2 bandwidth, ~5 µs per kernel launch.  The
model intentionally captures the two qualitative behaviours the paper relies
on: (1) large scans are memory-bandwidth bound and therefore much faster than
CPU, and (2) small inputs are dominated by kernel-launch overhead and data
transfer, so GPU execution does not help tiny queries.
"""

from __future__ import annotations

from repro.backends.base import DeviceCostModel
from repro.tensor.profiler import Profiler

#: Ops charged as host<->device transfers rather than kernels.
_TRANSFER_OPS = {"to_device"}


class SimulatedGPU(DeviceCostModel):
    """Analytic P100-like cost model."""

    name = "cuda (simulated)"

    def __init__(
        self,
        hbm_bandwidth_gbs: float = 500.0,
        pcie_bandwidth_gbs: float = 16.0,
        kernel_launch_overhead_s: float = 5e-6,
        compute_speedup: float = 12.0,
    ):
        self.hbm_bandwidth_gbs = hbm_bandwidth_gbs
        self.pcie_bandwidth_gbs = pcie_bandwidth_gbs
        self.kernel_launch_overhead_s = kernel_launch_overhead_s
        #: Fallback speedup applied to measured CPU time when no profile is
        #: available (e.g. profiling disabled for a benchmark run).
        self.compute_speedup = compute_speedup

    def report_time(self, measured_s: float, profile: Profiler | None) -> float:
        if profile is None or not profile.events:
            return measured_s / self.compute_speedup
        total = 0.0
        hbm_bps = self.hbm_bandwidth_gbs * 1e9
        pcie_bps = self.pcie_bandwidth_gbs * 1e9
        for event in profile.events:
            if event.op in _TRANSFER_OPS:
                total += event.total_bytes / pcie_bps
                continue
            kernel_time = event.total_bytes / hbm_bps
            total += max(self.kernel_launch_overhead_s, kernel_time)
        return total

    def describe(self) -> dict:
        return {
            "name": self.name,
            "simulated": True,
            "hbm_bandwidth_gbs": self.hbm_bandwidth_gbs,
            "pcie_bandwidth_gbs": self.pcie_bandwidth_gbs,
            "kernel_launch_overhead_s": self.kernel_launch_overhead_s,
        }
