"""Simulated GPU device (stand-in for the paper's NVIDIA P100).

The paper's Figure 1 reports GPU execution 20× (Q6) and 6× (Q14) faster than
Spark-CPU.  Without a GPU we keep the *computation* on the CPU (so results are
always real) and report a time produced by a roofline-style cost model driven
by the op-level profile of the run:

``compute  = Σ_kernels  max(launch_overhead, bytes / HBM_bw)``
``transfer = Σ_copies   (pcie_latency + payload_bytes / PCIe_bw)``
``t        = max(compute, hideable_transfer) + exposed_transfer``

A *kernel* here is one profiler event; with the ``fuse_elementwise`` pass
active a whole chain of elementwise ops is a single ``fused_kernel`` event,
so launch overhead is charged per fused kernel actually launched — the same
reason fusion pays on real GPUs.  Transfers that happen while later kernels
still run (i.e. any copy observed before the last kernel event) are assumed
to overlap with compute through the copy engine; a transfer with no compute
after it stays exposed.

The defaults approximate a P100: ~16 GB/s effective PCIe 3.0 x16 transfer
bandwidth, ~500 GB/s effective HBM2 bandwidth, ~5 µs per kernel launch, and a
few µs of per-copy PCIe/driver latency.  The model intentionally captures the
two qualitative behaviours the paper relies on: (1) large scans are
memory-bandwidth bound and therefore much faster than CPU, and (2) small
inputs are dominated by kernel-launch overhead and data transfer, so GPU
execution does not help tiny queries.
"""

from __future__ import annotations

from repro.backends.base import (
    TRANSFER_OPS,
    DeviceCostModel,
    split_parallel,
    split_sharded,
)
from repro.tensor.op_semantics import GATHER_OP
from repro.tensor.profiler import Profiler


class SimulatedGPU(DeviceCostModel):
    """Analytic P100-like cost model.

    With ``devices > 1`` the simulated GPUs are NVLink peers: each shard's
    kernels run concurrently (the region charges its slowest device) and
    peer-to-peer exchanges (``shard_exchange`` / ``shard_broadcast``) move at
    NVLink bandwidth, while the final ``shard_gather`` back to the host pays
    the same PCIe tier as any other host<->device copy.
    """

    name = "cuda (simulated)"

    def __init__(
        self,
        hbm_bandwidth_gbs: float = 500.0,
        pcie_bandwidth_gbs: float = 16.0,
        kernel_launch_overhead_s: float = 5e-6,
        compute_speedup: float = 12.0,
        pcie_latency_s: float = 3e-6,
        morsel_dispatch_overhead_s: float = 4e-6,
        nvlink_bandwidth_gbs: float = 300.0,
        nvlink_latency_s: float = 2e-6,
    ):
        self.hbm_bandwidth_gbs = hbm_bandwidth_gbs
        self.pcie_bandwidth_gbs = pcie_bandwidth_gbs
        self.kernel_launch_overhead_s = kernel_launch_overhead_s
        #: Fallback speedup applied to measured CPU time when no profile is
        #: available (e.g. profiling disabled for a benchmark run).
        self.compute_speedup = compute_speedup
        #: Fixed driver/DMA-setup latency charged per host<->device copy.
        self.pcie_latency_s = pcie_latency_s
        #: Stream/scheduling cost charged per morsel handed to a worker lane
        #: (the GPU analogue is launching the morsel's kernels on a side
        #: stream).  Dispatch is serial — it caps morsel-parallel speedup.
        self.morsel_dispatch_overhead_s = morsel_dispatch_overhead_s
        #: Peer-to-peer bandwidth between simulated GPUs (NVLink-class).
        self.nvlink_bandwidth_gbs = nvlink_bandwidth_gbs
        #: Fixed setup latency charged per peer-to-peer message.
        self.nvlink_latency_s = nvlink_latency_s

    @property
    def min_report_s(self) -> float:
        """Physical floor: no GPU run beats one launch plus one copy setup."""
        return self.kernel_launch_overhead_s + self.pcie_latency_s

    def report_time(self, measured_s: float, profile: Profiler | None,
                    interpreter_overhead_s: float = 0.0) -> float:
        if profile is None or not profile.events:
            # No profile to drive the roofline: apply the fallback speedup,
            # clamped so the report can never dip below the launch+transfer
            # floor no matter how small the measured time is.
            return max(measured_s / self.compute_speedup, self.min_report_s)
        hbm_bps = self.hbm_bandwidth_gbs * 1e9
        pcie_bps = self.pcie_bandwidth_gbs * 1e9
        nvlink_bps = self.nvlink_bandwidth_gbs * 1e9
        transfers, kernels = profile.partition(TRANSFER_OPS)
        host_kernels, shards, exchanges = split_sharded(kernels)

        def kernel_cost(event) -> float:
            return max(self.kernel_launch_overhead_s, event.total_bytes / hbm_bps)

        def group_cost(events) -> float:
            # Worker lanes run concurrently: the parallel region costs its
            # slowest lane.  Per-morsel dispatch stays serial (one scheduler),
            # which is what bends the speedup curve at high worker counts.
            serial_kernels, lanes, dispatches = split_parallel(events)
            return (
                sum(kernel_cost(event) for event in serial_kernels)
                + max((sum(kernel_cost(event) for event in lane_events)
                       for lane_events in lanes.values()), default=0.0)
                + len(dispatches) * self.morsel_dispatch_overhead_s
            )

        # Simulated devices run concurrently: a distributed region costs its
        # slowest device, on top of everything the host executes serially.
        compute_s = group_cost(host_kernels) + max(
            (group_cost(events) for events in shards.values()), default=0.0)
        # Peer exchanges ride NVLink; the gather back to the host rides PCIe.
        # An exchange op is an identity — its payload is its output tensor.
        exchange_s = 0.0
        for event in exchanges:
            if event.op == GATHER_OP:
                exchange_s += self.pcie_latency_s + event.output_bytes / pcie_bps
            else:
                exchange_s += (self.nvlink_latency_s
                               + event.output_bytes / nvlink_bps)
        # A to_device event's payload is its output tensor; input/output byte
        # totals would charge the same copy twice.
        last_kernel_ts = max((e.timestamp_s for e in kernels), default=float("-inf"))
        hideable_s = exposed_s = 0.0
        for event in transfers:
            cost = self.pcie_latency_s + event.output_bytes / pcie_bps
            if event.timestamp_s < last_kernel_ts:
                hideable_s += cost  # overlapped with compute via the copy engine
            else:
                exposed_s += cost
        # Exchanges synchronize producer and consumer devices, so unlike the
        # initial uploads they are never hidden behind compute.
        return max(compute_s, hideable_s) + exposed_s + exchange_s

    def describe(self) -> dict:
        return {
            "name": self.name,
            "simulated": True,
            "hbm_bandwidth_gbs": self.hbm_bandwidth_gbs,
            "pcie_bandwidth_gbs": self.pcie_bandwidth_gbs,
            "kernel_launch_overhead_s": self.kernel_launch_overhead_s,
            "pcie_latency_s": self.pcie_latency_s,
            "morsel_dispatch_overhead_s": self.morsel_dispatch_overhead_s,
            "nvlink_bandwidth_gbs": self.nvlink_bandwidth_gbs,
            "nvlink_latency_s": self.nvlink_latency_s,
        }
