"""Lookup tables for backends (compilation targets) and devices (cost models)."""

from __future__ import annotations

from repro.backends.base import BackendSpec, DeviceCostModel
from repro.backends.cpu import CPUDevice
from repro.backends.gpu_sim import SimulatedGPU
from repro.backends.wasm_sim import SimulatedWASM
from repro.errors import ExecutionError
from repro.tensor.device import Device, parse_device

#: Compilation targets, mirroring the paper's PyTorch / TorchScript / ONNX.
BACKENDS: dict[str, BackendSpec] = {
    # Vanilla eager execution (the paper's default PyTorch target).
    "pytorch": BackendSpec(name="pytorch", strategy="eager"),
    # Traced + optimized graph replayed by the interpreter (torch.jit analogue).
    "torchscript": BackendSpec(name="torchscript", strategy="graph"),
    # Traced graph exported to the portable format then re-imported before
    # execution (the ONNX / ORT-web analogue); interpretation carries a small
    # per-node overhead even on native devices.
    "onnx": BackendSpec(name="onnx", strategy="graph", serialize=True,
                        per_node_overhead_s=2e-6),
    # Ablation target: traced graph executed without optimization passes.
    "torchscript-noopt": BackendSpec(name="torchscript-noopt", strategy="graph",
                                     optimize_graph=False),
}


def get_backend(name: str) -> BackendSpec:
    try:
        return BACKENDS[name]
    except KeyError:
        raise ExecutionError(
            f"unknown backend {name!r}; available: {sorted(BACKENDS)}"
        ) from None


def get_device_model(device: Device | str) -> DeviceCostModel:
    """Return the cost model responsible for reporting time on ``device``."""
    dev = parse_device(device)
    if dev.kind == "cpu":
        return CPUDevice()
    if dev.kind == "cuda":
        return SimulatedGPU()
    if dev.kind == "wasm":
        return SimulatedWASM()
    raise ExecutionError(f"no cost model for device {dev}")  # pragma: no cover
