"""Tensor-program implementations of string predicates over padded code tensors.

Strings are ``(n × m)`` int32 code-point tensors right-padded with zeros
(paper §2.1), so every predicate below is expressed purely with tensor ops —
equality/comparison, sliding-window containment for ``LIKE '%x%'``, prefix and
suffix matching, and substring extraction.
"""

from __future__ import annotations

from repro.core.columnar import encode_string_literal
from repro.errors import UnsupportedOperationError
from repro.tensor import Tensor, ops
from repro.tensor.device import Device


def row_lengths(codes: Tensor) -> Tensor:
    """Logical length of every row (number of non-padding code points)."""
    return ops.count_nonzero(ops.ne(codes, 0), axis=1)


def _literal_tensor(value: str, width: int, device: Device) -> Tensor:
    return ops.tensor(encode_string_literal(value, width), device=device)


def equals_literal(codes: Tensor, value: str) -> Tensor:
    """``column = 'literal'`` over a padded string tensor."""
    width = codes.shape[1]
    if len(value) > width:
        return ops.full_like_rows(codes, False, dtype="bool")
    literal = _literal_tensor(value, width, codes.device)
    return ops.all_(ops.eq(codes, literal), axis=1)


def equals_columns(left: Tensor, right: Tensor) -> Tensor:
    """Row-wise equality of two padded string tensors (widths may differ)."""
    width = max(left.shape[1], right.shape[1])
    left = ops.pad2d(left, width)
    right = ops.pad2d(right, width)
    return ops.all_(ops.eq(left, right), axis=1)


def starts_with(codes: Tensor, prefix: str) -> Tensor:
    width = codes.shape[1]
    if len(prefix) > width:
        return ops.full_like_rows(codes, False, dtype="bool")
    if not prefix:
        return ops.full_like_rows(codes, True, dtype="bool")
    head = ops.narrow(codes, 1, 0, len(prefix))
    literal = _literal_tensor(prefix, len(prefix), codes.device)
    return ops.all_(ops.eq(head, literal), axis=1)


def _window_matches(codes: Tensor, needle: str) -> Tensor:
    """(n, positions) boolean tensor: does ``needle`` start at each position?"""
    literal = _literal_tensor(needle, len(needle), codes.device)
    windows = ops.sliding_window(codes, len(needle))
    return ops.all_(ops.eq(windows, literal), axis=2)


def contains(codes: Tensor, needle: str) -> Tensor:
    """``LIKE '%needle%'``."""
    if not needle:
        return ops.full_like_rows(codes, True, dtype="bool")
    if len(needle) > codes.shape[1]:
        return ops.full_like_rows(codes, False, dtype="bool")
    return ops.any_(_window_matches(codes, needle), axis=1)


def ends_with(codes: Tensor, suffix: str) -> Tensor:
    """``LIKE '%suffix'`` — the match must end exactly at the row length."""
    if not suffix:
        return ops.full_like_rows(codes, True, dtype="bool")
    if len(suffix) > codes.shape[1]:
        return ops.full_like_rows(codes, False, dtype="bool")
    matches = _window_matches(codes, suffix)
    lengths = row_lengths(codes)
    expected_position = ops.sub(lengths, len(suffix))
    position_index = ops.arange_like(matches, axis=1)
    at_expected = ops.eq(ops.reshape(position_index, (1, -1)),
                         ops.reshape(expected_position, (-1, 1)))
    return ops.any_(ops.logical_and(matches, at_expected), axis=1)


def like(codes: Tensor, pattern: str) -> Tensor:
    """General SQL ``LIKE`` with ``%`` wildcards (no ``_`` support).

    The pattern is split on ``%`` into segments; a non-empty leading segment
    anchors at position 0, a non-empty trailing segment anchors at the end of
    the string, and the remaining segments must occur in order, each starting
    at or after the end of the previous match.
    """
    if "_" in pattern:
        raise UnsupportedOperationError("LIKE with '_' wildcards is not supported")
    if "%" not in pattern:
        return equals_literal(codes, pattern)
    segments = pattern.split("%")
    leading, trailing = segments[0], segments[-1]
    middle = [s for s in segments[1:-1] if s]

    result = ops.full_like_rows(codes, True, dtype="bool")
    cursor = ops.full_like_rows(codes, 0, dtype="int64")

    if leading:
        result = ops.logical_and(result, starts_with(codes, leading))
        cursor = ops.full_like_rows(codes, len(leading), dtype="int64")

    big = codes.shape[1] + 1
    for segment in middle:
        if len(segment) > codes.shape[1]:
            return ops.full_like_rows(codes, False, dtype="bool")
        matches = _window_matches(codes, segment)
        position_index = ops.reshape(ops.arange_like(matches, axis=1), (1, -1))
        allowed = ops.ge(position_index, ops.reshape(cursor, (-1, 1)))
        usable = ops.logical_and(matches, allowed)
        # Earliest usable match position per row (``big`` when there is none).
        candidate = ops.where(usable, position_index, big)
        earliest = ops.min_(candidate, axis=1)
        found = ops.lt(earliest, big)
        result = ops.logical_and(result, found)
        cursor = ops.add(ops.where(found, earliest, 0), len(segment))

    if trailing:
        anchored = ends_with(codes, trailing)
        lengths = row_lengths(codes)
        room = ops.ge(ops.sub(lengths, len(trailing)), cursor)
        result = ops.logical_and(result, ops.logical_and(anchored, room))
    else:
        lengths = row_lengths(codes)
        result = ops.logical_and(result, ops.ge(lengths, cursor))
    return result


def substring(codes: Tensor, start: int, length: int | None) -> Tensor:
    """``SUBSTRING(column FROM start [FOR length])`` with 1-based ``start``."""
    if start < 1:
        raise UnsupportedOperationError("SUBSTRING start must be >= 1")
    width = codes.shape[1]
    begin = min(start - 1, width)
    if length is None:
        length = width - begin
    length = max(0, min(length, width - begin))
    if length == 0:
        return ops.full_like_rows(codes, 0, dtype="int32", width=1)
    return ops.narrow(codes, 1, begin, length)


def dense_rank(codes: Tensor) -> Tensor:
    """Dense group ids (0..G-1, in lexicographic order) for a string tensor.

    Implemented with sort + neighbour-comparison + prefix sum so it stays in
    the tensor op vocabulary (no Python loops over rows).
    """
    _, width = codes.shape
    # numpy lexsort treats the *last* key as primary: pass columns reversed.
    keys = [ops.slice_(codes, (slice(None), col)) for col in range(width - 1, -1, -1)]
    order = ops.lexsort(keys)
    sorted_codes = ops.take(codes, order, axis=0)
    # Everything below is expressed without Python branches on the row count,
    # so a traced program replays correctly whatever size a parameter
    # rebinding produces (including zero rows in either direction).  Relative
    # slices compare each sorted row to its predecessor; the boundary flags
    # are scattered to positions 1..n-1 of an n-length vector (position 0
    # stays 0: the first row starts group 0).
    head = ops.slice_(sorted_codes, slice(None, -1))
    tail = ops.slice_(sorted_codes, slice(1, None))
    boundaries = ops.any_(ops.ne(head, tail), axis=1)
    flags = ops.scatter_add(ops.add(ops.arange_like(boundaries), 1),
                            ops.cast(boundaries, "int64"),
                            size=ops.row_count(codes))
    group_of_sorted = ops.cumsum(flags)
    ranks = ops.scatter_add(order, group_of_sorted, size=ops.row_count(codes))
    return ops.cast(ranks, "int64")
