"""Tensor-program implementations of string predicates over padded code tensors.

Strings are ``(n × m)`` int32 code-point tensors right-padded with zeros
(paper §2.1), so every predicate below is expressed purely with tensor ops —
equality/comparison, sliding-window containment for ``LIKE '%x%'``, prefix and
suffix matching, and substring extraction.
"""

from __future__ import annotations

from repro.core.columnar import encode_string_literal
from repro.errors import UnsupportedOperationError
from repro.tensor import Tensor, ops
from repro.tensor.device import Device


def row_lengths(codes: Tensor) -> Tensor:
    """Logical length of every row (number of non-padding code points)."""
    return ops.count_nonzero(ops.ne(codes, 0), axis=1)


def _literal_tensor(value: str, width: int, device: Device) -> Tensor:
    return ops.tensor(encode_string_literal(value, width), device=device)


def equals_literal(codes: Tensor, value: str) -> Tensor:
    """``column = 'literal'`` over a padded string tensor."""
    width = codes.shape[1]
    if len(value) > width:
        return ops.full((codes.shape[0],), False, dtype="bool", device=codes.device)
    literal = _literal_tensor(value, width, codes.device)
    return ops.all_(ops.eq(codes, literal), axis=1)


def equals_columns(left: Tensor, right: Tensor) -> Tensor:
    """Row-wise equality of two padded string tensors (widths may differ)."""
    width = max(left.shape[1], right.shape[1])
    left = ops.pad2d(left, width)
    right = ops.pad2d(right, width)
    return ops.all_(ops.eq(left, right), axis=1)


def starts_with(codes: Tensor, prefix: str) -> Tensor:
    width = codes.shape[1]
    if len(prefix) > width:
        return ops.full((codes.shape[0],), False, dtype="bool", device=codes.device)
    if not prefix:
        return ops.full((codes.shape[0],), True, dtype="bool", device=codes.device)
    head = ops.narrow(codes, 1, 0, len(prefix))
    literal = _literal_tensor(prefix, len(prefix), codes.device)
    return ops.all_(ops.eq(head, literal), axis=1)


def _window_matches(codes: Tensor, needle: str) -> Tensor:
    """(n, positions) boolean tensor: does ``needle`` start at each position?"""
    literal = _literal_tensor(needle, len(needle), codes.device)
    windows = ops.sliding_window(codes, len(needle))
    return ops.all_(ops.eq(windows, literal), axis=2)


def contains(codes: Tensor, needle: str) -> Tensor:
    """``LIKE '%needle%'``."""
    if not needle:
        return ops.full((codes.shape[0],), True, dtype="bool", device=codes.device)
    if len(needle) > codes.shape[1]:
        return ops.full((codes.shape[0],), False, dtype="bool", device=codes.device)
    return ops.any_(_window_matches(codes, needle), axis=1)


def ends_with(codes: Tensor, suffix: str) -> Tensor:
    """``LIKE '%suffix'`` — the match must end exactly at the row length."""
    if not suffix:
        return ops.full((codes.shape[0],), True, dtype="bool", device=codes.device)
    if len(suffix) > codes.shape[1]:
        return ops.full((codes.shape[0],), False, dtype="bool", device=codes.device)
    matches = _window_matches(codes, suffix)
    lengths = row_lengths(codes)
    expected_position = ops.sub(lengths, len(suffix))
    n_positions = matches.shape[1]
    position_index = ops.arange(n_positions, device=codes.device)
    at_expected = ops.eq(ops.reshape(position_index, (1, n_positions)),
                         ops.reshape(expected_position, (codes.shape[0], 1)))
    return ops.any_(ops.logical_and(matches, at_expected), axis=1)


def like(codes: Tensor, pattern: str) -> Tensor:
    """General SQL ``LIKE`` with ``%`` wildcards (no ``_`` support).

    The pattern is split on ``%`` into segments; a non-empty leading segment
    anchors at position 0, a non-empty trailing segment anchors at the end of
    the string, and the remaining segments must occur in order, each starting
    at or after the end of the previous match.
    """
    if "_" in pattern:
        raise UnsupportedOperationError("LIKE with '_' wildcards is not supported")
    n = codes.shape[0]
    device = codes.device
    if "%" not in pattern:
        return equals_literal(codes, pattern)
    segments = pattern.split("%")
    leading, trailing = segments[0], segments[-1]
    middle = [s for s in segments[1:-1] if s]

    result = ops.full((n,), True, dtype="bool", device=device)
    cursor = ops.full((n,), 0, dtype="int64", device=device)

    if leading:
        result = ops.logical_and(result, starts_with(codes, leading))
        cursor = ops.full((n,), len(leading), dtype="int64", device=device)

    big = codes.shape[1] + 1
    for segment in middle:
        if len(segment) > codes.shape[1]:
            return ops.full((n,), False, dtype="bool", device=device)
        matches = _window_matches(codes, segment)
        n_positions = matches.shape[1]
        position_index = ops.reshape(ops.arange(n_positions, device=device),
                                     (1, n_positions))
        allowed = ops.ge(position_index, ops.reshape(cursor, (n, 1)))
        usable = ops.logical_and(matches, allowed)
        # Earliest usable match position per row (``big`` when there is none).
        candidate = ops.where(usable, position_index, big)
        earliest = ops.min_(candidate, axis=1)
        found = ops.lt(earliest, big)
        result = ops.logical_and(result, found)
        cursor = ops.add(ops.where(found, earliest, 0), len(segment))

    if trailing:
        anchored = ends_with(codes, trailing)
        lengths = row_lengths(codes)
        room = ops.ge(ops.sub(lengths, len(trailing)), cursor)
        result = ops.logical_and(result, ops.logical_and(anchored, room))
    else:
        lengths = row_lengths(codes)
        result = ops.logical_and(result, ops.ge(lengths, cursor))
    return result


def substring(codes: Tensor, start: int, length: int | None) -> Tensor:
    """``SUBSTRING(column FROM start [FOR length])`` with 1-based ``start``."""
    if start < 1:
        raise UnsupportedOperationError("SUBSTRING start must be >= 1")
    width = codes.shape[1]
    begin = min(start - 1, width)
    if length is None:
        length = width - begin
    length = max(0, min(length, width - begin))
    if length == 0:
        return ops.zeros((codes.shape[0], 1), dtype="int32", device=codes.device)
    return ops.narrow(codes, 1, begin, length)


def dense_rank(codes: Tensor) -> Tensor:
    """Dense group ids (0..G-1, in lexicographic order) for a string tensor.

    Implemented with sort + neighbour-comparison + prefix sum so it stays in
    the tensor op vocabulary (no Python loops over rows).
    """
    n, width = codes.shape
    if n == 0:
        return ops.zeros((0,), dtype="int64", device=codes.device)
    # numpy lexsort treats the *last* key as primary: pass columns reversed.
    keys = [ops.slice_(codes, (slice(None), col)) for col in range(width - 1, -1, -1)]
    order = ops.lexsort(keys)
    sorted_codes = ops.take(codes, order, axis=0)
    head = ops.narrow(sorted_codes, 0, 0, n - 1) if n > 1 else None
    if head is None:
        boundaries = ops.zeros((0,), dtype="bool", device=codes.device)
    else:
        tail = ops.narrow(sorted_codes, 0, 1, n - 1)
        boundaries = ops.any_(ops.ne(head, tail), axis=1)
    group_of_sorted = ops.concat(
        [ops.zeros((1,), dtype="int64", device=codes.device),
         ops.cumsum(ops.cast(boundaries, "int64"))]
    )
    ranks = ops.scatter_add(order, group_of_sorted, size=n)
    return ops.cast(ranks, "int64")
