"""Execution layer: operator plan → Executor for a backend/device (paper §2.2, layer 4).

The Executor is the runnable artifact TQP produces for a query:

* on the ``pytorch`` backend it dispatches the operator plan eagerly, op by op;
* on the ``torchscript`` backend the whole query (relational operators,
  expressions, runtime subqueries and any embedded ML models) is traced into a
  single tensor graph, optimized, and replayed by the graph interpreter;
* on the ``onnx`` backend the traced graph is additionally round-tripped
  through the ONNX-like portable format — the path used for browser/WASM
  execution.

Devices: results are always computed with real kernels; the CPU reports
measured wall time while the simulated ``cuda`` / ``wasm`` devices report time
from their documented cost models (see ``repro.backends``).
"""

from __future__ import annotations

import dataclasses
import threading
import time
from typing import Callable, Optional

from repro.backends import BackendSpec, get_backend, get_device_model
from repro.core.columnar import LogicalType, TensorColumn, TensorTable
from repro.core.expressions import EvaluationContext, ExprValue
from repro.core.operators import ExecutionContext
from repro.core.options import ExecutionOptions
from repro.core.parameters import (
    ParameterSpec,
    make_binder,
    param_array_converter,
    param_converter,
)
from repro.core.planner import OperatorPlan
from repro.dataframe import DataFrame
from repro.distributed import DistributedScanOperator, ShardedTable, shard_table
from repro.errors import BatchBindingError, BindingError, CatalogError, ExecutionError
from repro.tensor import Graph, Profiler, ScriptedProgram, Tensor, onnxlike, passes, tracing
from repro.tensor.device import Device, parse_device


@dataclasses.dataclass
class ExecutionResult:
    """Result of one query execution."""

    table: TensorTable
    measured_s: float
    reported_s: float
    backend: str
    device: str
    profile: Optional[Profiler] = None
    #: Zone-map pruning outcome per scan alias (blocks skipped/total); empty
    #: when no scan pruned.  On the graph backends the counters describe the
    #: tracing run (a replay does not re-execute the operators).
    pruning: dict = dataclasses.field(default_factory=dict)
    #: How the query actually ran: ``eager`` (pytorch backend), ``compiled``
    #: (generated code) or ``interpreted`` (graph interpreter, including the
    #: ``auto``-mode fallback).
    executor_mode: str = "eager"

    def to_dataframe(self) -> DataFrame:
        return self.table.to_dataframe()


class Executor:
    """Runs an operator plan on a chosen backend and device.

    Construction accepts either an :class:`ExecutionOptions` (preferred) or
    the legacy ``backend=`` / ``device=`` / ``parallelism=`` keywords.  Plans
    with bind parameters (see ``plan.params``) take a ``params`` mapping on
    every :meth:`execute`; on the graph backends those values are fed to the
    already-traced program as runtime inputs — re-binding never re-traces.
    """

    def __init__(self, plan: OperatorPlan, backend: BackendSpec | str = "pytorch",
                 device: Device | str = "cpu",
                 models: Optional[dict[str, Callable]] = None,
                 parallelism: int = 1,
                 options: Optional[ExecutionOptions] = None,
                 scan_stats: Optional[dict] = None):
        self.plan = plan
        #: Storage statistics per scan alias (zone maps for pruning); set by
        #: the session at compile time, ``None`` disables pruning.
        self.scan_stats = scan_stats or {}
        if options is not None:
            backend = options.backend or backend
            device = options.device if options.device is not None else device
            parallelism = (options.parallelism if options.parallelism is not None
                           else parallelism)
        self.backend = get_backend(backend) if isinstance(backend, str) else backend
        self.device = parse_device(device)
        self.options = (options or ExecutionOptions()).replace(
            backend=self.backend.name, device=self.device,
            parallelism=max(1, int(parallelism)))
        self.models = models or {}
        #: Worker lanes available to the plan's morsel-driven operators.  The
        #: plan itself already embeds the parallel operator choice; the knob is
        #: threaded here so results/profiles can report the worker count.
        self.parallelism = max(1, int(parallelism))
        #: Bind parameters of the plan, in lexical order.
        self.params: list[ParameterSpec] = list(getattr(plan, "params", []) or [])
        self._param_converters = [(spec.name, param_converter(spec))
                                  for spec in self.params]
        self._binder = make_binder(self.params)
        self.cost_model = get_device_model(self.device)
        #: Number of trace-compilations performed; the plan-cache benchmarks
        #: read this to prove cache hits skip the trace entirely.
        self.compile_count = 0
        self._program: Optional[ScriptedProgram] = None
        self._program_layout: Optional[list] = None
        self._input_layout: Optional[list[tuple[str, str]]] = None
        # Serializes trace compilation: concurrent first executions of a
        # shared plan must produce exactly one traced program, never a torn
        # (_program, _program_layout, _input_layout) triple from two
        # interleaved traces.
        self._compile_lock = threading.Lock()
        if self.device.kind == "wasm" and self.backend.name != "onnx":
            raise ExecutionError(
                "the wasm device requires the 'onnx' backend (browser execution "
                "goes through the portable graph format)"
            )

    # -- input preparation --------------------------------------------------

    def prepare_inputs(self, dataframes: dict[str, DataFrame]) -> dict[str, TensorTable]:
        """Convert the registered DataFrames into tensor tables, per scan.

        Only the columns each scan actually needs are converted (strings and
        dates require an encoding pass; numeric columns are zero-copy).
        The result is keyed by scan alias with fully qualified column names.

        Every table the plan references is validated up front (matched
        case-insensitively, like the session catalog); missing tables or
        columns raise :class:`repro.errors.CatalogError` /
        :class:`repro.errors.ExecutionError` naming what is absent, never a
        bare ``KeyError``.
        """
        by_key = {name.lower(): frame for name, frame in dataframes.items()}
        missing = sorted({scan.table for scan in self.plan.scans
                          if scan.table.lower() not in by_key})
        if missing:
            raise CatalogError(
                "plan references unregistered table(s): "
                + ", ".join(repr(name) for name in missing)
            )
        from repro.storage.encodings import encode_table

        inputs: dict[str, TensorTable] = {}
        for scan in self.plan.scans:
            frame = by_key[scan.table.lower()]
            for field in scan.fields:
                base = field.name.split(".", 1)[1] if "." in field.name else field.name
                if base not in frame:
                    raise ExecutionError(
                        f"table {scan.table!r} has no column {base!r} "
                        f"(required by scan {scan.alias!r})"
                    )
            # Reuse the catalog's NDV counts when statistics were attached so
            # the dictionary-encoding decision skips its np.unique fallback.
            stats = self.scan_stats.get(scan.alias)
            ndv = ({name: column.ndv for name, column in stats.columns.items()}
                   if stats is not None else None)
            table = TensorTable(
                encode_table(frame, scan.fields, mode=self.options.encoding,
                             column_ndv=ndv))
            if isinstance(scan, DistributedScanOperator):
                # Sharding is load-time placement, not query work: it happens
                # here, outside any trace or profiler, and the traced program
                # receives each shard's columns as separate named inputs.
                table = shard_table(table, scan.devices, scan.shard_mode)
            inputs[scan.alias] = table
        return inputs

    # -- execution ------------------------------------------------------------

    def bind(self, params: Optional[dict] = None) -> dict:
        """Validate and normalize a parameter binding for this plan.

        Raises :class:`~repro.errors.BindingError` for missing, unknown or
        ill-typed values (see ``repro.core.parameters.bind_parameters``).
        """
        return self._binder(params or {})

    def _param_values(self, bound: dict) -> dict[str, ExprValue]:
        """Scalar tensors for a normalized binding, created on the CPU.

        The execution context moves them to the target device alongside the
        table inputs, so the transfer is part of the traced program and the
        simulated cost models account for it.
        """
        return {name: convert(bound[name])
                for name, convert in self._param_converters}

    def execute(self, inputs: dict[str, TensorTable], profile: bool = False,
                params: Optional[dict] = None,
                scan_stats: Optional[dict] = None) -> ExecutionResult:
        """Run the query over prepared inputs and return the result.

        ``params`` binds the plan's parameters (validated up front with typed
        errors); on the graph backends the values are runtime inputs of the
        traced program, so executing with a new binding never re-traces.
        ``scan_stats`` optionally overrides the executor's stored zone maps
        for this execution only — sessions pass a snapshot taken atomically
        with ``inputs``, so a concurrent re-registration can never pair fresh
        statistics with stale converted columns (or vice versa).
        """
        bound = self.bind(params)
        if self.backend.strategy == "graph":
            # Trace before entering the profiled region: the eager tracing
            # run dispatches every op once, and folding those events into the
            # run's profile would make the simulated devices charge each
            # kernel and transfer twice on a one-shot execution.
            self._ensure_program(inputs, bound, scan_stats=scan_stats)
        want_profile = profile or self.device.is_simulated
        profiler = Profiler(name=f"{self.backend.name}-{self.device}") if want_profile else None

        if self.backend.strategy == "eager":
            def run(tables: dict[str, TensorTable]) -> TensorTable:
                return self._run_eager(tables, bound, scan_stats=scan_stats)
        else:
            def run(tables: dict[str, TensorTable]) -> TensorTable:
                return self._run_graph(tables, bound)

        if profiler is not None:
            with profiler:
                start = time.perf_counter()
                table = run(inputs)
                measured = time.perf_counter() - start
        else:
            start = time.perf_counter()
            table = run(inputs)
            measured = time.perf_counter() - start

        reported = self.cost_model.report_time(
            measured, profiler,
            interpreter_overhead_s=self.backend.per_node_overhead_s)
        pruning = {scan.alias: scan.last_pruning for scan in self.plan.scans
                   if getattr(scan, "last_pruning", None)}
        if self.backend.strategy == "eager":
            mode = "eager"
        else:
            mode = "compiled" if self._program.uses_codegen else "interpreted"
        return ExecutionResult(table=table, measured_s=measured, reported_s=reported,
                               backend=self.backend.name, device=str(self.device),
                               profile=profiler, pruning=pruning,
                               executor_mode=mode)

    # -- eager (PyTorch-like) path ----------------------------------------------

    def _execution_context(self, inputs: dict[str, TensorTable],
                           param_values: Optional[dict[str, ExprValue]] = None,
                           scan_stats: Optional[dict] = None
                           ) -> ExecutionContext:
        moved = {alias: table.to(self.device) for alias, table in inputs.items()}
        params = {}
        for name, value in (param_values or {}).items():
            tensor = value.tensor
            if tensor.device != self.device:
                tensor = tensor.to(self.device)
            params[name] = ExprValue(tensor, value.ltype, value.is_scalar,
                                     value.valid)
        ctx = ExecutionContext(moved, device=self.device,
                               parallelism=self.parallelism,
                               zone_maps=(scan_stats if scan_stats is not None
                                          else self.scan_stats))
        ctx.eval_ctx = EvaluationContext(
            device=self.device,
            subquery_runner=lambda subplan: subplan.execute(ctx),
            models=self.models,
            params=params,
        )
        return ctx

    def _run_eager(self, inputs: dict[str, TensorTable],
                   bound: Optional[dict] = None,
                   scan_stats: Optional[dict] = None) -> TensorTable:
        ctx = self._execution_context(inputs, self._param_values(bound or {}),
                                      scan_stats=scan_stats)
        return self.plan.root.execute(ctx)

    # -- traced (TorchScript / ONNX-like) path ------------------------------------

    def _flatten_inputs(self, inputs: dict[str, TensorTable]
                        ) -> tuple[list[Tensor], list[tuple[str, str, str]]]:
        """Flatten input tables into the traced program's input tensor list.

        Encoded columns contribute one tensor per storage part: the main
        tensor (dictionary codes / run values) plus the encoding's auxiliary
        tensors (dictionary / run lengths), so a traced program receives the
        compressed layout exactly as stored.

        Sharded tables flatten one shard at a time, with the shard id folded
        into the part tag (``s<k>:data`` / ``s<k>:<part>``): each simulated
        device's columns are distinct named inputs of the program, which is
        what lets a traced distributed plan replay against re-registered data.
        """
        tensors: list[Tensor] = []
        layout: list[tuple[str, str, str]] = []

        def flatten_table(alias: str, table: TensorTable, prefix: str,
                          shared: "dict[str, int] | None" = None) -> None:
            for name, column in table.columns():
                tensors.append(column.tensor)
                layout.append((alias, name, prefix + "data"))
                if column.encoding is not None:
                    if shared is not None and shared.get(name) == id(column.encoding):
                        # The encoding (dictionary) is one object replicated
                        # across shards at load time: flatten it once, and let
                        # every shard's rebuilt column share the rebuilt copy —
                        # preserving the object identity the concat fast path
                        # keys on.
                        continue
                    if shared is not None:
                        shared[name] = id(column.encoding)
                    for part, tensor in column.encoding.parts():
                        tensors.append(tensor)
                        layout.append((alias, name, prefix + part))

        for alias in sorted(inputs):
            table = inputs[alias]
            if isinstance(table, ShardedTable):
                shared: dict[str, int] = {}
                for shard, sub in enumerate(table.shards):
                    flatten_table(alias, sub, f"s{shard}:", shared)
            else:
                flatten_table(alias, table, "")
        return tensors, layout

    def _rebuild_inputs(self, tensors: list[Tensor],
                        layout: list[tuple[str, str, str]],
                        reference: dict[str, TensorTable]) -> dict[str, TensorTable]:
        data: dict[tuple[str, int | None, str], Tensor] = {}
        parts: dict[tuple[str, int | None, str], dict[str, Tensor]] = {}
        for tensor, (alias, name, part) in zip(tensors, layout):
            shard: int | None = None
            if part.startswith("s") and ":" in part:
                prefix, part = part.split(":", 1)
                shard = int(prefix[1:])
            if part == "data":
                data[(alias, shard, name)] = tensor
            else:
                parts.setdefault((alias, shard, name), {})[part] = tensor
        rebuilt: dict[tuple[str, int | None], dict[str, TensorColumn]] = {}
        # Shared encodings (dictionaries replicated across shards) were
        # flattened once, under the first shard that carried them; rebuilt
        # columns of later shards reuse that one rebuilt object, keeping the
        # object identity the concat fast path relies on.  Insertion order of
        # ``data`` follows the flatten order, so the carrying shard rebuilds
        # before any shard that references it.
        rebuilt_shared: dict[tuple[str, str], object] = {}
        for (alias, shard, name), tensor in data.items():
            ref_table = reference[alias]
            if shard is not None:
                ref_table = ref_table.shards[shard]
            ref_column = ref_table.column(name)
            encoding = ref_column.encoding
            if encoding is not None:
                own_parts = parts.get((alias, shard, name))
                if own_parts is not None:
                    encoding = encoding.with_parts(own_parts)
                    if shard is not None:
                        rebuilt_shared[(alias, name)] = encoding
                else:
                    encoding = rebuilt_shared[(alias, name)]
            rebuilt.setdefault((alias, shard), {})[name] = TensorColumn(
                tensor, ref_column.ltype, encoding=encoding)
        tables: dict[str, TensorTable] = {}
        shard_groups: dict[str, dict[int, TensorTable]] = {}
        for (alias, shard), columns in rebuilt.items():
            if shard is None:
                tables[alias] = TensorTable(columns)
            else:
                shard_groups.setdefault(alias, {})[shard] = TensorTable(columns)
        for alias, group in shard_groups.items():
            tables[alias] = ShardedTable(
                [group[shard] for shard in sorted(group)],
                reference[alias].spec)
        return tables

    def _ensure_program(self, inputs: dict[str, TensorTable],
                        bound: Optional[dict] = None,
                        scan_stats: Optional[dict] = None) -> ScriptedProgram:
        """The traced program, compiling it exactly once under concurrency.

        Concurrent first executions of a shared plan all race to trace; the
        double-checked lock makes one of them compile while the others wait
        and then replay the same program (``compile_count`` stays 1).
        """
        program = self._program
        if program is None:
            with self._compile_lock:
                program = self._program
                if program is None:
                    program = self._compile_locked(inputs, bound or {},
                                                   scan_stats=scan_stats)
        return program

    def compile_program(self, inputs: dict[str, TensorTable],
                        params: Optional[dict] = None,
                        scan_stats: Optional[dict] = None) -> ScriptedProgram:
        """Trace the whole query into a tensor graph for the graph backends.

        Like ``torch.jit.trace``, data-dependent sizes observed during tracing
        (e.g. join match counts) are baked into the program; the compiled
        program is therefore tied to the dataset it was traced on.  Bind
        parameters, by contrast, enter the graph as *named runtime inputs*
        (``param:<name>``): executing the program with a different binding
        feeds new scalar tensors to the same trace — this is the
        compile-once/bind-many contract of the prepared-statement API.

        Calling this directly always re-traces (that is the documented remedy
        after an input-layout change); compilation is serialized per executor
        so a concurrent caller can never observe a torn program/layout pair.
        """
        bound = self.bind(params)
        with self._compile_lock:
            return self._compile_locked(bound=bound, inputs=inputs,
                                        scan_stats=scan_stats)

    def _compile_locked(self, inputs: dict[str, TensorTable],
                        bound: dict,
                        scan_stats: Optional[dict] = None) -> ScriptedProgram:
        example_tensors, layout = self._flatten_inputs(inputs)
        param_specs = list(self.params)
        param_exprs = self._param_values(bound)
        param_tensors = [param_exprs[spec.name].tensor for spec in param_specs]
        input_names = ([f"{alias}.{name}" if part == "data"
                        else f"{alias}.{name}#{part}"
                        for alias, name, part in layout]
                       + [f"param:{spec.name}" for spec in param_specs])
        output_columns: list[tuple[str, LogicalType, bool]] = []

        def traced_query(*tensors: Tensor) -> list[Tensor]:
            table_tensors = list(tensors[:len(layout)])
            symbolic_params = {
                spec.name: ExprValue(tensor, spec.ltype, True)
                for spec, tensor in zip(param_specs, tensors[len(layout):])
            }
            rebuilt = self._rebuild_inputs(table_tensors, layout, inputs)
            ctx = self._execution_context(rebuilt, symbolic_params,
                                          scan_stats=scan_stats)
            # Output columns are decoded before flattening so the program's
            # outputs are always plain tensors, whatever the storage layout.
            result = self.plan.root.execute(ctx).decoded()
            flat: list[Tensor] = []
            output_columns.clear()
            for name, column in result.columns():
                flat.append(column.tensor)
                has_valid = column.valid is not None
                output_columns.append((name, column.ltype, has_valid))
                if has_valid:
                    flat.append(column.valid)
            return flat

        self.compile_count += 1
        graph = tracing.trace(traced_query, example_tensors + param_tensors,
                              name="tqp_query", input_names=input_names)
        if self.backend.optimize_graph:
            graph = passes.optimize(graph)
        if self.backend.serialize:
            graph = onnxlike.loads(onnxlike.dumps(graph))
        program = ScriptedProgram(graph, self.backend.per_node_overhead_s,
                                  executor=self.options.executor)
        # Publish the layouts before the program: unlocked readers gate on
        # ``self._program``, so by the time they see it, the matching layouts
        # are already in place.
        self._program_layout = list(output_columns)
        self._input_layout = layout
        self._program = program
        return program

    def _run_graph(self, inputs: dict[str, TensorTable],
                   bound: Optional[dict] = None) -> TensorTable:
        bound = bound if bound is not None else self.bind(None)
        self._ensure_program(inputs, bound)
        tensors, layout = self._flatten_inputs(inputs)
        if layout != self._input_layout:
            raise ExecutionError(
                "compiled program does not match the provided inputs; "
                "re-create the executor or call compile_program() again"
            )
        param_exprs = self._param_values(bound)
        tensors = tensors + [param_exprs[spec.name].tensor for spec in self.params]
        outputs = self._program.run(tensors, device=self.device)
        return self._outputs_to_table(outputs)

    def _outputs_to_table(self, outputs: list[Tensor]) -> TensorTable:
        """Reassemble the program's flat output tensors into a result table."""
        columns: dict[str, TensorColumn] = {}
        cursor = 0
        for name, ltype, has_valid in self._program_layout:
            tensor = outputs[cursor]
            cursor += 1
            valid = None
            if has_valid:
                valid = outputs[cursor]
                cursor += 1
            columns[name] = TensorColumn(tensor, ltype, valid)
        return TensorTable(columns)

    def _bind_batch(self, param_batches: "list[dict]", on_error: str
                    ) -> "list[dict | BatchBindingError]":
        """Validate every binding of a batch, attributing failures by index.

        A bad binding becomes a :class:`~repro.errors.BatchBindingError`
        carrying the 0-based request index.  With ``on_error="raise"`` the
        first one is raised before anything executes; with
        ``on_error="collect"`` it takes the failed request's slot and the
        remaining bindings stay usable — a mid-batch failure can never poison
        the cached program, the converters, or its neighbours.
        """
        if on_error not in ("raise", "collect"):
            raise ValueError(
                f"on_error must be 'raise' or 'collect', got {on_error!r}")
        bound_list: "list[dict | BatchBindingError]" = []
        for index, batch in enumerate(param_batches):
            try:
                if isinstance(batch, BatchBindingError):
                    # Pre-attributed failure (e.g. a positional binding of the
                    # wrong arity, caught by the prepared-statement layer).
                    raise batch.cause
                bound_list.append(self.bind(batch))
            except BindingError as exc:
                error = BatchBindingError(index, exc)
                if on_error == "raise":
                    raise error from exc
                bound_list.append(error)
        return bound_list

    def execute_many(self, inputs: dict[str, TensorTable],
                     param_batches: "list[dict]",
                     profile: bool = False,
                     on_error: str = "raise",
                     scan_stats: Optional[dict] = None
                     ) -> "list[ExecutionResult | BatchBindingError]":
        """Serving loop: run many parameter bindings over one input set.

        All bindings are validated up front, then each one runs against the
        cached program.  When the program was lowered to generated code the
        loop takes a dedicated hot path: the table inputs are flattened and
        moved **once**, and each binding costs one parameter conversion plus
        a single generated-function call with zero graph-walking.  Programs
        that replay through the interpreter have no such single entry point,
        so they keep the general per-request path — that gap is exactly what
        ``benchmarks/bench_compiled_executor.py`` measures.  Semantics
        (validation, profiling, reported times) match calling :meth:`execute`
        once per binding either way.

        A bad binding raises a typed :class:`~repro.errors.BatchBindingError`
        naming the request index (``on_error="raise"``, nothing executes), or
        — under ``on_error="collect"``, the serving runtime's mode — fails
        only that request: its result slot holds the error object while every
        other binding still executes.
        """
        bound_list = self._bind_batch(param_batches, on_error)
        errors = {i: b for i, b in enumerate(bound_list)
                  if isinstance(b, BatchBindingError)}
        valid = [(i, b) for i, b in enumerate(bound_list) if i not in errors]

        def weave(results: list) -> list:
            slots: list = [None] * len(bound_list)
            for index, error in errors.items():
                slots[index] = error
            for (index, _), result in zip(valid, results):
                slots[index] = result
            return slots

        if not valid:
            return weave([])
        if self.backend.strategy != "graph":
            return weave([self.execute(inputs, profile=profile, params=bound,
                                       scan_stats=scan_stats)
                          for _, bound in valid])
        self._ensure_program(inputs, valid[0][1], scan_stats=scan_stats)
        if not self._program.uses_codegen:
            return weave([self.execute(inputs, profile=profile, params=bound,
                                       scan_stats=scan_stats)
                          for _, bound in valid])
        valid_bindings = [bound for _, bound in valid]
        tensors, layout = self._flatten_inputs(inputs)
        if layout != self._input_layout:
            raise ExecutionError(
                "compiled program does not match the provided inputs; "
                "re-create the executor or call compile_program() again"
            )
        want_profile = profile or self.device.is_simulated
        pruning = {scan.alias: scan.last_pruning for scan in self.plan.scans
                   if getattr(scan, "last_pruning", None)}
        program, device = self._program, self.device
        backend_name, device_str = self.backend.name, str(device)
        overhead_s = self.backend.per_node_overhead_s
        report_time, perf_counter = self.cost_model.report_time, time.perf_counter
        # Unprofiled serving over generated code skips the per-call input
        # handling entirely: the fixed table arrays are moved and unwrapped
        # once, each request appends its parameter scalars and makes one
        # generated-function call.
        serve = None if want_profile else program.serving_fn(device)
        if serve is not None:
            base_arrays = [(t if t.device == device else t.to(device)).data
                           for t in tensors]
            array_converters = [(spec.name, param_array_converter(spec))
                                for spec in self.params]
        results: list[ExecutionResult] = []
        for bound in valid_bindings:
            profiler = (Profiler(name=f"{backend_name}-{device}")
                        if want_profile else None)
            if profiler is not None:
                param_exprs = self._param_values(bound)
                run_tensors = tensors + [param_exprs[spec.name].tensor
                                         for spec in self.params]
                with profiler:
                    start = perf_counter()
                    outputs = program.run(run_tensors, device=device)
                    measured = perf_counter() - start
            else:
                run_arrays = base_arrays + [convert(bound[name])
                                            for name, convert in array_converters]
                start = perf_counter()
                outputs = serve(run_arrays)
                measured = perf_counter() - start
            reported = report_time(measured, profiler,
                                   interpreter_overhead_s=overhead_s)
            results.append(ExecutionResult(
                table=self._outputs_to_table(outputs), measured_s=measured,
                reported_s=reported, backend=backend_name,
                device=device_str, profile=profiler, pruning=pruning,
                executor_mode="compiled"))
        return weave(results)

    # -- artifacts ------------------------------------------------------------------

    def executor_graph(self, inputs: dict[str, TensorTable],
                       params: Optional[dict] = None) -> Graph:
        """The traced tensor graph of this query (the Figure-4 artifact)."""
        return self._ensure_program(inputs, self.bind(params)).graph

    def export_onnx(self, inputs: dict[str, TensorTable], path: str,
                    params: Optional[dict] = None) -> None:
        """Export the traced query to the ONNX-like portable format."""
        onnxlike.save(self.executor_graph(inputs, params=params), path)
