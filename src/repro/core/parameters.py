"""Prepared-statement parameters: specs, bind-time validation, auto-parameterization.

This module is the glue of the compile-once/bind-many API:

* :class:`ParameterSpec` — one parameter of a compiled plan (name, inferred
  logical type, lexical position), collected by the planning layer;
* :func:`bind_parameters` — validates a binding against the specs and
  normalizes every value to a canonical Python scalar, raising
  :class:`~repro.errors.BindingError` for missing / unknown / ill-typed
  values;
* :func:`to_expr_value` — turns a normalized value into the scalar tensor the
  expression compiler consumes (on the graph backends these tensors are the
  traced program's runtime inputs);
* :func:`auto_parameterize` — lifts literals out of ad-hoc SQL text so that
  ``sql()`` calls differing only in constants share one plan-cache entry.
"""

from __future__ import annotations

import dataclasses
import datetime
import re
from typing import Any, Iterable, Mapping, Optional

import numpy as np

from repro.core.columnar import LogicalType, date_literal_to_ns, encode_string_literal
from repro.errors import BindingError
from repro.frontend.lexer import Token, TokenType, tokenize
from repro.tensor import ops
from repro.tensor.device import Device

#: Fixed encoded width of STRING parameters.  Traced programs bake string
#: tensor widths into the graph, so every binding of a string parameter is
#: padded to this width — one compiled program then serves all of them.
PARAM_STRING_WIDTH = 64


@dataclasses.dataclass(frozen=True)
class ParameterSpec:
    """One bind parameter of a compiled plan."""

    name: str
    ltype: LogicalType
    #: Lexical position (0-based first-appearance order); drives positional
    #: binding of ``?`` markers.
    position: int = 0
    #: True when the marker was ``?`` (bound positionally).
    positional: bool = False

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        return f":{self.name} {self.ltype.value}"


# ---------------------------------------------------------------------------
# bind-time validation
# ---------------------------------------------------------------------------


def _normalize_value(spec: ParameterSpec, value: Any) -> Any:
    def reject() -> BindingError:
        return BindingError(
            f"parameter :{spec.name} expects a {spec.ltype.value} value, "
            f"got {type(value).__name__} ({value!r})"
        )

    if value is None:
        raise reject()
    if spec.ltype == LogicalType.INT:
        if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
            raise reject()
        return int(value)
    if spec.ltype == LogicalType.FLOAT:
        if isinstance(value, bool) or not isinstance(
                value, (int, float, np.integer, np.floating)):
            raise reject()
        return float(value)
    if spec.ltype == LogicalType.BOOL:
        if not isinstance(value, (bool, np.bool_)):
            raise reject()
        return bool(value)
    if spec.ltype == LogicalType.STRING:
        if not isinstance(value, str):
            raise reject()
        if len(value) > PARAM_STRING_WIDTH:
            raise BindingError(
                f"parameter :{spec.name} string value is {len(value)} chars, "
                f"longer than the supported {PARAM_STRING_WIDTH}"
            )
        return value
    if spec.ltype == LogicalType.DATE:
        if isinstance(value, str):
            try:
                return date_literal_to_ns(value)
            except Exception:
                raise reject() from None
        if isinstance(value, np.datetime64):
            return int(value.astype("datetime64[ns]").astype(np.int64))
        if isinstance(value, (datetime.date, datetime.datetime)):
            day = value.date() if isinstance(value, datetime.datetime) else value
            return date_literal_to_ns(day.isoformat())
        if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
            raise reject()
        return int(value)  # already epoch-ns
    raise BindingError(f"parameter :{spec.name} has unsupported type {spec.ltype}")


def bind_parameters(specs: Iterable[ParameterSpec],
                    values: Mapping[str, Any]) -> dict[str, Any]:
    """Validate ``values`` against ``specs``; return normalized values by name.

    Raises :class:`BindingError` naming every missing or unknown parameter,
    or the first ill-typed one.
    """
    specs = list(specs)
    known = {spec.name for spec in specs}
    unknown = sorted(set(values) - known)
    if unknown:
        raise BindingError(
            "unknown parameter(s): " + ", ".join(f":{n}" for n in unknown)
            + (f"; this statement takes {', '.join(f':{s.name}' for s in specs)}"
               if specs else "; this statement takes no parameters")
        )
    missing = sorted(known - set(values))
    if missing:
        raise BindingError(
            "missing value(s) for parameter(s): "
            + ", ".join(f":{n}" for n in missing)
        )
    return {spec.name: _normalize_value(spec, values[spec.name]) for spec in specs}


def make_binder(specs: Iterable[ParameterSpec]):
    """A reusable ``values -> normalized dict`` binder for one spec list.

    Behaves exactly like ``bind_parameters(specs, values)`` — same results,
    same typed errors — but does the spec-set bookkeeping once instead of per
    call.  Executors keep one binder per plan, so serving loops pay only the
    per-value normalization.
    """
    specs = list(specs)
    known = frozenset(spec.name for spec in specs)

    def binder(values: Mapping[str, Any]) -> dict[str, Any]:
        if frozenset(values) != known:
            return bind_parameters(specs, values)  # raises the typed error
        return {spec.name: _normalize_value(spec, values[spec.name])
                for spec in specs}

    return binder


def positional_binding(specs: Iterable[ParameterSpec],
                       args: tuple) -> dict[str, Any]:
    """Map positional arguments onto ``?`` parameters in marker order."""
    ordered = sorted(specs, key=lambda spec: spec.position)
    if len(args) != len(ordered):
        raise BindingError(
            f"statement takes {len(ordered)} positional parameter(s), "
            f"got {len(args)}"
        )
    return {spec.name: value for spec, value in zip(ordered, args)}


def to_expr_value(spec: ParameterSpec, value: Any, device: Device):
    """Build the scalar :class:`~repro.core.expressions.ExprValue` for a
    normalized bound value (see :func:`bind_parameters`)."""
    from repro.core.expressions import ExprValue

    if spec.ltype == LogicalType.STRING:
        codes = encode_string_literal(value, PARAM_STRING_WIDTH)
        return ExprValue(ops.tensor(codes, device=device), LogicalType.STRING, True)
    if spec.ltype == LogicalType.BOOL:
        return ExprValue(ops.tensor(value, dtype="bool", device=device),
                         LogicalType.BOOL, True)
    if spec.ltype == LogicalType.FLOAT:
        return ExprValue(ops.tensor(value, dtype="float64", device=device),
                         LogicalType.FLOAT, True)
    dtype = "int64"
    return ExprValue(ops.tensor(value, dtype=dtype, device=device),
                     spec.ltype, True)


#: Bind parameters are created on the CPU; traced programs move them to the
#: target device as part of the program, so the transfer stays accounted.
_CPU = Device("cpu")


def param_converter(spec: ParameterSpec):
    """A reusable ``normalized value -> ExprValue`` converter for one spec.

    Produces exactly what ``to_expr_value(spec, value, cpu)`` would, but
    resolves the device, dtype and ExprValue shape once per spec instead of
    once per binding — the serving loop converts every parameter of every
    request, so this is hot.
    """
    from repro.core.expressions import ExprValue
    from repro.tensor.tensor import Tensor

    ltype = spec.ltype
    if ltype == LogicalType.STRING:
        return lambda value: to_expr_value(spec, value, _CPU)
    if ltype == LogicalType.BOOL:
        np_dtype = np.bool_
    elif ltype == LogicalType.FLOAT:
        np_dtype = np.float64
    else:
        np_dtype = np.int64

    def convert(value: Any) -> ExprValue:
        return ExprValue(Tensor(np.asarray(value, dtype=np_dtype), _CPU),
                         ltype, True)

    return convert


def param_array_converter(spec: ParameterSpec):
    """``normalized value -> raw ndarray`` — the serve-path twin of
    :func:`param_converter`.

    Produces the exact array a :func:`param_converter` ExprValue would wrap;
    the generated-code serving loop feeds raw arrays, so the Tensor/ExprValue
    objects would be built only to be unwrapped again.
    """
    ltype = spec.ltype
    if ltype == LogicalType.STRING:
        expr = param_converter(spec)
        return lambda value: expr(value).tensor.data
    if ltype == LogicalType.BOOL:
        np_dtype = np.bool_
    elif ltype == LogicalType.FLOAT:
        np_dtype = np.float64
    else:
        np_dtype = np.int64
    return lambda value: np.asarray(value, dtype=np_dtype)


# ---------------------------------------------------------------------------
# auto-parameterization
# ---------------------------------------------------------------------------

#: Literals directly after these keywords must stay literals: LIMIT counts are
#: plan structure, LIKE patterns / DATE / INTERVAL values are compiled into
#: specialized tensor programs.
_SKIP_AFTER_KEYWORDS = {"limit", "like", "date", "interval"}

#: Function-like constructs whose parenthesized body must keep its literals
#: (SUBSTRING bakes start/length into narrow ops, PREDICT names a model, ...).
_SKIP_CALL_KEYWORDS = {"substring", "extract", "predict", "interval"}

_BARE_IDENTIFIER = re.compile(r"^[a-z_][a-z0-9_]*$")


@dataclasses.dataclass
class AutoParameterized:
    """Result of lifting literals out of a SQL string."""

    sql: str
    values: dict[str, Any]
    types: dict[str, LogicalType]


def _render_token(token: Token) -> str:
    if token.type == TokenType.STRING:
        return "'" + token.value.replace("'", "''") + "'"
    if token.type == TokenType.IDENTIFIER and not _BARE_IDENTIFIER.match(token.value):
        return '"' + token.value + '"'
    if token.type == TokenType.PARAMETER:
        return ":" + token.value if token.value else "?"
    return token.value


def _literal_of(token: Token) -> tuple[Any, LogicalType]:
    if token.type == TokenType.STRING:
        return token.value, LogicalType.STRING
    if "." in token.value or "e" in token.value.lower():
        return float(token.value), LogicalType.FLOAT
    return int(token.value), LogicalType.INT


def auto_parameterize(sql: str) -> Optional[AutoParameterized]:
    """Rewrite ``sql`` with its literals replaced by ``:__aN`` parameters.

    Returns ``None`` when there is nothing to lift (no literals, or the text
    already contains parameter markers — the caller is parameterizing by
    hand).  Equal literals are deduplicated onto one parameter, so the same
    expression in SELECT and GROUP BY keeps matching structurally.
    """
    tokens = tokenize(sql)
    if any(t.type == TokenType.PARAMETER for t in tokens):
        return None

    out: list[str] = []
    values: dict[str, Any] = {}
    types: dict[str, LogicalType] = {}
    by_literal: dict[tuple, str] = {}
    skip_depths: list[int] = []  # paren depths of active skip contexts
    depth = 0
    prev: Optional[Token] = None
    for i, token in enumerate(tokens):
        if token.type == TokenType.EOF:
            break
        if token.type == TokenType.PUNCTUATION:
            if token.value == "(":
                depth += 1
            elif token.value == ")":
                if skip_depths and skip_depths[-1] == depth:
                    skip_depths.pop()
                depth -= 1
        in_skip_call = bool(skip_depths)
        if (token.type == TokenType.KEYWORD and token.value in _SKIP_CALL_KEYWORDS
                and i + 1 < len(tokens)
                and tokens[i + 1].type == TokenType.PUNCTUATION
                and tokens[i + 1].value == "("):
            skip_depths.append(depth + 1)
        if token.type in (TokenType.NUMBER, TokenType.STRING):
            skip = (in_skip_call
                    or (prev is not None and prev.type == TokenType.KEYWORD
                        and prev.value in _SKIP_AFTER_KEYWORDS))
            if not skip:
                value, kind = _literal_of(token)
                key = (kind, value)
                name = by_literal.get(key)
                if name is None:
                    name = f"__a{len(by_literal)}"
                    by_literal[key] = name
                    values[name] = value
                    types[name] = kind
                out.append(":" + name)
                prev = token
                continue
        out.append(_render_token(token))
        prev = token
    if not values:
        return None
    return AutoParameterized(sql=" ".join(out), values=values, types=types)
