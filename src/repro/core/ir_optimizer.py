"""Optimization layer: rule-based IR-to-IR transformations (paper §2.2, layer 2).

The rules operate purely on the IR so they are independent of both the
frontend and the tensor backend:

* ``fuse_filters`` — merge chains of filters into a single predicate so one
  boolean mask is materialized instead of several intermediate tables,
* ``remove_identity_projects`` — drop projections that merely pass through the
  child's columns in order,
* ``remove_identity_renames`` — drop renames whose output names equal the
  child's names,
* ``annotate_topk`` — tag ``sort`` nodes that feed a ``limit`` with the limit
  count so the execution layer can use a bounded sort.

The ablation benchmark measures their combined effect.
"""

from __future__ import annotations

from typing import Callable

from repro.core import ir
from repro.core.columnar import LogicalType
from repro.frontend import ast


def _transform(node: ir.IRNode, fn: Callable[[ir.IRNode], ir.IRNode]) -> ir.IRNode:
    node.children = [_transform(child, fn) for child in node.children]
    return fn(node)


def fuse_filters(root: ir.IRNode) -> ir.IRNode:
    """Filter(Filter(x, a), b) → Filter(x, a AND b)."""

    def rule(node: ir.IRNode) -> ir.IRNode:
        if node.op != ir.FILTER:
            return node
        child = node.children[0]
        if child.op != ir.FILTER:
            return node
        combined = ast.BinaryOp("and", child.attrs["condition"], node.attrs["condition"])
        combined.otype = LogicalType.BOOL
        return ir.IRNode(ir.FILTER, child.children, {"condition": combined}, node.fields)

    return _transform(root, rule)


def remove_identity_projects(root: ir.IRNode) -> ir.IRNode:
    """Drop projections that output exactly the child's columns, in order."""

    def rule(node: ir.IRNode) -> ir.IRNode:
        if node.op != ir.PROJECT:
            return node
        child = node.children[0]
        child_names = child.field_names()
        names = node.attrs["names"]
        exprs = node.attrs["exprs"]
        if len(names) != len(child_names):
            return node
        for expr, name, child_name in zip(exprs, names, child_names):
            if not isinstance(expr, ast.ColumnRef):
                return node
            if (expr.resolved or expr.display) != child_name or name != child_name:
                return node
        return child

    return _transform(root, rule)


def remove_identity_renames(root: ir.IRNode) -> ir.IRNode:
    """Drop renames whose output field names match the child's names."""

    def rule(node: ir.IRNode) -> ir.IRNode:
        if node.op != ir.RENAME:
            return node
        child = node.children[0]
        output_names = [f.name for f in node.attrs["output_fields"]]
        if output_names == child.field_names():
            return child
        return node

    return _transform(root, rule)


def annotate_topk(root: ir.IRNode) -> ir.IRNode:
    """Record the limit count on sort nodes directly below a limit."""

    def rule(node: ir.IRNode) -> ir.IRNode:
        if node.op != ir.LIMIT:
            return node
        child = node.children[0]
        if child.op == ir.SORT:
            child.attrs["topk"] = node.attrs["count"]
        return node

    return _transform(root, rule)


DEFAULT_RULES = (fuse_filters, remove_identity_projects, remove_identity_renames,
                 annotate_topk)


def optimize_ir(root: ir.IRNode, rules=DEFAULT_RULES) -> ir.IRNode:
    """Apply the IR rewrite rules in order and return the rewritten root."""
    for rule in rules:
        root = rule(root)
    return root
