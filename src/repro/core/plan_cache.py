"""Session-level compiled-plan cache.

Compiling a query (parse → analyze → optimize → plan → build executor, plus
the trace on first graph execution) costs orders of magnitude more than
replaying the compiled artifact.  Under repeated-query traffic — the regime
the ROADMAP targets — a session therefore keeps an LRU cache of
:class:`~repro.core.session.CompiledQuery` objects keyed by the
**parameterized shape** of the statement:

``(normalized SQL with parameter markers, ExecutionOptions.cache_key(),
parameter-type hints)``

``ExecutionOptions.cache_key()`` includes the storage-encoding configuration:
a traced program is tied to the exact tensor layout (dictionary codes,
run-length runs, or plain) its inputs were converted to, so plans compiled
under different encodings must never share an entry.

Bind-parameter markers are part of the SQL text, so every binding of a
prepared statement — and, with auto-parameterization, every ad-hoc query
differing only in literals — maps to one entry (a true *statement cache*,
not an exact-text memo).

Staleness is handled per entry rather than in the key: each cached plan
carries the schema fingerprint — ``(table, version)`` pairs — of the tables
it scans, and :meth:`PlanCache.get` revalidates it against the session's
current table versions on every hit.  Re-registering a table bumps its
version (traced programs bake data-dependent sizes in, see
``Executor.compile_program``, so any data change must miss) and eagerly
purges the plans scanning it, while plans over *unrelated* tables stay warm.
Hit/miss/eviction counters are exposed for the benchmark harness
(``benchmarks/bench_plan_cache.py``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable


def normalize_sql(sql: str) -> str:
    """Canonicalize SQL text for cache keying.

    Whitespace runs collapse to one space and text is lowercased — but only
    *outside* quoted regions: single-quoted string literals (``'Gift  Wrap'``
    and ``'gift wrap'`` are different predicates) and double-quoted
    identifiers (``"A"`` and ``"a"`` may be different columns) keep their
    exact bytes.  Doubled quotes inside a region (``'it''s'``) are handled.
    A trailing semicolon is dropped.
    """
    out: list[str] = []
    quote: str | None = None  # the active quote char, if inside a region
    i, n = 0, len(sql)
    while i < n:
        ch = sql[i]
        if quote is not None:
            out.append(ch)
            if ch == quote:
                if i + 1 < n and sql[i + 1] == quote:
                    out.append(quote)
                    i += 1
                else:
                    quote = None
        elif ch in ("'", '"'):
            quote = ch
            out.append(ch)
        elif ch.isspace():
            if out and out[-1] != " ":
                out.append(" ")
        else:
            out.append(ch.lower())
        i += 1
    text = "".join(out).strip()
    if text.endswith(";"):
        text = text[:-1].rstrip()
    return text


class PlanCache:
    """A thread-safe LRU mapping of plan keys to compiled queries."""

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError("plan cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        #: In-flight compilations by key (see :meth:`get_or_create`): the
        #: first miss installs an event, concurrent misses for the same key
        #: wait on it instead of compiling the same statement twice.
        self._building: dict[Hashable, threading.Event] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable,
            validate: Callable[[Any], bool] | None = None) -> Any | None:
        """Look up ``key``, counting a hit (and refreshing recency) or a miss.

        When ``validate`` is given and rejects the stored entry, the entry is
        dropped (counted as an invalidation) and the lookup is a miss — the
        hook sessions use to revalidate a plan's schema fingerprint.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and validate is not None and not validate(entry):
                del self._entries[key]
                self.invalidations += 1
                entry = None
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: Hashable, value: Any) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def get_or_create(self, key: Hashable, factory: Callable[[], Any],
                      validate: Callable[[Any], bool] | None = None) -> Any:
        """Return the cached entry for ``key``, building it at most once.

        Under concurrent serving traffic many clients miss on the same cold
        statement at once; without coordination each of them would compile
        (and later trace) its own copy, and the last ``put`` would win — the
        classic check-then-insert interleaving.  The first caller to miss
        installs an in-flight marker and runs ``factory``; concurrent callers
        for the *same* key block until it finishes and then share the one
        compiled entry.  Different keys build concurrently, and ``factory``
        runs outside the cache lock, so compilation never blocks lookups.

        If ``factory`` raises, waiters fall back to building their own entry
        (the error is not cached).
        """
        entry = self.get(key, validate=validate)
        if entry is not None:
            return entry
        while True:
            with self._lock:
                existing = self._entries.get(key)
                if existing is not None and (validate is None
                                             or validate(existing)):
                    self._entries.move_to_end(key)
                    self.hits += 1
                    return existing
                marker = self._building.get(key)
                if marker is None:
                    marker = self._building[key] = threading.Event()
                    building = True
                else:
                    building = False
            if building:
                try:
                    value = factory()
                    self.put(key, value)
                    return value
                finally:
                    with self._lock:
                        self._building.pop(key, None)
                    marker.set()
            marker.wait()
            entry = self.get(key, validate=validate)
            if entry is not None:
                return entry
            # The builder failed (or its entry was immediately invalidated);
            # loop and try to become the builder ourselves.

    def remove_if(self, predicate: Callable[[Any], bool]) -> int:
        """Drop every entry whose value matches ``predicate``; return count."""
        with self._lock:
            stale = [key for key, value in self._entries.items() if predicate(value)]
            for key in stale:
                del self._entries[key]
            self.invalidations += len(stale)
            return len(stale)

    def clear(self) -> int:
        """Drop all entries (counted as invalidations); return count."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.invalidations += dropped
            return dropped

    def stats(self) -> dict:
        """Counters snapshot, JSON-friendly (surfaced by the bench harness)."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "hit_rate": self.hits / total if total else 0.0,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        s = self.stats()
        return (f"PlanCache(size={s['size']}/{s['capacity']}, "
                f"hits={s['hits']}, misses={s['misses']})")
