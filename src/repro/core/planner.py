"""Planning layer: TQP IR → operator plan of tensor programs (paper §2.2, layer 3).

With ``parallelism > 1`` the planner substitutes morsel-driven parallel
operator variants (see :mod:`repro.core.operators.parallel`) wherever the
estimated input cardinality clears the parallel threshold of its
:class:`~repro.core.tuning.Tuning` and the operator's expressions are
morsel-safe; everything else keeps the serial single-stream implementation.
Every size/cost threshold the planner consults comes from that one tuning
object (``tools/lint_op_registry.py`` rejects hard-coded threshold literals
here), which is how the adaptive layer plans alternative strategies for the
same query.

The planner is also where storage statistics enter the plan:

* a filter sitting directly on a base-table scan has its conjunctive
  range/equality/IN predicates compiled into **zone-map pruning** conjuncts
  attached to the scan (see :mod:`repro.storage.pruning`), so whole
  morsel-aligned blocks are dropped before any kernel runs;
* filter **selectivity estimates** from the same statistics refine the
  cardinality estimates feeding the parallel-threshold decision, so a highly
  selective filter no longer forces parallel (partial-merge) operators onto a
  handful of surviving rows.  A ``filter_correction`` hook lets the adaptive
  layer blend *observed* selectivities from past executions into those static
  estimates.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Mapping, Optional

from repro.core import ir
from repro.core.columnar import LogicalType
from repro.core.operators import (
    DistinctOperator,
    FilterOperator,
    HashAggregateOperator,
    HashJoinOperator,
    LimitOperator,
    MorselFilterOperator,
    MorselProjectOperator,
    MorselScanOperator,
    MorselSource,
    NestedLoopJoinOperator,
    ParallelHashAggregateOperator,
    PartitionedHashJoinOperator,
    ProjectOperator,
    RenameOperator,
    ScanOperator,
    SortOperator,
    TensorOperator,
    aggregates_are_mergeable,
    exprs_are_morsel_safe,
)
from repro.core.parameters import ParameterSpec
from repro.core.tuning import Tuning, active_tuning
from repro.distributed import (
    BroadcastJoinOperator,
    DistributedFilterOperator,
    DistributedProjectOperator,
    DistributedRenameOperator,
    DistributedScanOperator,
    GatherOperator,
    ShardedAggregateOperator,
    ShuffleJoinOperator,
)
from repro.errors import PlanningError
from repro.frontend import ast
from repro.frontend.logical import Field

#: Estimated stored width per logical type for exchange byte costing: bools
#: are byte masks, strings a fixed allowance for their code-point matrices,
#: everything else (ints, floats, dates) 8-byte tensors.
_NUMERIC_WIDTH_BYTES = 8
_FIELD_WIDTH_BYTES = {
    LogicalType.BOOL: 1,
    LogicalType.STRING: 8 * _NUMERIC_WIDTH_BYTES,
}


@dataclasses.dataclass
class OperatorPlan:
    """The output of the planning layer.

    Attributes:
        root: root of the operator tree.
        scans: every scan in the plan, including those inside runtime-evaluated
            subqueries (the executor uses this to prepare input tensors).
        output_fields: the plan's output schema.
        params: bind parameters referenced anywhere in the plan (including
            runtime subqueries), in lexical order — the contract the executor
            validates every binding against.
        model_names: ML models referenced by ``PREDICT`` calls; the session's
            plan cache uses this to invalidate only the plans that actually
            depend on a re-registered model.
    """

    root: TensorOperator
    scans: list[ScanOperator]
    output_fields: list[Field]
    params: list[ParameterSpec] = dataclasses.field(default_factory=list)
    model_names: frozenset[str] = frozenset()
    #: Planner cardinality estimates (``root_rows``, ``max_scan_rows``,
    #: ``total_scan_rows``, ``max_ndv``) — the plan features the adaptive
    #: layer's learned cost model trains on.
    estimates: dict = dataclasses.field(default_factory=dict)


def ir_node_expressions(node: ir.IRNode) -> list[ast.Expr]:
    """All expressions stored in an IR node's attributes."""
    attrs = node.attrs
    if node.op == ir.FILTER:
        return [attrs["condition"]]
    if node.op == ir.PROJECT:
        return list(attrs["exprs"])
    if node.op == ir.HASH_JOIN:
        exprs = list(attrs["left_keys"]) + list(attrs["right_keys"])
        if attrs.get("residual") is not None:
            exprs.append(attrs["residual"])
        return exprs
    if node.op == ir.NESTED_LOOP_JOIN:
        return [attrs["condition"]] if attrs.get("condition") is not None else []
    if node.op == ir.HASH_AGGREGATE:
        exprs = list(attrs["group_exprs"])
        exprs.extend(a.expr for a in attrs["aggregates"] if a.expr is not None)
        return exprs
    if node.op == ir.SORT:
        return [key for key, _ in attrs["keys"]]
    return []


def _expr_contains_params(expr: ast.Expr) -> bool:
    for sub in ast.walk_expr(expr):
        if isinstance(sub, ast.ParameterExpr):
            return True
        subplan = getattr(sub, "subplan", None)
        if subplan is not None and _physical_contains_params(subplan):
            return True
    return False


def _physical_contains_params(plan) -> bool:
    """Scan a physical plan (a runtime-subquery subplan) for parameters."""
    from repro.frontend.optimizer import node_expressions_physical
    from repro.frontend.physical import walk_physical

    return any(_expr_contains_params(expr)
               for node in walk_physical(plan)
               for expr in node_expressions_physical(node))


def ir_contains_params(root: ir.IRNode) -> bool:
    """True when any expression of the IR tree (or an embedded runtime
    subquery) references a bind parameter."""
    return any(_expr_contains_params(expr)
               for node in root.walk()
               for expr in ir_node_expressions(node))


def ir_contains_subqueries(root: ir.IRNode) -> bool:
    """True when any expression embeds a runtime-evaluated subquery."""
    return any(isinstance(sub, (ast.InSubquery, ast.ExistsSubquery,
                                ast.ScalarSubquery))
               for node in root.walk()
               for expr in ir_node_expressions(node)
               for sub in ast.walk_expr(expr))


class Planner:
    """Maps each IR operator to its tensor-program implementation.

    Args:
        parallelism: number of simulated worker lanes; 1 plans serial
            operators only (the default, and the pre-parallelism behaviour).
        table_rows: registered row counts per table name, the cardinality
            estimates behind the parallel-operator threshold decision.
        morsel_rows: rows per morsel for the parallel operators (defaults to
            the tuning's ``morsel_rows``).
        use_threads: let worker pools use real threads when it is safe.
        tuning: the size/cost thresholds this plan is built under; defaults
            to the thread's :func:`~repro.core.tuning.active_tuning`.
        filter_correction: optional hook mapping a static filter-selectivity
            estimate to a corrected one — the adaptive layer passes a blend
            with observed selectivities for recurring statements.
    """

    def __init__(self, parallelism: int = 1,
                 table_rows: Optional[Mapping[str, int]] = None,
                 morsel_rows: Optional[int] = None,
                 use_threads: bool = False,
                 table_stats: Optional[Mapping[str, object]] = None,
                 devices: int = 1, shard_mode: str = "hash",
                 tuning: Optional[Tuning] = None,
                 filter_correction: Optional[Callable[[float], float]] = None
                 ) -> None:
        self._scans: list[ScanOperator] = []
        self.tuning = tuning if tuning is not None else active_tuning()
        self.filter_correction = filter_correction
        if morsel_rows is None:
            morsel_rows = self.tuning.morsel_rows
        self.parallelism = max(1, int(parallelism))
        #: Simulated devices for sharded execution; 1 keeps plans single-device.
        self.devices = max(1, int(devices))
        self.shard_mode = shard_mode
        self.table_rows = {name.lower(): rows
                           for name, rows in (table_rows or {}).items()}
        self.morsel_rows = morsel_rows
        self.use_threads = use_threads
        #: Per-table storage statistics (``repro.storage.TableStatistics``):
        #: row counts, NDV and zone maps, keyed by lower-cased table name.
        self.table_stats = {name.lower(): stats
                            for name, stats in (table_stats or {}).items()
                            if stats is not None}
        # Column-name → statistics lookup for selectivity estimation.  Only
        # unambiguous names participate: a column name two registered tables
        # share could resolve to the wrong table's value distribution, so it
        # conservatively contributes no estimate (selectivity 1.0).
        seen: dict[str, int] = {}
        for table in self.table_stats.values():
            for column in table.columns:
                seen[column] = seen.get(column, 0) + 1
        self._column_stats = {
            column: stats
            for table in self.table_stats.values()
            for column, stats in table.columns.items()
            if seen[column] == 1
        }
        self._row_estimates: dict[int, int] = {}
        self._params: dict[str, ParameterSpec] = {}
        self._model_names: set[str] = set()
        self._contains_params = False

    def plan(self, root: ir.IRNode) -> OperatorPlan:
        # Pre-scan for bind parameters: parameterized plans restrict the
        # parallel-operator choice to the morsel pipelines whose traced form
        # replays correctly when a rebinding changes intermediate sizes (the
        # radix-partitioned join bakes its partition layout into the trace).
        self._contains_params = ir_contains_params(root)
        # Distributed planning is all-or-nothing per query: parameterized
        # plans would bake binding-dependent shuffle layouts into the trace,
        # and runtime subqueries execute outside the shard pipeline, so both
        # fall back to single-device planning wholesale.
        if (self.devices > 1 and not self._contains_params
                and not ir_contains_subqueries(root)):
            operator_root, sharded = self._plan_distributed(root)
            if sharded:
                operator_root = GatherOperator(operator_root, self.devices)
        else:
            operator_root = self._plan_node(root)
        params = sorted(self._params.values(), key=lambda spec: spec.position)
        return OperatorPlan(operator_root, self._scans, list(root.fields),
                            params=params,
                            model_names=frozenset(self._model_names),
                            estimates=self._plan_estimates(root))

    def _plan_estimates(self, root: ir.IRNode) -> dict:
        """Summary cardinality/NDV estimates of a planned query.

        Recorded on the :class:`OperatorPlan` so downstream consumers (the
        adaptive layer's plan featurization) see the same numbers the
        parallel/shard threshold decisions were made from.
        """
        scan_rows = [self._estimate_rows(node) for node in root.walk()
                     if node.op == ir.SCAN]
        ndvs = [column.ndv or 0
                for node in root.walk() if node.op == ir.SCAN
                for stats in [self.table_stats.get(node.attrs["table"].lower())]
                if stats is not None
                for column in stats.columns.values()]
        return {
            "root_rows": self._estimate_rows(root),
            "max_scan_rows": max(scan_rows, default=0),
            "total_scan_rows": sum(scan_rows),
            "max_ndv": max(ndvs, default=0),
        }

    # -- parameter / model collection ---------------------------------------

    def _collect_expr_metadata(self, node: ir.IRNode) -> None:
        for expr in ir_node_expressions(node):
            for sub in ast.walk_expr(expr):
                if isinstance(sub, ast.ParameterExpr):
                    if sub.otype is None:
                        raise PlanningError(
                            f"parameter :{sub.name} reached planning without "
                            "an inferred type"
                        )
                    existing = self._params.get(sub.name)
                    if existing is None or sub.position < existing.position:
                        self._params[sub.name] = ParameterSpec(
                            name=sub.name, ltype=sub.otype,
                            position=sub.position, positional=sub.positional)
                elif isinstance(sub, ast.PredictExpr):
                    self._model_names.add(sub.model_name)

    # -- cardinality estimation --------------------------------------------

    def _estimate_rows(self, node: ir.IRNode) -> int:
        """Cardinality estimate gating the parallel-operator decision.

        Scans report registered row counts (from the storage statistics when
        available); filters scale their child's estimate by the selectivity
        the zone-map statistics predict for their prunable conjuncts; every
        other operator forwards the max over its children."""
        cached = self._row_estimates.get(id(node))
        if cached is not None:
            return cached
        if node.op == ir.SCAN:
            table_key = node.attrs["table"].lower()
            stats = self.table_stats.get(table_key)
            estimate = (stats.row_count if stats is not None
                        else self.table_rows.get(table_key, 0))
        else:
            estimate = max((self._estimate_rows(child) for child in node.children),
                           default=0)
            if node.op == ir.FILTER:
                selectivity = 1.0
                if self._column_stats:
                    from repro.storage.pruning import estimate_selectivity

                    selectivity = estimate_selectivity(node.attrs["condition"],
                                                       self._column_stats)
                if self.filter_correction is not None:
                    selectivity = min(1.0, max(
                        0.0, self.filter_correction(selectivity)))
                estimate = int(estimate * selectivity)
        self._row_estimates[id(node)] = estimate
        return estimate

    def _parallel_ok(self, *input_nodes: ir.IRNode) -> bool:
        return (self.parallelism > 1
                and max((self._estimate_rows(node) for node in input_nodes),
                        default=0) >= self.tuning.parallel_threshold_rows)

    def _morsel_chain_ok(self, child_op: TensorOperator) -> bool:
        """May a morsel operator be stacked on ``child_op`` in this plan?

        Without parameters: always (the non-morsel fallback materializes and
        re-partitions).  With parameters the re-partitioning path would bake
        a parameter-dependent layout into the trace, so morsel operators are
        only stacked on an unbroken morsel chain rooted at a base-table scan.
        """
        return not self._contains_params or isinstance(child_op, MorselSource)

    # -- node translation --------------------------------------------------

    def _plan_node(self, node: ir.IRNode) -> TensorOperator:
        self._plan_embedded_subqueries(node)
        self._collect_expr_metadata(node)
        attrs = node.attrs

        if node.op == ir.SCAN:
            if self._parallel_ok(node):
                scan: ScanOperator = MorselScanOperator(
                    attrs["table"], attrs["alias"], attrs["fields"],
                    parallelism=self.parallelism, morsel_rows=self.morsel_rows)
            else:
                scan = ScanOperator(attrs["table"], attrs["alias"], attrs["fields"])
            self._scans.append(scan)
            return scan
        if node.op == ir.FILTER:
            child_op = self._plan_node(node.children[0])
            self._attach_scan_pruning(node.children[0], child_op,
                                      attrs["condition"])
            if (self._parallel_ok(node.children[0])
                    and exprs_are_morsel_safe([attrs["condition"]])
                    and self._morsel_chain_ok(child_op)):
                return MorselFilterOperator(
                    child_op, attrs["condition"],
                    parallelism=self.parallelism, morsel_rows=self.morsel_rows,
                    use_threads=self.use_threads)
            return FilterOperator(child_op, attrs["condition"])
        if node.op == ir.PROJECT:
            if (self._parallel_ok(node.children[0])
                    and exprs_are_morsel_safe(attrs["exprs"])):
                child_op = self._plan_node(node.children[0])
                if self._morsel_chain_ok(child_op):
                    return MorselProjectOperator(
                        child_op, attrs["exprs"], attrs["names"], attrs["types"],
                        parallelism=self.parallelism, morsel_rows=self.morsel_rows,
                        use_threads=self.use_threads)
                return ProjectOperator(child_op, attrs["exprs"],
                                       attrs["names"], attrs["types"])
            return ProjectOperator(self._plan_node(node.children[0]), attrs["exprs"],
                                   attrs["names"], attrs["types"])
        if node.op == ir.HASH_JOIN:
            join_exprs = (list(attrs["left_keys"]) + list(attrs["right_keys"])
                          + [attrs.get("residual")])
            if (self._parallel_ok(node.children[0], node.children[1])
                    and not self._contains_params
                    and exprs_are_morsel_safe(join_exprs)):
                return PartitionedHashJoinOperator(
                    self._plan_node(node.children[0]),
                    self._plan_node(node.children[1]),
                    attrs["kind"], attrs["left_keys"], attrs["right_keys"],
                    attrs.get("residual"), parallelism=self.parallelism,
                    use_threads=self.use_threads)
            return HashJoinOperator(self._plan_node(node.children[0]),
                                    self._plan_node(node.children[1]),
                                    attrs["kind"], attrs["left_keys"],
                                    attrs["right_keys"], attrs.get("residual"))
        if node.op == ir.NESTED_LOOP_JOIN:
            return NestedLoopJoinOperator(self._plan_node(node.children[0]),
                                          self._plan_node(node.children[1]),
                                          attrs["kind"], attrs.get("condition"))
        if node.op == ir.HASH_AGGREGATE:
            agg_exprs = (list(attrs["group_exprs"])
                         + [a.expr for a in attrs["aggregates"] if a.expr is not None])
            if (self._parallel_ok(node.children[0])
                    and aggregates_are_mergeable(attrs["aggregates"])
                    and exprs_are_morsel_safe(agg_exprs)):
                child_op = self._plan_node(node.children[0])
                if self._morsel_chain_ok(child_op):
                    return ParallelHashAggregateOperator(
                        child_op,
                        attrs["group_exprs"], attrs["group_names"],
                        attrs["group_types"], attrs["aggregates"],
                        parallelism=self.parallelism, morsel_rows=self.morsel_rows,
                        use_threads=self.use_threads)
                return HashAggregateOperator(child_op,
                                             attrs["group_exprs"],
                                             attrs["group_names"],
                                             attrs["group_types"],
                                             attrs["aggregates"])
            return HashAggregateOperator(self._plan_node(node.children[0]),
                                         attrs["group_exprs"], attrs["group_names"],
                                         attrs["group_types"], attrs["aggregates"])
        if node.op == ir.SORT:
            return SortOperator(self._plan_node(node.children[0]), attrs["keys"])
        if node.op == ir.LIMIT:
            return LimitOperator(self._plan_node(node.children[0]), attrs["count"])
        if node.op == ir.DISTINCT:
            return DistinctOperator(self._plan_node(node.children[0]))
        if node.op == ir.RENAME:
            return RenameOperator(self._plan_node(node.children[0]),
                                  attrs["output_fields"])
        raise PlanningError(f"no tensor implementation for IR op {node.op!r}")

    # -- distributed translation ---------------------------------------------

    def _gathered(self, op: TensorOperator, sharded: bool) -> TensorOperator:
        """Make ``op``'s output a host table, inserting a gather if sharded."""
        return GatherOperator(op, self.devices) if sharded else op

    def _plan_distributed(self, node: ir.IRNode) -> tuple[TensorOperator, bool]:
        """Translate one IR node for ``devices > 1`` execution.

        Returns ``(operator, sharded)`` where ``sharded`` says whether the
        operator emits a per-shard batch (``True``) or an ordinary host table.
        The sharded region grows from large base-table scans and is closed as
        late as possible: joins keep it open via shuffle/broadcast, mergeable
        aggregations close it with a partial-gather-merge, and everything else
        (sort, limit, small inputs, shard-unsafe expressions) gathers first
        and reuses the serial operators.
        """
        self._collect_expr_metadata(node)
        attrs = node.attrs

        if node.op == ir.SCAN:
            if self._estimate_rows(node) >= self.tuning.shard_min_rows:
                scan: ScanOperator = DistributedScanOperator(
                    attrs["table"], attrs["alias"], attrs["fields"],
                    self.devices, self.shard_mode)
                self._scans.append(scan)
                return scan, True
            scan = ScanOperator(attrs["table"], attrs["alias"], attrs["fields"])
            self._scans.append(scan)
            return scan, False
        if node.op == ir.FILTER:
            child_op, sharded = self._plan_distributed(node.children[0])
            if sharded and exprs_are_morsel_safe([attrs["condition"]]):
                return (DistributedFilterOperator(child_op, attrs["condition"],
                                                  self.devices), True)
            child_op = self._gathered(child_op, sharded)
            if not sharded:
                self._attach_scan_pruning(node.children[0], child_op,
                                          attrs["condition"])
            return FilterOperator(child_op, attrs["condition"]), False
        if node.op == ir.PROJECT:
            child_op, sharded = self._plan_distributed(node.children[0])
            if sharded and exprs_are_morsel_safe(attrs["exprs"]):
                return (DistributedProjectOperator(
                    child_op, attrs["exprs"], attrs["names"], attrs["types"],
                    self.devices), True)
            return (ProjectOperator(self._gathered(child_op, sharded),
                                    attrs["exprs"], attrs["names"],
                                    attrs["types"]), False)
        if node.op == ir.HASH_JOIN:
            left_op, left_sharded = self._plan_distributed(node.children[0])
            right_op, right_sharded = self._plan_distributed(node.children[1])
            join_exprs = [expr for expr in
                          (list(attrs["left_keys"]) + list(attrs["right_keys"])
                           + [attrs.get("residual")]) if expr is not None]
            safe = exprs_are_morsel_safe(join_exprs)
            if safe and left_sharded and right_sharded:
                return self._plan_sharded_join(node, left_op, right_op), True
            if safe and left_sharded:
                # Sharded probe side + replicated build side works for every
                # join kind: each left row lives on exactly one shard.
                return (BroadcastJoinOperator(
                    left_op, right_op, attrs["kind"], attrs["left_keys"],
                    attrs["right_keys"], attrs.get("residual"),
                    devices=self.devices, broadcast="right"), True)
            if safe and right_sharded and attrs["kind"] == "inner":
                return (BroadcastJoinOperator(
                    left_op, right_op, attrs["kind"], attrs["left_keys"],
                    attrs["right_keys"], attrs.get("residual"),
                    devices=self.devices, broadcast="left"), True)
            return (HashJoinOperator(self._gathered(left_op, left_sharded),
                                     self._gathered(right_op, right_sharded),
                                     attrs["kind"], attrs["left_keys"],
                                     attrs["right_keys"],
                                     attrs.get("residual")), False)
        if node.op == ir.HASH_AGGREGATE:
            child_op, sharded = self._plan_distributed(node.children[0])
            agg_exprs = (list(attrs["group_exprs"])
                         + [a.expr for a in attrs["aggregates"]
                            if a.expr is not None])
            if (sharded and aggregates_are_mergeable(attrs["aggregates"])
                    and exprs_are_morsel_safe(agg_exprs)):
                return (ShardedAggregateOperator(
                    child_op, attrs["group_exprs"], attrs["group_names"],
                    attrs["group_types"], attrs["aggregates"],
                    devices=self.devices), False)
            return (HashAggregateOperator(
                self._gathered(child_op, sharded), attrs["group_exprs"],
                attrs["group_names"], attrs["group_types"],
                attrs["aggregates"]), False)
        if node.op == ir.NESTED_LOOP_JOIN:
            left_op, left_sharded = self._plan_distributed(node.children[0])
            right_op, right_sharded = self._plan_distributed(node.children[1])
            return (NestedLoopJoinOperator(
                self._gathered(left_op, left_sharded),
                self._gathered(right_op, right_sharded),
                attrs["kind"], attrs.get("condition")), False)
        if node.op == ir.SORT:
            child_op, sharded = self._plan_distributed(node.children[0])
            return SortOperator(self._gathered(child_op, sharded),
                                attrs["keys"]), False
        if node.op == ir.LIMIT:
            child_op, sharded = self._plan_distributed(node.children[0])
            return LimitOperator(self._gathered(child_op, sharded),
                                 attrs["count"]), False
        if node.op == ir.DISTINCT:
            child_op, sharded = self._plan_distributed(node.children[0])
            return DistinctOperator(self._gathered(child_op, sharded)), False
        if node.op == ir.RENAME:
            child_op, sharded = self._plan_distributed(node.children[0])
            if sharded:
                return DistributedRenameOperator(
                    child_op, attrs["output_fields"], self.devices), True
            return RenameOperator(child_op, attrs["output_fields"]), False
        raise PlanningError(f"no distributed implementation for IR op {node.op!r}")

    def _estimate_bytes(self, node: ir.IRNode) -> int:
        """Estimated payload size of a node's output, from rows × field widths.

        The per-type widths are the storage sizes of the tensor layout
        (8-byte numerics/dates, 1-byte bools) with a fixed allowance for
        string code-point matrices; exchange decisions only need the two
        sides' *relative* weight, so a rough width model is enough.
        """
        width = sum(_FIELD_WIDTH_BYTES.get(field.ltype, _NUMERIC_WIDTH_BYTES)
                    for field in node.fields)
        return self._estimate_rows(node) * max(width, 1)

    def _plan_sharded_join(self, node: ir.IRNode, left_op: TensorOperator,
                           right_op: TensorOperator) -> TensorOperator:
        """Cheapest exchange for a join whose sides are *both* sharded.

        Candidate exchanges, costed in estimated bytes moved across the
        interconnect (``N`` devices, build/probe payloads ``L``/``R``):

        * **shuffle both** — each side repartitions on the join key; a row
          stays put with probability ``1/N``, so ``(N-1)/N × (L + R)`` moves;
        * **broadcast right** — gather the sharded right side to the host
          (``(N-1)/N × R`` in) and replicate it to every device (``N × R``
          out) while the left side stays put; valid for every join kind
          because each probe-side row lives on exactly one shard;
        * **broadcast left** — symmetric, inner joins only (an outer/semi
          probe side must not be replicated).

        Broadcast wins only when one side is much smaller than the other
        (``R < (N-1)/N² × L`` at equal widths); ties keep the shuffle, whose
        per-device build tables are ``N×`` smaller.
        """
        attrs = node.attrs
        n = self.devices
        left_bytes = self._estimate_bytes(node.children[0])
        right_bytes = self._estimate_bytes(node.children[1])
        shuffle_cost = (n - 1) * (left_bytes + right_bytes) // n
        broadcast_right_cost = (n - 1) * right_bytes // n + n * right_bytes
        broadcast_left_cost = (n - 1) * left_bytes // n + n * left_bytes
        if (broadcast_right_cost < shuffle_cost
                and broadcast_right_cost <= broadcast_left_cost):
            return BroadcastJoinOperator(
                left_op, GatherOperator(right_op, self.devices),
                attrs["kind"], attrs["left_keys"], attrs["right_keys"],
                attrs.get("residual"), devices=self.devices,
                broadcast="right")
        if broadcast_left_cost < shuffle_cost and attrs["kind"] == "inner":
            return BroadcastJoinOperator(
                GatherOperator(left_op, self.devices), right_op,
                attrs["kind"], attrs["left_keys"], attrs["right_keys"],
                attrs.get("residual"), devices=self.devices,
                broadcast="left")
        return ShuffleJoinOperator(
            left_op, right_op, attrs["kind"], attrs["left_keys"],
            attrs["right_keys"], attrs.get("residual"), devices=self.devices)

    # -- zone-map pruning ----------------------------------------------------

    def _attach_scan_pruning(self, child_ir: ir.IRNode,
                             child_op: TensorOperator,
                             condition: ast.Expr) -> None:
        """Compile a filter's prunable conjuncts onto its base-table scan.

        Only a filter sitting *directly* on a scan prunes (the common shape
        after predicate pushdown); the zone maps describe stored blocks, so
        any intermediate operator would invalidate the row↔block alignment.
        Pruning is conservative — the filter itself still runs — so missing
        statistics or unmatched conjuncts simply never prune.
        """
        if child_ir.op != ir.SCAN or not isinstance(child_op, ScanOperator):
            return
        from repro.storage.pruning import (
            annotate_discrimination,
            extract_pruning_conjuncts,
        )

        stats = self.table_stats.get(child_ir.attrs["table"].lower())
        if stats is None or stats.num_blocks < self.tuning.min_pruning_blocks:
            return
        field_names = [field.name for field in child_op.fields]
        conjuncts = extract_pruning_conjuncts(condition, field_names)
        child_op.pruning = annotate_discrimination(conjuncts, stats)

    # -- runtime subqueries --------------------------------------------------

    def _plan_embedded_subqueries(self, node: ir.IRNode) -> None:
        """Replace physical subplans inside expressions with operator subtrees.

        Uncorrelated IN / EXISTS / scalar subqueries are evaluated at runtime;
        by planning them here their scans participate in input preparation and
        their execution is captured by the same trace as the main query.
        """
        from repro.core.ir_builder import build_ir
        from repro.core.ir_optimizer import optimize_ir
        from repro.frontend.physical import PhysicalNode

        for expr in ir_node_expressions(node):
            for sub in ast.walk_expr(expr):
                if isinstance(sub, (ast.InSubquery, ast.ExistsSubquery,
                                    ast.ScalarSubquery)):
                    if isinstance(sub.subplan, PhysicalNode):
                        sub_ir = optimize_ir(build_ir(sub.subplan))
                        sub.subplan = self._plan_node(sub_ir)


def plan_ir(root: ir.IRNode, parallelism: int = 1,
            table_rows: Optional[Mapping[str, int]] = None,
            morsel_rows: Optional[int] = None,
            use_threads: bool = False,
            table_stats: Optional[Mapping[str, object]] = None,
            devices: int = 1, shard_mode: str = "hash",
            tuning: Optional[Tuning] = None,
            filter_correction: Optional[Callable[[float], float]] = None
            ) -> OperatorPlan:
    """Convenience wrapper: plan an IR tree into an :class:`OperatorPlan`."""
    return Planner(parallelism=parallelism, table_rows=table_rows,
                   morsel_rows=morsel_rows, use_threads=use_threads,
                   table_stats=table_stats, devices=devices,
                   shard_mode=shard_mode, tuning=tuning,
                   filter_correction=filter_correction).plan(root)
