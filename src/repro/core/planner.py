"""Planning layer: TQP IR → operator plan of tensor programs (paper §2.2, layer 3)."""

from __future__ import annotations

import dataclasses

from repro.core import ir
from repro.core.operators import (
    DistinctOperator,
    FilterOperator,
    HashAggregateOperator,
    HashJoinOperator,
    LimitOperator,
    NestedLoopJoinOperator,
    ProjectOperator,
    RenameOperator,
    ScanOperator,
    SortOperator,
    TensorOperator,
)
from repro.errors import PlanningError
from repro.frontend import ast
from repro.frontend.logical import Field


@dataclasses.dataclass
class OperatorPlan:
    """The output of the planning layer.

    Attributes:
        root: root of the operator tree.
        scans: every scan in the plan, including those inside runtime-evaluated
            subqueries (the executor uses this to prepare input tensors).
        output_fields: the plan's output schema.
    """

    root: TensorOperator
    scans: list[ScanOperator]
    output_fields: list[Field]


def ir_node_expressions(node: ir.IRNode) -> list[ast.Expr]:
    """All expressions stored in an IR node's attributes."""
    attrs = node.attrs
    if node.op == ir.FILTER:
        return [attrs["condition"]]
    if node.op == ir.PROJECT:
        return list(attrs["exprs"])
    if node.op == ir.HASH_JOIN:
        exprs = list(attrs["left_keys"]) + list(attrs["right_keys"])
        if attrs.get("residual") is not None:
            exprs.append(attrs["residual"])
        return exprs
    if node.op == ir.NESTED_LOOP_JOIN:
        return [attrs["condition"]] if attrs.get("condition") is not None else []
    if node.op == ir.HASH_AGGREGATE:
        exprs = list(attrs["group_exprs"])
        exprs.extend(a.expr for a in attrs["aggregates"] if a.expr is not None)
        return exprs
    if node.op == ir.SORT:
        return [key for key, _ in attrs["keys"]]
    return []


class Planner:
    """Maps each IR operator to its tensor-program implementation."""

    def __init__(self) -> None:
        self._scans: list[ScanOperator] = []

    def plan(self, root: ir.IRNode) -> OperatorPlan:
        operator_root = self._plan_node(root)
        return OperatorPlan(operator_root, self._scans, list(root.fields))

    # -- node translation --------------------------------------------------

    def _plan_node(self, node: ir.IRNode) -> TensorOperator:
        self._plan_embedded_subqueries(node)
        attrs = node.attrs

        if node.op == ir.SCAN:
            scan = ScanOperator(attrs["table"], attrs["alias"], attrs["fields"])
            self._scans.append(scan)
            return scan
        if node.op == ir.FILTER:
            return FilterOperator(self._plan_node(node.children[0]), attrs["condition"])
        if node.op == ir.PROJECT:
            return ProjectOperator(self._plan_node(node.children[0]), attrs["exprs"],
                                   attrs["names"], attrs["types"])
        if node.op == ir.HASH_JOIN:
            return HashJoinOperator(self._plan_node(node.children[0]),
                                    self._plan_node(node.children[1]),
                                    attrs["kind"], attrs["left_keys"],
                                    attrs["right_keys"], attrs.get("residual"))
        if node.op == ir.NESTED_LOOP_JOIN:
            return NestedLoopJoinOperator(self._plan_node(node.children[0]),
                                          self._plan_node(node.children[1]),
                                          attrs["kind"], attrs.get("condition"))
        if node.op == ir.HASH_AGGREGATE:
            return HashAggregateOperator(self._plan_node(node.children[0]),
                                         attrs["group_exprs"], attrs["group_names"],
                                         attrs["group_types"], attrs["aggregates"])
        if node.op == ir.SORT:
            return SortOperator(self._plan_node(node.children[0]), attrs["keys"])
        if node.op == ir.LIMIT:
            return LimitOperator(self._plan_node(node.children[0]), attrs["count"])
        if node.op == ir.DISTINCT:
            return DistinctOperator(self._plan_node(node.children[0]))
        if node.op == ir.RENAME:
            return RenameOperator(self._plan_node(node.children[0]),
                                  attrs["output_fields"])
        raise PlanningError(f"no tensor implementation for IR op {node.op!r}")

    # -- runtime subqueries --------------------------------------------------

    def _plan_embedded_subqueries(self, node: ir.IRNode) -> None:
        """Replace physical subplans inside expressions with operator subtrees.

        Uncorrelated IN / EXISTS / scalar subqueries are evaluated at runtime;
        by planning them here their scans participate in input preparation and
        their execution is captured by the same trace as the main query.
        """
        from repro.core.ir_builder import build_ir
        from repro.core.ir_optimizer import optimize_ir
        from repro.frontend.physical import PhysicalNode

        for expr in ir_node_expressions(node):
            for sub in ast.walk_expr(expr):
                if isinstance(sub, (ast.InSubquery, ast.ExistsSubquery,
                                    ast.ScalarSubquery)):
                    if isinstance(sub.subplan, PhysicalNode):
                        sub_ir = optimize_ir(build_ir(sub.subplan))
                        sub.subplan = self._plan_node(sub_ir)


def plan_ir(root: ir.IRNode) -> OperatorPlan:
    """Convenience wrapper: plan an IR tree into an :class:`OperatorPlan`."""
    return Planner().plan(root)
