"""Compilation of relational expressions into tensor programs.

`evaluate` walks a resolved expression tree and produces tensors using only
the op vocabulary of :mod:`repro.tensor.ops` (plus the string/date helpers in
:mod:`repro.core.strings` / :mod:`repro.core.datetime_ops`).  When a trace is
active, everything it does is captured into the query's tensor graph — this is
exactly how the paper lowers filters, case expressions, predicates and
``PREDICT`` calls into a single end-to-end tensor program.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Optional

import numpy as np

from repro.core import datetime_ops, strings
from repro.core.columnar import LogicalType, TensorColumn, TensorTable, encode_strings
from repro.errors import ExecutionError, UnsupportedOperationError
from repro.frontend import ast
from repro.tensor import Tensor, ops
from repro.tensor.device import Device, parse_device


@dataclasses.dataclass
class ExprValue:
    """The result of evaluating an expression over a table.

    ``tensor`` is ``(n,)`` (or ``(n, m)`` for strings) for per-row values, or a
    0-d / ``(m,)`` tensor for scalars (``is_scalar=True``).  ``valid`` is an
    optional per-row validity mask (``None`` = all valid).

    ``encoding`` marks a dictionary-encoded string value (see
    :mod:`repro.storage.encodings`): ``tensor`` then holds ``(n,)`` int32
    codes and the encoding carries the shared dictionary.  Consumers that know
    how to operate on codes (equality, IN, LIKE, grouping, sorting) read it;
    :func:`decode_value` materializes the plain form for everyone else.
    """

    tensor: Tensor
    ltype: LogicalType
    is_scalar: bool = False
    valid: Optional[Tensor] = None
    encoding: Optional[object] = None


def decode_value(value: ExprValue) -> ExprValue:
    """The plain (decoded) form of an expression value; no-op when unencoded."""
    if value.encoding is None:
        return value
    return ExprValue(value.encoding.decode(value.tensor), value.ltype,
                     value.is_scalar, value.valid)


class EvaluationContext:
    """Runtime services expressions may need.

    Attributes:
        device: device every produced tensor should live on.
        subquery_runner: callable executing an (uncorrelated) physical subplan
            and returning its result :class:`TensorTable`.
        models: mapping of model name → compiled predict function
            ``f(list[ExprValue], num_rows) -> ExprValue`` used by ``PREDICT``.
        params: bound values for the statement's bind parameters, by name —
            scalar :class:`ExprValue` objects.  On the graph backends these
            tensors are the traced program's *runtime inputs*, which is what
            lets one compiled program serve every binding.
    """

    def __init__(self, device: Device | str = "cpu",
                 subquery_runner: Optional[Callable[[Any], TensorTable]] = None,
                 models: Optional[dict[str, Callable]] = None,
                 params: Optional[dict[str, "ExprValue"]] = None):
        self.device = parse_device(device)
        self.subquery_runner = subquery_runner
        self.models = models or {}
        self.params = params or {}
        self._subquery_cache: dict[int, TensorTable] = {}

    def run_subquery(self, subplan: Any) -> TensorTable:
        if self.subquery_runner is None:
            raise ExecutionError("this query requires a subquery runner")
        key = id(subplan)
        if key not in self._subquery_cache:
            self._subquery_cache[key] = self.subquery_runner(subplan)
        return self._subquery_cache[key]


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


_LTYPE_TO_DTYPE = {
    LogicalType.INT: "int64",
    LogicalType.FLOAT: "float64",
    LogicalType.BOOL: "bool",
    LogicalType.DATE: "int64",
}


def to_column(value: ExprValue, num_rows: int,
              like: Optional[Tensor] = None) -> TensorColumn:
    """Materialize an expression value as a column of ``num_rows`` rows.

    ``like`` is an optional per-row tensor of the target table; when given,
    scalar broadcasts size themselves off it at run time (``full_like_rows``)
    instead of baking ``num_rows`` into the traced graph — required for
    intermediate tables whose size depends on a bind parameter.
    """
    if value.encoding is not None and not value.is_scalar:
        return TensorColumn(value.tensor, value.ltype, value.valid,
                            value.encoding)
    tensor = value.tensor
    if value.is_scalar:
        if value.ltype == LogicalType.STRING:
            width = tensor.shape[-1] if tensor.ndim else 1
            if like is not None:
                base = ops.full_like_rows(like, 1, dtype="int32", width=width)
            else:
                base = ops.ones((num_rows, width), dtype="int32",
                                device=tensor.device)
            tensor = ops.mul(base, ops.cast(tensor, "int32"))
            tensor = ops.cast(tensor, "int32")
        else:
            dtype = _LTYPE_TO_DTYPE[value.ltype]
            if like is not None:
                base = ops.full_like_rows(like, 0, dtype=dtype)
            else:
                base = ops.zeros((num_rows,), dtype=dtype, device=tensor.device)
            tensor = ops.add(base, ops.cast(tensor, dtype))
    return TensorColumn(tensor, value.ltype, value.valid)


def as_mask(value: ExprValue, num_rows: int,
            like: Optional[Tensor] = None) -> Tensor:
    """Convert a boolean expression value into a filter mask (NULL → False).

    ``like`` plays the same role as in :func:`to_column`: a run-time size
    reference for broadcasting scalar conditions.
    """
    if value.ltype != LogicalType.BOOL:
        raise ExecutionError("filter condition must be boolean")
    tensor = value.tensor
    if value.is_scalar:
        if like is not None:
            base = ops.full_like_rows(like, True, dtype="bool")
        else:
            base = ops.full((num_rows,), True, dtype="bool", device=tensor.device)
        tensor = ops.logical_and(base, tensor)
    if value.valid is not None:
        tensor = ops.logical_and(tensor, value.valid)
    return tensor


def _combine_valid(*values: ExprValue) -> Optional[Tensor]:
    masks = [v.valid for v in values if v.valid is not None]
    if not masks:
        return None
    combined = masks[0]
    for mask in masks[1:]:
        combined = ops.logical_and(combined, mask)
    return combined


def _numeric_binary(op_name: str, left: ExprValue, right: ExprValue,
                    otype: LogicalType) -> ExprValue:
    fn = getattr(ops, op_name)
    result = fn(left.tensor, right.tensor)
    if otype == LogicalType.FLOAT:
        result = ops.cast(result, "float64")
    return ExprValue(result, otype, left.is_scalar and right.is_scalar,
                     _combine_valid(left, right))


_ARITHMETIC = {"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "mod"}
_COMPARISON = {"=": "eq", "<>": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge"}


# ---------------------------------------------------------------------------
# the evaluator
# ---------------------------------------------------------------------------


def evaluate(expr: ast.Expr, table: TensorTable, ctx: EvaluationContext) -> ExprValue:
    """Evaluate a resolved expression over ``table``, decoded.

    This is the generic entry point: the result is always in the plain
    representation, so every operator works unchanged whatever the storage
    encoding of the underlying columns.  Consumers that can exploit
    dictionary codes directly (grouping, sorting, DISTINCT) use
    :func:`evaluate_encoded` instead.
    """
    return decode_value(evaluate_encoded(expr, table, ctx))


def evaluate_encoded(expr: ast.Expr, table: TensorTable,
                     ctx: EvaluationContext) -> ExprValue:
    """Like :func:`evaluate`, but dictionary-encoded string values keep their
    codes (``value.encoding`` set) instead of materializing the code-point
    matrix."""
    if isinstance(expr, ast.ColumnRef):
        column = table.column(expr.resolved or expr.display)
        if column.encoding is not None and column.encoding.kind != "dictionary":
            # Run-length runs are not positional; decode defensively (scans
            # normally materialize RLE columns before operators see them).
            column = column.decoded()
        return ExprValue(column.tensor, column.ltype, False, column.valid,
                         column.encoding)

    if isinstance(expr, ast.Literal):
        return _evaluate_literal(expr, ctx)

    if isinstance(expr, ast.ParameterExpr):
        value = ctx.params.get(expr.name)
        if value is None:
            raise ExecutionError(
                f"no value bound for parameter :{expr.name}; "
                "bind it before executing"
            )
        return value

    if isinstance(expr, ast.IntervalLiteral):
        raise UnsupportedOperationError(
            "INTERVAL literals may only be combined with DATE literals"
        )

    if isinstance(expr, ast.BinaryOp):
        return _evaluate_binary(expr, table, ctx)

    if isinstance(expr, ast.UnaryOp):
        operand = evaluate(expr.operand, table, ctx)
        if expr.op == "not":
            return ExprValue(ops.logical_not(operand.tensor), LogicalType.BOOL,
                             operand.is_scalar, operand.valid)
        return ExprValue(ops.neg(operand.tensor), operand.ltype,
                         operand.is_scalar, operand.valid)

    if isinstance(expr, ast.CaseWhen):
        return _evaluate_case(expr, table, ctx)

    if isinstance(expr, ast.Cast):
        return _evaluate_cast(expr, table, ctx)

    if isinstance(expr, ast.LikeExpr):
        operand = evaluate_encoded(expr.operand, table, ctx)
        if operand.ltype != LogicalType.STRING:
            raise ExecutionError("LIKE requires a string operand")
        if operand.encoding is not None:
            # Match the pattern against the k dictionary entries, then fan the
            # per-entry verdicts out to the rows with one gather — the pattern
            # kernels run over k distinct values instead of n rows.
            matched = strings.like(operand.encoding.dictionary, expr.pattern)
            if expr.negated:
                matched = ops.logical_not(matched)
            matched = ops.take(matched, ops.cast(operand.tensor, "int64"))
            return ExprValue(matched, LogicalType.BOOL, False, operand.valid)
        matched = strings.like(operand.tensor, expr.pattern)
        if expr.negated:
            matched = ops.logical_not(matched)
        return ExprValue(matched, LogicalType.BOOL, operand.is_scalar, operand.valid)

    if isinstance(expr, ast.Between):
        operand = evaluate(expr.operand, table, ctx)
        low = evaluate(expr.low, table, ctx)
        high = evaluate(expr.high, table, ctx)
        result = ops.logical_and(ops.ge(operand.tensor, low.tensor),
                                 ops.le(operand.tensor, high.tensor))
        if expr.negated:
            result = ops.logical_not(result)
        return ExprValue(result, LogicalType.BOOL, operand.is_scalar,
                         _combine_valid(operand, low, high))

    if isinstance(expr, ast.InList):
        return _evaluate_in_list(expr, table, ctx)

    if isinstance(expr, ast.InSubquery):
        return _evaluate_in_subquery(expr, table, ctx)

    if isinstance(expr, ast.ExistsSubquery):
        result_table = ctx.run_subquery(expr.subplan)
        anchor = result_table.anchor
        if anchor is None:
            raise ExecutionError("EXISTS subquery produced no columns")
        # Computed as a tensor (not a Python bool) so the row count is
        # re-evaluated when a traced program replays under a new binding.
        value = ops.gt(ops.row_count(anchor), 0)
        if expr.negated:
            value = ops.logical_not(value)
        return ExprValue(value, LogicalType.BOOL, True)

    if isinstance(expr, ast.ScalarSubquery):
        result_table = ctx.run_subquery(expr.subplan)
        if result_table.num_columns != 1 or result_table.num_rows != 1:
            raise ExecutionError("scalar subquery must produce exactly one value")
        column = result_table.column(result_table.column_names[0])
        scalar = ops.slice_(column.tensor, 0)
        return ExprValue(scalar, column.ltype, True)

    if isinstance(expr, ast.ExtractExpr):
        operand = evaluate(expr.operand, table, ctx)
        if operand.ltype != LogicalType.DATE:
            raise ExecutionError("EXTRACT requires a date operand")
        return ExprValue(datetime_ops.extract_field(operand.tensor, expr.field),
                         LogicalType.INT, operand.is_scalar, operand.valid)

    if isinstance(expr, ast.SubstringExpr):
        operand = evaluate(expr.operand, table, ctx)
        start = _require_int_literal(expr.start, "SUBSTRING start")
        length = (_require_int_literal(expr.length, "SUBSTRING length")
                  if expr.length is not None else None)
        return ExprValue(strings.substring(operand.tensor, start, length),
                         LogicalType.STRING, operand.is_scalar, operand.valid)

    if isinstance(expr, ast.IsNull):
        operand = evaluate_encoded(expr.operand, table, ctx)
        if operand.valid is None:
            if operand.is_scalar:
                value = ops.tensor(bool(expr.negated), dtype="bool",
                                   device=ctx.device)
                return ExprValue(value, LogicalType.BOOL, True)
            value = ops.full_like_rows(operand.tensor, expr.negated, dtype="bool")
        else:
            value = ops.logical_not(operand.valid) if not expr.negated else operand.valid
        return ExprValue(value, LogicalType.BOOL, False)

    if isinstance(expr, ast.PredictExpr):
        return _evaluate_predict(expr, table, ctx)

    if isinstance(expr, ast.FuncCall):
        return _evaluate_scalar_function(expr, table, ctx)

    raise UnsupportedOperationError(
        f"cannot compile expression {type(expr).__name__} to a tensor program"
    )


# ---------------------------------------------------------------------------
# individual expression kinds
# ---------------------------------------------------------------------------


def _evaluate_literal(expr: ast.Literal, ctx: EvaluationContext) -> ExprValue:
    kind = expr.otype or expr.kind
    if expr.value is None:
        return ExprValue(ops.tensor(np.nan, dtype="float64", device=ctx.device),
                         kind or LogicalType.FLOAT, True,
                         valid=None)
    if kind == LogicalType.STRING:
        codes = encode_strings([expr.value])[0]
        return ExprValue(ops.tensor(codes, device=ctx.device), LogicalType.STRING, True)
    if kind == LogicalType.DATE:
        return ExprValue(ops.tensor(int(expr.value), dtype="int64", device=ctx.device),
                         LogicalType.DATE, True)
    if kind == LogicalType.BOOL:
        return ExprValue(ops.tensor(bool(expr.value), dtype="bool", device=ctx.device),
                         LogicalType.BOOL, True)
    if kind == LogicalType.INT or (kind is None and isinstance(expr.value, int)):
        return ExprValue(ops.tensor(int(expr.value), dtype="int64", device=ctx.device),
                         LogicalType.INT, True)
    return ExprValue(ops.tensor(float(expr.value), dtype="float64", device=ctx.device),
                     LogicalType.FLOAT, True)


def _evaluate_binary(expr: ast.BinaryOp, table: TensorTable,
                     ctx: EvaluationContext) -> ExprValue:
    op = expr.op
    if op in ("and", "or"):
        left = evaluate(expr.left, table, ctx)
        right = evaluate(expr.right, table, ctx)
        fn = ops.logical_and if op == "and" else ops.logical_or
        return ExprValue(fn(left.tensor, right.tensor), LogicalType.BOOL,
                         left.is_scalar and right.is_scalar,
                         _combine_valid(left, right))
    left = evaluate_encoded(expr.left, table, ctx)
    right = evaluate_encoded(expr.right, table, ctx)
    if op in _COMPARISON:
        if left.ltype == LogicalType.STRING or right.ltype == LogicalType.STRING:
            return _string_comparison(op, expr, left, right)
        left, right = decode_value(left), decode_value(right)
        result = getattr(ops, _COMPARISON[op])(left.tensor, right.tensor)
        return ExprValue(result, LogicalType.BOOL,
                         left.is_scalar and right.is_scalar,
                         _combine_valid(left, right))
    if op in _ARITHMETIC:
        otype = expr.otype or LogicalType.FLOAT
        return _numeric_binary(_ARITHMETIC[op], decode_value(left),
                               decode_value(right), otype)
    if op == "||":
        raise UnsupportedOperationError("string concatenation is not supported")
    raise UnsupportedOperationError(f"unsupported binary operator {op!r}")


def _string_comparison(op: str, expr: ast.BinaryOp, left: ExprValue,
                       right: ExprValue) -> ExprValue:
    if op not in ("=", "<>"):
        raise UnsupportedOperationError(
            "only equality comparisons are supported for strings"
        )
    # literal/parameter vs column
    if left.is_scalar != right.is_scalar:
        column, literal_expr = ((right, expr.left) if left.is_scalar
                                else (left, expr.right))
        literal = left if left.is_scalar else right
        if column.encoding is not None:
            # Compare against the k dictionary entries, then gather the
            # per-entry verdict per row — O(k·m) comparison work instead of
            # O(n·m), and the bound value of a parameter flows through the
            # same dictionary probe at run time.
            dictionary = column.encoding.dictionary
            if isinstance(literal_expr, ast.Literal):
                matches = strings.equals_literal(dictionary, str(literal_expr.value))
            else:
                matches = strings.equals_columns(
                    dictionary, ops.reshape(literal.tensor,
                                            (1, literal.tensor.shape[-1])))
            result = ops.take(matches, ops.cast(column.tensor, "int64"))
        elif isinstance(literal_expr, ast.Literal):
            result = strings.equals_literal(column.tensor, str(literal_expr.value))
        else:
            result = strings.equals_columns(
                column.tensor, ops.reshape(literal.tensor, (1, literal.tensor.shape[-1]))
            )
        scalar = False
    else:
        if (left.encoding is not None and right.encoding is not None
                and left.encoding.dictionary is right.encoding.dictionary):
            # Same dictionary: equal codes <=> equal strings.
            result = ops.eq(left.tensor, right.tensor)
        else:
            left, right = decode_value(left), decode_value(right)
            result = strings.equals_columns(left.tensor, right.tensor)
        scalar = left.is_scalar and right.is_scalar
    if op == "<>":
        result = ops.logical_not(result)
    return ExprValue(result, LogicalType.BOOL, scalar, _combine_valid(left, right))


def _evaluate_case(expr: ast.CaseWhen, table: TensorTable,
                   ctx: EvaluationContext) -> ExprValue:
    otype = expr.otype or LogicalType.FLOAT
    if expr.else_value is not None:
        result_value = evaluate(expr.else_value, table, ctx)
        result = result_value.tensor
        valid: Optional[Tensor] = result_value.valid
    else:
        # SQL: a CASE where no branch matches is NULL.  The placeholder value
        # is 0 with an all-false validity mask.
        dtype = _LTYPE_TO_DTYPE.get(otype, "float64")
        result = ops.tensor(0, dtype=dtype, device=ctx.device)
        valid = ops.tensor(False, dtype="bool", device=ctx.device)
    # Apply WHEN branches from last to first so earlier branches win.
    any_scalar = True
    for condition, value in reversed(expr.whens):
        cond_value = evaluate(condition, table, ctx)
        branch_value = evaluate(value, table, ctx)
        cond = cond_value.tensor
        if cond_value.valid is not None:
            # A NULL condition selects the branch below, never this one.
            cond = ops.logical_and(cond, cond_value.valid)
        result = ops.where(cond, branch_value.tensor, result)
        if valid is not None or branch_value.valid is not None:
            branch_valid = (branch_value.valid if branch_value.valid is not None
                            else ops.tensor(True, dtype="bool", device=ctx.device))
            below_valid = (valid if valid is not None
                           else ops.tensor(True, dtype="bool", device=ctx.device))
            valid = ops.where(cond, branch_valid, below_valid)
        any_scalar = any_scalar and cond_value.is_scalar and branch_value.is_scalar
    if otype == LogicalType.FLOAT:
        result = ops.cast(result, "float64")
    if valid is not None and not any_scalar and valid.ndim == 0:
        # ``result`` is per-row whenever the CASE is non-scalar, so it is a
        # safe run-time size reference for broadcasting the validity mask.
        anchor = result if result.ndim else table.anchor
        if anchor is not None and anchor.ndim:
            valid = ops.logical_and(
                ops.full_like_rows(anchor, True, dtype="bool"), valid
            )
        else:
            valid = ops.logical_and(
                ops.full((table.num_rows,), True, dtype="bool", device=ctx.device),
                valid,
            )
    return ExprValue(result, otype, any_scalar, valid)


def _evaluate_cast(expr: ast.Cast, table: TensorTable,
                   ctx: EvaluationContext) -> ExprValue:
    operand = evaluate(expr.operand, table, ctx)
    target = expr.otype or LogicalType.FLOAT
    if target == LogicalType.STRING or operand.ltype == LogicalType.STRING:
        raise UnsupportedOperationError("CAST to/from strings is not supported")
    dtype = _LTYPE_TO_DTYPE[target]
    return ExprValue(ops.cast(operand.tensor, dtype), target,
                     operand.is_scalar, operand.valid)


def _evaluate_in_list(expr: ast.InList, table: TensorTable,
                      ctx: EvaluationContext) -> ExprValue:
    operand = evaluate_encoded(expr.operand, table, ctx)
    if operand.ltype == LogicalType.STRING:
        # Dictionary-encoded operands probe the k dictionary entries per item
        # and gather one combined verdict; plain operands compare row-wise.
        haystack = (operand.encoding.dictionary if operand.encoding is not None
                    else operand.tensor)
        result = None
        for item in expr.items:
            if isinstance(item, ast.Literal):
                this = strings.equals_literal(haystack, str(item.value))
            else:
                value = evaluate(item, table, ctx)
                if not value.is_scalar or value.ltype != LogicalType.STRING:
                    raise UnsupportedOperationError(
                        "IN over strings requires string literals or parameters"
                    )
                this = strings.equals_columns(
                    haystack,
                    ops.reshape(value.tensor, (1, value.tensor.shape[-1])),
                )
            result = this if result is None else ops.logical_or(result, this)
        if operand.encoding is not None and result is not None:
            result = ops.take(result, ops.cast(operand.tensor, "int64"))
    else:
        values = [evaluate(item, table, ctx).tensor for item in expr.items]
        stacked = ops.stack(values) if len(values) > 1 else ops.reshape(values[0], (1,))
        result = ops.isin(operand.tensor, stacked)
    if expr.negated:
        result = ops.logical_not(result)
    return ExprValue(result, LogicalType.BOOL, operand.is_scalar, operand.valid)


def _evaluate_in_subquery(expr: ast.InSubquery, table: TensorTable,
                          ctx: EvaluationContext) -> ExprValue:
    operand = evaluate(expr.operand, table, ctx)
    result_table = ctx.run_subquery(expr.subplan)
    if result_table.num_columns != 1:
        raise ExecutionError("IN subquery must produce exactly one column")
    column = result_table.column(result_table.column_names[0])
    if operand.ltype == LogicalType.STRING:
        if column.ltype != LogicalType.STRING:
            raise ExecutionError("IN subquery type mismatch")
        width = max(operand.tensor.shape[1], column.tensor.shape[1])
        left = ops.pad2d(operand.tensor, width)
        right = ops.pad2d(column.tensor, width)
        # Compare every row against every subquery value: (n, k, m) equality.
        # The data-dependent extents use -1 so replays under a new parameter
        # binding recompute them from the actual tensors.
        left3 = ops.reshape(left, (-1, 1, width))
        right3 = ops.reshape(right, (1, -1, width))
        matches = ops.all_(ops.eq(left3, right3), axis=2)
        result = ops.any_(matches, axis=1)
    else:
        result = ops.isin(operand.tensor, column.tensor)
    if expr.negated:
        result = ops.logical_not(result)
    return ExprValue(result, LogicalType.BOOL, operand.is_scalar, operand.valid)


def _evaluate_predict(expr: ast.PredictExpr, table: TensorTable,
                      ctx: EvaluationContext) -> ExprValue:
    model = ctx.models.get(expr.model_name)
    if model is None:
        raise ExecutionError(
            f"PREDICT references unknown model {expr.model_name!r}; "
            "register it on the session first"
        )
    args = [evaluate(arg, table, ctx) for arg in expr.args]
    return model(args, table.num_rows)


def _evaluate_scalar_function(expr: ast.FuncCall, table: TensorTable,
                              ctx: EvaluationContext) -> ExprValue:
    name = expr.name.lower()
    if name == "length":
        arg = evaluate_encoded(expr.args[0], table, ctx)
        if arg.encoding is not None:
            # Length of each of the k dictionary entries, gathered per row.
            lengths = strings.row_lengths(arg.encoding.dictionary)
            return ExprValue(ops.take(lengths, ops.cast(arg.tensor, "int64")),
                             LogicalType.INT, False, arg.valid)
        return ExprValue(strings.row_lengths(arg.tensor), LogicalType.INT,
                         arg.is_scalar, arg.valid)
    args = [evaluate(arg, table, ctx) for arg in expr.args]
    if name == "abs":
        return ExprValue(ops.abs_(args[0].tensor), args[0].ltype,
                         args[0].is_scalar, args[0].valid)
    if name == "round":
        return ExprValue(ops.round_(args[0].tensor), args[0].ltype,
                         args[0].is_scalar, args[0].valid)
    if name == "sqrt":
        return ExprValue(ops.sqrt(args[0].tensor), LogicalType.FLOAT,
                         args[0].is_scalar, args[0].valid)
    if name in ("year", "month", "day"):
        return ExprValue(datetime_ops.extract_field(args[0].tensor, name),
                         LogicalType.INT, args[0].is_scalar, args[0].valid)
    if name == "coalesce":
        return _evaluate_coalesce(args, table.num_rows, table.anchor)
    raise UnsupportedOperationError(f"unsupported function {expr.name!r}")


def _evaluate_coalesce(args: list[ExprValue], num_rows: int,
                       anchor: Optional[Tensor] = None) -> ExprValue:
    """COALESCE: per row, the first non-NULL argument (tensorized as a chain
    of validity-masked ``where`` selects)."""
    if not args:
        raise ExecutionError("coalesce() requires at least one argument")
    # Resolve the promoted result type up front (matching the analyzer's
    # declared type) so an early short-circuit cannot return an INT column
    # where the compiled schema promised FLOAT.
    arg_types = {value.ltype for value in args}
    if len(arg_types) == 1:
        ltype = args[0].ltype
    elif arg_types == {LogicalType.INT, LogicalType.FLOAT}:
        ltype = LogicalType.FLOAT
    else:
        raise ExecutionError(
            "coalesce() argument types do not match: "
            + ", ".join(sorted(t.value for t in arg_types))
        )

    def materialize(value: ExprValue) -> TensorColumn:
        column = to_column(value, num_rows, like=anchor)
        if column.ltype != ltype:
            return TensorColumn(ops.cast(column.tensor, "float64"), ltype,
                                column.valid)
        return column

    column = materialize(args[0])
    for value in args[1:]:
        if column.valid is None:
            break  # already never NULL; later arguments are unreachable
        nxt = materialize(value)
        if ltype == LogicalType.STRING:
            width = max(column.tensor.shape[1], nxt.tensor.shape[1])
            left_data = ops.pad2d(column.tensor, width)
            right_data = ops.pad2d(nxt.tensor, width)
            cond = ops.reshape(column.valid, (-1, 1))
        else:
            left_data, right_data = column.tensor, nxt.tensor
            cond = column.valid
        data = ops.where(cond, left_data, right_data)
        valid = (None if nxt.valid is None
                 else ops.logical_or(column.valid, nxt.valid))
        column = TensorColumn(data, ltype, valid)
    return ExprValue(column.tensor, column.ltype, False, column.valid)


def _require_int_literal(expr: ast.Expr, what: str) -> int:
    if not isinstance(expr, ast.Literal) or not isinstance(expr.value, (int, np.integer)):
        raise UnsupportedOperationError(f"{what} must be an integer literal")
    return int(expr.value)
