"""Columnar tensor data representation (paper §2.1).

Tabular data is stored column-by-column as tensors:

* numeric (and boolean) columns are ``(n,)`` tensors,
* date columns are ``(n,)`` int64 tensors holding the UNIX epoch in
  nanoseconds,
* string columns are ``(n × m)`` int32 tensors of Unicode code points,
  right-padded with zeros, where ``m`` is the maximum length of any value in
  the column.

Conversion from the ingestion DataFrame is zero-copy for numeric columns and
requires an explicit encoding step for dates and strings — exactly the
behaviour described in the paper.

Columns can carry an optional validity mask so that outer joins (e.g. TPC-H
Q13) can represent NULLs; a missing mask means "all rows valid".
"""

from __future__ import annotations

import enum
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.dataframe import DataFrame
from repro.errors import ExecutionError, PlanningError
from repro.tensor import Tensor, ops
from repro.tensor.device import Device, parse_device


class LogicalType(enum.Enum):
    """Logical column types understood by the relational layer."""

    INT = "int"
    FLOAT = "float"
    BOOL = "bool"
    DATE = "date"
    STRING = "string"

    @property
    def is_numeric(self) -> bool:
        return self in (LogicalType.INT, LogicalType.FLOAT)


# -- string encoding ---------------------------------------------------------


def encode_strings(values: Sequence[str], width: int | None = None) -> np.ndarray:
    """Encode python strings into an ``(n × m)`` int32 code-point tensor.

    Values longer than ``width`` (when given) are truncated; shorter values are
    right-padded with 0, per the paper's representation.
    """
    values = ["" if v is None else str(v) for v in values]
    max_len = max((len(v) for v in values), default=0)
    if width is None:
        width = max(max_len, 1)
    unicode_arr = np.array(values, dtype=f"<U{width}")
    codes = unicode_arr.view(np.uint32).reshape(len(values), width).astype(np.int32)
    return codes


def decode_strings(codes: np.ndarray) -> np.ndarray:
    """Decode an ``(n × m)`` code-point tensor back into an object array."""
    if codes.ndim != 2:
        raise ExecutionError("string columns must be 2-dimensional")
    n, width = codes.shape
    if n == 0:
        return np.array([], dtype=object)
    as_unicode = np.ascontiguousarray(codes.astype(np.uint32)).view(f"<U{width}")
    return np.array([s.rstrip("\x00") for s in as_unicode.reshape(n)], dtype=object)


def encode_string_literal(value: str, width: int) -> np.ndarray:
    """Encode a single literal into a ``(width,)`` code vector (for comparisons)."""
    return encode_strings([value], width=width)[0]


# -- dates -------------------------------------------------------------------

_NS_PER_DAY = 86_400_000_000_000


def encode_dates(values: np.ndarray) -> np.ndarray:
    """Convert ``datetime64`` values into int64 epoch nanoseconds."""
    return values.astype("datetime64[ns]").astype(np.int64)


def decode_dates(values: np.ndarray) -> np.ndarray:
    return values.astype("datetime64[ns]").astype("datetime64[D]")


def date_literal_to_ns(text: str) -> int:
    """Parse ``YYYY-MM-DD`` into epoch nanoseconds (used by SQL DATE literals)."""
    return int(np.datetime64(text, "ns").astype(np.int64))


# -- morsels -------------------------------------------------------------------

#: Rows per morsel for the morsel-driven parallel operators.  Chosen so one
#: morsel of a typical TPC-H lineitem projection (~6 columns × 8 bytes) stays
#: around L2-cache size, the classic morsel-driven-execution sizing rule.
DEFAULT_MORSEL_ROWS = 2048


def morsel_bounds(num_rows: int, morsel_rows: int = DEFAULT_MORSEL_ROWS
                  ) -> list[tuple[int, int]]:
    """Fixed-size ``(start, length)`` partitioning of ``num_rows`` rows.

    Every morsel has exactly ``morsel_rows`` rows except the last, which takes
    the remainder.  An empty input yields no morsels.
    """
    if morsel_rows < 1:
        raise ExecutionError("morsel_rows must be >= 1")
    return [(start, min(morsel_rows, num_rows - start))
            for start in range(0, num_rows, morsel_rows)]


# -- columns -------------------------------------------------------------------


class TensorColumn:
    """One column of a :class:`TensorTable`.

    A column may carry a storage ``encoding`` (see
    :mod:`repro.storage.encodings`): dictionary-encoded string columns keep
    ``(n,)`` int32 codes in ``tensor`` plus a shared dictionary on the
    encoding, run-length-encoded numeric columns keep the run values.  Callers
    that cannot work on the encoded form use :meth:`decoded`, which lowers the
    decode to a single tensor op.
    """

    __slots__ = ("tensor", "ltype", "valid", "encoding")

    def __init__(self, tensor: Tensor, ltype: LogicalType,
                 valid: Tensor | None = None, encoding=None):
        if encoding is not None:
            encoding.validate(tensor, ltype)
        elif ltype == LogicalType.STRING and tensor.ndim != 2:
            raise ExecutionError("string columns must be (n x m) tensors")
        elif ltype != LogicalType.STRING and tensor.ndim != 1:
            raise ExecutionError(f"{ltype.value} columns must be 1-d tensors")
        self.tensor = tensor
        self.ltype = ltype
        self.valid = valid
        self.encoding = encoding

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_numpy(cls, array: np.ndarray, device: Device | str = "cpu"
                   ) -> "TensorColumn":
        """Build a column from a numpy array, inferring the logical type."""
        dev = parse_device(device)
        kind = array.dtype.kind
        if kind == "M":
            return cls(ops.tensor(encode_dates(array), device=dev), LogicalType.DATE)
        if kind == "b":
            return cls(ops.tensor(array, device=dev), LogicalType.BOOL)
        if kind in "iu":
            return cls(ops.tensor(array.astype(np.int64), device=dev), LogicalType.INT)
        if kind == "f":
            return cls(ops.tensor(array.astype(np.float64), device=dev),
                       LogicalType.FLOAT)
        if kind in "OU":
            return cls(ops.tensor(encode_strings(list(array)), device=dev),
                       LogicalType.STRING)
        raise PlanningError(f"cannot convert numpy dtype {array.dtype} to a column")

    # -- properties ------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        if self.encoding is not None:
            return self.encoding.num_rows(self.tensor)
        return self.tensor.shape[0]

    @property
    def string_width(self) -> int:
        if self.ltype != LogicalType.STRING:
            raise ExecutionError("string_width is only defined for string columns")
        if self.encoding is not None:
            return self.encoding.width
        return self.tensor.shape[1]

    @property
    def device(self) -> Device:
        return self.tensor.device

    # -- encoding ---------------------------------------------------------------

    def decoded(self) -> "TensorColumn":
        """The plain (unencoded) form of this column; a no-op when unencoded.

        The decode is one tensor op (dictionary ``take`` / run-length
        ``repeat``), so it is traced, profiled and cost-modelled like any
        other kernel.
        """
        if self.encoding is None:
            return self
        return TensorColumn(self.encoding.decode(self.tensor), self.ltype,
                            self.valid)

    def _positional(self) -> "TensorColumn":
        """A form that supports per-row positional access (gather/mask/slice).

        Dictionary codes are positional already; run-length runs are not, so
        they decode first.
        """
        if self.encoding is not None and self.encoding.kind == "rle":
            return self.decoded()
        return self

    # -- transformations --------------------------------------------------------

    def gather(self, indices: Tensor) -> "TensorColumn":
        """Select rows by index tensor."""
        base = self._positional()
        taken = ops.take(base.tensor, indices, axis=0)
        valid = ops.take(base.valid, indices, axis=0) if base.valid is not None else None
        return TensorColumn(taken, base.ltype, valid, base.encoding)

    def mask(self, mask: Tensor) -> "TensorColumn":
        """Select rows by boolean mask tensor."""
        base = self._positional()
        kept = ops.boolean_mask(base.tensor, mask)
        valid = ops.boolean_mask(base.valid, mask) if base.valid is not None else None
        return TensorColumn(kept, base.ltype, valid, base.encoding)

    def slice(self, start: int, length: int) -> "TensorColumn":
        """A contiguous row range (zero-copy view via ``narrow``).

        Run-length-encoded columns decode only the overlapping runs, so
        slicing a pruned scan (or a morsel) never materializes rows outside
        the range.
        """
        if (self.encoding is not None and self.encoding.kind == "rle"
                and self.valid is None):
            return TensorColumn(
                self.encoding.slice_rows(self.tensor, start, length), self.ltype)
        base = self._positional()
        data = ops.narrow(base.tensor, 0, start, length)
        valid = (ops.narrow(base.valid, 0, start, length)
                 if base.valid is not None else None)
        return TensorColumn(data, base.ltype, valid, base.encoding)

    def to(self, device: Device | str) -> "TensorColumn":
        valid = self.valid.to(device) if self.valid is not None else None
        encoding = self.encoding.to(device) if self.encoding is not None else None
        return TensorColumn(self.tensor.to(device), self.ltype, valid, encoding)

    def validity(self) -> Tensor:
        """Return the validity mask, materializing an all-true mask if absent.

        The mask is sized off the data tensor at run time (``full_like_rows``)
        so traced programs stay correct when a parameter rebinding changes how
        many rows reach this column.
        """
        if self.valid is not None:
            return self.valid
        return ops.full_like_rows(self.tensor, True, dtype="bool")

    # -- conversion ---------------------------------------------------------------

    def to_numpy(self) -> np.ndarray:
        """Decode back to a numpy array (strings → object, dates → datetime64[D])."""
        if self.encoding is not None:
            return self.decoded().to_numpy()
        data = self.tensor.numpy()
        if self.ltype == LogicalType.STRING:
            out = decode_strings(data)
        elif self.ltype == LogicalType.DATE:
            out = decode_dates(data)
        else:
            out = data
        if self.valid is not None:
            invalid = ~self.valid.numpy().astype(bool)
            if invalid.any():
                out = out.astype(object)
                out[invalid] = None
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"TensorColumn({self.ltype.value}, rows={self.num_rows}, "
                f"device={self.device})")


def concat_columns(cols: Sequence[TensorColumn]) -> TensorColumn:
    """Row-concatenate column chunks with one ``concat`` kernel per tensor.

    Dictionary-encoded chunks that share one dictionary (chunks sliced from
    the same stored column) concatenate their codes and stay encoded; any
    other mix of encoded/plain chunks decodes first.  String chunks of
    different widths are padded to the widest.
    """
    if not cols:
        raise ExecutionError("concat_columns() needs at least one chunk")
    if len(cols) == 1:
        return cols[0]
    ltype = cols[0].ltype
    encodings = [c.encoding for c in cols]
    shared_dictionary = (
        all(e is not None and e.kind == "dictionary" for e in encodings)
        and len({id(e.dictionary) for e in encodings}) == 1
    )
    if shared_dictionary:
        parts = [c.tensor for c in cols]
        encoding = encodings[0]
    else:
        cols = [c.decoded() for c in cols]
        encoding = None
        if ltype == LogicalType.STRING:
            width = max(c.tensor.shape[1] for c in cols)
            parts = [c.tensor if c.tensor.shape[1] == width
                     else ops.pad2d(c.tensor, width) for c in cols]
        else:
            parts = [c.tensor for c in cols]
    data = ops.concat(parts, axis=0)
    valid = None
    if any(c.valid is not None for c in cols):
        valid = ops.concat([c.validity() for c in cols], axis=0)
    return TensorColumn(data, ltype, valid, encoding)


class TensorTable:
    """A set of equally sized :class:`TensorColumn` objects (paper §2.1)."""

    def __init__(self, columns: Mapping[str, TensorColumn] | None = None):
        self._columns: dict[str, TensorColumn] = dict(columns or {})
        lengths = {col.num_rows for col in self._columns.values()}
        if len(lengths) > 1:
            raise ExecutionError(f"columns have inconsistent lengths: {lengths}")

    # -- construction -------------------------------------------------------------

    @classmethod
    def from_dataframe(cls, frame: DataFrame, device: Device | str = "cpu"
                       ) -> "TensorTable":
        """Convert an ingestion DataFrame into the tensor representation."""
        columns = {
            name: TensorColumn.from_numpy(frame[name], device=device)
            for name in frame.columns
        }
        return cls(columns)

    # -- properties ----------------------------------------------------------------

    @property
    def column_names(self) -> list[str]:
        return list(self._columns)

    @property
    def num_rows(self) -> int:
        for col in self._columns.values():
            return col.num_rows
        return 0

    @property
    def num_columns(self) -> int:
        return len(self._columns)

    @property
    def device(self) -> Device:
        for col in self._columns.values():
            return col.device
        return parse_device("cpu")

    @property
    def anchor(self) -> "Tensor | None":
        """A per-row tensor of this table, if any — the size reference the
        shape-polymorphic creation ops (``full_like_rows`` etc.) hang off."""
        for col in self._columns.values():
            return col.tensor
        return None

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def column(self, name: str) -> TensorColumn:
        try:
            return self._columns[name]
        except KeyError:
            raise ExecutionError(f"no such column in tensor table: {name!r}") from None

    def columns(self) -> Iterable[tuple[str, TensorColumn]]:
        return self._columns.items()

    # -- transformations ---------------------------------------------------------------

    def select(self, names: Sequence[str]) -> "TensorTable":
        return TensorTable({name: self.column(name) for name in names})

    def with_column(self, name: str, column: TensorColumn) -> "TensorTable":
        columns = dict(self._columns)
        columns[name] = column
        return TensorTable(columns)

    def rename(self, mapping: Mapping[str, str]) -> "TensorTable":
        return TensorTable({mapping.get(name, name): col
                            for name, col in self._columns.items()})

    def gather(self, indices: Tensor) -> "TensorTable":
        return TensorTable({name: col.gather(indices)
                            for name, col in self._columns.items()})

    def mask(self, mask: Tensor) -> "TensorTable":
        return TensorTable({name: col.mask(mask)
                            for name, col in self._columns.items()})

    def slice(self, start: int, length: int) -> "TensorTable":
        """A contiguous row range of every column (zero-copy views)."""
        return TensorTable({name: col.slice(start, length)
                            for name, col in self._columns.items()})

    def morsels(self, morsel_rows: int = DEFAULT_MORSEL_ROWS
                ) -> Iterable["TensorTable"]:
        """Partition the table into fixed-size row morsels (last one short)."""
        for start, length in morsel_bounds(self.num_rows, morsel_rows):
            yield self.slice(start, length)

    def to(self, device: Device | str) -> "TensorTable":
        return TensorTable({name: col.to(device)
                            for name, col in self._columns.items()})

    def decoded(self) -> "TensorTable":
        """Materialize every encoded column into its plain form."""
        return TensorTable({name: col.decoded()
                            for name, col in self._columns.items()})

    # -- conversion ------------------------------------------------------------------------

    def to_dataframe(self) -> DataFrame:
        return DataFrame({name: col.to_numpy() for name, col in self._columns.items()})

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        cols = ", ".join(f"{n}:{c.ltype.value}" for n, c in self._columns.items())
        return f"TensorTable(rows={self.num_rows}, columns=[{cols}])"
