"""Public API: the TQP session, prepared statements, and execution options.

The session exposes the paper's compile-to-tensors pipeline behind a
**prepared-statement** API shaped for serving traffic: a query is compiled
(parse → analyze → optimize → plan → trace) **once**, and every execution
after that only binds new parameter values to the already-traced program.

Typical use::

    from repro import TQPSession, ExecutionOptions
    from repro.datasets import tpch

    session = TQPSession()
    for name, frame in tpch.generate_tables(scale_factor=0.01).items():
        session.register(name, frame)

    # Compile once ...
    query = session.prepare(
        "select sum(l_extendedprice * l_discount) as revenue "
        "from lineitem where l_quantity < :q",
        options=ExecutionOptions(backend="torchscript", device="cpu"),
    )
    # ... bind many: each execution feeds the values as runtime tensor
    # inputs to the same traced program — no re-compilation, ever.
    for q in range(1, 25):
        print(query.bind(q=q).run())

A serving loop batches bindings through :meth:`PreparedQuery.execute_many`::

    results = query.execute_many([{"q": q} for q in range(1, 25)])

All knobs (backend, device, optimizer, plan cache, parallelism,
auto-parameterization, executor) live on one :class:`ExecutionOptions`
object.  On the graph backends, ``ExecutionOptions(executor=...)`` chooses
how cached plans are replayed: ``"auto"`` (the default) lowers the traced
graph to generated code (:mod:`repro.tensor.codegen`) when supported, so a
serving loop executes one compiled function per request instead of walking
the graph node by node; ``"interpret"`` forces the graph interpreter;
``"compiled"`` errors instead of falling back.  Results and profiles are
identical under both executors.  Ad-hoc ``session.sql(...)`` calls can opt into
**auto-parameterization** (``ExecutionOptions(auto_parameterize=True)``),
which lifts literals out of the text so that queries differing only in
constants share one plan-cache entry.  ``session.plan_cache.stats()`` exposes
hit/miss/invalidation counters for monitoring cache behaviour in a serving
deployment.

Switching hardware or software backend remains a one-line change
(``device="cuda"``, ``backend="onnx"``), as in Figure 3 of the paper.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.adaptive.planner import AdaptiveRuntime
from repro.backends import BACKENDS
from repro.core import ir_builder, ir_optimizer
from repro.core.columnar import TensorTable
from repro.core.executor import ExecutionResult, Executor
from repro.core.ir import IRNode
from repro.core.options import ExecutionOptions
from repro.core.parameters import (
    ParameterSpec,
    auto_parameterize,
    positional_binding,
)
from repro.core.plan_cache import PlanCache, normalize_sql
from repro.core.planner import OperatorPlan, plan_ir
from repro.dataframe import DataFrame
from repro.errors import (
    BatchBindingError,
    BindingError,
    CatalogError,
    ExecutionError,
)
from repro.frontend import Catalog, sql_to_physical
from repro.frontend.physical import PhysicalNode
from repro.tensor.device import Device, parse_device


@dataclasses.dataclass
class CompiledQuery:
    """A query compiled down to an Executor, plus every intermediate artifact."""

    sql: str
    physical_plan: PhysicalNode
    ir: IRNode
    operator_plan: OperatorPlan
    executor: Executor
    session: "TQPSession"
    #: ``(table, version)`` pairs of the scanned tables at compile time; the
    #: plan cache revalidates this on every hit so a re-registered table can
    #: never be served a stale traced program.
    schema_fingerprint: Optional[tuple] = None
    #: The fully resolved options this query was compiled under.
    options: ExecutionOptions = dataclasses.field(default_factory=ExecutionOptions)
    #: Parameter-type hints the statement was compiled with (needed to
    #: re-plan faithfully when a held handle refreshes after a re-register).
    param_types: Optional[dict] = None
    #: Adaptive strategy this plan was built under (``None`` when compiled
    #: statically; see :mod:`repro.adaptive`).
    strategy: Optional[str] = None

    @property
    def params(self) -> list[ParameterSpec]:
        """Bind parameters of the compiled plan, in lexical order."""
        return list(self.executor.params)

    @property
    def model_names(self) -> frozenset[str]:
        """ML models referenced by ``PREDICT`` calls in this plan."""
        return self.operator_plan.model_names

    def _refresh_from(self, fresh: "CompiledQuery") -> None:
        """Adopt a freshly compiled generation of this statement in place.

        Held handles (PreparedQuery, a serving runtime's statements) keep
        *this* object's identity; after a ``register()`` of new data the
        session rebuilds the plan and swaps the artifacts here, under the
        session lock, so the handle transparently follows the new table
        generation instead of replaying a traced program whose baked-in
        shapes (including pruning decisions) describe data that no longer
        exists.
        """
        self.physical_plan = fresh.physical_plan
        self.ir = fresh.ir
        self.operator_plan = fresh.operator_plan
        self.executor = fresh.executor
        self.schema_fingerprint = fresh.schema_fingerprint
        self.strategy = fresh.strategy

    def _prepare_execution(self, params: Optional[dict] = None
                           ) -> tuple[Executor, dict, dict]:
        """Atomic per-execution snapshot: ``(executor, inputs, zone maps)``.

        All three are re-resolved from the session per execution so a
        long-lived CompiledQuery held across a ``register()`` of new data
        never mixes table generations: the statistics always describe the
        same table version the converted inputs come from, and the executor
        (whose traced program bakes in data-dependent shapes) is rebuilt
        when its generation went stale.  The triple is snapshotted atomically
        under the session lock, so a concurrent re-registration can never
        hand an in-flight request mixed-generation state.

        ``params`` lets the adaptive runtime attribute the execution to its
        binding region when deciding whether to re-plan first.
        """
        return self.session.execution_state(self, params)

    def execute(self, profile: bool = False,
                params: Optional[dict] = None) -> ExecutionResult:
        """Run the query against the session's registered tables.

        ``params`` binds the statement's parameters (validated with typed
        :class:`~repro.errors.BindingError`\\ s); re-executions with new
        bindings reuse the traced program.

        Under ``ExecutionOptions(adaptive=True)`` every execution profiles
        (the feedback the runtime learns from) and feeds its observations
        back to ``session.adaptive`` afterwards.
        """
        adaptive = self.options.adaptive
        executor, inputs, stats = self._prepare_execution(params)
        # The strategy this snapshot runs under; read before executing so a
        # concurrent re-plan can't misattribute the observation.
        strategy = self.strategy
        result = executor.execute(inputs, profile=profile or adaptive,
                                  params=params, scan_stats=stats)
        if adaptive:
            self.session.adaptive.observe(
                self, params, result, strategy=strategy,
                plan_signature=executor.plan.root.pretty())
        return result

    def run(self, params: Optional[dict] = None) -> DataFrame:
        """Execute and return the result as a DataFrame."""
        return self.execute(params=params).to_dataframe()

    def explain(self) -> str:
        """Human-readable physical plan / IR / operator plan."""
        sections = [
            "== Physical plan ==", self.physical_plan.pretty(),
            "== TQP IR ==", self.ir.pretty(),
            "== Operator plan ==", self.operator_plan.root.pretty(),
        ]
        if self.params:
            sections += ["== Parameters ==",
                         "\n".join(str(spec) for spec in self.params)]
        return "\n\n".join(sections)

    def executor_graph(self, params: Optional[dict] = None):
        """Traced tensor graph of the query (Figure-4 style artifact)."""
        executor, inputs, _ = self._prepare_execution()
        return executor.executor_graph(inputs, params=params)

    def export_onnx(self, path: str, params: Optional[dict] = None) -> None:
        executor, inputs, _ = self._prepare_execution()
        executor.export_onnx(inputs, path, params=params)


class BoundQuery:
    """A prepared query plus one validated parameter binding."""

    def __init__(self, prepared: "PreparedQuery", values: dict[str, Any]):
        self.prepared = prepared
        #: Normalized values, validated at bind time.
        self.values = values

    def execute(self, profile: bool = False) -> ExecutionResult:
        return self.prepared.compiled.execute(profile=profile, params=self.values)

    def run(self) -> DataFrame:
        return self.execute().to_dataframe()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"BoundQuery({self.values})"


class PreparedQuery:
    """Compile-once / bind-many handle returned by :meth:`TQPSession.prepare`.

    The underlying :class:`CompiledQuery` lives in the session plan cache, so
    preparing the same statement twice shares one compiled artifact, and the
    first traced execution is reused by every subsequent binding.
    """

    def __init__(self, compiled: CompiledQuery, session: "TQPSession"):
        self.compiled = compiled
        self.session = session

    @property
    def parameters(self) -> list[ParameterSpec]:
        """The statement's parameters (name, inferred type, position)."""
        return self.compiled.params

    def bind(self, *args: Any, **kwargs: Any) -> BoundQuery:
        """Bind parameter values; validation happens here, with typed errors.

        Positional arguments bind ``?`` markers in order; keyword arguments
        bind ``:name`` markers.  Raises
        :class:`~repro.errors.BindingError` for missing, unknown or ill-typed
        values.
        """
        if args and kwargs:
            raise BindingError(
                "bind either positionally (for '?' markers) or by name "
                "(for ':name' markers), not both"
            )
        values = positional_binding(self.parameters, args) if args else dict(kwargs)
        normalized = self.compiled.executor.bind(values)
        return BoundQuery(self, normalized)

    def execute(self, *args: Any, **kwargs: Any) -> ExecutionResult:
        """Bind and execute in one call."""
        return self.bind(*args, **kwargs).execute()

    def run(self, *args: Any, **kwargs: Any) -> DataFrame:
        """Bind, execute, and return the result as a DataFrame."""
        return self.bind(*args, **kwargs).run()

    def execute_many(self, param_batches: Iterable[dict | Sequence[Any]],
                     on_error: str = "raise") -> list[ExecutionResult]:
        """Serving-loop entry point: execute one binding after another.

        Each batch item is either a dict (named parameters) or a sequence
        (positional ``?`` parameters).  The traced program is compiled at
        most once across the whole loop, the table inputs are converted and
        flattened once, and each binding then costs one call of the cached
        program (on the ``compiled`` executor, one generated-function call).

        All bindings are validated up front.  A bad one raises a typed
        :class:`~repro.errors.BatchBindingError` carrying the request index
        before any query runs (``on_error="raise"``), or — with
        ``on_error="collect"`` — fails only its own slot (the error object
        takes the failed request's place in the result list) while every
        other binding still executes.
        """
        params = self.parameters
        batches: list = []
        for index, batch in enumerate(param_batches):
            if isinstance(batch, dict):
                batches.append(dict(batch))
                continue
            try:
                batches.append(positional_binding(params, tuple(batch)))
            except BindingError as exc:
                # Attribute the failure to its request index; the executor
                # raises or collects it according to ``on_error``.
                batches.append(BatchBindingError(index, exc))
        executor, inputs, stats = self.compiled._prepare_execution()
        return executor.execute_many(inputs, batches, on_error=on_error,
                                     scan_stats=stats)

    def explain(self) -> str:
        return self.compiled.explain()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        names = ", ".join(f":{spec.name}" for spec in self.parameters)
        return f"PreparedQuery([{names}])"


class TQPSession:
    """Entry point: register data and models, compile SQL, execute on backends."""

    def __init__(self, default_backend: str = "pytorch",
                 default_device: Device | str = "cpu",
                 plan_cache_size: int = 64,
                 default_parallelism: int = 1,
                 parallel_mode: str = "simulated",
                 default_options: Optional[ExecutionOptions] = None):
        if default_options is not None:
            default_backend = default_options.backend or default_backend
            if default_options.device is not None:
                default_device = default_options.device
            if default_options.parallelism is not None:
                default_parallelism = default_options.parallelism
        if default_backend not in BACKENDS:
            raise ExecutionError(f"unknown backend {default_backend!r}")
        if parallel_mode not in ("simulated", "threads"):
            raise ExecutionError(f"unknown parallel mode {parallel_mode!r}")
        if default_parallelism < 1:
            raise ExecutionError("default_parallelism must be >= 1")
        self.default_backend = default_backend
        self.default_device = parse_device(default_device)
        #: Worker lanes used when ``compile``/``sql`` get no ``parallelism``.
        self.default_parallelism = default_parallelism
        #: ``"simulated"`` (deterministic lane annotations, the default) or
        #: ``"threads"`` (real thread pool for unprofiled eager execution).
        self.parallel_mode = parallel_mode
        #: Session-level defaults for per-query ``ExecutionOptions``.
        self.default_options = default_options or ExecutionOptions()
        self.catalog = Catalog()
        self._dataframes: dict[str, DataFrame] = {}
        self._models: dict[str, Callable] = {}
        self._conversion_cache: dict[tuple, TensorTable] = {}
        #: Compiled-plan LRU: repeated queries skip parse→optimize→plan→trace.
        self.plan_cache = PlanCache(capacity=plan_cache_size)
        #: Feedback loop behind ``ExecutionOptions(adaptive=True)``: observes
        #: executions, corrects estimates, and re-plans cached statements when
        #: a different strategy looks better (``self.adaptive.feedback.dump()``
        #: exposes the collected observations).
        self.adaptive = AdaptiveRuntime()
        self._table_versions: dict[str, int] = {}
        #: Guards the mutable session state (catalog, dataframes, models,
        #: conversion cache, table versions) against concurrent serving
        #: workers.  Re-entrant so locked entry points may call each other.
        #: Lock ordering is session lock → plan-cache lock, never the
        #: reverse: ``_plan_is_current`` runs under the cache lock and must
        #: therefore stay lock-free (its dict reads are GIL-atomic).
        self._lock = threading.RLock()

    # -- data & model registration ------------------------------------------

    def register(self, name: str, frame: DataFrame) -> None:
        """Register a DataFrame as a queryable table.

        Safe to call while other threads are serving queries: in-flight
        executions keep the snapshot they took at admission (see
        :meth:`execution_state`), and every later execution sees the new
        data, never a mix of generations.
        """
        with self._lock:
            self.catalog.register(name, frame)
            key = name.lower()
            self._dataframes[key] = frame
            stale = [k for k in self._conversion_cache if k[0] == key]
            for k in stale:
                del self._conversion_cache[k]
            # Traced programs bake data-dependent sizes in, so (re)registering
            # a table must drop every cached plan that scans it; bumping the
            # table version also changes the schema fingerprint (and the
            # conversion cache key) for future lookups.
            self._table_versions[key] = self._table_versions.get(key, 0) + 1
            self.plan_cache.remove_if(
                lambda q: any(scan.table.lower() == key
                              for scan in q.operator_plan.scans))

    def register_model(self, name: str, model) -> None:
        """Register an ML model for use with ``PREDICT('name', cols...)``.

        ``model`` may be a fitted model from :mod:`repro.ml.models` (it is
        compiled to a tensor function via the Hummingbird-like compiler) or an
        already-compiled callable ``f(args, num_rows) -> ExprValue``.

        Re-registering a model invalidates only the cached plans whose
        ``PREDICT`` calls actually reference it — plans over other models (or
        none) stay warm.
        """
        from repro.ml import compile_model

        if callable(model) and not hasattr(model, "predict_tensor"):
            compiled_model = model
        else:
            compiled_model = compile_model(model)
        with self._lock:
            self._models[name] = compiled_model
            # Compiled executors captured the model table at compile time;
            # drop exactly the plans that embed this model.
            self.plan_cache.remove_if(
                lambda q: name in q.operator_plan.model_names)

    def table_names(self) -> list[str]:
        return self.catalog.table_names()

    def dataframe(self, name: str) -> DataFrame:
        with self._lock:
            key = name.lower()
            if key not in self._dataframes:
                raise CatalogError(f"unknown table: {name!r}")
            return self._dataframes[key]

    # -- compilation -------------------------------------------------------------

    def _scan_fingerprint(self, operator_plan: OperatorPlan) -> tuple:
        """Schema fingerprint of a plan: the scanned tables' current versions.

        Every schema or data change goes through :meth:`register`, which bumps
        the table's version, so comparing this fingerprint at cache-hit time
        guarantees a stale compiled plan can never be served.
        """
        return tuple(sorted({
            (scan.table.lower(), self._table_versions.get(scan.table.lower(), 0))
            for scan in operator_plan.scans
        }))

    def _plan_is_current(self, compiled: CompiledQuery) -> bool:
        return (compiled.schema_fingerprint
                == self._scan_fingerprint(compiled.operator_plan))

    def _resolve_options(self, options: Optional[ExecutionOptions]
                         ) -> ExecutionOptions:
        # A call without an options object inherits the session's
        # default_options wholesale (including optimize / use_cache /
        # auto_parameterize); a passed object fully specifies those boolean
        # fields, while backend/device/parallelism still inherit via None.
        base = options if options is not None else self.default_options
        resolved = base.resolved(self.default_backend, self.default_device,
                                 self.default_parallelism)
        if resolved.backend not in BACKENDS:
            raise ExecutionError(f"unknown backend {resolved.backend!r}")
        return resolved

    def compile(self, sql: str, options: Optional[ExecutionOptions] = None,
                param_types: Optional[dict] = None) -> CompiledQuery:
        """Compile a SQL query down to an Executor.

        Args:
            sql: the query text (Spark-SQL-style, plus the PREDICT extension).
                May contain ``:name`` or ``?`` bind-parameter markers; the
                compiled plan then expects values at execution time.
            options: all compile/execute knobs in one
                :class:`ExecutionOptions` (backend, device, optimize,
                use_cache, parallelism, auto_parameterize, encoding,
                executor).  Unset fields inherit the session defaults.
            param_types: optional logical-type hints for parameters, by name
                (used by auto-parameterization; explicit markers are typed
                from their comparison context by the analyzer).

        The session plan cache is keyed on the *parameterized shape* of the
        statement — normalized SQL with markers, plus the options — so one
        cache entry serves every binding.  A hit returns the *same*
        :class:`CompiledQuery` and skips parse→optimize→plan→trace.
        Concurrent misses on one cold statement are single-flighted
        (:meth:`PlanCache.get_or_create`): the first caller compiles, the
        rest wait and share the entry.
        """
        resolved = self._resolve_options(options)
        if resolved.use_cache:
            hint_key = tuple(sorted(
                (name, ltype.value) for name, ltype in (param_types or {}).items()))
            cache_key = (normalize_sql(sql), resolved.cache_key(), hint_key)
            return self.plan_cache.get_or_create(
                cache_key,
                lambda: self._compile_uncached(sql, resolved, param_types),
                validate=self._plan_is_current)
        return self._compile_uncached(sql, resolved, param_types)

    def _compile_uncached(self, sql: str, resolved: ExecutionOptions,
                          param_types: Optional[dict]) -> CompiledQuery:
        """Run the full parse→analyze→optimize→plan pipeline.

        Holds the session lock throughout so the catalog, table statistics
        and model table the plan captures all describe one generation of the
        session state, even while another thread is re-registering a table.
        """
        with self._lock:
            physical = sql_to_physical(sql, self.catalog,
                                       optimized=resolved.optimize,
                                       param_types=param_types)
            query_ir = ir_optimizer.optimize_ir(ir_builder.build_ir(physical))
            plan_kwargs = dict(
                table_rows={name: frame.num_rows
                            for name, frame in self._dataframes.items()},
                use_threads=self.parallel_mode == "threads",
                table_stats={name: self.catalog.statistics(name)
                             for name in self._dataframes},
                devices=resolved.devices, shard_mode=resolved.shard)
            strategy = None
            if resolved.adaptive:
                # The runtime plans every strategy candidate and returns the
                # preferred one; the executor runs under the strategy's lane
                # count while the statement keeps ``resolved`` as its cache
                # identity (so re-plans land on the same cache entry).
                operator_plan, exec_options, strategy = \
                    self.adaptive.plan_statement(
                        sql, query_ir, resolved, plan_kwargs)
            else:
                operator_plan = plan_ir(
                    query_ir, parallelism=resolved.parallelism, **plan_kwargs)
                exec_options = resolved
            executor = Executor(operator_plan, models=dict(self._models),
                                options=exec_options,
                                scan_stats=self.scan_statistics(operator_plan))
            return CompiledQuery(
                sql=sql, physical_plan=physical, ir=query_ir,
                operator_plan=operator_plan, executor=executor,
                session=self, options=resolved, param_types=param_types,
                strategy=strategy,
                schema_fingerprint=self._scan_fingerprint(operator_plan))

    def prepare(self, sql: str, options: Optional[ExecutionOptions] = None,
                param_types: Optional[dict] = None) -> PreparedQuery:
        """Compile a parameterized statement for repeated execution.

        ``sql`` may use ``:name`` or ``?`` markers.  The returned
        :class:`PreparedQuery` exposes ``bind(...).execute()``,
        ``run(...)`` and the serving-loop ``execute_many(...)``; all bindings
        share one compiled (and, on the graph backends, one *traced*)
        artifact.
        """
        compiled = self.compile(sql, options=options, param_types=param_types)
        return PreparedQuery(compiled, self)

    def sql(self, sql: str, options: Optional[ExecutionOptions] = None,
            params: Optional[dict] = None) -> DataFrame:
        """Compile and execute in one call, returning a DataFrame.

        With ``params``, the text may contain ``:name`` markers.  With
        ``ExecutionOptions(auto_parameterize=True)`` literals are lifted out
        of the text first, so repeated calls that differ only in constants
        share one compiled plan (their results still match literal
        execution exactly).
        """
        resolved = self._resolve_options(options)
        if params:
            return self.compile(sql, options=resolved).run(params=params)
        if resolved.auto_parameterize:
            lifted = auto_parameterize(sql)
            if lifted is not None:
                compiled = self.compile(lifted.sql, options=resolved,
                                        param_types=lifted.types)
                return compiled.run(params=lifted.values)
        return self.compile(sql, options=resolved).run()

    # -- input preparation (data conversion phase) ----------------------------------

    def execution_state(self, compiled: CompiledQuery,
                        params: Optional[dict] = None
                        ) -> tuple[Executor, dict[str, TensorTable], dict]:
        """Atomic per-execution snapshot: ``(executor, inputs, zone maps)``.

        All three are resolved under one hold of the session lock, so a
        concurrent ``register()`` can never hand an in-flight request
        mixed-generation state — new columns pruned against old zone maps, a
        traced program whose baked-in pruning shapes describe the old data,
        or any other cross-generation pairing.  Either the whole snapshot
        predates the re-registration or the whole snapshot follows it.

        When the handle's compile-time generation went stale (its cache
        entry was already purged by :meth:`register`, but long-lived handles
        keep their object), the statement is re-planned here and the handle
        refreshed in place, so every held PreparedQuery keeps serving
        current data.

        Adaptive statements re-plan through the same path when the runtime's
        preferred strategy for this binding region differs from the compiled
        one (new observations, a region switch, or a drift flush).
        """
        with self._lock:
            replan = not self._plan_is_current(compiled)
            if compiled.options.adaptive:
                # Always consulted (lock order session → runtime): it also
                # records the binding region a triggered re-plan compiles for.
                replan = self.adaptive.wants_replan(compiled, params) or replan
            if replan:
                compiled._refresh_from(self._compile_uncached(
                    compiled.sql, compiled.options, compiled.param_types))
            executor = compiled.executor
            return (executor, self.prepare_inputs(executor),
                    self.scan_statistics(executor.plan))

    def scan_statistics(self, plan: OperatorPlan) -> dict[str, "object"]:
        """Storage statistics (zone maps) per scan alias of a plan.

        Handed to the :class:`Executor` so scans can prune morsel-aligned
        blocks; the statistics always describe the current table version
        (registration recomputes them), matching the inputs
        :meth:`prepare_inputs` serves for the same plan.
        """
        with self._lock:
            stats = {}
            for scan in plan.scans:
                table_stats = self.catalog.statistics(scan.table)
                if table_stats is not None:
                    stats[scan.alias] = table_stats
            return stats

    def prepare_inputs(self, executor: Executor) -> dict[str, TensorTable]:
        """Convert registered DataFrames into tensor tables for an executor.

        Columns are stored under the executor's encoding configuration
        (``ExecutionOptions.encoding``): low-cardinality strings become
        dictionary codes, sorted numerics run-length runs (see
        :mod:`repro.storage.encodings`).  Conversions are cached per
        ``(table, columns, table version, encoding mode)`` so repeated
        executions — benchmark iterations, serving loops — only pay the
        encoding cost once, while a ``register()`` of new data under the same
        name (or a different encoding configuration) can never serve stale
        converted columns to a long-lived :class:`CompiledQuery`.
        """
        from repro.distributed import DistributedScanOperator, shard_table
        from repro.storage.encodings import encode_table

        with self._lock:
            encoding_mode = executor.options.encoding
            inputs: dict[str, TensorTable] = {}
            for scan in executor.plan.scans:
                table_key = scan.table.lower()
                if table_key not in self._dataframes:
                    raise CatalogError(f"no registered table named {scan.table!r}")
                if isinstance(scan, DistributedScanOperator):
                    devices, shard_mode = scan.devices, scan.shard_mode
                else:
                    devices = shard_mode = None
                # The table name must stay the key's first element: register()
                # purges stale conversions by matching ``key[0]``.
                cache_key = (table_key, tuple(f.name for f in scan.fields),
                             self._table_versions.get(table_key, 0),
                             encoding_mode, devices, shard_mode)
                if cache_key not in self._conversion_cache:
                    frame = self._dataframes[table_key]
                    stats = self.catalog.statistics(table_key)
                    ndv = ({name: column.ndv
                            for name, column in stats.columns.items()}
                           if stats is not None else None)
                    converted = TensorTable(
                        encode_table(frame, scan.fields, mode=encoding_mode,
                                     column_ndv=ndv))
                    if devices is not None:
                        # Load-time placement: outside any trace/profiler, so
                        # sharding itself never shows up as query work.
                        converted = shard_table(converted, devices, shard_mode)
                    self._conversion_cache[cache_key] = converted
                inputs[scan.alias] = self._conversion_cache[cache_key]
            return inputs
