"""Public API: the TQP session.

Typical use (mirrors the paper's notebook workflow)::

    from repro import TQPSession
    from repro.datasets import tpch

    session = TQPSession()
    for name, frame in tpch.generate_tables(scale_factor=0.01).items():
        session.register(name, frame)

    query = session.compile(tpch.QUERIES[6], backend="torchscript", device="cpu")
    result = query.execute()
    print(result.to_dataframe())

Switching hardware or software backend is a one-line change
(``device="cuda"``, ``backend="onnx"``), as in Figure 3 of the paper.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

from repro.backends import BACKENDS
from repro.core import ir_builder, ir_optimizer
from repro.core.columnar import TensorTable, TensorColumn
from repro.core.executor import ExecutionResult, Executor
from repro.core.ir import IRNode
from repro.core.plan_cache import PlanCache, normalize_sql
from repro.core.planner import OperatorPlan, plan_ir
from repro.dataframe import DataFrame
from repro.errors import CatalogError, ExecutionError
from repro.frontend import Catalog, sql_to_physical
from repro.frontend.physical import PhysicalNode
from repro.tensor import Profiler
from repro.tensor.device import Device, parse_device


@dataclasses.dataclass
class CompiledQuery:
    """A query compiled down to an Executor, plus every intermediate artifact."""

    sql: str
    physical_plan: PhysicalNode
    ir: IRNode
    operator_plan: OperatorPlan
    executor: Executor
    session: "TQPSession"
    #: ``(table, version)`` pairs of the scanned tables at compile time; the
    #: plan cache revalidates this on every hit so a re-registered table can
    #: never be served a stale traced program.
    schema_fingerprint: Optional[tuple] = None

    def execute(self, profile: bool = False) -> ExecutionResult:
        """Run the query against the session's registered tables."""
        inputs = self.session.prepare_inputs(self.executor)
        return self.executor.execute(inputs, profile=profile)

    def run(self) -> DataFrame:
        """Execute and return the result as a DataFrame."""
        return self.execute().to_dataframe()

    def explain(self) -> str:
        """Human-readable physical plan / IR / operator plan."""
        return "\n\n".join([
            "== Physical plan ==", self.physical_plan.pretty(),
            "== TQP IR ==", self.ir.pretty(),
            "== Operator plan ==", self.operator_plan.root.pretty(),
        ])

    def executor_graph(self):
        """Traced tensor graph of the query (Figure-4 style artifact)."""
        inputs = self.session.prepare_inputs(self.executor)
        return self.executor.executor_graph(inputs)

    def export_onnx(self, path: str) -> None:
        inputs = self.session.prepare_inputs(self.executor)
        self.executor.export_onnx(inputs, path)


class TQPSession:
    """Entry point: register data and models, compile SQL, execute on backends."""

    def __init__(self, default_backend: str = "pytorch",
                 default_device: Device | str = "cpu",
                 plan_cache_size: int = 64,
                 default_parallelism: int = 1,
                 parallel_mode: str = "simulated"):
        if default_backend not in BACKENDS:
            raise ExecutionError(f"unknown backend {default_backend!r}")
        if parallel_mode not in ("simulated", "threads"):
            raise ExecutionError(f"unknown parallel mode {parallel_mode!r}")
        if default_parallelism < 1:
            raise ExecutionError("default_parallelism must be >= 1")
        self.default_backend = default_backend
        self.default_device = parse_device(default_device)
        #: Worker lanes used when ``compile``/``sql`` get no ``parallelism``.
        self.default_parallelism = default_parallelism
        #: ``"simulated"`` (deterministic lane annotations, the default) or
        #: ``"threads"`` (real thread pool for unprofiled eager execution).
        self.parallel_mode = parallel_mode
        self.catalog = Catalog()
        self._dataframes: dict[str, DataFrame] = {}
        self._models: dict[str, Callable] = {}
        self._conversion_cache: dict[tuple, TensorTable] = {}
        #: Compiled-plan LRU: repeated queries skip parse→optimize→plan→trace.
        self.plan_cache = PlanCache(capacity=plan_cache_size)
        self._table_versions: dict[str, int] = {}

    # -- data & model registration ------------------------------------------

    def register(self, name: str, frame: DataFrame) -> None:
        """Register a DataFrame as a queryable table."""
        self.catalog.register(name, frame)
        key = name.lower()
        self._dataframes[key] = frame
        stale = [k for k in self._conversion_cache if k[0] == key]
        for k in stale:
            del self._conversion_cache[k]
        # Traced programs bake data-dependent sizes in, so (re)registering a
        # table must drop every cached plan that scans it; bumping the table
        # version also changes the schema fingerprint for future keys.
        self._table_versions[key] = self._table_versions.get(key, 0) + 1
        self.plan_cache.remove_if(
            lambda q: any(scan.table.lower() == key for scan in q.operator_plan.scans))

    def register_model(self, name: str, model) -> None:
        """Register an ML model for use with ``PREDICT('name', cols...)``.

        ``model`` may be a fitted model from :mod:`repro.ml.models` (it is
        compiled to a tensor function via the Hummingbird-like compiler) or an
        already-compiled callable ``f(args, num_rows) -> ExprValue``.
        """
        from repro.ml import compile_model

        if callable(model) and not hasattr(model, "predict_tensor"):
            self._models[name] = model
        else:
            self._models[name] = compile_model(model)
        # Compiled executors captured the model table at compile time.
        self.plan_cache.clear()

    def table_names(self) -> list[str]:
        return self.catalog.table_names()

    def dataframe(self, name: str) -> DataFrame:
        key = name.lower()
        if key not in self._dataframes:
            raise CatalogError(f"unknown table: {name!r}")
        return self._dataframes[key]

    # -- compilation -------------------------------------------------------------

    def _scan_fingerprint(self, operator_plan: OperatorPlan) -> tuple:
        """Schema fingerprint of a plan: the scanned tables' current versions.

        Every schema or data change goes through :meth:`register`, which bumps
        the table's version, so comparing this fingerprint at cache-hit time
        guarantees a stale compiled plan can never be served.
        """
        return tuple(sorted({
            (scan.table.lower(), self._table_versions.get(scan.table.lower(), 0))
            for scan in operator_plan.scans
        }))

    def _plan_is_current(self, compiled: CompiledQuery) -> bool:
        return (compiled.schema_fingerprint
                == self._scan_fingerprint(compiled.operator_plan))

    def compile(self, sql: str, backend: Optional[str] = None,
                device: Device | str | None = None,
                optimize: bool = True, use_cache: bool = True,
                parallelism: Optional[int] = None) -> CompiledQuery:
        """Compile a SQL query down to an Executor.

        Args:
            sql: the query text (Spark-SQL-style, plus the PREDICT extension).
            backend: ``pytorch`` (eager), ``torchscript``, ``onnx``, or
                ``torchscript-noopt``; defaults to the session's backend.
            device: ``cpu``, ``cuda`` (simulated), or ``wasm`` (simulated,
                requires the ``onnx`` backend); defaults to the session's device.
            optimize: apply frontend optimizer rules (disable for ablations).
            use_cache: serve repeated queries from the session's compiled-plan
                cache (keyed by normalized SQL, backend, device, optimize
                flag and parallelism; each entry's schema fingerprint is
                revalidated on hit).  A hit returns the *same*
                :class:`CompiledQuery`, so an already-traced program is reused
                and parse→optimize→plan→trace are all skipped.
            parallelism: worker lanes for the morsel-driven parallel operators
                (defaults to the session's ``default_parallelism``).  With 1
                the plan is fully serial; above 1 the planner parallelizes
                every eligible operator whose estimated input cardinality
                clears the morsel threshold.
        """
        backend = backend or self.default_backend
        device = parse_device(device) if device is not None else self.default_device
        parallelism = (self.default_parallelism if parallelism is None
                       else max(1, int(parallelism)))
        cache_key = None
        if use_cache:
            cache_key = (normalize_sql(sql), backend, str(device), optimize,
                         parallelism)
            cached = self.plan_cache.get(cache_key, validate=self._plan_is_current)
            if cached is not None:
                return cached
        physical = sql_to_physical(sql, self.catalog, optimized=optimize)
        query_ir = ir_optimizer.optimize_ir(ir_builder.build_ir(physical))
        operator_plan = plan_ir(
            query_ir, parallelism=parallelism,
            table_rows={name: frame.num_rows
                        for name, frame in self._dataframes.items()},
            use_threads=self.parallel_mode == "threads")
        executor = Executor(operator_plan, backend=backend, device=device,
                            models=dict(self._models), parallelism=parallelism)
        compiled = CompiledQuery(sql=sql, physical_plan=physical, ir=query_ir,
                                 operator_plan=operator_plan, executor=executor,
                                 session=self,
                                 schema_fingerprint=self._scan_fingerprint(operator_plan))
        if cache_key is not None:
            self.plan_cache.put(cache_key, compiled)
        return compiled

    def sql(self, sql: str, backend: Optional[str] = None,
            device: Device | str | None = None,
            parallelism: Optional[int] = None) -> DataFrame:
        """Compile and execute in one call, returning a DataFrame."""
        return self.compile(sql, backend=backend, device=device,
                            parallelism=parallelism).run()

    # -- input preparation (data conversion phase) ----------------------------------

    def prepare_inputs(self, executor: Executor) -> dict[str, TensorTable]:
        """Convert registered DataFrames into tensor tables for an executor.

        Conversions are cached per (table, columns) so repeated executions —
        e.g. benchmark iterations — only pay the encoding cost once, mirroring
        the paper's separation of data transformation from query execution.
        """
        inputs: dict[str, TensorTable] = {}
        for scan in executor.plan.scans:
            table_key = scan.table.lower()
            if table_key not in self._dataframes:
                raise CatalogError(f"no registered table named {scan.table!r}")
            cache_key = (table_key, tuple(f.name for f in scan.fields))
            if cache_key not in self._conversion_cache:
                frame = self._dataframes[table_key]
                columns = {}
                for field in scan.fields:
                    base = field.name.split(".", 1)[1] if "." in field.name else field.name
                    columns[field.name] = TensorColumn.from_numpy(frame[base])
                self._conversion_cache[cache_key] = TensorTable(columns)
            inputs[scan.alias] = self._conversion_cache[cache_key]
        return inputs
