"""TQP core: the compilation stack from physical plans to tensor programs."""

from repro.core.columnar import LogicalType, TensorColumn, TensorTable
from repro.core.executor import ExecutionResult, Executor
from repro.core.session import CompiledQuery, TQPSession

__all__ = [
    "CompiledQuery",
    "ExecutionResult",
    "Executor",
    "LogicalType",
    "TQPSession",
    "TensorColumn",
    "TensorTable",
]
