"""Shared key-factorization machinery used by joins, aggregation and DISTINCT.

Grouping and joining over arbitrary key types stay inside the tensor op
vocabulary: numeric/date keys are densified with ``unique``; padded string
keys are densified with the sort + neighbour-comparison trick of
:func:`repro.core.strings.dense_rank`; multi-column keys are mixed pairwise
and re-densified to avoid overflow.
"""

from __future__ import annotations

from repro.core import strings
from repro.core.columnar import LogicalType
from repro.core.expressions import ExprValue
from repro.errors import ExecutionError
from repro.tensor import Tensor, ops


def factorize_single(value: ExprValue) -> Tensor:
    """Dense int64 ids (0..G-1) for one key column.

    Dictionary-encoded string keys densify their int32 codes directly — one
    ``unique`` over ``(n,)`` integers instead of the lexsort-based
    ``dense_rank`` over the ``(n × m)`` code-point matrix.  Because the
    dictionary is sorted, the resulting ids are still in lexicographic order.
    """
    if value.ltype == LogicalType.STRING and value.encoding is None:
        return strings.dense_rank(value.tensor)
    _, inverse, _ = ops.unique(value.tensor)
    return inverse


def id_count(ids: Tensor) -> Tensor:
    """``max(ids) + 1`` as a 0-d int64 tensor, and 0 for an empty input.

    Used for scatter sizes.  Padding with a ``-1`` sentinel before the max
    keeps the traced op valid when a parameter rebinding empties the input
    (``np.max`` has no identity on empty arrays).
    """
    sentinel = ops.tensor([-1], dtype="int64", device=ids.device)
    padded = ops.concat([ops.cast(ids, "int64"), sentinel], axis=0)
    return ops.cast(ops.add(ops.max_(padded), 1), "int64")


def factorize_pair(left: ExprValue, right: ExprValue) -> tuple[Tensor, Tensor]:
    """Jointly densify one key column of a join's left and right side.

    Both sides must receive ids drawn from the same dictionary so equal values
    map to equal ids; this is achieved by concatenating the two key columns
    before densification.
    """
    if (left.ltype == LogicalType.STRING) != (right.ltype == LogicalType.STRING):
        raise ExecutionError("join key types do not match")
    if left.ltype == LogicalType.STRING:
        width = max(left.tensor.shape[1], right.tensor.shape[1])
        both = ops.concat([ops.pad2d(left.tensor, width),
                           ops.pad2d(right.tensor, width)], axis=0)
        ids = strings.dense_rank(both)
    else:
        if LogicalType.FLOAT in (left.ltype, right.ltype):
            target = "float64"
        else:
            target = "int64"
        both = ops.concat([ops.cast(left.tensor, target),
                           ops.cast(right.tensor, target)], axis=0)
        _, ids, _ = ops.unique(both)
    # The split point is read from the left side's row count at run time so a
    # parameter rebinding that changes either input's size replays correctly.
    left_ids, right_ids = ops.split_rows(ids, left.tensor)
    return left_ids, right_ids


#: Upper bound on the static group-id space of the dictionary fast path
#: (product of dictionary cardinalities); beyond it the scatter buffers would
#: dwarf the sort the path avoids.
MAX_STATIC_GROUP_IDS = 1 << 20


def static_radix_group_ids(key_values: list[ExprValue]
                           ) -> "tuple[Tensor, int] | None":
    """Sort-free group ids when *every* key is dictionary-encoded.

    Dictionary codes are already dense ids over the column's dictionary, so a
    composite group id is just a radix mix with the (static) dictionary
    cardinalities — no ``unique`` / ``dense_rank`` sort at all.  The id space
    covers every dictionary combination, including ones absent from the rows
    (or filtered out by the current parameter binding), so callers must
    compact empty groups afterwards; returns ``None`` when any key is not
    dictionary-encoded or the id space would be too large.
    """
    if not key_values or any(
            value.encoding is None or getattr(value.encoding, "kind", None)
            != "dictionary" for value in key_values):
        return None
    num_groups = 1
    for value in key_values:
        num_groups *= max(1, value.encoding.cardinality)
    if num_groups > MAX_STATIC_GROUP_IDS:
        return None
    combined: Tensor | None = None
    for value in key_values:
        codes = ops.cast(value.tensor, "int64")
        if combined is None:
            combined = codes
        else:
            combined = ops.add(
                ops.mul(combined, value.encoding.cardinality), codes)
    return combined, num_groups


def combine_ids(id_columns: list[Tensor]) -> Tensor:
    """Mix several dense id columns into one dense composite id column."""
    if not id_columns:
        raise ExecutionError("combine_ids() requires at least one id column")
    combined = id_columns[0]
    for ids in id_columns[1:]:
        radix = id_count(ids)
        mixed = ops.add(ops.mul(combined, radix), ids)
        _, combined, _ = ops.unique(mixed)
    return combined


def group_table(id_columns: list[Tensor], num_rows: int) -> tuple[Tensor, int, Tensor]:
    """Compute (group_ids, num_groups, representative_row_indices).

    ``representative_row_indices[g]`` is the first input row of group ``g``;
    aggregation uses it to materialize the group key columns.
    """
    if num_rows == 0:
        empty = ops.zeros((0,), dtype="int64")
        return empty, 0, empty
    group_ids = combine_ids(id_columns) if id_columns else ops.zeros(
        (num_rows,), dtype="int64"
    )
    if id_columns:
        num_groups = int(ops.add(ops.max_(group_ids), 1).item())
    else:
        num_groups = 1
    representatives = ops.scatter_min(
        group_ids, ops.arange_like(group_ids), num_groups
    )
    return group_ids, num_groups, representatives
