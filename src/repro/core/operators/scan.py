"""Table scan: bind a registered tensor table (already converted) to the plan.

Scans are also where **zone-map pruning** happens: the planner attaches the
prunable conjuncts of a filter sitting directly on the scan (see
:mod:`repro.storage.pruning`), and the scan drops every morsel-aligned block
the zone maps rule out *before any kernel touches the block's data*.

Three pruning regimes keep this sound under every backend:

* literal conjuncts always resolve — surviving block ranges are selected with
  ``narrow`` + one ``concat`` per column (and a traced program bakes exactly
  those ranges in, which is correct because the inputs a trace is tied to are
  fixed until the table version changes);
* parameterized conjuncts resolve at **bind time** on the eager backend: every
  execution folds the bound python values into the block check, so rebinding
  re-decides which blocks to skip;
* while a trace is being recorded, parameter values must not influence python
  control flow, so parameterized conjuncts instead lower to tensor ops over
  the zone-map tensors (:func:`repro.storage.pruning.block_mask_tensor`) and a
  per-row gather — the traced program then re-evaluates block survival from
  the runtime parameter inputs on every binding.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.columnar import TensorTable, morsel_bounds
from repro.core.operators.base import ExecutionContext, TensorOperator
from repro.errors import ExecutionError
from repro.frontend.logical import Field
from repro.tensor import ops
from repro.tensor.tracing import current_trace


def _param_python_values(ctx: ExecutionContext) -> dict:
    """Bound parameter values as python scalars (eager path only)."""
    from repro.core.columnar import LogicalType, decode_strings

    values = {}
    for name, value in ctx.eval_ctx.params.items():
        tensor = value.tensor
        if value.ltype == LogicalType.STRING:
            width = tensor.shape[-1] if tensor.ndim else 1
            decoded = decode_strings(tensor.numpy().reshape(1, width))
            values[name] = str(decoded[0])
        else:
            values[name] = tensor.item()
    return values


class ScanOperator(TensorOperator):
    """Leaf operator: fetch the input tensor table bound to this scan's alias.

    Data conversion (DataFrame → tensor columns) happens in the Executor's
    preparation step, outside the measured query execution, exactly like the
    paper separates data transformation from query execution.
    """

    name = "TableScan"

    #: Whether parameterized conjuncts may lower to a traced row mask.  The
    #: morsel variant forbids it: its static morsel bounds would bake the
    #: first binding's (dynamic) row count into the trace.
    traced_dynamic_pruning = True

    def __init__(self, table: str, alias: str, fields: list[Field]):
        super().__init__([])
        self.table = table
        self.alias = alias
        self.fields = fields
        #: Prunable conjuncts attached by the planner (empty = no pruning).
        self.pruning = []
        #: Outcome of the last pruning decision (for benchmarks/monitoring).
        self.last_pruning: Optional[dict] = None

    def _base_table(self, ctx: ExecutionContext) -> TensorTable:
        table = ctx.input_table(self.alias)
        missing = [f.name for f in self.fields if f.name not in table]
        if missing:
            raise ExecutionError(
                f"input table for {self.alias!r} is missing columns {missing}"
            )
        return table.select([f.name for f in self.fields])

    @staticmethod
    def _materialize_rle(table: TensorTable) -> TensorTable:
        """Decode any remaining run-length columns after pruning.

        RLE is materialized at the scan — after the compressed tensors
        crossed the (simulated) device bus, and after block pruning sliced
        out the surviving ranges (slices decode only their overlapping runs)
        — so downstream operators only ever see plain or dictionary-encoded
        columns.
        """
        return TensorTable({
            name: (column.decoded()
                   if column.encoding is not None and column.encoding.kind == "rle"
                   else column)
            for name, column in table.columns()
        })

    # -- zone-map pruning ----------------------------------------------------

    def _zone_stats(self, ctx: ExecutionContext):
        stats = (ctx.zone_maps or {}).get(self.alias)
        if stats is None or not self.pruning:
            return None
        return stats

    def _block_survival(self, ctx: ExecutionContext, stats
                        ) -> tuple[np.ndarray, list]:
        """(surviving-block mask, conjuncts left for the tensor path).

        Literal conjuncts always fold in python.  Parameterized conjuncts fold
        in python only when no trace is recording (their bound values may then
        steer control flow); under a trace they are returned for tensor-level
        handling.
        """
        from repro.storage.pruning import surviving_blocks

        tracing = current_trace() is not None
        static = [c for c in self.pruning if not c.has_params]
        dynamic = [c for c in self.pruning if c.has_params]
        params = None
        if dynamic and not tracing:
            params = _param_python_values(ctx)
        mask = surviving_blocks(static if tracing else static + dynamic,
                                stats, params)
        # Only zone maps that can actually discriminate blocks are worth
        # compiling into the trace; the rest would re-run on every binding
        # without ever skipping anything.
        traced_dynamic = ([c for c in dynamic if c.discriminative]
                          if tracing and self.traced_dynamic_pruning else [])
        return mask, traced_dynamic

    def _apply_pruning(self, table: TensorTable, ctx: ExecutionContext
                       ) -> TensorTable:
        stats = self._zone_stats(ctx)
        self.last_pruning = None
        if stats is None or table.num_rows != stats.row_count:
            return table
        mask, traced_dynamic = self._block_survival(ctx, stats)
        total = len(mask)
        skipped = int(total - mask.sum())
        self.last_pruning = {
            "blocks_total": total,
            "blocks_skipped": skipped,
            "rows_total": stats.row_count,
            "dynamic": bool(traced_dynamic),
            "conjuncts": [c.describe() for c in self.pruning],
        }
        if skipped:
            table = self._select_blocks(table, mask, stats.block_rows)
        if traced_dynamic:
            table = self._mask_blocks_traced(table, mask, traced_dynamic,
                                             stats, ctx)
        self.last_pruning["rows_scanned"] = table.num_rows
        return table

    def _select_blocks(self, table: TensorTable, mask: np.ndarray,
                       block_rows: int) -> TensorTable:
        """Keep only surviving blocks: one ``narrow`` per contiguous run of
        survivors, one ``concat`` per column."""
        bounds = morsel_bounds(table.num_rows, block_rows)
        ranges: list[tuple[int, int]] = []
        for block, (start, length) in enumerate(bounds):
            if not mask[block]:
                continue
            if ranges and ranges[-1][0] + ranges[-1][1] == start:
                ranges[-1] = (ranges[-1][0], ranges[-1][1] + length)
            else:
                ranges.append((start, length))
        if not ranges:
            return table.slice(0, 0)
        pieces = [table.slice(start, length) for start, length in ranges]
        if len(pieces) == 1:
            return pieces[0]
        from repro.core.operators.parallel import concat_morsels

        return concat_morsels(pieces)

    def _mask_blocks_traced(self, table: TensorTable, static_mask: np.ndarray,
                            conjuncts: list, stats, ctx: ExecutionContext
                            ) -> TensorTable:
        """Parameterized pruning inside a trace: per-block survival becomes a
        tensor computed from the zone maps and the runtime parameter inputs,
        gathered per row."""
        from repro.storage.pruning import block_mask_tensor

        param_tensors = {name: value.tensor
                         for name, value in ctx.eval_ctx.params.items()}
        block_mask = block_mask_tensor(conjuncts, stats, param_tensors,
                                       device=ctx.device)
        if block_mask is None:
            return table
        # Rows carry the id of the block they came from; after static
        # selection only surviving blocks remain, so ids are compacted.
        surviving = np.flatnonzero(static_mask)
        row_blocks = np.repeat(
            np.arange(len(surviving), dtype=np.int64),
            [min(stats.block_rows,
                 stats.row_count - int(b) * stats.block_rows)
             for b in surviving])
        keep_by_block = ops.take(block_mask,
                                 ops.tensor(surviving, device=ctx.device))
        row_ids = ops.tensor(row_blocks, device=ctx.device)
        return table.mask(ops.take(keep_by_block, row_ids))

    # -- execution -----------------------------------------------------------

    def _execute(self, ctx: ExecutionContext) -> TensorTable:
        return self._materialize_rle(
            self._apply_pruning(self._base_table(ctx), ctx))

    def describe(self) -> str:
        if self.pruning:
            return f"TableScan({self.table}, pruned={len(self.pruning)} conjuncts)"
        return f"TableScan({self.table})"
