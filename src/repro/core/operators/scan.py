"""Table scan: bind a registered tensor table (already converted) to the plan."""

from __future__ import annotations

from repro.core.columnar import TensorTable
from repro.core.operators.base import ExecutionContext, TensorOperator
from repro.errors import ExecutionError
from repro.frontend.logical import Field


class ScanOperator(TensorOperator):
    """Leaf operator: fetch the input tensor table bound to this scan's alias.

    Data conversion (DataFrame → tensor columns) happens in the Executor's
    preparation step, outside the measured query execution, exactly like the
    paper separates data transformation from query execution.
    """

    name = "TableScan"

    def __init__(self, table: str, alias: str, fields: list[Field]):
        super().__init__([])
        self.table = table
        self.alias = alias
        self.fields = fields

    def _execute(self, ctx: ExecutionContext) -> TensorTable:
        table = ctx.input_table(self.alias)
        missing = [f.name for f in self.fields if f.name not in table]
        if missing:
            raise ExecutionError(
                f"input table for {self.alias!r} is missing columns {missing}"
            )
        return table.select([f.name for f in self.fields])

    def describe(self) -> str:
        return f"TableScan({self.table})"
