"""Limit, Distinct and Rename operators."""

from __future__ import annotations

from repro.core.columnar import TensorTable
from repro.core.expressions import ExprValue
from repro.core.operators.base import ExecutionContext, TensorOperator
from repro.core.operators.grouping import combine_ids, factorize_single, id_count
from repro.errors import ExecutionError
from repro.frontend.logical import Field
from repro.tensor import ops


class LimitOperator(TensorOperator):
    """Keep the first N rows."""

    name = "Limit"

    def __init__(self, child: TensorOperator, count: int):
        super().__init__([child])
        self.count = count

    def describe(self) -> str:
        return f"Limit({self.count})"

    def _execute(self, ctx: ExecutionContext) -> TensorTable:
        table = self.children[0].execute(ctx)
        anchor = table.anchor
        if anchor is None:
            return table
        # min(count, num_rows) computed at run time so the traced program
        # keeps the right number of rows under a new parameter binding.
        keep = ops.minimum(ops.row_count(anchor), self.count)
        return table.gather(ops.arange_until(keep))


class DistinctOperator(TensorOperator):
    """Remove duplicate rows (grouping over all output columns)."""

    name = "Distinct"

    def __init__(self, child: TensorOperator):
        super().__init__([child])

    def _execute(self, ctx: ExecutionContext) -> TensorTable:
        table = self.children[0].execute(ctx)
        id_columns = []
        for _, column in table.columns():
            column = column._positional()  # RLE runs cannot densify in place
            value = ExprValue(column.tensor, column.ltype, False, column.valid,
                              column.encoding)
            id_columns.append(factorize_single(value))
        group_ids = combine_ids(id_columns)
        num_groups = id_count(group_ids)
        representatives = ops.scatter_min(
            group_ids, ops.arange_like(group_ids), num_groups
        )
        return table.gather(representatives)


class RenameOperator(TensorOperator):
    """Rename the child's output columns positionally (derived-table aliases)."""

    name = "Rename"

    def __init__(self, child: TensorOperator, output_fields: list[Field]):
        super().__init__([child])
        self.output_fields = output_fields

    def _execute(self, ctx: ExecutionContext) -> TensorTable:
        table = self.children[0].execute(ctx)
        names = table.column_names
        if len(names) != len(self.output_fields):
            raise ExecutionError(
                "rename arity mismatch: "
                f"{len(names)} input columns vs {len(self.output_fields)} output fields"
            )
        return TensorTable({
            field.name: table.column(name)
            for name, field in zip(names, self.output_fields)
        })
