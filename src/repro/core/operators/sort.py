"""ORDER BY as a tensor program (multi-key indirect sort)."""

from __future__ import annotations

from repro.core.columnar import LogicalType, TensorTable
from repro.core.expressions import evaluate_encoded, to_column
from repro.core.operators.base import ExecutionContext, TensorOperator
from repro.errors import UnsupportedOperationError
from repro.frontend.ast import Expr
from repro.tensor import Tensor, ops


class SortOperator(TensorOperator):
    """Stable multi-key sort via ``lexsort`` over the evaluated key columns.

    Numeric/date keys sort directly (negated for DESC); string keys contribute
    one sub-key per character column of the padded representation, preserving
    lexicographic order.
    """

    name = "Sort"

    def __init__(self, child: TensorOperator, keys: list[tuple[Expr, bool]]):
        super().__init__([child])
        self.keys = keys

    def describe(self) -> str:
        return f"Sort(keys={len(self.keys)})"

    def _key_tensors(self, table: TensorTable, ctx: ExecutionContext) -> list[Tensor]:
        """Sub-keys in priority order (primary first)."""
        subkeys: list[Tensor] = []
        for expr, ascending in self.keys:
            value = evaluate_encoded(expr, table, ctx.eval_ctx)
            column = to_column(value, table.num_rows, like=table.anchor)
            if column.encoding is not None:
                # Dictionary codes are order-preserving (sorted dictionary):
                # one integer sub-key replaces m per-character sub-keys.
                key = ops.cast(column.tensor, "int64")
                subkeys.append(key if ascending else ops.neg(key))
            elif column.ltype == LogicalType.STRING:
                codes = column.tensor
                for char_index in range(codes.shape[1]):
                    char_key = ops.slice_(codes, (slice(None), char_index))
                    subkeys.append(char_key if ascending else ops.neg(char_key))
            elif column.ltype == LogicalType.BOOL:
                key = ops.cast(column.tensor, "int64")
                subkeys.append(key if ascending else ops.neg(key))
            else:
                subkeys.append(column.tensor if ascending else ops.neg(column.tensor))
        return subkeys

    def _execute(self, ctx: ExecutionContext) -> TensorTable:
        table = self.children[0].execute(ctx)
        if not self.keys:
            return table
        subkeys = self._key_tensors(table, ctx)
        if not subkeys:
            raise UnsupportedOperationError("ORDER BY produced no sort keys")
        # numpy lexsort: the last key is primary, so reverse the priority order.
        permutation = ops.lexsort(list(reversed(subkeys)))
        return table.gather(permutation)
