"""Projection: compute output expressions as new tensor columns."""

from __future__ import annotations

from repro.core.columnar import LogicalType, TensorTable
from repro.core.expressions import evaluate, to_column
from repro.core.operators.base import ExecutionContext, TensorOperator
from repro.frontend.ast import Expr


class ProjectOperator(TensorOperator):
    """Evaluate each projection expression and assemble the output table."""

    name = "Project"

    def __init__(self, child: TensorOperator, exprs: list[Expr], names: list[str],
                 types: list[LogicalType]):
        super().__init__([child])
        self.exprs = exprs
        self.names = names
        self.types = types

    def _execute(self, ctx: ExecutionContext) -> TensorTable:
        table = self.children[0].execute(ctx)
        columns = {}
        for expr, name in zip(self.exprs, self.names):
            value = evaluate(expr, table, ctx.eval_ctx)
            columns[name] = to_column(value, table.num_rows, like=table.anchor)
        return TensorTable(columns)

    def describe(self) -> str:
        return f"Project({len(self.exprs)} cols)"
