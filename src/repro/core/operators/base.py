"""Operator-plan infrastructure: the output of TQP's planning layer.

The planning layer maps every IR operator to a :class:`TensorOperator` whose
``execute`` method is written purely in terms of tensor ops (plus the
expression compiler).  The execution layer (see :mod:`repro.core.executor`)
turns the resulting operator plan into an Executor for a chosen backend and
device.
"""

from __future__ import annotations

from typing import Optional

from repro.core.columnar import TensorTable
from repro.core.expressions import EvaluationContext
from repro.errors import ExecutionError
from repro.tensor import current_profiler
from repro.tensor.device import Device, parse_device


class ExecutionContext:
    """Everything an operator needs at runtime."""

    def __init__(self, inputs: dict[str, TensorTable],
                 eval_ctx: Optional[EvaluationContext] = None,
                 device: Device | str = "cpu", parallelism: int = 1,
                 zone_maps: Optional[dict] = None):
        self.inputs = inputs
        self.device = parse_device(device)
        self.eval_ctx = eval_ctx or EvaluationContext(device=self.device)
        #: Worker lanes the executor granted to morsel-driven operators.
        self.parallelism = max(1, int(parallelism))
        #: Storage statistics per scan alias
        #: (``repro.storage.TableStatistics``); scans consult these zone maps
        #: for block pruning.  ``None`` disables pruning.
        self.zone_maps = zone_maps or {}

    def input_table(self, alias: str) -> TensorTable:
        if alias not in self.inputs:
            raise ExecutionError(f"no input table bound for scan alias {alias!r}")
        return self.inputs[alias]


class TensorOperator:
    """Base class for relational operators implemented as tensor programs."""

    #: short name used by the profiler scopes and the Figure-2 breakdown
    name = "operator"

    def __init__(self, children: list["TensorOperator"]):
        self.children = children

    def execute(self, ctx: ExecutionContext) -> TensorTable:
        """Execute the subtree rooted at this operator."""
        profiler = current_profiler()
        if profiler is None:
            return self._execute(ctx)
        with profiler.scope(self.describe()):
            return self._execute(ctx)

    def _execute(self, ctx: ExecutionContext) -> TensorTable:
        raise NotImplementedError

    def describe(self) -> str:
        return self.name

    def pretty(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.describe()]
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()
