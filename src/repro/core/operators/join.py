"""Join operators expressed as tensor programs.

The equi-join follows the TQP strategy of staying inside the tensor op
vocabulary: join keys are densified into integer ids, the build side is
sorted, probe rows locate their match ranges with ``searchsorted``, and the
ragged match lists are flattened with ``repeat`` + ``arange`` arithmetic into
flat gather indices.  Semi/anti/left-outer variants and residual (non-equi)
conditions are layered on top of the same machinery.
"""

from __future__ import annotations

from typing import Optional


from repro.core.columnar import (
    LogicalType,
    TensorColumn,
    TensorTable,
    concat_columns,
)
from repro.core.expressions import as_mask, evaluate
from repro.core.operators.base import ExecutionContext, TensorOperator
from repro.core.operators.grouping import combine_ids, factorize_pair
from repro.errors import ExecutionError
from repro.frontend.ast import Expr
from repro.tensor import Tensor, ops


def merge_tables(left: TensorTable, right: TensorTable) -> TensorTable:
    """Column-wise concatenation of two equally sized tables."""
    columns = dict(left.columns())
    for name, column in right.columns():
        if name in columns:
            raise ExecutionError(f"duplicate column name after join: {name!r}")
        columns[name] = column
    return TensorTable(columns)


def concat_tables(first: TensorTable, second: TensorTable) -> TensorTable:
    """Row-wise concatenation of two tables with identical column sets."""
    return TensorTable({
        name: concat_columns([top, second.column(name)])
        for name, top in first.columns()
    })


def _null_column_like(column: TensorColumn, num_rows: int,
                      anchor: "Tensor | None" = None) -> TensorColumn:
    """An all-NULL column with the same type/width as ``column``.

    ``anchor`` is a per-row tensor of the target table; when given, sizes are
    derived from it at run time instead of baking ``num_rows`` into the trace.
    """
    device = column.device
    if anchor is not None:
        if column.ltype == LogicalType.STRING:
            data = ops.full_like_rows(anchor, 0, dtype="int32",
                                      width=column.string_width)
        elif column.ltype == LogicalType.FLOAT:
            data = ops.full_like_rows(anchor, 0, dtype="float64")
        elif column.ltype == LogicalType.BOOL:
            data = ops.full_like_rows(anchor, False, dtype="bool")
        else:
            data = ops.full_like_rows(anchor, 0, dtype="int64")
        valid = ops.full_like_rows(anchor, False, dtype="bool")
        return TensorColumn(data, column.ltype, valid)
    if column.ltype == LogicalType.STRING:
        data = ops.zeros((num_rows, column.string_width), dtype="int32",
                         device=device)
    elif column.ltype == LogicalType.FLOAT:
        data = ops.zeros((num_rows,), dtype="float64", device=device)
    elif column.ltype == LogicalType.BOOL:
        data = ops.zeros((num_rows,), dtype="bool", device=device)
    else:
        data = ops.zeros((num_rows,), dtype="int64", device=device)
    valid = ops.full((num_rows,), False, dtype="bool", device=device)
    return TensorColumn(data, column.ltype, valid)


class HashJoinOperator(TensorOperator):
    """Equi-join on densified keys (inner / left outer / semi / anti)."""

    name = "HashJoin"

    def __init__(self, left: TensorOperator, right: TensorOperator, kind: str,
                 left_keys: list[Expr], right_keys: list[Expr],
                 residual: Optional[Expr] = None):
        super().__init__([left, right])
        if kind not in ("inner", "left", "semi", "anti"):
            raise ExecutionError(f"unsupported hash join kind {kind!r}")
        self.kind = kind
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.residual = residual

    def describe(self) -> str:
        return f"HashJoin[{self.kind}]"

    # -- key handling -------------------------------------------------------

    def _key_ids(self, left_table: TensorTable, right_table: TensorTable,
                 ctx: ExecutionContext) -> tuple[Tensor, Tensor]:
        left_ids, right_ids = [], []
        for left_expr, right_expr in zip(self.left_keys, self.right_keys):
            left_value = evaluate(left_expr, left_table, ctx.eval_ctx)
            right_value = evaluate(right_expr, right_table, ctx.eval_ctx)
            lid, rid = factorize_pair(left_value, right_value)
            left_ids.append(lid)
            right_ids.append(rid)
        if len(left_ids) == 1:
            return left_ids[0], right_ids[0]
        both = [ops.concat([l, r], axis=0) for l, r in zip(left_ids, right_ids)]
        combined = combine_ids(both)
        head, tail = ops.split_rows(combined, left_ids[0])
        return head, tail

    # -- matching -----------------------------------------------------------

    def _match_pairs(self, left_ids: Tensor, right_ids: Tensor,
                     need_pairs: bool
                     ) -> tuple[Tensor, Optional[tuple[Tensor, Tensor]]]:
        """Match densified keys: per-left-row match ``counts`` plus, when
        ``need_pairs``, the flattened ``(pair_left, pair_right)`` row indices.

        The partitioned parallel variant overrides this with a radix-partition
        build/probe; everything downstream (:meth:`_finish`) is shared.
        """
        order = ops.argsort(right_ids)
        sorted_right = ops.take(right_ids, order)
        start = ops.searchsorted(sorted_right, left_ids, side="left")
        end = ops.searchsorted(sorted_right, left_ids, side="right")
        counts = ops.sub(end, start)
        if not need_pairs:
            return counts, None

        # All extents below are tensors so the flattening replays correctly
        # when a rebound parameter changes the match counts.
        total = ops.sum_(counts)
        offsets = ops.sub(ops.cumsum(counts), counts)
        row_index = ops.arange_like(left_ids)
        pair_left = ops.repeat(row_index, counts)
        within = ops.sub(ops.arange_until(total),
                         ops.repeat(offsets, counts))
        pair_right_sorted = ops.add(ops.repeat(start, counts), within)
        pair_right = ops.take(order, pair_right_sorted)
        return counts, (pair_left, pair_right)

    # -- execution ------------------------------------------------------------

    def _execute(self, ctx: ExecutionContext) -> TensorTable:
        left_table = self.children[0].execute(ctx)
        right_table = self.children[1].execute(ctx)
        left_ids, right_ids = self._key_ids(left_table, right_table, ctx)
        need_pairs = not (self.kind in ("semi", "anti") and self.residual is None)
        counts, pairs = self._match_pairs(left_ids, right_ids, need_pairs)
        return self._finish(left_table, right_table, counts, pairs, ctx)

    def _finish(self, left_table: TensorTable, right_table: TensorTable,
                counts: Tensor, pairs: Optional[tuple[Tensor, Tensor]],
                ctx: ExecutionContext) -> TensorTable:
        n_left = ops.row_count(left_table.anchor) if left_table.anchor is not None \
            else left_table.num_rows

        if pairs is None:  # semi/anti without residual: counts are enough
            matched = ops.gt(counts, 0)
            mask = matched if self.kind == "semi" else ops.logical_not(matched)
            return left_table.mask(mask)

        pair_left, pair_right = pairs
        matched_left = left_table.gather(pair_left)
        matched_right = right_table.gather(pair_right)
        combined = merge_tables(matched_left, matched_right)

        residual_mask: Optional[Tensor] = None
        if self.residual is not None:
            residual_value = evaluate(self.residual, combined, ctx.eval_ctx)
            residual_mask = as_mask(residual_value, combined.num_rows,
                                    like=combined.anchor)

        if self.kind == "inner":
            return combined.mask(residual_mask) if residual_mask is not None else combined

        if self.kind in ("semi", "anti"):
            hits = ops.scatter_add(pair_left, ops.cast(residual_mask, "int64"),
                                   size=n_left)
            matched = ops.gt(hits, 0)
            mask = matched if self.kind == "semi" else ops.logical_not(matched)
            return left_table.mask(mask)

        # left outer join
        if residual_mask is not None:
            combined = combined.mask(residual_mask)
            pair_left = ops.boolean_mask(pair_left, residual_mask)
        hits = ops.scatter_add(pair_left,
                               ops.full_like_rows(pair_left, 1, dtype="int64"),
                               size=n_left)
        unmatched = ops.eq(hits, 0)
        left_unmatched = left_table.mask(unmatched)
        null_right = TensorTable({
            name: _null_column_like(column, left_unmatched.num_rows,
                                    anchor=left_unmatched.anchor)
            for name, column in right_table.columns()
        })
        padded = merge_tables(left_unmatched, null_right)
        return concat_tables(combined, padded)


class NestedLoopJoinOperator(TensorOperator):
    """Cross product (optionally filtered) — the fallback for non-equi joins."""

    name = "NestedLoopJoin"

    def __init__(self, left: TensorOperator, right: TensorOperator, kind: str,
                 condition: Optional[Expr] = None):
        super().__init__([left, right])
        if kind not in ("inner", "cross", "semi", "anti"):
            raise ExecutionError(f"unsupported nested-loop join kind {kind!r}")
        self.kind = kind
        self.condition = condition

    def describe(self) -> str:
        return f"NestedLoopJoin[{self.kind}]"

    def _execute(self, ctx: ExecutionContext) -> TensorTable:
        left_table = self.children[0].execute(ctx)
        right_table = self.children[1].execute(ctx)
        left_anchor, right_anchor = left_table.anchor, right_table.anchor
        if left_anchor is None or right_anchor is None:
            raise ExecutionError("nested-loop join requires materialized inputs")

        # The cross-product index arithmetic is built from run-time extents so
        # a rebound parameter that changes either input's size replays
        # correctly on the graph backends.
        n_left_t = ops.row_count(left_anchor)
        n_right_t = ops.row_count(right_anchor)
        pair_left = ops.repeat(
            ops.arange_like(left_anchor),
            ops.mul(ops.full_like_rows(left_anchor, 1, dtype="int64"), n_right_t))
        pair_right = ops.mod(ops.arange_until(ops.mul(n_left_t, n_right_t)),
                             ops.maximum(n_right_t, 1))
        combined = merge_tables(left_table.gather(pair_left),
                                right_table.gather(pair_right))

        mask: Optional[Tensor] = None
        if self.condition is not None:
            value = evaluate(self.condition, combined, ctx.eval_ctx)
            mask = as_mask(value, combined.num_rows, like=combined.anchor)

        if self.kind in ("inner", "cross"):
            return combined.mask(mask) if mask is not None else combined

        if mask is None:
            mask = ops.full_like_rows(pair_left, True, dtype="bool")
        hits = ops.scatter_add(pair_left, ops.cast(mask, "int64"), size=n_left_t)
        matched = ops.gt(hits, 0)
        if self.kind == "anti":
            matched = ops.logical_not(matched)
        return left_table.mask(matched)
