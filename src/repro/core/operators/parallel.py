"""Morsel-driven parallel execution (the classic Hyper-style morsel model).

The serial operators stream whole columns through one execution lane.  The
operators here partition their input into fixed-size **morsels** (see
``repro.core.columnar.morsel_bounds``) and stream each morsel through a
:class:`MorselWorkerPool` of ``parallelism`` worker lanes:

* :class:`MorselScanOperator` / :class:`MorselFilterOperator` /
  :class:`MorselProjectOperator` form per-morsel pipelines — a morsel produced
  by the scan is filtered and projected on the *same* worker lane without any
  intermediate materialization barrier,
* :class:`PartitionedHashJoinOperator` radix-partitions the densified join
  keys of both sides (``key mod P``) and matches each partition on its own
  lane,
* :class:`ParallelHashAggregateOperator` computes per-worker **partial
  aggregates** per morsel and combines them in a final merge step
  (partial-then-merge, the standard two-phase parallel aggregation).

Results are always computed with real kernels.  Like the simulated devices,
*parallel time* is simulated: morsels execute one at a time (deterministic,
trace- and profile-friendly), each inside a worker-lane annotation
(:func:`repro.tensor.profiler.lane_scope`) plus one ``morsel_dispatch`` op per
hand-off.  The device cost models replay those annotations into per-worker
timelines — reported time charges the *slowest lane* plus per-morsel dispatch
overhead, which is what produces honest speedup curves.  A real thread pool
(``use_threads=True``) is available for unprofiled, untraced eager execution,
where numpy kernels release the GIL.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Optional

from repro.core.columnar import (
    DEFAULT_MORSEL_ROWS,
    LogicalType,
    TensorColumn,
    TensorTable,
    concat_columns,
    morsel_bounds,
)
from repro.core.expressions import (
    ExprValue,
    as_mask,
    evaluate,
    evaluate_encoded,
    to_column,
)
from repro.core.operators.aggregate import HashAggregateOperator, masked_for_reduce
from repro.core.operators.base import ExecutionContext, TensorOperator
from repro.core.operators.filter import FilterOperator
from repro.core.operators.join import HashJoinOperator
from repro.core.operators.project import ProjectOperator
from repro.core.operators.scan import ScanOperator
from repro.core.tuning import DEFAULT_TUNING
from repro.errors import ExecutionError
from repro.frontend import ast
from repro.frontend.logical import AggregateCall, Field
from repro.tensor import Tensor, current_profiler, lane_scope, ops
from repro.tensor.tracing import current_trace

#: Minimum input cardinality for the planner to choose a parallel operator —
#: below this, per-morsel dispatch overhead outweighs any lane parallelism.
#: Canonical home: :class:`repro.core.tuning.Tuning`; re-exported here for
#: the operators' runtime small-input fallbacks and existing importers.
PARALLEL_THRESHOLD_ROWS = DEFAULT_TUNING.parallel_threshold_rows

#: Aggregate functions whose partial states merge losslessly (COUNT DISTINCT
#: would need full value sets per group, so it stays on the serial path).
_MERGEABLE_AGGREGATES = frozenset({"count", "sum", "avg", "min", "max"})

#: A morsel task: given the worker lane it was scheduled on, produce the
#: morsel's output table.  Tasks are independent — any order, any worker.
MorselTask = Callable[[int], TensorTable]


# -- plan-time eligibility ----------------------------------------------------


def exprs_are_morsel_safe(exprs) -> bool:
    """True when every expression can be evaluated per-morsel.

    Runtime subqueries are the one construct that breaks morsel locality (they
    would re-execute their subplan once per morsel), so their presence sends
    the operator down the serial path.
    """
    for expr in exprs:
        if expr is None:
            continue
        for sub in ast.walk_expr(expr):
            if isinstance(sub, (ast.InSubquery, ast.ExistsSubquery,
                                ast.ScalarSubquery)):
                return False
    return True


def aggregates_are_mergeable(aggregates: list[AggregateCall]) -> bool:
    """True when every aggregate has a lossless partial-then-merge split."""
    return all(call.func in _MERGEABLE_AGGREGATES and not call.distinct
               for call in aggregates)


# -- morsel plumbing ----------------------------------------------------------


#: Morsels handed to each worker lane before the input is exhausted.  One per
#: lane when the input is large: round-robin assignment over uniform slices is
#: perfectly balanced anyway (the simulation has no work stealing to feed),
#: and larger morsels amortize the fixed per-kernel cost that would otherwise
#: drown cheap predicates in per-morsel overhead.  Inputs near the morsel
#: floor still split into many ``morsel_rows``-sized pieces.
_MORSELS_PER_LANE = 1


def effective_morsel_rows(num_rows: int, morsel_rows: int, parallelism: int) -> int:
    """Adaptive morsel size: at least ``morsel_rows``, at most what spreads the
    input over ``_MORSELS_PER_LANE`` morsels per worker lane."""
    target = -(-num_rows // max(1, parallelism * _MORSELS_PER_LANE))
    return max(morsel_rows, target)


def _bounds(num_rows: int, morsel_rows: int) -> list[tuple[int, int]]:
    """Morsel bounds, with one empty morsel for an empty input so downstream
    consumers still see the schema."""
    return morsel_bounds(num_rows, morsel_rows) or [(0, 0)]


def dispatch_table(table: TensorTable, lane: int, morsel: int) -> TensorTable:
    """Stamp a morsel hand-off: thread the first column through the
    ``morsel_dispatch`` identity op so both the profile and the traced graph
    record one dispatch per morsel per worker."""
    names = table.column_names
    if not names:
        return table
    first = table.column(names[0])
    tagged = TensorColumn(
        ops.morsel_dispatch(first.tensor, lane, morsel, rows=first.num_rows),
        first.ltype, first.valid,
    )
    return table.with_column(names[0], tagged)


def concat_morsels(tables: list[TensorTable]) -> TensorTable:
    """Row-concatenate morsel outputs with one ``concat`` kernel per column.

    (Folding with the pairwise ``concat_tables`` would copy O(morsels) times.)
    """
    if not tables:
        raise ExecutionError("concat_morsels() needs at least one morsel")
    if len(tables) == 1:
        return tables[0]
    return TensorTable({
        name: concat_columns([t.column(name) for t in tables])
        for name in tables[0].column_names
    })


class MorselWorkerPool:
    """Schedules morsel tasks round-robin across ``parallelism`` worker lanes.

    Default mode runs tasks sequentially, each inside its lane's
    :func:`lane_scope`, so profiling and tracing see a deterministic
    single-threaded execution annotated with the parallel structure.  With
    ``use_threads=True`` tasks run on a real :class:`ThreadPoolExecutor`
    whenever neither a profiler nor a trace is active (both rely on
    thread-local state, and simulated time needs the lane annotations anyway).
    """

    def __init__(self, parallelism: int, use_threads: bool = False):
        if parallelism < 1:
            raise ExecutionError("parallelism must be >= 1")
        self.parallelism = parallelism
        self.use_threads = use_threads

    def run(self, tasks: list[MorselTask], label: str = "") -> list[TensorTable]:
        """Run every task; results come back in task order."""
        if (self.use_threads and len(tasks) > 1
                and current_profiler() is None and current_trace() is None):
            with ThreadPoolExecutor(max_workers=self.parallelism) as pool:
                futures = [pool.submit(fn, i % self.parallelism)
                           for i, fn in enumerate(tasks)]
                return [f.result() for f in futures]
        profiler = current_profiler()
        results = []
        for i, fn in enumerate(tasks):
            lane = i % self.parallelism
            with lane_scope(lane):
                if profiler is not None and label:
                    with profiler.scope(f"{label}@w{lane}"):
                        results.append(fn(lane))
                else:
                    results.append(fn(lane))
        return results


class MorselSource:
    """Mixin for operators able to emit their output as independent morsel
    tasks, letting the consumer keep each morsel on one worker lane instead of
    forcing a materialization barrier between pipeline stages."""

    def morsel_tasks(self, ctx: ExecutionContext) -> list[MorselTask]:
        raise NotImplementedError


def _partition_tasks(table: TensorTable, morsel_rows: int,
                     parallelism: int) -> list[MorselTask]:
    """Slice a materialized table into dispatch-stamped morsel tasks."""
    rows = effective_morsel_rows(table.num_rows, morsel_rows, parallelism)
    tasks: list[MorselTask] = []
    for i, (start, length) in enumerate(_bounds(table.num_rows, rows)):
        def fn(lane: int, start=start, length=length, i=i) -> TensorTable:
            return dispatch_table(table.slice(start, length), lane, i)
        tasks.append(fn)
    return tasks


def _source_tasks(child: TensorOperator, ctx: ExecutionContext,
                  morsel_rows: int, parallelism: int) -> list[MorselTask]:
    """Morsel tasks for a pipeline child: stream from a morsel source, or
    materialize-and-partition a serial child."""
    if isinstance(child, MorselSource):
        return child.morsel_tasks(ctx)
    return _partition_tasks(child.execute(ctx), morsel_rows, parallelism)


# -- partition-aware scan / filter / project ----------------------------------


class MorselScanOperator(ScanOperator, MorselSource):
    """Partition-aware scan: emits the bound table as morsel tasks.

    When consumed by a serial parent it degrades to a plain column-select with
    zero overhead; when consumed by a morsel pipeline each slice is a zero-copy
    ``narrow`` view stamped with one dispatch per morsel.
    """

    name = "MorselScan"

    #: A traced dynamic row mask would make this scan's output size depend on
    #: the binding while its morsel bounds are baked at trace time — so
    #: parameterized conjuncts only prune here when no trace is recording
    #: (static literal conjuncts always prune).
    traced_dynamic_pruning = False

    def __init__(self, table: str, alias: str, fields: list[Field],
                 parallelism: int, morsel_rows: int = DEFAULT_MORSEL_ROWS):
        super().__init__(table, alias, fields)
        self.parallelism = parallelism
        self.morsel_rows = morsel_rows

    def describe(self) -> str:
        return f"MorselScan({self.table}, workers={self.parallelism})"

    def morsel_tasks(self, ctx: ExecutionContext) -> list[MorselTask]:
        table = ScanOperator._execute(self, ctx)
        return _partition_tasks(table, self.morsel_rows, self.parallelism)


class MorselMapOperator(MorselSource):
    """Shared machinery for per-morsel map operators (filter, project).

    Subclasses implement :meth:`_apply_morsel`; this mixin handles streaming
    from a morsel-source child, materialize-and-partition for serial children
    (with a serial fast path below the parallelism threshold), worker-pool
    scheduling and the final concat.  It must precede the serial operator base
    in the MRO so its ``_execute`` wins.
    """

    def _init_parallel(self, parallelism: int, morsel_rows: int,
                       use_threads: bool) -> None:
        self.parallelism = parallelism
        self.morsel_rows = morsel_rows
        self.pool = MorselWorkerPool(parallelism, use_threads)

    def _apply_morsel(self, sub: TensorTable, ctx: ExecutionContext) -> TensorTable:
        raise NotImplementedError

    def _mapped(self, tasks: list[MorselTask], ctx: ExecutionContext
                ) -> list[MorselTask]:
        return [(lambda lane, fn=fn: self._apply_morsel(fn(lane), ctx))
                for fn in tasks]

    def morsel_tasks(self, ctx: ExecutionContext) -> list[MorselTask]:
        return self._mapped(
            _source_tasks(self.children[0], ctx, self.morsel_rows,
                          self.parallelism), ctx)

    def _execute(self, ctx: ExecutionContext) -> TensorTable:
        child = self.children[0]
        if not isinstance(child, MorselSource):
            table = child.execute(ctx)
            if table.num_rows < PARALLEL_THRESHOLD_ROWS:
                return self._apply_morsel(table, ctx)
            tasks = self._mapped(
                _partition_tasks(table, self.morsel_rows, self.parallelism), ctx)
        else:
            tasks = self.morsel_tasks(ctx)
        return concat_morsels(self.pool.run(tasks, label=self.describe()))


class MorselFilterOperator(MorselMapOperator, FilterOperator):
    """Filter that evaluates its predicate one morsel at a time."""

    name = "MorselFilter"

    def __init__(self, child: TensorOperator, condition: ast.Expr,
                 parallelism: int, morsel_rows: int = DEFAULT_MORSEL_ROWS,
                 use_threads: bool = False):
        FilterOperator.__init__(self, child, condition)
        self._init_parallel(parallelism, morsel_rows, use_threads)

    def describe(self) -> str:
        return f"MorselFilter(workers={self.parallelism})"

    def _apply_morsel(self, sub: TensorTable, ctx: ExecutionContext) -> TensorTable:
        value = evaluate(self.condition, sub, ctx.eval_ctx)
        return sub.mask(as_mask(value, sub.num_rows, like=sub.anchor))


class MorselProjectOperator(MorselMapOperator, ProjectOperator):
    """Projection that computes its output expressions one morsel at a time."""

    name = "MorselProject"

    def __init__(self, child: TensorOperator, exprs: list[ast.Expr],
                 names: list[str], types: list[LogicalType],
                 parallelism: int, morsel_rows: int = DEFAULT_MORSEL_ROWS,
                 use_threads: bool = False):
        ProjectOperator.__init__(self, child, exprs, names, types)
        self._init_parallel(parallelism, morsel_rows, use_threads)

    def describe(self) -> str:
        return f"MorselProject({len(self.exprs)} cols, workers={self.parallelism})"

    def _apply_morsel(self, sub: TensorTable, ctx: ExecutionContext) -> TensorTable:
        columns = {}
        for expr, name in zip(self.exprs, self.names):
            value = evaluate(expr, sub, ctx.eval_ctx)
            columns[name] = to_column(value, sub.num_rows, like=sub.anchor)
        return TensorTable(columns)


# -- partitioned hash join ----------------------------------------------------


class PartitionedHashJoinOperator(HashJoinOperator):
    """Equi-join with a radix-partitioned build/probe phase.

    Key densification stays global (both sides must share one dictionary), but
    the quadratic-ish part — sorting the build side and probing match ranges —
    runs per key partition (``key mod P``) on its own worker lane.  Partition
    row indices map local matches back to global row ids, after which the
    shared :meth:`_finish` tail handles inner/left/semi/anti and residuals.
    """

    name = "PartitionedHashJoin"

    def __init__(self, left: TensorOperator, right: TensorOperator, kind: str,
                 left_keys: list[ast.Expr], right_keys: list[ast.Expr],
                 residual: Optional[ast.Expr] = None, *, parallelism: int = 1,
                 num_partitions: Optional[int] = None, use_threads: bool = False):
        super().__init__(left, right, kind, left_keys, right_keys, residual)
        self.parallelism = parallelism
        self.num_partitions = num_partitions or parallelism
        self.pool = MorselWorkerPool(parallelism, use_threads)

    def describe(self) -> str:
        return (f"PartitionedHashJoin[{self.kind}]"
                f"(partitions={self.num_partitions}, workers={self.parallelism})")

    def _match_pairs(self, left_ids: Tensor, right_ids: Tensor,
                     need_pairs: bool
                     ) -> tuple[Tensor, Optional[tuple[Tensor, Tensor]]]:
        n_left = left_ids.shape[0]
        n_right = right_ids.shape[0]
        partitions = self.num_partitions
        if (partitions < 2 or n_left == 0 or n_right == 0
                or max(n_left, n_right) < PARALLEL_THRESHOLD_ROWS):
            return super()._match_pairs(left_ids, right_ids, need_pairs)

        # Single-pass radix partition (the serial phase): one stable argsort
        # per side groups the row indices of every partition contiguously, and
        # searchsorted yields all partition boundaries at once — instead of
        # rescanning the full key arrays once per partition.
        def partition_layout(ids: Tensor) -> tuple[Tensor, list[int]]:
            part = ops.mod(ids, partitions)
            order = ops.argsort(part)
            bounds = ops.searchsorted(
                ops.take(part, order),
                ops.arange(partitions + 1, device=ids.device), side="left")
            return order, [int(b) for b in bounds.numpy()]

        left_order, left_bounds = partition_layout(left_ids)
        right_order, right_bounds = partition_layout(right_ids)

        def match_partition(lane: int, p: int):
            lsel = ops.narrow(left_order, 0, left_bounds[p],
                              left_bounds[p + 1] - left_bounds[p])
            rsel = ops.narrow(right_order, 0, right_bounds[p],
                              right_bounds[p + 1] - right_bounds[p])
            lids = ops.morsel_dispatch(ops.take(left_ids, lsel), lane, p,
                                       rows=lsel.shape[0])
            rids = ops.take(right_ids, rsel)
            local_counts, local_pairs = HashJoinOperator._match_pairs(
                self, lids, rids, need_pairs)
            if local_pairs is None:
                return lsel, local_counts, None, None
            return (lsel, local_counts,
                    ops.take(lsel, local_pairs[0]), ops.take(rsel, local_pairs[1]))

        tasks = [(lambda lane, p=p: match_partition(lane, p))
                 for p in range(partitions)]
        parts = self.pool.run(tasks, label=self.describe())

        counts = ops.scatter_add(ops.concat([part[0] for part in parts], axis=0),
                                 ops.concat([part[1] for part in parts], axis=0),
                                 size=n_left)
        if not need_pairs:
            return counts, None
        pair_left = ops.concat([part[2] for part in parts], axis=0)
        pair_right = ops.concat([part[3] for part in parts], axis=0)
        return counts, (pair_left, pair_right)


# -- partial-then-merge aggregation -------------------------------------------


class ParallelHashAggregateOperator(HashAggregateOperator):
    """Two-phase parallel aggregation: per-morsel partials, then one merge.

    Each morsel computes a *partial table* on its worker lane — group key
    values plus decomposed aggregate state (``sum``/``count``/``min``/``max``;
    ``avg`` carries a sum and a count).  The merge phase concatenates the
    partials (a few rows per morsel), re-groups them, and combines the states.
    Falls back to the serial single-stream path for inputs below the
    parallelism threshold.
    """

    name = "ParallelHashAggregate"

    def __init__(self, child: TensorOperator, group_exprs: list[ast.Expr],
                 group_names: list[str], group_types: list[LogicalType],
                 aggregates: list[AggregateCall], *, parallelism: int = 1,
                 morsel_rows: int = DEFAULT_MORSEL_ROWS, use_threads: bool = False):
        super().__init__(child, group_exprs, group_names, group_types, aggregates)
        if not aggregates_are_mergeable(aggregates):
            raise ExecutionError(
                "parallel aggregation requires mergeable aggregate functions"
            )
        self.parallelism = parallelism
        self.morsel_rows = morsel_rows
        self.pool = MorselWorkerPool(parallelism, use_threads)

    def describe(self) -> str:
        return (f"ParallelHashAggregate(groups={len(self.group_exprs)}, "
                f"workers={self.parallelism})")

    # -- partial phase ------------------------------------------------------

    def _partial_table(self, sub: TensorTable, ctx: ExecutionContext) -> TensorTable:
        num_rows = sub.num_rows
        # Dictionary-encoded keys keep their codes through the partial tables:
        # every morsel shares the stored column's dictionary, so the merge
        # phase re-densifies codes without ever touching code-point matrices.
        key_values = [evaluate_encoded(expr, sub, ctx.eval_ctx)
                      for expr in self.group_exprs]
        group_ids, num_groups, compact = self._group_ids(
            key_values, num_rows, sub.device, anchor=sub.anchor)
        presence = self._group_presence(group_ids, num_groups, compact)

        columns: dict[str, TensorColumn] = {}
        if self.group_exprs:
            representatives = ops.scatter_min(
                group_ids, ops.arange_like(group_ids), num_groups
            )
            if presence is not None:
                representatives = ops.boolean_mask(representatives, presence)
            for value, name in zip(key_values, self.group_names):
                columns[name] = to_column(value, num_rows,
                                          like=sub.anchor).gather(representatives)
        for index, call in enumerate(self.aggregates):
            for name, column in self._partial_columns(
                    index, call, sub, group_ids, num_groups, ctx).items():
                columns[name] = (column.mask(presence) if presence is not None
                                 else column)
        return TensorTable(columns)

    def _partial_columns(self, index: int, call: AggregateCall, table: TensorTable,
                         group_ids: Tensor, num_groups: Tensor,
                         ctx: ExecutionContext) -> dict[str, TensorColumn]:
        """One morsel's decomposed aggregate state.

        Mirrors the serial NULL semantics: every non-count state carries a
        ``_vcount`` column (non-NULL contributors per group) so the merge can
        report NULL for groups nothing contributed to, and NULL positions are
        zeroed (sum/avg) or replaced by the reduction identity (min/max) so
        they cannot influence the merged value.
        """
        prefix = f"__p{index}"
        if call.func == "count" and call.expr is None:
            counts = ops.bincount(group_ids, minlength=num_groups)
            return {f"{prefix}_count":
                    TensorColumn(ops.cast(counts, "int64"), LogicalType.INT)}

        value = evaluate(call.expr, table, ctx.eval_ctx)
        column = to_column(value, table.num_rows, like=table.anchor)
        data = column.tensor
        if column.valid is not None:
            populated = ops.scatter_add(group_ids, ops.cast(column.valid, "int64"),
                                        size=num_groups)
        else:
            populated = ops.bincount(group_ids, minlength=num_groups)
        vcount = TensorColumn(ops.cast(populated, "int64"), LogicalType.INT)

        if call.func == "count":
            return {f"{prefix}_count": vcount}
        if call.func == "sum":
            if column.valid is not None:
                data = ops.where(column.valid, data, 0)
            result = ops.scatter_add(group_ids, data, size=num_groups)
            target = "int64" if call.output_type == LogicalType.INT else "float64"
            return {f"{prefix}_sum":
                    TensorColumn(ops.cast(result, target), call.output_type),
                    f"{prefix}_vcount": vcount}
        if call.func == "avg":
            addend = ops.cast(data, "float64")
            if column.valid is not None:
                addend = ops.where(column.valid, addend, 0.0)
            totals = ops.cast(ops.scatter_add(group_ids, addend, size=num_groups),
                              "float64")
            return {f"{prefix}_sum": TensorColumn(totals, LogicalType.FLOAT),
                    f"{prefix}_vcount": vcount}
        if call.func == "min":
            result = ops.scatter_min(
                group_ids, masked_for_reduce(data, column.valid, "min"),
                size=num_groups)
            return {f"{prefix}_min": TensorColumn(result, call.output_type),
                    f"{prefix}_vcount": vcount}
        if call.func == "max":
            result = ops.scatter_max(
                group_ids, masked_for_reduce(data, column.valid, "max"),
                size=num_groups)
            return {f"{prefix}_max": TensorColumn(result, call.output_type),
                    f"{prefix}_vcount": vcount}
        raise ExecutionError(f"unsupported mergeable aggregate {call.func!r}")

    # -- merge phase --------------------------------------------------------

    def _merge_partials(self, merged: TensorTable, ctx: ExecutionContext
                        ) -> TensorTable:
        num_rows = merged.num_rows
        key_values = [
            ExprValue(column.tensor, column.ltype, False, column.valid,
                      column.encoding)
            for column in (merged.column(name) for name in self.group_names)
        ]
        group_ids, num_groups, compact = self._group_ids(
            key_values, num_rows, merged.device, anchor=merged.anchor)
        presence = self._group_presence(group_ids, num_groups, compact)

        columns: dict[str, TensorColumn] = {}
        if self.group_exprs:
            representatives = ops.scatter_min(
                group_ids, ops.arange_like(group_ids), num_groups
            )
            if presence is not None:
                representatives = ops.boolean_mask(representatives, presence)
            for name in self.group_names:
                columns[name] = merged.column(name).gather(representatives)

        for index, call in enumerate(self.aggregates):
            column = self._merge_column(
                index, call, merged, group_ids, num_groups
            )
            if presence is not None:
                column = column.mask(presence)
            columns[call.output_name] = column
        return TensorTable(columns)

    def _merge_column(self, index: int, call: AggregateCall, merged: TensorTable,
                      group_ids: Tensor, num_groups: Tensor) -> TensorColumn:
        prefix = f"__p{index}"
        if call.func == "count":
            counts = ops.scatter_add(group_ids,
                                     merged.column(f"{prefix}_count").tensor,
                                     size=num_groups)
            return TensorColumn(ops.cast(counts, "int64"), LogicalType.INT)

        # SQL NULL semantics, matching the serial path: a group (or the global
        # aggregate) nothing contributed to — all inputs NULL, or an empty
        # input altogether — reports NULL.
        populated = ops.scatter_add(group_ids,
                                    merged.column(f"{prefix}_vcount").tensor,
                                    size=num_groups)
        valid = ops.gt(populated, 0)
        if call.func == "sum":
            total = ops.scatter_add(group_ids, merged.column(f"{prefix}_sum").tensor,
                                    size=num_groups)
            target = "int64" if call.output_type == LogicalType.INT else "float64"
            return TensorColumn(ops.cast(total, target), call.output_type, valid)
        if call.func == "avg":
            totals = ops.scatter_add(group_ids, merged.column(f"{prefix}_sum").tensor,
                                     size=num_groups)
            return TensorColumn(
                ops.div(ops.cast(totals, "float64"),
                        ops.cast(ops.maximum(populated, 1), "float64")),
                LogicalType.FLOAT, valid,
            )
        if call.func == "min":
            result = ops.scatter_min(group_ids, merged.column(f"{prefix}_min").tensor,
                                     size=num_groups)
            return TensorColumn(result, call.output_type, valid)
        if call.func == "max":
            result = ops.scatter_max(group_ids, merged.column(f"{prefix}_max").tensor,
                                     size=num_groups)
            return TensorColumn(result, call.output_type, valid)
        raise ExecutionError(f"unsupported mergeable aggregate {call.func!r}")

    # -- execution ----------------------------------------------------------

    def _execute(self, ctx: ExecutionContext) -> TensorTable:
        child = self.children[0]
        if isinstance(child, MorselSource):
            tasks = child.morsel_tasks(ctx)
        else:
            table = child.execute(ctx)
            if table.num_rows < PARALLEL_THRESHOLD_ROWS:
                return self._aggregate_table(table, ctx)
            tasks = _partition_tasks(table, self.morsel_rows, self.parallelism)
        partial_tasks: list[MorselTask] = [
            (lambda lane, fn=fn: self._partial_table(fn(lane), ctx))
            for fn in tasks
        ]
        partials = self.pool.run(partial_tasks, label=self.describe())
        return self._merge_partials(concat_morsels(partials), ctx)
