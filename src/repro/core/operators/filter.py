"""Filter: boolean-mask compaction (predicates compiled to tensor programs)."""

from __future__ import annotations

from repro.core.columnar import TensorTable
from repro.core.expressions import as_mask, evaluate
from repro.core.operators.base import ExecutionContext, TensorOperator
from repro.frontend.ast import Expr


class FilterOperator(TensorOperator):
    """Evaluate the predicate into a boolean mask and compact every column."""

    name = "Filter"

    def __init__(self, child: TensorOperator, condition: Expr):
        super().__init__([child])
        self.condition = condition

    def _execute(self, ctx: ExecutionContext) -> TensorTable:
        table = self.children[0].execute(ctx)
        value = evaluate(self.condition, table, ctx.eval_ctx)
        mask = as_mask(value, table.num_rows, like=table.anchor)
        return table.mask(mask)
