"""Tensor-program implementations of relational operators (planning layer output)."""

from repro.core.operators.aggregate import HashAggregateOperator
from repro.core.operators.base import ExecutionContext, TensorOperator
from repro.core.operators.filter import FilterOperator
from repro.core.operators.join import (
    HashJoinOperator,
    NestedLoopJoinOperator,
    concat_tables,
    merge_tables,
)
from repro.core.operators.misc import DistinctOperator, LimitOperator, RenameOperator
from repro.core.operators.project import ProjectOperator
from repro.core.operators.scan import ScanOperator
from repro.core.operators.sort import SortOperator

__all__ = [
    "DistinctOperator",
    "ExecutionContext",
    "FilterOperator",
    "HashAggregateOperator",
    "HashJoinOperator",
    "LimitOperator",
    "NestedLoopJoinOperator",
    "ProjectOperator",
    "RenameOperator",
    "ScanOperator",
    "SortOperator",
    "TensorOperator",
    "concat_tables",
    "merge_tables",
]
