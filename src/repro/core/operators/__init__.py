"""Tensor-program implementations of relational operators (planning layer output)."""

from repro.core.operators.aggregate import HashAggregateOperator
from repro.core.operators.base import ExecutionContext, TensorOperator
from repro.core.operators.filter import FilterOperator
from repro.core.operators.join import (
    HashJoinOperator,
    NestedLoopJoinOperator,
    concat_tables,
    merge_tables,
)
from repro.core.operators.misc import DistinctOperator, LimitOperator, RenameOperator
from repro.core.operators.parallel import (
    PARALLEL_THRESHOLD_ROWS,
    MorselFilterOperator,
    MorselProjectOperator,
    MorselScanOperator,
    MorselSource,
    MorselWorkerPool,
    ParallelHashAggregateOperator,
    PartitionedHashJoinOperator,
    aggregates_are_mergeable,
    concat_morsels,
    exprs_are_morsel_safe,
)
from repro.core.operators.project import ProjectOperator
from repro.core.operators.scan import ScanOperator
from repro.core.operators.sort import SortOperator

__all__ = [
    "PARALLEL_THRESHOLD_ROWS",
    "DistinctOperator",
    "ExecutionContext",
    "FilterOperator",
    "HashAggregateOperator",
    "HashJoinOperator",
    "LimitOperator",
    "MorselFilterOperator",
    "MorselProjectOperator",
    "MorselScanOperator",
    "MorselSource",
    "MorselWorkerPool",
    "NestedLoopJoinOperator",
    "ParallelHashAggregateOperator",
    "PartitionedHashJoinOperator",
    "ProjectOperator",
    "RenameOperator",
    "ScanOperator",
    "SortOperator",
    "TensorOperator",
    "aggregates_are_mergeable",
    "concat_morsels",
    "concat_tables",
    "exprs_are_morsel_safe",
    "merge_tables",
]
