"""Group-by aggregation as a tensor program.

Group keys are densified into integer group ids (see
:mod:`repro.core.operators.grouping`); aggregates are then computed with
scatter/segmented reductions (``scatter_add`` / ``scatter_min`` /
``scatter_max`` / ``bincount``), which is the standard way of expressing
SQL aggregation on tensor runtimes.
"""

from __future__ import annotations

import numpy as np

from repro.core.columnar import LogicalType, TensorColumn, TensorTable
from repro.core.expressions import evaluate, evaluate_encoded, to_column
from repro.core.operators.base import ExecutionContext, TensorOperator
from repro.core.operators.grouping import (
    combine_ids,
    factorize_single,
    id_count,
    static_radix_group_ids,
)
from repro.errors import ExecutionError, UnsupportedOperationError
from repro.frontend.ast import Expr
from repro.frontend.logical import AggregateCall
from repro.tensor import Tensor, ops


def masked_for_reduce(data: Tensor, valid: "Tensor | None", mode: str) -> Tensor:
    """Replace NULL positions with the reduction's identity element so they
    cannot win a ``scatter_min``/``scatter_max`` (SQL aggregates skip NULLs)."""
    if valid is None:
        return data
    kind = data.dtype.name
    if kind.startswith("float"):
        sentinel = float("inf") if mode == "min" else float("-inf")
    elif kind == "bool":
        sentinel = mode == "min"
    else:
        info = np.iinfo(np.int64)
        sentinel = info.max if mode == "min" else info.min
    return ops.where(valid, data, sentinel)


class HashAggregateOperator(TensorOperator):
    """Hash/group aggregation (SUM, AVG, MIN, MAX, COUNT, COUNT DISTINCT)."""

    name = "HashAggregate"

    def __init__(self, child: TensorOperator, group_exprs: list[Expr],
                 group_names: list[str], group_types: list[LogicalType],
                 aggregates: list[AggregateCall]):
        super().__init__([child])
        self.group_exprs = group_exprs
        self.group_names = group_names
        self.group_types = group_types
        self.aggregates = aggregates

    def describe(self) -> str:
        return f"HashAggregate(groups={len(self.group_exprs)})"

    # -- helpers ------------------------------------------------------------

    @staticmethod
    def _group_ids(key_values, num_rows: int, device,
                   anchor: "Tensor | None" = None
                   ) -> "tuple[Tensor, Tensor | int, bool]":
        """``(group ids, group count, needs_compaction)`` for the key columns.

        All-dictionary keys take the sort-free static-radix path
        (:func:`~repro.core.operators.grouping.static_radix_group_ids`): the
        id space then covers every dictionary combination, so the caller must
        drop empty groups (``needs_compaction=True``, see
        :meth:`_group_presence`).  Otherwise keys are densified with
        sort-based factorization and the count stays a run-time tensor (never
        ``.item()``) so scatter sizes are recomputed when a prepared query is
        re-executed with a binding that changes how many rows / groups
        survive the child plan.
        """
        if not key_values:
            if anchor is not None:
                group_ids = ops.full_like_rows(anchor, 0, dtype="int64")
            else:
                group_ids = ops.zeros((num_rows,), dtype="int64", device=device)
            return group_ids, ops.tensor(1, dtype="int64", device=device), False
        static = static_radix_group_ids(key_values)
        if static is not None:
            return static[0], static[1], True
        ids = [factorize_single(value) for value in key_values]
        group_ids = combine_ids(ids)
        # id_count is empty-safe (0 groups for 0 rows), so no Python branch on
        # num_rows may be traced here — it would bake the wrong size into the
        # program for every other binding.
        return group_ids, id_count(group_ids), False

    @staticmethod
    def _group_presence(group_ids: Tensor, num_groups,
                        compact: bool) -> "Tensor | None":
        """Mask of non-empty groups (``None`` when ids are already dense)."""
        if not compact:
            return None
        return ops.gt(ops.bincount(group_ids, minlength=num_groups), 0)

    def _aggregate_column(self, call: AggregateCall, table: TensorTable,
                          group_ids: Tensor, num_groups: Tensor,
                          ctx: ExecutionContext) -> TensorColumn:
        if call.func == "count" and call.expr is None:
            counts = ops.bincount(group_ids, minlength=num_groups)
            return TensorColumn(ops.cast(counts, "int64"), LogicalType.INT)

        # COUNT (and COUNT DISTINCT) work directly on dictionary codes; the
        # numeric reductions below only ever see plain columns.
        value = evaluate_encoded(call.expr, table, ctx.eval_ctx)
        column = to_column(value, table.num_rows, like=table.anchor)
        data = column.tensor

        if call.func == "count":
            if call.distinct:
                return TensorColumn(
                    self._count_distinct(column, group_ids, num_groups), LogicalType.INT
                )
            if column.valid is not None:
                counts = ops.scatter_add(group_ids, ops.cast(column.valid, "int64"),
                                         size=num_groups)
            else:
                counts = ops.bincount(group_ids, minlength=num_groups)
            return TensorColumn(ops.cast(counts, "int64"), LogicalType.INT)

        if column.ltype == LogicalType.STRING:
            raise UnsupportedOperationError(
                "sum/avg/min/max over string columns are not supported"
            )

        # SQL aggregates skip NULL inputs and return NULL when nothing
        # contributed: count per group how many non-NULL rows there are.  For
        # non-nullable input the mask is only needed in the global case (a
        # group always has >= 1 row, but an ungrouped input may be empty).
        if column.valid is not None:
            populated = ops.scatter_add(group_ids, ops.cast(column.valid, "int64"),
                                        size=num_groups)
        else:
            populated = ops.bincount(group_ids, minlength=num_groups)
        valid = None
        if column.valid is not None or not self.group_exprs:
            valid = ops.gt(populated, 0)

        if call.func == "sum":
            if column.valid is not None:
                data = ops.where(column.valid, data, 0)
            result = ops.scatter_add(group_ids, data, size=num_groups)
            if call.output_type == LogicalType.INT:
                result = ops.cast(result, "int64")
            else:
                result = ops.cast(result, "float64")
            return TensorColumn(result, call.output_type, valid)

        if call.func == "avg":
            addend = ops.cast(data, "float64")
            if column.valid is not None:
                addend = ops.where(column.valid, addend, 0.0)
            totals = ops.cast(ops.scatter_add(group_ids, addend, size=num_groups),
                              "float64")
            return TensorColumn(ops.div(totals, ops.cast(ops.maximum(populated, 1),
                                                         "float64")),
                                LogicalType.FLOAT, valid)

        if call.func == "min":
            result = ops.scatter_min(
                group_ids, masked_for_reduce(data, column.valid, "min"),
                size=num_groups)
            return TensorColumn(result, call.output_type, valid)

        if call.func == "max":
            result = ops.scatter_max(
                group_ids, masked_for_reduce(data, column.valid, "max"),
                size=num_groups)
            return TensorColumn(result, call.output_type, valid)

        raise ExecutionError(f"unsupported aggregate function {call.func!r}")

    @staticmethod
    def _count_distinct(column: TensorColumn, group_ids: Tensor,
                        num_groups: Tensor) -> Tensor:
        from repro.core.expressions import ExprValue

        value_ids = factorize_single(
            ExprValue(column.tensor, column.ltype, False, column.valid,
                      column.encoding)
        )
        radix = id_count(value_ids)
        pair_ids = ops.add(ops.mul(group_ids, radix), value_ids)
        unique_pairs, _, _ = ops.unique(pair_ids)
        pair_groups = ops.floordiv(unique_pairs, radix)
        return ops.cast(ops.bincount(pair_groups, minlength=num_groups), "int64")

    # -- execution ----------------------------------------------------------------

    def _execute(self, ctx: ExecutionContext) -> TensorTable:
        table = self.children[0].execute(ctx)
        return self._aggregate_table(table, ctx)

    def _aggregate_table(self, table: TensorTable, ctx: ExecutionContext
                         ) -> TensorTable:
        """Aggregate one materialized table (the single-stream path)."""
        num_rows = table.num_rows

        # Group keys keep dictionary codes: densification runs on ``(n,)``
        # integers and the output key columns stay encoded until consumed.
        key_values = [evaluate_encoded(expr, table, ctx.eval_ctx)
                      for expr in self.group_exprs]
        group_ids, num_groups, compact = self._group_ids(
            key_values, num_rows, table.device, anchor=table.anchor)
        presence = self._group_presence(group_ids, num_groups, compact)

        columns: dict[str, TensorColumn] = {}
        if self.group_exprs:
            representatives = ops.scatter_min(
                group_ids, ops.arange_like(group_ids), num_groups
            )
            if presence is not None:
                # Static-radix ids cover every dictionary combination; keep
                # only the representatives of groups some row actually hit.
                representatives = ops.boolean_mask(representatives, presence)
            for value, name in zip(key_values, self.group_names):
                column = to_column(value, num_rows, like=table.anchor)
                columns[name] = column.gather(representatives)

        for call in self.aggregates:
            column = self._aggregate_column(
                call, table, group_ids, num_groups, ctx
            )
            if presence is not None:
                column = column.mask(presence)
            columns[call.output_name] = column
        return TensorTable(columns)
