"""Planner tuning knobs, collected in one place.

Before this module existed the planner's magic numbers were scattered:
``PARALLEL_THRESHOLD_ROWS`` lived in :mod:`repro.core.operators.parallel`,
``SHARD_MIN_ROWS`` in :mod:`repro.distributed.sharding`,
``MIN_PRUNING_BLOCKS`` in :mod:`repro.storage.pruning`, morsel sizing in
:mod:`repro.core.columnar`.  They are now fields of one frozen
:class:`Tuning` dataclass; those modules re-export their historical names
from :data:`DEFAULT_TUNING` (so existing imports keep working), and the
planner reads every threshold through the :class:`Tuning` it was constructed
with — never a module-level literal (``tools/lint_op_registry.py`` enforces
this statically).

Two ways to deviate from the defaults:

* pass ``tuning=Tuning(...)`` to :class:`repro.core.planner.Planner` /
  :func:`repro.core.planner.plan_ir` — how the adaptive layer
  (:mod:`repro.adaptive`) plans its forced-serial / forced-parallel
  strategy candidates;
* the :func:`tuning_overrides` context manager, which swaps the thread's
  *ambient* tuning so every plan compiled inside the ``with`` block (e.g.
  through a session) picks it up — how benchmarks build an
  "always-parallel" baseline without threading a knob through every API.
"""

from __future__ import annotations

import contextlib
import dataclasses
import threading
from typing import Iterator

from repro.core.columnar import DEFAULT_MORSEL_ROWS


@dataclasses.dataclass(frozen=True)
class Tuning:
    """One planner configuration: every cost/size threshold the planner uses.

    Attributes:
        parallel_threshold_rows: minimum estimated input cardinality for the
            planner to choose a morsel-driven parallel operator — below this,
            per-morsel dispatch overhead outweighs any lane parallelism.
        shard_min_rows: minimum estimated base-table cardinality to shard a
            scan across simulated devices — below this, per-shard kernel
            overhead and the final gather outweigh multi-device parallelism.
        min_pruning_blocks: minimum number of zone-map blocks for scan
            pruning to be worth the bookkeeping.
        morsel_rows: rows per morsel for the parallel operators.
    """

    parallel_threshold_rows: int = 2 * DEFAULT_MORSEL_ROWS
    shard_min_rows: int = DEFAULT_MORSEL_ROWS
    min_pruning_blocks: int = 4
    morsel_rows: int = DEFAULT_MORSEL_ROWS

    def replace(self, **changes) -> "Tuning":
        return dataclasses.replace(self, **changes)


#: The stock configuration — the exact values the planner shipped with before
#: they were centralized here.
DEFAULT_TUNING = Tuning()

# Ambient overrides are thread-local: a benchmark forcing its baseline's
# thresholds must not leak them into plans a concurrent serving worker is
# compiling at the same moment.
_STATE = threading.local()


def active_tuning() -> Tuning:
    """The tuning in effect on this thread (innermost override, or default)."""
    stack = getattr(_STATE, "stack", None)
    return stack[-1] if stack else DEFAULT_TUNING


@contextlib.contextmanager
def tuning_overrides(**changes) -> Iterator[Tuning]:
    """Ambient tuning for every plan compiled inside the block.

    Field overrides apply on top of the currently active tuning, so nested
    blocks compose::

        with tuning_overrides(parallel_threshold_rows=0):
            session.compile(sql)   # plans parallel operators unconditionally
    """
    stack = getattr(_STATE, "stack", None)
    if stack is None:
        stack = []
        _STATE.stack = stack
    stack.append(active_tuning().replace(**changes))
    try:
        yield stack[-1]
    finally:
        stack.pop()
