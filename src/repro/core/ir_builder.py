"""Parsing layer: frontend physical plans → TQP IR (paper §2.2, layer 1)."""

from __future__ import annotations

from repro.core import ir
from repro.errors import PlanningError
from repro.frontend import physical as phys


def build_ir(plan: phys.PhysicalNode) -> ir.IRNode:
    """Convert a physical plan tree into the TQP IR."""
    if isinstance(plan, phys.PhysicalScan):
        return ir.IRNode(ir.SCAN, [], {
            "table": plan.table, "alias": plan.alias, "fields": list(plan.fields),
        }, list(plan.fields))

    if isinstance(plan, phys.PhysicalFilter):
        return ir.IRNode(ir.FILTER, [build_ir(plan.child)],
                         {"condition": plan.condition}, plan.schema())

    if isinstance(plan, phys.PhysicalProject):
        return ir.IRNode(ir.PROJECT, [build_ir(plan.child)], {
            "exprs": list(plan.exprs), "names": list(plan.names),
            "types": list(plan.types),
        }, plan.schema())

    if isinstance(plan, phys.PhysicalHashJoin):
        return ir.IRNode(ir.HASH_JOIN, [build_ir(plan.left), build_ir(plan.right)], {
            "kind": plan.kind, "left_keys": list(plan.left_keys),
            "right_keys": list(plan.right_keys), "residual": plan.residual,
        }, plan.schema())

    if isinstance(plan, phys.PhysicalNestedLoopJoin):
        return ir.IRNode(ir.NESTED_LOOP_JOIN,
                         [build_ir(plan.left), build_ir(plan.right)],
                         {"kind": plan.kind, "condition": plan.condition},
                         plan.schema())

    if isinstance(plan, phys.PhysicalHashAggregate):
        return ir.IRNode(ir.HASH_AGGREGATE, [build_ir(plan.child)], {
            "group_exprs": list(plan.group_exprs),
            "group_names": list(plan.group_names),
            "group_types": list(plan.group_types),
            "aggregates": list(plan.aggregates),
        }, plan.schema())

    if isinstance(plan, phys.PhysicalSort):
        return ir.IRNode(ir.SORT, [build_ir(plan.child)],
                         {"keys": list(plan.keys)}, plan.schema())

    if isinstance(plan, phys.PhysicalLimit):
        return ir.IRNode(ir.LIMIT, [build_ir(plan.child)],
                         {"count": plan.count}, plan.schema())

    if isinstance(plan, phys.PhysicalDistinct):
        return ir.IRNode(ir.DISTINCT, [build_ir(plan.child)], {}, plan.schema())

    if isinstance(plan, phys.PhysicalRename):
        return ir.IRNode(ir.RENAME, [build_ir(plan.child)],
                         {"output_fields": list(plan.output_fields)}, plan.schema())

    raise PlanningError(f"cannot build IR for {type(plan).__name__}")
