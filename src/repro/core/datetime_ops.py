"""Calendar arithmetic over epoch-nanosecond date tensors.

Dates are stored as int64 epoch nanoseconds (paper §2.1).  ``EXTRACT`` is
implemented with the civil-from-days algorithm (Howard Hinnant's
``days_from_civil`` inverse) so it stays entirely inside the tensor op
vocabulary and can be traced into compiled graphs.
"""

from __future__ import annotations

from repro.tensor import Tensor, ops

NS_PER_DAY = 86_400_000_000_000


def _civil_from_days(days: Tensor) -> tuple[Tensor, Tensor, Tensor]:
    """Return (year, month, day) tensors from days-since-epoch."""
    z = ops.add(days, 719468)
    era = ops.floordiv(z, 146097)
    doe = ops.sub(z, ops.mul(era, 146097))
    yoe = ops.floordiv(
        ops.add(ops.sub(doe, ops.floordiv(doe, 1460)),
                ops.sub(ops.floordiv(doe, 36524), ops.floordiv(doe, 146096))),
        365,
    )
    y = ops.add(yoe, ops.mul(era, 400))
    doy = ops.sub(doe, ops.add(ops.mul(yoe, 365),
                               ops.sub(ops.floordiv(yoe, 4), ops.floordiv(yoe, 100))))
    mp = ops.floordiv(ops.add(ops.mul(doy, 5), 2), 153)
    day = ops.add(ops.sub(doy, ops.floordiv(ops.add(ops.mul(mp, 153), 2), 5)), 1)
    month = ops.where(ops.lt(mp, 10), ops.add(mp, 3), ops.sub(mp, 9))
    year = ops.add(y, ops.cast(ops.le(month, 2), "int64"))
    return year, month, day


def extract_field(date_ns: Tensor, field: str) -> Tensor:
    """``EXTRACT(field FROM date_column)`` for field in {year, month, day}."""
    days = ops.floordiv(date_ns, NS_PER_DAY)
    year, month, day = _civil_from_days(days)
    if field == "year":
        return year
    if field == "month":
        return month
    if field == "day":
        return day
    raise ValueError(f"unsupported EXTRACT field {field!r}")
