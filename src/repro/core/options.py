"""ExecutionOptions: one object for every compile/execute knob.

The session API used to take a sprawl of ``backend=`` / ``device=`` /
``optimize=`` / ``use_cache=`` / ``parallelism=`` keyword arguments on every
call.  They are collapsed into a single frozen dataclass that is threaded
through :class:`~repro.core.session.TQPSession`,
:meth:`~repro.core.session.TQPSession.compile`, the
:class:`~repro.core.executor.Executor`, and the plan-cache key.  (The
deprecation shim that accepted the old keyword arguments was removed once all
callers migrated; the old spellings now raise ``TypeError`` like any other
bad keyword.)
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional

from repro.tensor.device import Device, parse_device
from repro.tensor.script import EXECUTOR_MODES


@dataclasses.dataclass(frozen=True)
class ExecutionOptions:
    """Compilation/execution settings for one query (or a whole session).

    Every field has an "inherit" default (``None`` or the common case), so a
    partially specified instance can be resolved against session defaults
    with :meth:`resolved`.

    Attributes:
        backend: ``pytorch`` (eager), ``torchscript``, ``onnx``,
            ``torchscript-noopt`` — ``None`` inherits the session default.
        device: ``cpu``, ``cuda`` (simulated) or ``wasm`` (simulated) —
            ``None`` inherits the session default.
        optimize: apply the frontend/IR optimizer rules.
        use_cache: serve repeated compilations from the session plan cache.
        parallelism: worker lanes for the morsel-driven parallel operators —
            ``None`` inherits the session default.
        auto_parameterize: lift literals out of ad-hoc ``sql()`` calls into
            bind parameters, so queries differing only in constants share one
            compiled plan (opt-in; see ``repro.core.parameters``).
        encoding: storage-encoding configuration for table conversion —
            ``auto`` (dictionary-encode low-cardinality strings, run-length-
            encode sorted numerics), ``dictionary``, ``rle``, or ``off``
            (plain tensors).  Part of the plan-cache and conversion-cache
            keys: a traced program is tied to the storage layout it was
            traced against, so changing the encoding can never serve stale
            tensors.
        executor: how cached graph plans are replayed — ``interpret``
            (node-by-node graph interpreter), ``compiled`` (lower the graph
            to generated code, error if impossible), or ``auto`` (compile
            when supported, fall back to the interpreter otherwise; the
            default).  Part of the plan-cache key.  Only affects graph
            backends; the eager ``pytorch`` backend has no cached graph to
            execute.
        devices: number of simulated devices the plan's tables may be
            sharded across (see :mod:`repro.distributed`) — ``None``
            inherits the session default of 1 (single-device).  With
            ``devices > 1`` the planner substitutes sharded operators with
            explicit exchange/broadcast/gather steps, and the cost models
            charge interconnect transfers between the shards.
        shard: sharding strategy for base tables when ``devices > 1`` —
            ``hash`` (rows spread by key hash) or ``range`` (contiguous row
            ranges).  Part of the plan-cache and conversion-cache keys.
        adaptive: let the session's adaptive runtime
            (:mod:`repro.adaptive`) pick the execution strategy from runtime
            feedback.  Executions are profiled, their observed cardinalities
            and simulated kernel times are recorded in the session's feedback
            store, and a recurring statement is re-planned in place when the
            observations (or the learned cost model) prefer a different
            strategy — results are always identical across strategies.
            ``parallelism`` then sets the lane budget the adaptive planner
            may use, not a fixed choice.  Part of the plan-cache key.
    """

    backend: Optional[str] = None
    device: Device | str | None = None
    optimize: bool = True
    use_cache: bool = True
    parallelism: Optional[int] = None
    auto_parameterize: bool = False
    encoding: str = "auto"
    executor: str = "auto"
    devices: Optional[int] = None
    shard: str = "hash"
    adaptive: bool = False

    def __post_init__(self) -> None:
        if self.executor not in EXECUTOR_MODES:
            raise ValueError(
                f"executor must be one of {EXECUTOR_MODES}, "
                f"got {self.executor!r}")
        if self.shard not in ("hash", "range"):
            raise ValueError(
                f"shard must be 'hash' or 'range', got {self.shard!r}")

    def resolved(self, default_backend: str, default_device: Device | str,
                 default_parallelism: int = 1) -> "ExecutionOptions":
        """A fully concrete copy: every ``None`` replaced by the default."""
        return dataclasses.replace(
            self,
            backend=self.backend or default_backend,
            device=parse_device(self.device if self.device is not None
                                else default_device),
            parallelism=(default_parallelism if self.parallelism is None
                         else max(1, int(self.parallelism))),
            devices=(1 if self.devices is None
                     else max(1, int(self.devices))),
        )

    def replace(self, **changes: Any) -> "ExecutionOptions":
        return dataclasses.replace(self, **changes)

    def cache_key(self) -> tuple:
        """The options' contribution to the session plan-cache key."""
        return (self.backend, str(self.device), self.optimize, self.parallelism,
                self.encoding, self.executor, self.devices, self.shard,
                self.adaptive)
