"""ExecutionOptions: one object for every compile/execute knob.

The session API used to take a sprawl of ``backend=`` / ``device=`` /
``optimize=`` / ``use_cache=`` / ``parallelism=`` keyword arguments on every
call.  They are now collapsed into a single frozen dataclass that is threaded
through :class:`~repro.core.session.TQPSession`,
:meth:`~repro.core.session.TQPSession.compile`, the
:class:`~repro.core.executor.Executor`, and the plan-cache key.  The old
keyword arguments keep working through a deprecation shim (see
:func:`merge_legacy_kwargs`).
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Any, Optional

from repro.tensor.device import Device, parse_device


@dataclasses.dataclass(frozen=True)
class ExecutionOptions:
    """Compilation/execution settings for one query (or a whole session).

    Every field has an "inherit" default (``None`` or the common case), so a
    partially specified instance can be resolved against session defaults
    with :meth:`resolved`.

    Attributes:
        backend: ``pytorch`` (eager), ``torchscript``, ``onnx``,
            ``torchscript-noopt`` — ``None`` inherits the session default.
        device: ``cpu``, ``cuda`` (simulated) or ``wasm`` (simulated) —
            ``None`` inherits the session default.
        optimize: apply the frontend/IR optimizer rules.
        use_cache: serve repeated compilations from the session plan cache.
        parallelism: worker lanes for the morsel-driven parallel operators —
            ``None`` inherits the session default.
        auto_parameterize: lift literals out of ad-hoc ``sql()`` calls into
            bind parameters, so queries differing only in constants share one
            compiled plan (opt-in; see ``repro.core.parameters``).
        encoding: storage-encoding configuration for table conversion —
            ``auto`` (dictionary-encode low-cardinality strings, run-length-
            encode sorted numerics), ``dictionary``, ``rle``, or ``off``
            (plain tensors).  Part of the plan-cache and conversion-cache
            keys: a traced program is tied to the storage layout it was
            traced against, so changing the encoding can never serve stale
            tensors.
    """

    backend: Optional[str] = None
    device: Device | str | None = None
    optimize: bool = True
    use_cache: bool = True
    parallelism: Optional[int] = None
    auto_parameterize: bool = False
    encoding: str = "auto"

    def resolved(self, default_backend: str, default_device: Device | str,
                 default_parallelism: int = 1) -> "ExecutionOptions":
        """A fully concrete copy: every ``None`` replaced by the default."""
        return dataclasses.replace(
            self,
            backend=self.backend or default_backend,
            device=parse_device(self.device if self.device is not None
                                else default_device),
            parallelism=(default_parallelism if self.parallelism is None
                         else max(1, int(self.parallelism))),
        )

    def replace(self, **changes: Any) -> "ExecutionOptions":
        return dataclasses.replace(self, **changes)

    def cache_key(self) -> tuple:
        """The options' contribution to the session plan-cache key."""
        return (self.backend, str(self.device), self.optimize, self.parallelism,
                self.encoding)


#: Legacy keyword arguments accepted (deprecated) by the session entry points.
_LEGACY_KWARGS = ("backend", "device", "optimize", "use_cache", "parallelism")


def merge_legacy_kwargs(options: Optional[ExecutionOptions],
                        stacklevel: int = 3,
                        **legacy: Any) -> ExecutionOptions:
    """Back-compat shim: fold old-style keyword arguments into options.

    Given values win over the corresponding field of ``options`` and emit a
    :class:`DeprecationWarning` steering callers to ``ExecutionOptions``.
    Unknown keys raise ``TypeError`` like a normal bad keyword would.
    """
    supplied = {key: value for key, value in legacy.items() if value is not None}
    unknown = set(supplied) - set(_LEGACY_KWARGS)
    if unknown:
        raise TypeError(f"unknown keyword argument(s): {', '.join(sorted(unknown))}")
    base = options or ExecutionOptions()
    if not supplied:
        return base
    warnings.warn(
        "passing backend=/device=/optimize=/use_cache=/parallelism= directly "
        "is deprecated; pass options=ExecutionOptions(...) instead",
        DeprecationWarning, stacklevel=stacklevel,
    )
    return dataclasses.replace(base, **supplied)
