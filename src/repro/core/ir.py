"""TQP's internal Intermediate Representation (IR).

The parsing layer converts the frontend's physical plan into this IR (paper
§2.2).  Keeping the IR independent from the frontend's plan classes is what
lets TQP plug different frontend database systems: anything that can be
expressed as these IR operators can be compiled to tensor programs.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from repro.frontend.logical import Field

#: IR operator vocabulary.
SCAN = "scan"
FILTER = "filter"
PROJECT = "project"
HASH_JOIN = "hash_join"
NESTED_LOOP_JOIN = "nested_loop_join"
HASH_AGGREGATE = "hash_aggregate"
SORT = "sort"
LIMIT = "limit"
DISTINCT = "distinct"
RENAME = "rename"

ALL_OPS = (SCAN, FILTER, PROJECT, HASH_JOIN, NESTED_LOOP_JOIN, HASH_AGGREGATE,
           SORT, LIMIT, DISTINCT, RENAME)


@dataclasses.dataclass(eq=False)
class IRNode:
    """One IR operator: an op name, children, attributes, and output fields."""

    op: str
    children: list["IRNode"]
    attrs: dict[str, Any]
    fields: list[Field]

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()

    def field_names(self) -> list[str]:
        return [f.name for f in self.fields]

    def op_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for node in self.walk():
            counts[node.op] = counts.get(node.op, 0) + 1
        return counts

    def pretty(self, indent: int = 0) -> str:
        label = self.op
        if self.op == SCAN:
            label += f"({self.attrs['table']})"
        if self.op == PROJECT:
            label += f"({', '.join(self.attrs['names'])})"
        if self.op in (HASH_JOIN, NESTED_LOOP_JOIN):
            label += f"[{self.attrs['kind']}]"
        lines = ["  " * indent + label]
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)
