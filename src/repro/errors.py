"""Exception hierarchy for the TQP reproduction.

Every layer of the stack raises a subclass of :class:`TQPError`, so callers can
catch one exception type at the public-API boundary while tests can assert on
the specific failure mode.
"""

from __future__ import annotations


class TQPError(Exception):
    """Base class for all errors raised by this library."""


class TensorRuntimeError(TQPError):
    """Raised by the tensor runtime substrate (``repro.tensor``)."""


class DeviceError(TensorRuntimeError):
    """Raised for unknown devices or illegal cross-device operations."""


class DTypeError(TensorRuntimeError):
    """Raised for unsupported or mismatched tensor dtypes."""


class GraphError(TensorRuntimeError):
    """Raised for malformed tensor graphs (missing inputs, cycles, ...)."""


class CodegenError(GraphError):
    """Raised when a graph cannot be lowered to generated code.

    The message states the unsupported construct; executor mode ``auto``
    catches this and falls back to the graph interpreter, mode ``compiled``
    surfaces it to the caller.
    """


class SQLError(TQPError):
    """Base class for SQL frontend errors."""


class SQLSyntaxError(SQLError):
    """Raised when the SQL text cannot be parsed."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" (line {line}, column {column})"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class AnalysisError(SQLError):
    """Raised when a parsed query fails semantic analysis (unknown column, ...)."""


class CatalogError(SQLError):
    """Raised for unknown tables or conflicting registrations."""


class PlanningError(TQPError):
    """Raised when a plan cannot be lowered to the next layer."""


class UnsupportedOperationError(PlanningError):
    """Raised when a query uses a feature the compiler does not support."""


class ExecutionError(TQPError):
    """Raised when an executor fails at runtime."""


class BindingError(ExecutionError):
    """Raised when prepared-statement parameter bindings are invalid.

    Covers missing values, unknown parameter names, and ill-typed values; the
    message always names the offending parameter(s).
    """


class ModelError(TQPError):
    """Raised by the ML model layer (unknown model, bad shapes, not fitted)."""
