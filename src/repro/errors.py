"""Exception hierarchy for the TQP reproduction.

Every layer of the stack raises a subclass of :class:`TQPError`, so callers can
catch one exception type at the public-API boundary while tests can assert on
the specific failure mode.
"""

from __future__ import annotations


class TQPError(Exception):
    """Base class for all errors raised by this library."""


class TensorRuntimeError(TQPError):
    """Raised by the tensor runtime substrate (``repro.tensor``)."""


class DeviceError(TensorRuntimeError):
    """Raised for unknown devices or illegal cross-device operations."""


class DTypeError(TensorRuntimeError):
    """Raised for unsupported or mismatched tensor dtypes."""


class GraphError(TensorRuntimeError):
    """Raised for malformed tensor graphs (missing inputs, cycles, ...)."""


class CodegenError(GraphError):
    """Raised when a graph cannot be lowered to generated code.

    The message states the unsupported construct; executor mode ``auto``
    catches this and falls back to the graph interpreter, mode ``compiled``
    surfaces it to the caller.
    """


class SQLError(TQPError):
    """Base class for SQL frontend errors."""


class SQLSyntaxError(SQLError):
    """Raised when the SQL text cannot be parsed."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" (line {line}, column {column})"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class AnalysisError(SQLError):
    """Raised when a parsed query fails semantic analysis (unknown column, ...)."""


class CatalogError(SQLError):
    """Raised for unknown tables or conflicting registrations."""


class PlanningError(TQPError):
    """Raised when a plan cannot be lowered to the next layer."""


class UnsupportedOperationError(PlanningError):
    """Raised when a query uses a feature the compiler does not support."""


class ExecutionError(TQPError):
    """Raised when an executor fails at runtime."""


class BindingError(ExecutionError):
    """Raised when prepared-statement parameter bindings are invalid.

    Covers missing values, unknown parameter names, and ill-typed values; the
    message always names the offending parameter(s).
    """


class BatchBindingError(BindingError):
    """Raised when one binding inside an ``execute_many`` batch is invalid.

    Carries the 0-based :attr:`index` of the offending request, so a serving
    layer can fail exactly that request; the executor's cached program,
    converters and the other bindings of the batch stay usable.
    """

    def __init__(self, index: int, cause: BindingError):
        super().__init__(f"batch request {index}: {cause}")
        #: 0-based position of the bad binding in the submitted batch.
        self.index = index
        #: The underlying :class:`BindingError`.
        self.cause = cause


class ServingError(ExecutionError):
    """Base class for errors raised by the concurrent serving runtime."""


class AdmissionError(ServingError):
    """Raised when the serving runtime rejects a request at admission.

    The runtime bounds its pending queue; once the bound is reached new
    submissions fail fast with this error instead of queueing unboundedly.
    """

    def __init__(self, message: str, queue_depth: int | None = None):
        super().__init__(message)
        #: Pending-queue depth observed at rejection time.
        self.queue_depth = queue_depth


class RequestTimeoutError(ServingError):
    """Raised when a serving request exceeded its timeout before completing.

    A request that times out while still queued is never executed; one that
    already started executing runs to completion, but waiting on its ticket
    past the deadline raises this error.
    """


class ModelError(TQPError):
    """Raised by the ML model layer (unknown model, bad shapes, not fitted)."""
