"""Rule-based logical optimizer.

This is the Catalyst-like layer of the Spark stand-in frontend.  The rules are
the ones the TPC-H workload actually needs:

* ``reorder_cross_joins`` — turn ``FROM a, b, c WHERE ...`` (a cross-join tree
  plus a conjunctive filter) into a left-deep tree of equi-joins, pushing
  single-table predicates below the joins,
* ``extract_equi_keys`` — split explicit ``JOIN ... ON`` conditions into hash
  keys plus a residual predicate,
* ``rewrite_correlated_subqueries`` — decorrelate equality-correlated EXISTS /
  NOT EXISTS and scalar-aggregate subqueries into semi/anti joins and
  group-by joins (the standard unnesting strategy),
* ``push_filters`` — push conjuncts through inner joins,
* ``prune_columns`` — narrow base-table scans to the columns a query touches
  (critical with the paper's padded ``(n × m)`` string representation, since
  unused wide string columns would otherwise be converted and carried around).

Uncorrelated subqueries (scalar, IN, EXISTS) are left in expression form and
evaluated at runtime by both execution engines.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Optional

from repro.core.columnar import LogicalType
from repro.errors import UnsupportedOperationError
from repro.frontend import ast
from repro.frontend.logical import (
    LogicalAggregate,
    LogicalDistinct,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalNode,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    LogicalSubqueryAlias,
)

_subquery_counter = itertools.count()


# ---------------------------------------------------------------------------
# small expression helpers
# ---------------------------------------------------------------------------


def split_conjuncts(expr: Optional[ast.Expr]) -> list[ast.Expr]:
    """Flatten a tree of ANDs into a list of conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, ast.BinaryOp) and expr.op == "and":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def conjoin(conjuncts: Iterable[ast.Expr]) -> Optional[ast.Expr]:
    """Combine conjuncts back into a single AND expression (None if empty)."""
    result: Optional[ast.Expr] = None
    for conjunct in conjuncts:
        if result is None:
            result = conjunct
        else:
            combined = ast.BinaryOp("and", result, conjunct)
            combined.otype = LogicalType.BOOL
            result = combined
    return result


def columns_in(expr: ast.Expr) -> set[str]:
    """Resolved column names referenced by ``expr`` (OuterRefs excluded)."""
    names: set[str] = set()
    for node in ast.walk_expr(expr):
        if isinstance(node, ast.OuterRef):
            continue
        if isinstance(node, ast.ColumnRef) and node.resolved is not None:
            names.add(node.resolved)
    # Remove columns that are only reachable through an OuterRef wrapper.
    for node in ast.walk_expr(expr):
        if isinstance(node, ast.OuterRef):
            names.discard(node.ref.resolved)
    return names


def has_outer_refs(expr: ast.Expr) -> bool:
    return any(isinstance(node, ast.OuterRef) for node in ast.walk_expr(expr))


def has_subquery(expr: ast.Expr) -> bool:
    return any(
        isinstance(node, (ast.InSubquery, ast.ExistsSubquery, ast.ScalarSubquery))
        for node in ast.walk_expr(expr)
    )


def plan_has_outer_refs(plan: LogicalNode) -> bool:
    for node in _walk(plan):
        for expr in node_expressions(node):
            if has_outer_refs(expr):
                return True
    return False


def _walk(plan: LogicalNode):
    yield plan
    for child in plan.children():
        yield from _walk(child)


def node_expressions(node: LogicalNode) -> list[ast.Expr]:
    """All expressions attached directly to ``node``."""
    if isinstance(node, LogicalFilter):
        return [node.condition]
    if isinstance(node, LogicalProject):
        return list(node.exprs)
    if isinstance(node, LogicalJoin):
        exprs = list(node.left_keys) + list(node.right_keys)
        if node.condition is not None:
            exprs.append(node.condition)
        if node.residual is not None:
            exprs.append(node.residual)
        return exprs
    if isinstance(node, LogicalAggregate):
        exprs = list(node.group_exprs)
        exprs.extend(a.expr for a in node.aggregates if a.expr is not None)
        return exprs
    if isinstance(node, LogicalSort):
        return [key for key, _ in node.keys]
    return []


def node_expressions_physical(node) -> list[ast.Expr]:
    """All expressions attached directly to a *physical* node."""
    from repro.frontend import physical as phys

    if isinstance(node, phys.PhysicalFilter):
        return [node.condition]
    if isinstance(node, phys.PhysicalProject):
        return list(node.exprs)
    if isinstance(node, (phys.PhysicalHashJoin,)):
        exprs = list(node.left_keys) + list(node.right_keys)
        if node.residual is not None:
            exprs.append(node.residual)
        return exprs
    if isinstance(node, phys.PhysicalNestedLoopJoin):
        return [node.condition] if node.condition is not None else []
    if isinstance(node, phys.PhysicalHashAggregate):
        exprs = list(node.group_exprs)
        exprs.extend(a.expr for a in node.aggregates if a.expr is not None)
        return exprs
    if isinstance(node, phys.PhysicalSort):
        return [key for key, _ in node.keys]
    return []


def embedded_subplans(expr: ast.Expr) -> list[LogicalNode]:
    """Logical subplans embedded inside an expression (IN/EXISTS/scalar)."""
    plans = []
    for node in ast.walk_expr(expr):
        if isinstance(node, (ast.InSubquery, ast.ExistsSubquery, ast.ScalarSubquery)):
            if node.subplan is not None:
                plans.append(node.subplan)
    return plans


# ---------------------------------------------------------------------------
# rule: reorder comma joins (cross join + filter -> equi join tree)
# ---------------------------------------------------------------------------


def _cross_leaves(node: LogicalNode) -> list[LogicalNode]:
    if isinstance(node, LogicalJoin) and node.kind == "cross" and node.condition is None:
        return _cross_leaves(node.left) + _cross_leaves(node.right)
    return [node]


def _leaf_index_for(columns: set[str], leaf_columns: list[set[str]]) -> set[int]:
    touched = set()
    for i, names in enumerate(leaf_columns):
        if columns & names:
            touched.add(i)
    return touched


def _is_equi_join_pred(expr: ast.Expr, leaf_columns: list[set[str]]
                       ) -> Optional[tuple[int, ast.Expr, int, ast.Expr]]:
    """If ``expr`` is ``a = b`` with each side on a single distinct leaf, return
    (left_leaf, left_expr, right_leaf, right_expr)."""
    if not isinstance(expr, ast.BinaryOp) or expr.op != "=":
        return None
    if has_subquery(expr) or has_outer_refs(expr):
        return None
    left_cols, right_cols = columns_in(expr.left), columns_in(expr.right)
    if not left_cols or not right_cols:
        return None
    left_leaves = _leaf_index_for(left_cols, leaf_columns)
    right_leaves = _leaf_index_for(right_cols, leaf_columns)
    if len(left_leaves) != 1 or len(right_leaves) != 1:
        return None
    left_leaf, right_leaf = next(iter(left_leaves)), next(iter(right_leaves))
    if left_leaf == right_leaf:
        return None
    return left_leaf, expr.left, right_leaf, expr.right


def reorder_cross_joins(plan: LogicalNode) -> LogicalNode:
    """Rewrite Filter-over-cross-joins into a left-deep equi-join tree."""
    plan = _transform_children(plan, reorder_cross_joins)
    if not isinstance(plan, LogicalFilter):
        return plan
    leaves = _cross_leaves(plan.child)
    if len(leaves) < 2:
        return plan
    leaf_columns = [set(leaf.field_names()) for leaf in leaves]
    conjuncts = split_conjuncts(plan.condition)

    per_leaf: list[list[ast.Expr]] = [[] for _ in leaves]
    join_preds: list[tuple[int, ast.Expr, int, ast.Expr, ast.Expr]] = []
    remaining: list[ast.Expr] = []
    for conjunct in conjuncts:
        equi = _is_equi_join_pred(conjunct, leaf_columns)
        if equi is not None:
            left_leaf, left_expr, right_leaf, right_expr = equi
            join_preds.append((left_leaf, left_expr, right_leaf, right_expr, conjunct))
            continue
        if has_subquery(conjunct) or has_outer_refs(conjunct):
            remaining.append(conjunct)
            continue
        touched = _leaf_index_for(columns_in(conjunct), leaf_columns)
        if len(touched) == 1:
            per_leaf[next(iter(touched))].append(conjunct)
        else:
            remaining.append(conjunct)

    filtered_leaves: list[LogicalNode] = []
    for leaf, preds in zip(leaves, per_leaf):
        filtered_leaves.append(LogicalFilter(leaf, conjoin(preds)) if preds else leaf)

    joined = {0}
    current = filtered_leaves[0]
    used_preds: set[int] = set()
    while len(joined) < len(leaves):
        progressed = False
        for candidate in range(len(leaves)):
            if candidate in joined:
                continue
            applicable = [
                (i, pred) for i, pred in enumerate(join_preds)
                if i not in used_preds and (
                    (pred[0] in joined and pred[2] == candidate)
                    or (pred[2] in joined and pred[0] == candidate)
                )
            ]
            if not applicable:
                continue
            left_keys, right_keys = [], []
            for i, pred in applicable:
                used_preds.add(i)
                if pred[2] == candidate:
                    left_keys.append(pred[1])
                    right_keys.append(pred[3])
                else:
                    left_keys.append(pred[3])
                    right_keys.append(pred[1])
            current = LogicalJoin(
                current, filtered_leaves[candidate], kind="inner",
                left_keys=left_keys, right_keys=right_keys,
            )
            joined.add(candidate)
            progressed = True
            break
        if not progressed:
            # No connecting predicate: fall back to a cross join with the next
            # unjoined relation (rare; keeps the plan correct).
            candidate = next(i for i in range(len(leaves)) if i not in joined)
            current = LogicalJoin(current, filtered_leaves[candidate], kind="cross")
            joined.add(candidate)

    leftover = [pred[4] for i, pred in enumerate(join_preds) if i not in used_preds]
    remaining.extend(leftover)
    if remaining:
        return LogicalFilter(current, conjoin(remaining))
    return current


# ---------------------------------------------------------------------------
# rule: split explicit JOIN ... ON conditions into keys + residual
# ---------------------------------------------------------------------------


def extract_equi_keys(plan: LogicalNode) -> LogicalNode:
    plan = _transform_children(plan, extract_equi_keys)
    if not isinstance(plan, LogicalJoin) or plan.condition is None:
        return plan
    left_columns = set(plan.left.field_names())
    right_columns = set(plan.right.field_names())
    residual: list[ast.Expr] = []
    for conjunct in split_conjuncts(plan.condition):
        matched = False
        if isinstance(conjunct, ast.BinaryOp) and conjunct.op == "=":
            lcols, rcols = columns_in(conjunct.left), columns_in(conjunct.right)
            if lcols and rcols:
                if lcols <= left_columns and rcols <= right_columns:
                    plan.left_keys.append(conjunct.left)
                    plan.right_keys.append(conjunct.right)
                    matched = True
                elif lcols <= right_columns and rcols <= left_columns:
                    plan.left_keys.append(conjunct.right)
                    plan.right_keys.append(conjunct.left)
                    matched = True
        if not matched:
            residual.append(conjunct)
    plan.condition = None
    plan.residual = conjoin(residual) if residual else None
    if plan.kind == "cross" and plan.left_keys:
        plan.kind = "inner"
    return plan


# ---------------------------------------------------------------------------
# rule: decorrelate subqueries
# ---------------------------------------------------------------------------


def _strip_correlated_predicates(plan: LogicalNode) -> tuple[
        LogicalNode, list[tuple[ast.Expr, ast.Expr]], list[ast.Expr]]:
    """Remove correlated conjuncts from every Filter inside ``plan``.

    Returns (new_plan, equalities, residuals) where ``equalities`` is a list of
    (outer_expr, inner_expr) pairs coming from ``outer = inner`` conjuncts and
    ``residuals`` are the remaining correlated conjuncts with OuterRef
    wrappers unwrapped (they reference outer columns directly).
    """
    equalities: list[tuple[ast.Expr, ast.Expr]] = []
    residuals: list[ast.Expr] = []

    def unwrap_outer(expr: ast.Expr) -> ast.Expr:
        def fn(node: ast.Expr) -> ast.Expr:
            return node.ref if isinstance(node, ast.OuterRef) else node
        return ast.transform_expr(expr, fn)

    def visit(node: LogicalNode) -> LogicalNode:
        new_children = [visit(child) for child in node.children()]
        if new_children:
            node.replace_children(new_children)
        if not isinstance(node, LogicalFilter):
            return node
        kept: list[ast.Expr] = []
        for conjunct in split_conjuncts(node.condition):
            if not has_outer_refs(conjunct):
                kept.append(conjunct)
                continue
            if isinstance(conjunct, ast.BinaryOp) and conjunct.op == "=":
                left_outer = isinstance(conjunct.left, ast.OuterRef)
                right_outer = isinstance(conjunct.right, ast.OuterRef)
                if left_outer and not right_outer and not has_outer_refs(conjunct.right):
                    equalities.append((conjunct.left.ref, conjunct.right))
                    continue
                if right_outer and not left_outer and not has_outer_refs(conjunct.left):
                    equalities.append((conjunct.right.ref, conjunct.left))
                    continue
            residuals.append(unwrap_outer(conjunct))
        condition = conjoin(kept)
        if condition is None:
            return node.child
        node.condition = condition
        return node

    return visit(plan), equalities, residuals


def _decorrelate_exists(child: LogicalNode, subquery: ast.ExistsSubquery,
                        negated: bool) -> LogicalNode:
    subplan = subquery.subplan
    # Existence does not depend on the subquery's projection; drop it so the
    # correlated key columns stay visible.
    while isinstance(subplan, (LogicalProject, LogicalDistinct, LogicalLimit)):
        if isinstance(subplan, LogicalLimit):
            break
        subplan = subplan.child
    subplan, equalities, residuals = _strip_correlated_predicates(subplan)
    if not equalities:
        raise UnsupportedOperationError(
            "correlated EXISTS without an equality predicate cannot be decorrelated"
        )
    left_keys = [outer for outer, _ in equalities]
    right_keys = [inner for _, inner in equalities]
    return LogicalJoin(
        child, subplan,
        kind="anti" if negated else "semi",
        left_keys=left_keys, right_keys=right_keys,
        residual=conjoin(residuals),
    )


def _decorrelate_scalar(child: LogicalNode, comparison: ast.BinaryOp,
                        subquery: ast.ScalarSubquery, subquery_on_left: bool
                        ) -> tuple[LogicalNode, ast.Expr]:
    """Rewrite ``expr CMP (correlated scalar agg subquery)`` into a join.

    Returns the new child plan and the replacement comparison expression.
    """
    subplan = subquery.subplan
    if not isinstance(subplan, LogicalProject):
        raise UnsupportedOperationError("correlated scalar subquery must be a projection")
    project = subplan
    if not isinstance(project.child, LogicalAggregate) or project.child.group_exprs:
        raise UnsupportedOperationError(
            "correlated scalar subqueries must compute a single ungrouped aggregate"
        )
    aggregate = project.child
    stripped, equalities, residuals = _strip_correlated_predicates(aggregate.child)
    if residuals or not equalities:
        raise UnsupportedOperationError(
            "only equality-correlated scalar subqueries are supported"
        )
    aggregate.child = stripped

    # Group the aggregate by the (inner) correlation keys and expose them.
    inner_key_names: list[str] = []
    for i, (_, inner) in enumerate(equalities):
        if isinstance(inner, ast.ColumnRef):
            name = inner.resolved or inner.display
        else:
            name = f"__corr_key_{i}"
        aggregate.group_exprs.append(inner)
        aggregate.group_names.append(name)
        aggregate.group_types.append(inner.otype or LogicalType.INT)
        passthrough = ast.ColumnRef(None, name.split(".")[-1], resolved=name)
        passthrough.otype = inner.otype
        project.exprs.append(passthrough)
        project.names.append(name.split(".")[-1])
        project.types.append(inner.otype or LogicalType.INT)
        inner_key_names.append(name.split(".")[-1])

    alias = f"__subquery_{next(_subquery_counter)}"
    aliased = LogicalSubqueryAlias(project, alias)
    value_field = aliased.schema()[0]

    left_keys = [outer for outer, _ in equalities]
    right_keys = []
    for key_name, (_, inner) in zip(inner_key_names, equalities):
        ref = ast.ColumnRef(None, key_name, resolved=f"{alias}.{key_name}")
        ref.otype = inner.otype
        right_keys.append(ref)

    joined = LogicalJoin(child, aliased, kind="inner",
                         left_keys=left_keys, right_keys=right_keys)

    value_ref = ast.ColumnRef(None, value_field.name.split(".")[-1],
                              resolved=value_field.name)
    value_ref.otype = value_field.ltype
    if subquery_on_left:
        replacement = ast.BinaryOp(comparison.op, value_ref, comparison.right)
    else:
        replacement = ast.BinaryOp(comparison.op, comparison.left, value_ref)
    replacement.otype = LogicalType.BOOL
    return joined, replacement


def rewrite_correlated_subqueries(plan: LogicalNode) -> LogicalNode:
    plan = _transform_children(plan, rewrite_correlated_subqueries)
    if not isinstance(plan, LogicalFilter):
        return plan

    child = plan.child
    kept: list[ast.Expr] = []
    for conjunct in split_conjuncts(plan.condition):
        # [NOT] EXISTS (...)
        exists, negated = _match_exists(conjunct)
        if exists is not None and plan_has_outer_refs(exists.subplan):
            child = _decorrelate_exists(child, exists, negated)
            continue
        # expr CMP (scalar subquery)
        if isinstance(conjunct, ast.BinaryOp) and conjunct.op in ("=", "<", "<=", ">", ">=", "<>"):
            left_scalar = isinstance(conjunct.left, ast.ScalarSubquery)
            right_scalar = isinstance(conjunct.right, ast.ScalarSubquery)
            scalar = conjunct.left if left_scalar else conjunct.right if right_scalar else None
            if scalar is not None and plan_has_outer_refs(scalar.subplan):
                child, replacement = _decorrelate_scalar(
                    child, conjunct, scalar, subquery_on_left=left_scalar
                )
                kept.append(replacement)
                continue
        if has_outer_refs(conjunct) and has_subquery(conjunct):
            raise UnsupportedOperationError(
                "unsupported correlated subquery pattern in WHERE clause"
            )
        kept.append(conjunct)

    condition = conjoin(kept)
    if condition is None:
        return child
    plan.child = child
    plan.condition = condition
    return plan


def _match_exists(expr: ast.Expr) -> tuple[Optional[ast.ExistsSubquery], bool]:
    if isinstance(expr, ast.ExistsSubquery):
        return expr, expr.negated
    if isinstance(expr, ast.UnaryOp) and expr.op == "not" and isinstance(
        expr.operand, ast.ExistsSubquery
    ):
        return expr.operand, not expr.operand.negated
    return None, False


# ---------------------------------------------------------------------------
# rule: push filters through inner joins
# ---------------------------------------------------------------------------


def push_filters(plan: LogicalNode) -> LogicalNode:
    plan = _transform_children(plan, push_filters)
    if not isinstance(plan, LogicalFilter):
        return plan
    child = plan.child
    if isinstance(child, LogicalFilter):
        merged = conjoin(split_conjuncts(child.condition) + split_conjuncts(plan.condition))
        return push_filters(LogicalFilter(child.child, merged))
    if not isinstance(child, LogicalJoin) or child.kind not in ("inner", "cross"):
        return plan
    left_columns = set(child.left.field_names())
    right_columns = set(child.right.field_names())
    left_push, right_push, kept = [], [], []
    for conjunct in split_conjuncts(plan.condition):
        if has_subquery(conjunct) or has_outer_refs(conjunct):
            kept.append(conjunct)
            continue
        cols = columns_in(conjunct)
        if cols and cols <= left_columns:
            left_push.append(conjunct)
        elif cols and cols <= right_columns:
            right_push.append(conjunct)
        else:
            kept.append(conjunct)
    if not left_push and not right_push:
        return plan
    if left_push:
        child.left = push_filters(LogicalFilter(child.left, conjoin(left_push)))
    if right_push:
        child.right = push_filters(LogicalFilter(child.right, conjoin(right_push)))
    if kept:
        return LogicalFilter(child, conjoin(kept))
    return child


# ---------------------------------------------------------------------------
# rule: prune unused scan columns
# ---------------------------------------------------------------------------


def _collect_used_columns(plan: LogicalNode, used: set[str]) -> None:
    for node in _walk(plan):
        for expr in node_expressions(node):
            for sub in ast.walk_expr(expr):
                if isinstance(sub, ast.ColumnRef) and sub.resolved:
                    used.add(sub.resolved)
                if isinstance(sub, ast.OuterRef) and sub.ref.resolved:
                    used.add(sub.ref.resolved)
            for subplan in embedded_subplans(expr):
                _collect_used_columns(subplan, used)
        if isinstance(node, LogicalSubqueryAlias):
            # alias.column names map 1:1 onto the child's column order.
            child_fields = node.child.schema()
            for alias_field, child_field in zip(node.schema(), child_fields):
                if alias_field.name in used:
                    used.add(child_field.name)
        if isinstance(node, (LogicalDistinct,)):
            used.update(node.field_names())


def _narrow_scans(plan: LogicalNode, used: set[str]) -> None:
    for node in _walk(plan):
        for expr in node_expressions(node):
            for subplan in embedded_subplans(expr):
                _narrow_scans(subplan, used)
        if isinstance(node, LogicalScan):
            narrowed = [f for f in node.fields if f.name in used]
            if narrowed:
                node.fields = narrowed


def prune_columns(plan: LogicalNode) -> LogicalNode:
    used: set[str] = set()
    _collect_used_columns(plan, used)
    _narrow_scans(plan, used)
    return plan


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------


def _transform_children(plan: LogicalNode, fn) -> LogicalNode:
    children = plan.children()
    if children:
        plan.replace_children([fn(child) for child in children])
    return plan


def _optimize_embedded_subplans(plan: LogicalNode) -> None:
    """Optimize subplans embedded in expressions (uncorrelated runtime subqueries
    and correlated ones prior to decorrelation)."""
    for node in _walk(plan):
        for expr in node_expressions(node):
            for sub in ast.walk_expr(expr):
                if isinstance(sub, (ast.InSubquery, ast.ExistsSubquery, ast.ScalarSubquery)):
                    if sub.subplan is not None:
                        sub.subplan = _optimize_no_prune(sub.subplan)


def _optimize_no_prune(plan: LogicalNode) -> LogicalNode:
    _optimize_embedded_subplans(plan)
    plan = reorder_cross_joins(plan)
    plan = extract_equi_keys(plan)
    plan = rewrite_correlated_subqueries(plan)
    plan = push_filters(plan)
    return plan


def optimize(plan: LogicalNode) -> LogicalNode:
    """Apply all optimizer rules and return the rewritten plan."""
    plan = _optimize_no_prune(plan)
    plan = prune_columns(plan)
    return plan
