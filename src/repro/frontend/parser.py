"""Recursive-descent SQL parser producing the AST of :mod:`repro.frontend.ast`.

Coverage is driven by what the 22 TPC-H queries and the paper's prediction
queries need: joins (explicit and comma-style), subqueries (scalar, IN,
EXISTS, derived tables, CTEs), CASE, LIKE, BETWEEN, EXTRACT, SUBSTRING,
date/interval arithmetic, aggregates with DISTINCT, ORDER BY / LIMIT, and the
``PREDICT`` extension of §3.3.
"""

from __future__ import annotations

from repro.core.columnar import LogicalType, date_literal_to_ns
from repro.errors import SQLSyntaxError
from repro.frontend import ast
from repro.frontend.lexer import Token, TokenType, tokenize

_COMPARISON_OPS = {"=", "<>", "!=", "<", "<=", ">", ">="}


class Parser:
    """Parses one SELECT statement (optionally preceded by WITH)."""

    def __init__(self, text: str):
        self.tokens = tokenize(text)
        self.pos = 0
        #: Parameter markers in lexical order: (name, positional?) pairs.
        #: ``?`` markers are assigned the generated names ``p1``, ``p2``, ...
        self.parameters: list[tuple[str, bool]] = []

    # -- token helpers ------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self._peek()
        if token.type != TokenType.EOF:
            self.pos += 1
        return token

    def _error(self, message: str) -> SQLSyntaxError:
        token = self._peek()
        return SQLSyntaxError(f"{message} (near {token.value!r})", token.line, token.column)

    def _expect_keyword(self, *names: str) -> Token:
        token = self._peek()
        if not token.is_keyword(*names):
            raise self._error(f"expected {' or '.join(names).upper()}")
        return self._advance()

    def _expect_punct(self, value: str) -> Token:
        token = self._peek()
        if token.type != TokenType.PUNCTUATION or token.value != value:
            raise self._error(f"expected {value!r}")
        return self._advance()

    def _match_keyword(self, *names: str) -> bool:
        if self._peek().is_keyword(*names):
            self._advance()
            return True
        return False

    def _match_punct(self, value: str) -> bool:
        token = self._peek()
        if token.type == TokenType.PUNCTUATION and token.value == value:
            self._advance()
            return True
        return False

    def _match_operator(self, *values: str) -> str | None:
        token = self._peek()
        if token.type == TokenType.OPERATOR and token.value in values:
            self._advance()
            return token.value
        return None

    # -- entry point -----------------------------------------------------------

    def parse(self) -> ast.SelectStatement:
        ctes: list[tuple[str, ast.SelectStatement]] = []
        if self._match_keyword("with"):
            while True:
                name_token = self._advance()
                if name_token.type != TokenType.IDENTIFIER:
                    raise self._error("expected CTE name")
                self._expect_keyword("as")
                self._expect_punct("(")
                cte_query = self._parse_select()
                self._expect_punct(")")
                ctes.append((name_token.value, cte_query))
                if not self._match_punct(","):
                    break
        statement = self._parse_select()
        statement.ctes = ctes
        self._match_punct(";")
        if self._peek().type != TokenType.EOF:
            raise self._error("unexpected trailing input")
        return statement

    # -- SELECT ------------------------------------------------------------------

    def _parse_select(self) -> ast.SelectStatement:
        self._expect_keyword("select")
        distinct = False
        if self._match_keyword("distinct"):
            distinct = True
        elif self._match_keyword("all"):
            distinct = False
        select_items = [self._parse_select_item()]
        while self._match_punct(","):
            select_items.append(self._parse_select_item())
        from_items: list[ast.FromItem] = []
        if self._match_keyword("from"):
            from_items.append(self._parse_from_item())
            while self._match_punct(","):
                from_items.append(self._parse_from_item())
        where = self._parse_expr() if self._match_keyword("where") else None
        group_by: list[ast.Expr] = []
        if self._match_keyword("group"):
            self._expect_keyword("by")
            group_by.append(self._parse_expr())
            while self._match_punct(","):
                group_by.append(self._parse_expr())
        having = self._parse_expr() if self._match_keyword("having") else None
        order_by: list[ast.OrderItem] = []
        if self._match_keyword("order"):
            self._expect_keyword("by")
            order_by.append(self._parse_order_item())
            while self._match_punct(","):
                order_by.append(self._parse_order_item())
        limit = None
        if self._match_keyword("limit"):
            token = self._advance()
            if token.type != TokenType.NUMBER:
                raise self._error("expected a number after LIMIT")
            limit = int(token.value)
        return ast.SelectStatement(
            select_items=select_items,
            from_items=from_items,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            distinct=distinct,
        )

    def _parse_select_item(self) -> ast.SelectItem:
        expr = self._parse_expr()
        alias = None
        if self._match_keyword("as"):
            alias_token = self._advance()
            alias = alias_token.value
        elif self._peek().type == TokenType.IDENTIFIER:
            alias = self._advance().value
        return ast.SelectItem(expr, alias)

    def _parse_order_item(self) -> ast.OrderItem:
        expr = self._parse_expr()
        ascending = True
        if self._match_keyword("desc"):
            ascending = False
        else:
            self._match_keyword("asc")
        return ast.OrderItem(expr, ascending)

    # -- FROM ---------------------------------------------------------------------

    def _parse_from_item(self) -> ast.FromItem:
        item = self._parse_table_primary()
        while True:
            kind = None
            if self._match_keyword("cross"):
                kind = "cross"
            elif self._match_keyword("inner"):
                kind = "inner"
            elif self._match_keyword("left"):
                self._match_keyword("outer")
                kind = "left"
            elif self._match_keyword("right"):
                self._match_keyword("outer")
                kind = "right"
            elif self._match_keyword("full"):
                self._match_keyword("outer")
                kind = "full"
            if kind is None:
                if self._peek().is_keyword("join"):
                    kind = "inner"
                else:
                    break
            self._expect_keyword("join")
            right = self._parse_table_primary()
            condition = None
            if kind != "cross" and self._match_keyword("on"):
                condition = self._parse_expr()
            item = ast.JoinClause(item, right, kind, condition)
        return item

    def _parse_table_primary(self) -> ast.FromItem:
        if self._match_punct("("):
            query = self._parse_select()
            self._expect_punct(")")
            self._match_keyword("as")
            alias_token = self._advance()
            if alias_token.type != TokenType.IDENTIFIER:
                raise self._error("derived table requires an alias")
            return ast.SubquerySource(query, alias_token.value)
        name_token = self._advance()
        if name_token.type != TokenType.IDENTIFIER:
            raise self._error("expected table name")
        alias = None
        if self._match_keyword("as"):
            alias = self._advance().value
        elif self._peek().type == TokenType.IDENTIFIER:
            alias = self._advance().value
        return ast.TableRef(name_token.value, alias)

    # -- expressions -------------------------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self._match_keyword("or"):
            right = self._parse_and()
            left = ast.BinaryOp("or", left, right)
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_not()
        while self._match_keyword("and"):
            right = self._parse_not()
            left = ast.BinaryOp("and", left, right)
        return left

    def _parse_not(self) -> ast.Expr:
        if self._match_keyword("not"):
            return ast.UnaryOp("not", self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> ast.Expr:
        if self._peek().is_keyword("exists"):
            self._advance()
            self._expect_punct("(")
            query = self._parse_select()
            self._expect_punct(")")
            return ast.ExistsSubquery(query=query, negated=False)
        left = self._parse_additive()
        while True:
            negated = False
            if self._peek().is_keyword("not") and self._peek(1).is_keyword(
                "in", "like", "between"
            ):
                self._advance()
                negated = True
            if self._match_keyword("is"):
                is_negated = self._match_keyword("not")
                self._expect_keyword("null")
                left = ast.IsNull(left, negated=is_negated)
                continue
            if self._match_keyword("between"):
                low = self._parse_additive()
                self._expect_keyword("and")
                high = self._parse_additive()
                left = ast.Between(left, low, high, negated=negated)
                continue
            if self._match_keyword("like"):
                pattern_token = self._advance()
                if pattern_token.type != TokenType.STRING:
                    raise self._error("LIKE requires a string literal pattern")
                left = ast.LikeExpr(left, pattern_token.value, negated=negated)
                continue
            if self._match_keyword("in"):
                left = self._parse_in_rhs(left, negated)
                continue
            op = self._match_operator(*_COMPARISON_OPS)
            if op is not None:
                right = self._parse_additive()
                op = "<>" if op == "!=" else op
                left = ast.BinaryOp(op, left, right)
                continue
            return left

    def _parse_in_rhs(self, operand: ast.Expr, negated: bool) -> ast.Expr:
        self._expect_punct("(")
        if self._peek().is_keyword("select"):
            query = self._parse_select()
            self._expect_punct(")")
            return ast.InSubquery(operand, query, negated=negated)
        items = [self._parse_expr()]
        while self._match_punct(","):
            items.append(self._parse_expr())
        self._expect_punct(")")
        return ast.InList(operand, items, negated=negated)

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while True:
            op = self._match_operator("+", "-", "||")
            if op is None:
                return left
            right = self._parse_multiplicative()
            left = ast.BinaryOp(op, left, right)

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while True:
            op = self._match_operator("*", "/", "%")
            if op is None:
                return left
            right = self._parse_unary()
            left = ast.BinaryOp(op, left, right)

    def _parse_unary(self) -> ast.Expr:
        if self._match_operator("-"):
            return ast.UnaryOp("-", self._parse_unary())
        if self._match_operator("+"):
            return self._parse_unary()
        return self._parse_primary()

    # -- primary expressions -------------------------------------------------------

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()

        if token.type == TokenType.NUMBER:
            self._advance()
            if "." in token.value or "e" in token.value.lower():
                literal = ast.Literal(float(token.value), LogicalType.FLOAT)
            else:
                literal = ast.Literal(int(token.value), LogicalType.INT)
            return literal

        if token.type == TokenType.STRING:
            self._advance()
            return ast.Literal(token.value, LogicalType.STRING)

        if token.is_keyword("true"):
            self._advance()
            return ast.Literal(True, LogicalType.BOOL)
        if token.is_keyword("false"):
            self._advance()
            return ast.Literal(False, LogicalType.BOOL)
        if token.is_keyword("null"):
            self._advance()
            return ast.Literal(None, None)

        if token.is_keyword("date"):
            self._advance()
            value_token = self._advance()
            if value_token.type != TokenType.STRING:
                raise self._error("DATE requires a 'YYYY-MM-DD' string")
            return ast.Literal(date_literal_to_ns(value_token.value), LogicalType.DATE)

        if token.is_keyword("interval"):
            self._advance()
            value_token = self._advance()
            if value_token.type not in (TokenType.STRING, TokenType.NUMBER):
                raise self._error("INTERVAL requires a quoted value")
            unit_token = self._advance()
            unit = unit_token.value.rstrip("s")
            if unit not in ("day", "month", "year"):
                raise self._error(f"unsupported interval unit {unit_token.value!r}")
            return ast.IntervalLiteral(int(value_token.value), unit)

        if token.is_keyword("case"):
            return self._parse_case()

        if token.is_keyword("cast"):
            self._advance()
            self._expect_punct("(")
            operand = self._parse_expr()
            self._expect_keyword("as")
            target = self._advance().value
            self._expect_punct(")")
            return ast.Cast(operand, target)

        if token.is_keyword("extract"):
            self._advance()
            self._expect_punct("(")
            field_token = self._advance()
            field = field_token.value
            if field not in ("year", "month", "day"):
                raise self._error(f"unsupported EXTRACT field {field!r}")
            self._expect_keyword("from")
            operand = self._parse_expr()
            self._expect_punct(")")
            return ast.ExtractExpr(field, operand)

        if token.is_keyword("substring"):
            self._advance()
            self._expect_punct("(")
            operand = self._parse_expr()
            if self._match_keyword("from"):
                start = self._parse_expr()
                length = None
                if self._match_keyword("for"):
                    length = self._parse_expr()
            else:
                self._expect_punct(",")
                start = self._parse_expr()
                length = None
                if self._match_punct(","):
                    length = self._parse_expr()
            self._expect_punct(")")
            return ast.SubstringExpr(operand, start, length)

        if token.is_keyword("predict"):
            self._advance()
            self._expect_punct("(")
            model_token = self._advance()
            if model_token.type != TokenType.STRING:
                raise self._error("PREDICT requires a quoted model name")
            args: list[ast.Expr] = []
            while self._match_punct(","):
                args.append(self._parse_expr())
            self._expect_punct(")")
            return ast.PredictExpr(model_token.value, args)

        if token.type == TokenType.PARAMETER:
            self._advance()
            return self._make_parameter(token)

        if token.type == TokenType.OPERATOR and token.value == "*":
            self._advance()
            return ast.Star()

        if self._match_punct("("):
            if self._peek().is_keyword("select"):
                query = self._parse_select()
                self._expect_punct(")")
                return ast.ScalarSubquery(query)
            expr = self._parse_expr()
            self._expect_punct(")")
            return expr

        if token.type == TokenType.IDENTIFIER or token.is_keyword("year", "month", "day"):
            return self._parse_identifier_expression()

        raise self._error("unexpected token in expression")

    def _make_parameter(self, token: Token) -> ast.ParameterExpr:
        positional = token.value == ""
        styles = {is_positional for _, is_positional in self.parameters}
        if styles and positional not in styles:
            raise SQLSyntaxError(
                "cannot mix '?' and ':name' parameter markers in one statement",
                token.line, token.column,
            )
        name = f"p{sum(1 for _, p in self.parameters if p) + 1}" if positional \
            else token.value
        position = next((i for i, (seen, _) in enumerate(self.parameters)
                         if seen == name), len(self.parameters))
        if position == len(self.parameters):
            self.parameters.append((name, positional))
        return ast.ParameterExpr(name, position=position, positional=positional)

    def _parse_case(self) -> ast.Expr:
        self._expect_keyword("case")
        whens: list[tuple[ast.Expr, ast.Expr]] = []
        else_value = None
        while self._match_keyword("when"):
            condition = self._parse_expr()
            self._expect_keyword("then")
            value = self._parse_expr()
            whens.append((condition, value))
        if self._match_keyword("else"):
            else_value = self._parse_expr()
        self._expect_keyword("end")
        if not whens:
            raise self._error("CASE requires at least one WHEN clause")
        return ast.CaseWhen(whens, else_value)

    def _parse_identifier_expression(self) -> ast.Expr:
        name_token = self._advance()
        name = name_token.value
        # Function call?
        if self._peek().type == TokenType.PUNCTUATION and self._peek().value == "(":
            self._advance()
            distinct = bool(self._match_keyword("distinct"))
            args: list[ast.Expr] = []
            if self._peek().type == TokenType.OPERATOR and self._peek().value == "*":
                self._advance()
                args.append(ast.Star())
            elif not (self._peek().type == TokenType.PUNCTUATION and self._peek().value == ")"):
                args.append(self._parse_expr())
                while self._match_punct(","):
                    args.append(self._parse_expr())
            self._expect_punct(")")
            return ast.FuncCall(name, args, distinct=distinct)
        # Qualified reference: table.column or table.*
        if self._match_punct("."):
            if self._peek().type == TokenType.OPERATOR and self._peek().value == "*":
                self._advance()
                return ast.Star(table=name)
            column_token = self._advance()
            return ast.ColumnRef(name, column_token.value)
        return ast.ColumnRef(None, name)


def parse(sql: str) -> ast.SelectStatement:
    """Parse ``sql`` into a :class:`repro.frontend.ast.SelectStatement`."""
    return Parser(sql).parse()
