"""Semantic analysis: AST → resolved logical plan.

The analyzer binds column references against the catalog, infers expression
types, expands ``*``, splits aggregates out of SELECT/HAVING/ORDER BY into an
Aggregate node, plans derived tables and CTEs, and recursively analyzes
subqueries (marking references to outer columns with :class:`OuterRef` so the
optimizer can decorrelate them).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.columnar import LogicalType
from repro.errors import AnalysisError, UnsupportedOperationError
from repro.frontend import ast
from repro.frontend.catalog import Catalog
from repro.frontend.functions import AGGREGATE_FUNCTIONS, is_aggregate_name
from repro.frontend.logical import (
    AggregateCall,
    Field,
    LogicalAggregate,
    LogicalDistinct,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalNode,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    LogicalSubqueryAlias,
)


# ---------------------------------------------------------------------------
# name scopes
# ---------------------------------------------------------------------------


class Scope:
    """Resolves column names against a plan schema, chaining to outer scopes."""

    def __init__(self, fields: list[Field], outer: Optional["Scope"] = None):
        self.fields = fields
        self.outer = outer
        self._by_qualified: dict[str, Field] = {f.name: f for f in fields}
        self._by_base: dict[str, list[Field]] = {}
        for field in fields:
            base = field.name.split(".")[-1]
            self._by_base.setdefault(base, []).append(field)

    def resolve_local(self, table: Optional[str], name: str) -> Optional[Field]:
        if table is not None:
            return self._by_qualified.get(f"{table}.{name}")
        if name in self._by_qualified:
            return self._by_qualified[name]
        candidates = self._by_base.get(name, [])
        if len(candidates) > 1:
            raise AnalysisError(f"ambiguous column reference: {name!r}")
        return candidates[0] if candidates else None

    def resolve(self, table: Optional[str], name: str) -> tuple[Field, bool]:
        """Resolve a reference; returns (field, is_outer)."""
        field = self.resolve_local(table, name)
        if field is not None:
            return field, False
        if self.outer is not None:
            outer_field, _ = self.outer.resolve(table, name)
            return outer_field, True
        display = f"{table}.{name}" if table else name
        raise AnalysisError(f"cannot resolve column {display!r}")


# ---------------------------------------------------------------------------
# expression keys (structural equality used for grouping / dedup)
# ---------------------------------------------------------------------------


def expr_key(expr: ast.Expr) -> str:
    """A canonical structural key for a resolved expression."""
    if isinstance(expr, ast.ColumnRef):
        return f"col({expr.resolved or expr.display})"
    if isinstance(expr, ast.OuterRef):
        return f"outer({expr.ref.resolved})"
    if isinstance(expr, ast.ParameterExpr):
        return f"param({expr.name})"
    if isinstance(expr, ast.Literal):
        return f"lit({expr.kind},{expr.value!r})"
    if isinstance(expr, ast.IntervalLiteral):
        return f"interval({expr.value},{expr.unit})"
    if isinstance(expr, ast.BinaryOp):
        return f"({expr_key(expr.left)} {expr.op} {expr_key(expr.right)})"
    if isinstance(expr, ast.UnaryOp):
        return f"({expr.op} {expr_key(expr.operand)})"
    if isinstance(expr, ast.FuncCall):
        args = ",".join(expr_key(a) for a in expr.args)
        return f"{expr.name}({'distinct ' if expr.distinct else ''}{args})"
    if isinstance(expr, ast.CaseWhen):
        parts = [f"when {expr_key(c)} then {expr_key(v)}" for c, v in expr.whens]
        if expr.else_value is not None:
            parts.append(f"else {expr_key(expr.else_value)}")
        return f"case({' '.join(parts)})"
    if isinstance(expr, ast.Cast):
        return f"cast({expr_key(expr.operand)} as {expr.target})"
    if isinstance(expr, ast.LikeExpr):
        return f"like({expr_key(expr.operand)},{expr.pattern!r},{expr.negated})"
    if isinstance(expr, ast.Between):
        return (f"between({expr_key(expr.operand)},{expr_key(expr.low)},"
                f"{expr_key(expr.high)},{expr.negated})")
    if isinstance(expr, ast.InList):
        items = ",".join(expr_key(i) for i in expr.items)
        return f"inlist({expr_key(expr.operand)},[{items}],{expr.negated})"
    if isinstance(expr, ast.ExtractExpr):
        return f"extract({expr.field},{expr_key(expr.operand)})"
    if isinstance(expr, ast.SubstringExpr):
        length = expr_key(expr.length) if expr.length is not None else ""
        return f"substr({expr_key(expr.operand)},{expr_key(expr.start)},{length})"
    if isinstance(expr, ast.IsNull):
        return f"isnull({expr_key(expr.operand)},{expr.negated})"
    if isinstance(expr, ast.PredictExpr):
        args = ",".join(expr_key(a) for a in expr.args)
        return f"predict({expr.model_name},{args})"
    if isinstance(expr, ast.Star):
        return f"star({expr.table})"
    # Subqueries: identity-based (never merged).
    return f"{type(expr).__name__}@{id(expr)}"


# ---------------------------------------------------------------------------
# the analyzer
# ---------------------------------------------------------------------------


class Analyzer:
    """Turns parsed SELECT statements into resolved logical plans.

    Args:
        catalog: table schemas for name resolution.
        param_types: optional type hints for bind parameters, by name.  Used
            by auto-parameterization, which knows the natural type of each
            literal it lifted; explicit ``:name`` / ``?`` markers are instead
            typed from their comparison/arithmetic context.
    """

    def __init__(self, catalog: Catalog,
                 param_types: Optional[dict[str, LogicalType]] = None):
        self.catalog = catalog
        self.param_hints = dict(param_types or {})
        #: Inferred type per parameter name (statement-wide).
        self._param_types: dict[str, LogicalType] = {}
        #: Every resolved occurrence, so a type learned late back-propagates.
        self._param_nodes: dict[str, list[ast.ParameterExpr]] = {}

    # -- public API -----------------------------------------------------------

    def analyze(self, statement: ast.SelectStatement) -> LogicalNode:
        cte_map: dict[str, LogicalNode] = {}
        for name, query in statement.ctes:
            cte_map[name] = self._plan_select(query, outer_scope=None, cte_map=dict(cte_map))
        plan = self._plan_select(statement, outer_scope=None, cte_map=cte_map)
        untyped = sorted(name for name, nodes in self._param_nodes.items()
                         if any(node.otype is None for node in nodes))
        if untyped:
            raise AnalysisError(
                "cannot infer the type of parameter(s) "
                + ", ".join(f":{name}" for name in untyped)
                + "; use each parameter in a comparison or arithmetic "
                "expression with a typed column"
            )
        return plan

    # -- parameter typing -----------------------------------------------------

    def parameter_types(self) -> dict[str, LogicalType]:
        """Inferred parameter types, by name (valid after :meth:`analyze`)."""
        return dict(self._param_types)

    def _note_param_type(self, name: str, ltype: LogicalType) -> None:
        current = self._param_types.get(name)
        if current is not None and current != ltype:
            if {current, ltype} == {LogicalType.INT, LogicalType.FLOAT}:
                ltype = LogicalType.FLOAT
            else:
                raise AnalysisError(
                    f"parameter :{name} is used with conflicting types "
                    f"{current.value} and {ltype.value}"
                )
        self._param_types[name] = ltype
        for node in self._param_nodes.get(name, []):
            node.otype = ltype

    def _unify_params(self, *exprs: ast.Expr) -> None:
        """Give untyped parameters the type of a typed sibling operand."""
        anchor = next((e.otype for e in exprs
                       if e.otype is not None
                       and not isinstance(e, ast.ParameterExpr)), None)
        if anchor is None:
            anchor = next((e.otype for e in exprs if e.otype is not None), None)
        if anchor is None:
            return
        for expr in exprs:
            if isinstance(expr, ast.ParameterExpr) and expr.otype is None:
                self._note_param_type(expr.name, anchor)

    # -- SELECT planning -----------------------------------------------------------

    def _plan_select(self, stmt: ast.SelectStatement, outer_scope: Optional[Scope],
                     cte_map: dict[str, LogicalNode]) -> LogicalNode:
        if not stmt.from_items:
            raise UnsupportedOperationError("SELECT without FROM is not supported")
        plan = self._plan_from(stmt.from_items, cte_map, outer_scope)
        scope = Scope(plan.schema(), outer_scope)

        if stmt.where is not None:
            condition = self._resolve(stmt.where, scope, cte_map, allow_aggregates=False)
            plan = LogicalFilter(plan, condition)

        select_exprs: list[ast.Expr] = []
        select_names: list[str] = []
        for i, item in enumerate(stmt.select_items):
            if isinstance(item.expr, ast.Star):
                for field in self._expand_star(item.expr, scope):
                    ref = ast.ColumnRef(None, field.name.split(".")[-1], resolved=field.name)
                    ref.otype = field.ltype
                    select_exprs.append(ref)
                    select_names.append(field.name.split(".")[-1])
                continue
            resolved = self._resolve(item.expr, scope, cte_map, allow_aggregates=True)
            select_exprs.append(resolved)
            select_names.append(item.alias or self._default_name(item.expr, i))

        having_expr = None
        if stmt.having is not None:
            having_expr = self._resolve(stmt.having, scope, cte_map, allow_aggregates=True)

        group_exprs = [self._resolve(g, scope, cte_map, allow_aggregates=False)
                       for g in stmt.group_by]

        needs_aggregate = bool(group_exprs) or having_expr is not None or any(
            ast.contains_aggregate(e) for e in select_exprs
        )

        if needs_aggregate:
            plan, select_exprs, having_expr = self._plan_aggregate(
                plan, group_exprs, select_exprs, having_expr
            )
            if having_expr is not None:
                plan = LogicalFilter(plan, having_expr)

        project_types = [self._require_type(e) for e in select_exprs]
        project = LogicalProject(plan, select_exprs, select_names, project_types)
        plan = project

        if stmt.distinct:
            plan = LogicalDistinct(plan)

        if stmt.order_by:
            fallback = project if not stmt.distinct else None
            plan = self._plan_order_by(plan, stmt.order_by, cte_map, fallback)

        if stmt.limit is not None:
            plan = LogicalLimit(plan, stmt.limit)
        return plan

    # -- FROM planning ------------------------------------------------------------------

    def _plan_from(self, items: list[ast.FromItem], cte_map: dict[str, LogicalNode],
                   outer_scope: Optional[Scope]) -> LogicalNode:
        plans = [self._plan_from_item(item, cte_map, outer_scope) for item in items]
        plan = plans[0]
        for right in plans[1:]:
            plan = LogicalJoin(plan, right, kind="cross")
        return plan

    def _plan_from_item(self, item: ast.FromItem, cte_map: dict[str, LogicalNode],
                        outer_scope: Optional[Scope]) -> LogicalNode:
        if isinstance(item, ast.TableRef):
            alias = item.output_alias
            if item.name in cte_map:
                return LogicalSubqueryAlias(cte_map[item.name], alias)
            schema = self.catalog.schema(item.name)
            fields = [Field(f"{alias}.{column}", ltype)
                      for column, ltype in schema.columns.items()]
            return LogicalScan(item.name, alias, fields)
        if isinstance(item, ast.SubquerySource):
            child = self._plan_select(item.query, outer_scope, dict(cte_map))
            return LogicalSubqueryAlias(child, item.alias)
        if isinstance(item, ast.JoinClause):
            left = self._plan_from_item(item.left, cte_map, outer_scope)
            right = self._plan_from_item(item.right, cte_map, outer_scope)
            join = LogicalJoin(left, right, kind=item.kind)
            if item.condition is not None:
                scope = Scope(join.schema(), outer_scope)
                join.condition = self._resolve(item.condition, scope, cte_map,
                                               allow_aggregates=False)
            return join
        raise UnsupportedOperationError(f"unsupported FROM item: {type(item).__name__}")

    def _expand_star(self, star: ast.Star, scope: Scope) -> list[Field]:
        if star.table is None:
            return list(scope.fields)
        fields = [f for f in scope.fields if f.name.startswith(f"{star.table}.")]
        if not fields:
            raise AnalysisError(f"unknown table alias in {star.table}.*")
        return fields

    @staticmethod
    def _default_name(expr: ast.Expr, index: int) -> str:
        if isinstance(expr, ast.ColumnRef):
            return expr.name
        if isinstance(expr, ast.FuncCall):
            return expr.name
        return f"col{index}"

    # -- aggregation -----------------------------------------------------------------------

    def _plan_aggregate(self, plan: LogicalNode, group_exprs: list[ast.Expr],
                        select_exprs: list[ast.Expr], having_expr: Optional[ast.Expr]
                        ) -> tuple[LogicalNode, list[ast.Expr], Optional[ast.Expr]]:
        group_names: list[str] = []
        group_types: list[LogicalType] = []
        group_map: dict[str, tuple[str, LogicalType]] = {}
        for i, expr in enumerate(group_exprs):
            if isinstance(expr, ast.ColumnRef):
                name = expr.resolved or expr.display
            else:
                name = f"__group_{i}"
            ltype = self._require_type(expr)
            group_names.append(name)
            group_types.append(ltype)
            group_map[expr_key(expr)] = (name, ltype)

        aggregates: list[AggregateCall] = []
        agg_map: dict[str, tuple[str, LogicalType]] = {}

        def collect_and_rewrite(expr: ast.Expr) -> ast.Expr:
            key = expr_key(expr)
            if key in group_map:
                name, ltype = group_map[key]
                ref = ast.ColumnRef(None, name, resolved=name)
                ref.otype = ltype
                return ref
            if isinstance(expr, ast.FuncCall) and is_aggregate_name(expr.name):
                if key not in agg_map:
                    output_name = f"__agg_{len(aggregates)}"
                    call = self._make_aggregate_call(expr, output_name)
                    aggregates.append(call)
                    agg_map[key] = (output_name, call.output_type)
                name, ltype = agg_map[key]
                ref = ast.ColumnRef(None, name, resolved=name)
                ref.otype = ltype
                return ref
            children = expr.children()
            if children:
                expr.replace_children([collect_and_rewrite(c) for c in children])
            return expr

        new_select = [collect_and_rewrite(e) for e in select_exprs]
        new_having = collect_and_rewrite(having_expr) if having_expr is not None else None

        aggregate = LogicalAggregate(
            child=plan,
            group_exprs=group_exprs,
            group_names=group_names,
            group_types=group_types,
            aggregates=aggregates,
        )
        return aggregate, new_select, new_having

    def _make_aggregate_call(self, call: ast.FuncCall, output_name: str) -> AggregateCall:
        func = call.name.lower()
        if func not in AGGREGATE_FUNCTIONS:
            raise AnalysisError(f"unknown aggregate function {call.name!r}")
        arg: Optional[ast.Expr]
        if func == "count" and (not call.args or isinstance(call.args[0], ast.Star)):
            arg = None
            output_type = LogicalType.INT
        else:
            if len(call.args) != 1:
                raise AnalysisError(f"{func}() takes exactly one argument")
            arg = call.args[0]
            arg_type = self._require_type(arg)
            fixed = AGGREGATE_FUNCTIONS[func]
            if fixed is not None:
                output_type = fixed
            elif func == "sum":
                output_type = (LogicalType.INT if arg_type == LogicalType.INT
                               else LogicalType.FLOAT)
            else:  # min / max follow the input type
                output_type = arg_type
        return AggregateCall(func=func, expr=arg, output_name=output_name,
                             distinct=call.distinct, output_type=output_type)

    # -- ORDER BY --------------------------------------------------------------------------

    def _plan_order_by(self, plan: LogicalNode, order_items: list[ast.OrderItem],
                       cte_map: dict[str, LogicalNode],
                       fallback_project: Optional[LogicalProject] = None
                       ) -> LogicalNode:
        """Plan ORDER BY.

        Keys are resolved against the SELECT output (aliases) first.  Keys that
        reference pre-projection columns (e.g. ``ORDER BY t.col`` where the
        SELECT exposes only an alias) are routed through hidden projection
        columns that a final projection drops again after the sort.
        """
        scope = Scope(plan.schema())
        keys: list[tuple[ast.Expr, bool]] = []
        visible_names = plan.field_names()
        hidden = 0
        for item in order_items:
            try:
                resolved = self._resolve(item.expr, scope, cte_map,
                                         allow_aggregates=False)
            except AnalysisError:
                if fallback_project is None:
                    raise
                inner_scope = Scope(fallback_project.child.schema())
                inner = self._resolve(item.expr, inner_scope, cte_map,
                                      allow_aggregates=False)
                hidden_name = f"__sort_key_{hidden}"
                hidden += 1
                fallback_project.exprs.append(inner)
                fallback_project.names.append(hidden_name)
                fallback_project.types.append(self._require_type(inner))
                resolved = ast.ColumnRef(None, hidden_name, resolved=hidden_name)
                resolved.otype = inner.otype
            keys.append((resolved, item.ascending))
        sorted_plan: LogicalNode = LogicalSort(plan, keys)
        if hidden:
            exprs, names, types = [], [], []
            for field in [f for f in sorted_plan.schema() if f.name in visible_names]:
                ref = ast.ColumnRef(None, field.name, resolved=field.name)
                ref.otype = field.ltype
                exprs.append(ref)
                names.append(field.name)
                types.append(field.ltype)
            sorted_plan = LogicalProject(sorted_plan, exprs, names, types)
        return sorted_plan

    # -- expression resolution ----------------------------------------------------------------

    def _resolve(self, expr: ast.Expr, scope: Scope, cte_map: dict[str, LogicalNode],
                 allow_aggregates: bool) -> ast.Expr:
        if isinstance(expr, ast.ColumnRef):
            field, is_outer = scope.resolve(expr.table, expr.name)
            expr.resolved = field.name
            expr.otype = field.ltype
            if is_outer:
                outer = ast.OuterRef(expr)
                outer.otype = field.ltype
                return outer
            return expr

        if isinstance(expr, ast.Literal):
            if expr.otype is None:
                expr.otype = expr.kind
            return expr

        if isinstance(expr, ast.ParameterExpr):
            self._param_nodes.setdefault(expr.name, []).append(expr)
            known = self._param_types.get(expr.name)
            declared = expr.kind or self.param_hints.get(expr.name)
            if known is not None:
                expr.otype = known
            elif declared is not None:
                self._note_param_type(expr.name, declared)
            return expr

        if isinstance(expr, ast.IntervalLiteral):
            return expr

        if isinstance(expr, ast.FuncCall):
            if is_aggregate_name(expr.name) and not allow_aggregates:
                raise AnalysisError(
                    f"aggregate {expr.name!r} is not allowed in this clause"
                )
            expr.args = [self._resolve(a, scope, cte_map, allow_aggregates)
                         for a in expr.args if not isinstance(a, ast.Star)] or list(expr.args)
            expr.otype = self._infer_function_type(expr)
            return expr

        if isinstance(expr, ast.BinaryOp):
            expr.left = self._resolve(expr.left, scope, cte_map, allow_aggregates)
            expr.right = self._resolve(expr.right, scope, cte_map, allow_aggregates)
            if expr.op not in ("and", "or"):
                self._unify_params(expr.left, expr.right)
            folded = self._fold_date_arithmetic(expr)
            if folded is not None:
                return folded
            expr.otype = self._infer_binary_type(expr)
            return expr

        if isinstance(expr, ast.UnaryOp):
            expr.operand = self._resolve(expr.operand, scope, cte_map, allow_aggregates)
            expr.otype = (LogicalType.BOOL if expr.op == "not"
                          else self._require_type(expr.operand))
            return expr

        if isinstance(expr, ast.CaseWhen):
            expr.whens = [
                (self._resolve(c, scope, cte_map, allow_aggregates),
                 self._resolve(v, scope, cte_map, allow_aggregates))
                for c, v in expr.whens
            ]
            if expr.else_value is not None:
                expr.else_value = self._resolve(expr.else_value, scope, cte_map,
                                                allow_aggregates)
            branch_values = [value for _, value in expr.whens]
            if expr.else_value is not None:
                branch_values.append(expr.else_value)
            self._unify_params(*branch_values)
            # Standard SQL numeric promotion across branches: a CASE mixing
            # INT and FLOAT results is FLOAT (typing it after the first THEN
            # alone silently truncated float ELSE branches to int).
            branch_types = {self._require_type(value) for _, value in expr.whens}
            if expr.else_value is not None:
                branch_types.add(self._require_type(expr.else_value))
            if branch_types == {LogicalType.INT, LogicalType.FLOAT}:
                expr.otype = LogicalType.FLOAT
            else:
                expr.otype = self._require_type(expr.whens[0][1])
            return expr

        if isinstance(expr, ast.Cast):
            expr.operand = self._resolve(expr.operand, scope, cte_map, allow_aggregates)
            target = expr.target.lower()
            mapping = {
                "int": LogicalType.INT, "integer": LogicalType.INT,
                "bigint": LogicalType.INT, "float": LogicalType.FLOAT,
                "double": LogicalType.FLOAT, "decimal": LogicalType.FLOAT,
                "varchar": LogicalType.STRING, "char": LogicalType.STRING,
                "date": LogicalType.DATE,
            }
            if target not in mapping:
                raise AnalysisError(f"unsupported CAST target {expr.target!r}")
            expr.otype = mapping[target]
            return expr

        if isinstance(expr, ast.LikeExpr):
            expr.operand = self._resolve(expr.operand, scope, cte_map, allow_aggregates)
            if self._require_type(expr.operand) != LogicalType.STRING:
                raise AnalysisError("LIKE requires a string operand")
            expr.otype = LogicalType.BOOL
            return expr

        if isinstance(expr, ast.Between):
            expr.operand = self._resolve(expr.operand, scope, cte_map, allow_aggregates)
            expr.low = self._resolve(expr.low, scope, cte_map, allow_aggregates)
            expr.high = self._resolve(expr.high, scope, cte_map, allow_aggregates)
            self._unify_params(expr.operand, expr.low, expr.high)
            expr.otype = LogicalType.BOOL
            return expr

        if isinstance(expr, ast.InList):
            expr.operand = self._resolve(expr.operand, scope, cte_map, allow_aggregates)
            expr.items = [self._resolve(i, scope, cte_map, allow_aggregates)
                          for i in expr.items]
            self._unify_params(expr.operand, *expr.items)
            expr.otype = LogicalType.BOOL
            return expr

        if isinstance(expr, ast.InSubquery):
            expr.operand = self._resolve(expr.operand, scope, cte_map, allow_aggregates)
            expr.subplan = self._plan_select(expr.query, scope, dict(cte_map))
            expr.otype = LogicalType.BOOL
            return expr

        if isinstance(expr, ast.ExistsSubquery):
            expr.subplan = self._plan_select(expr.query, scope, dict(cte_map))
            expr.otype = LogicalType.BOOL
            return expr

        if isinstance(expr, ast.ScalarSubquery):
            expr.subplan = self._plan_select(expr.query, scope, dict(cte_map))
            sub_fields = expr.subplan.schema()
            if len(sub_fields) != 1:
                raise AnalysisError("scalar subquery must return exactly one column")
            expr.otype = sub_fields[0].ltype
            return expr

        if isinstance(expr, ast.ExtractExpr):
            expr.operand = self._resolve(expr.operand, scope, cte_map, allow_aggregates)
            expr.otype = LogicalType.INT
            return expr

        if isinstance(expr, ast.SubstringExpr):
            expr.operand = self._resolve(expr.operand, scope, cte_map, allow_aggregates)
            expr.start = self._resolve(expr.start, scope, cte_map, allow_aggregates)
            if expr.length is not None:
                expr.length = self._resolve(expr.length, scope, cte_map, allow_aggregates)
            expr.otype = LogicalType.STRING
            return expr

        if isinstance(expr, ast.IsNull):
            expr.operand = self._resolve(expr.operand, scope, cte_map, allow_aggregates)
            expr.otype = LogicalType.BOOL
            return expr

        if isinstance(expr, ast.PredictExpr):
            expr.args = [self._resolve(a, scope, cte_map, allow_aggregates)
                         for a in expr.args]
            expr.otype = LogicalType.FLOAT
            return expr

        if isinstance(expr, ast.Star):
            raise AnalysisError("'*' is only allowed in SELECT or COUNT(*)")

        raise UnsupportedOperationError(f"cannot analyze {type(expr).__name__}")

    # -- type inference ---------------------------------------------------------------------

    @staticmethod
    def _require_type(expr: ast.Expr) -> LogicalType:
        if expr.otype is None:
            if isinstance(expr, ast.ParameterExpr):
                raise AnalysisError(
                    f"cannot infer the type of parameter :{expr.name}; use it "
                    "in a comparison or arithmetic expression with a typed "
                    "column"
                )
            raise AnalysisError(f"expression {type(expr).__name__} has no inferred type")
        return expr.otype

    def _infer_function_type(self, call: ast.FuncCall) -> LogicalType:
        name = call.name.lower()
        if is_aggregate_name(name):
            return self._make_aggregate_call(call, "_").output_type
        if name in ("year", "month", "day", "length"):
            return LogicalType.INT
        if name in ("floor", "ceil", "sqrt"):
            return LogicalType.FLOAT
        if name == "coalesce":
            if not call.args:
                return LogicalType.FLOAT
            arg_types = {self._require_type(arg) for arg in call.args}
            if arg_types == {LogicalType.INT, LogicalType.FLOAT}:
                return LogicalType.FLOAT
            return self._require_type(call.args[0])
        if name in ("abs", "round"):
            return self._require_type(call.args[0]) if call.args else LogicalType.FLOAT
        raise AnalysisError(f"unknown function {call.name!r}")

    def _infer_binary_type(self, expr: ast.BinaryOp) -> LogicalType:
        op = expr.op
        if op in ("and", "or", "=", "<>", "<", "<=", ">", ">="):
            return LogicalType.BOOL
        if op == "||":
            return LogicalType.STRING
        left = self._require_type(expr.left)
        right = self._require_type(expr.right)
        if op in ("+", "-"):
            if left == LogicalType.DATE and isinstance(expr.right, ast.IntervalLiteral):
                return LogicalType.DATE
            if left == LogicalType.DATE and right == LogicalType.DATE and op == "-":
                return LogicalType.INT
        if op == "/":
            return LogicalType.FLOAT
        if LogicalType.FLOAT in (left, right):
            return LogicalType.FLOAT
        if left == LogicalType.INT and right == LogicalType.INT:
            return LogicalType.INT
        raise AnalysisError(f"cannot apply {op!r} to {left.value} and {right.value}")

    @staticmethod
    def _fold_date_arithmetic(expr: ast.BinaryOp) -> Optional[ast.Literal]:
        """Fold ``date_literal ± interval`` into a date literal at analysis time."""
        if expr.op not in ("+", "-"):
            return None
        left, right = expr.left, expr.right
        if not isinstance(left, ast.Literal) or left.otype != LogicalType.DATE:
            return None
        if not isinstance(right, ast.IntervalLiteral):
            return None
        base = np.datetime64(int(left.value), "ns")
        amount = right.value if expr.op == "+" else -right.value
        if right.unit == "day":
            shifted = base + np.timedelta64(amount, "D")
        elif right.unit == "month":
            shifted = (base.astype("datetime64[M]") + np.timedelta64(amount, "M")
                       ).astype("datetime64[ns]")
        else:  # year
            shifted = (base.astype("datetime64[M]") + np.timedelta64(12 * amount, "M")
                       ).astype("datetime64[ns]")
        folded = ast.Literal(int(shifted.astype("datetime64[ns]").astype(np.int64)),
                             LogicalType.DATE)
        folded.otype = LogicalType.DATE
        return folded
