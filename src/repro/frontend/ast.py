"""Abstract syntax tree for SQL queries and expressions.

Expression nodes are shared by every layer of the stack: the parser produces
them, the analyzer annotates them with logical types and resolved column
names, the optimizer rewrites them, and both the TQP tensor compiler and the
row-engine baseline evaluate them.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Optional, Sequence

from repro.core.columnar import LogicalType


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------


@dataclasses.dataclass(eq=False)
class Expr:
    """Base class for all expression nodes."""

    #: Logical result type, filled in by the analyzer.
    otype: Optional[LogicalType] = dataclasses.field(default=None, init=False, repr=False)

    def children(self) -> list["Expr"]:
        return []

    def replace_children(self, new_children: Sequence["Expr"]) -> None:
        if new_children:
            raise NotImplementedError(
                f"{type(self).__name__} does not accept children"
            )


@dataclasses.dataclass(eq=False)
class Literal(Expr):
    """A constant: number, string, boolean, date (epoch ns), or NULL."""

    value: Any
    kind: LogicalType | None = None  # explicit kind for date literals etc.


@dataclasses.dataclass(eq=False)
class ParameterExpr(Expr):
    """A bind-parameter marker: ``:name`` or ``?`` (positional).

    Parameters are the unit of the prepared-statement API: the analyzer infers
    their logical type from comparison/arithmetic context (or from ``kind``, a
    hint attached by auto-parameterization), the tensor compiler turns each
    one into a *runtime graph input*, and the executor feeds bound values in
    at execution time — so one traced program serves every binding.
    """

    name: str
    #: Lexical position (0-based order of appearance in the statement text);
    #: drives positional binding for ``?`` markers.
    position: int = 0
    #: Optional declared/hinted type (set by auto-parameterization, which
    #: knows the natural type of the literal it lifted).
    kind: LogicalType | None = None
    #: True for ``?`` markers (bound by position), False for ``:name``.
    positional: bool = False


@dataclasses.dataclass(eq=False)
class IntervalLiteral(Expr):
    """``INTERVAL '<value>' <unit>`` — unit in {day, month, year}."""

    value: int
    unit: str


@dataclasses.dataclass(eq=False)
class ColumnRef(Expr):
    """A (possibly qualified) column reference.

    After analysis, ``resolved`` holds the fully qualified output column name
    of the child plan node supplying the value.
    """

    table: Optional[str]
    name: str
    resolved: Optional[str] = None

    @property
    def display(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclasses.dataclass(eq=False)
class OuterRef(Expr):
    """A reference to a column of an *outer* query inside a correlated subquery."""

    ref: ColumnRef


@dataclasses.dataclass(eq=False)
class Star(Expr):
    """``*`` or ``alias.*`` in a SELECT list or ``count(*)``."""

    table: Optional[str] = None


@dataclasses.dataclass(eq=False)
class FuncCall(Expr):
    """A function or aggregate call."""

    name: str
    args: list[Expr]
    distinct: bool = False

    def children(self) -> list[Expr]:
        return list(self.args)

    def replace_children(self, new_children: Sequence[Expr]) -> None:
        self.args = list(new_children)


@dataclasses.dataclass(eq=False)
class BinaryOp(Expr):
    """Binary arithmetic / comparison / logical operation."""

    op: str
    left: Expr
    right: Expr

    def children(self) -> list[Expr]:
        return [self.left, self.right]

    def replace_children(self, new_children: Sequence[Expr]) -> None:
        self.left, self.right = new_children


@dataclasses.dataclass(eq=False)
class UnaryOp(Expr):
    """Unary operation: ``-x`` or ``NOT x``."""

    op: str
    operand: Expr

    def children(self) -> list[Expr]:
        return [self.operand]

    def replace_children(self, new_children: Sequence[Expr]) -> None:
        (self.operand,) = new_children


@dataclasses.dataclass(eq=False)
class CaseWhen(Expr):
    """``CASE WHEN cond THEN value ... [ELSE value] END``."""

    whens: list[tuple[Expr, Expr]]
    else_value: Optional[Expr] = None

    def children(self) -> list[Expr]:
        out: list[Expr] = []
        for cond, value in self.whens:
            out.extend([cond, value])
        if self.else_value is not None:
            out.append(self.else_value)
        return out

    def replace_children(self, new_children: Sequence[Expr]) -> None:
        new_children = list(new_children)
        pairs = len(self.whens)
        self.whens = [
            (new_children[2 * i], new_children[2 * i + 1]) for i in range(pairs)
        ]
        rest = new_children[2 * pairs:]
        self.else_value = rest[0] if rest else None


@dataclasses.dataclass(eq=False)
class Cast(Expr):
    """``CAST(expr AS type)``."""

    operand: Expr
    target: str

    def children(self) -> list[Expr]:
        return [self.operand]

    def replace_children(self, new_children: Sequence[Expr]) -> None:
        (self.operand,) = new_children


@dataclasses.dataclass(eq=False)
class LikeExpr(Expr):
    """``expr [NOT] LIKE 'pattern'`` (patterns use %% and _ wildcards)."""

    operand: Expr
    pattern: str
    negated: bool = False

    def children(self) -> list[Expr]:
        return [self.operand]

    def replace_children(self, new_children: Sequence[Expr]) -> None:
        (self.operand,) = new_children


@dataclasses.dataclass(eq=False)
class Between(Expr):
    """``expr [NOT] BETWEEN low AND high``."""

    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False

    def children(self) -> list[Expr]:
        return [self.operand, self.low, self.high]

    def replace_children(self, new_children: Sequence[Expr]) -> None:
        self.operand, self.low, self.high = new_children


@dataclasses.dataclass(eq=False)
class InList(Expr):
    """``expr [NOT] IN (v1, v2, ...)`` with literal values."""

    operand: Expr
    items: list[Expr]
    negated: bool = False

    def children(self) -> list[Expr]:
        return [self.operand, *self.items]

    def replace_children(self, new_children: Sequence[Expr]) -> None:
        new_children = list(new_children)
        self.operand = new_children[0]
        self.items = new_children[1:]


@dataclasses.dataclass(eq=False)
class InSubquery(Expr):
    """``expr [NOT] IN (SELECT ...)``; ``subplan`` is filled by the analyzer."""

    operand: Expr
    query: Any  # SelectStatement before analysis
    negated: bool = False
    subplan: Any = None  # LogicalNode after analysis

    def children(self) -> list[Expr]:
        return [self.operand]

    def replace_children(self, new_children: Sequence[Expr]) -> None:
        (self.operand,) = new_children


@dataclasses.dataclass(eq=False)
class ExistsSubquery(Expr):
    """``[NOT] EXISTS (SELECT ...)``."""

    query: Any
    negated: bool = False
    subplan: Any = None


@dataclasses.dataclass(eq=False)
class ScalarSubquery(Expr):
    """A subquery used as a scalar value."""

    query: Any
    subplan: Any = None


@dataclasses.dataclass(eq=False)
class ExtractExpr(Expr):
    """``EXTRACT(field FROM expr)`` — field in {year, month, day}."""

    field: str
    operand: Expr

    def children(self) -> list[Expr]:
        return [self.operand]

    def replace_children(self, new_children: Sequence[Expr]) -> None:
        (self.operand,) = new_children


@dataclasses.dataclass(eq=False)
class SubstringExpr(Expr):
    """``SUBSTRING(expr FROM start [FOR length])`` (1-based start)."""

    operand: Expr
    start: Expr
    length: Optional[Expr] = None

    def children(self) -> list[Expr]:
        out = [self.operand, self.start]
        if self.length is not None:
            out.append(self.length)
        return out

    def replace_children(self, new_children: Sequence[Expr]) -> None:
        new_children = list(new_children)
        self.operand, self.start = new_children[0], new_children[1]
        self.length = new_children[2] if len(new_children) > 2 else None


@dataclasses.dataclass(eq=False)
class IsNull(Expr):
    """``expr IS [NOT] NULL``."""

    operand: Expr
    negated: bool = False

    def children(self) -> list[Expr]:
        return [self.operand]

    def replace_children(self, new_children: Sequence[Expr]) -> None:
        (self.operand,) = new_children


@dataclasses.dataclass(eq=False)
class PredictExpr(Expr):
    """``PREDICT('model_name', col1, col2, ...)`` — the paper's §3.3 extension."""

    model_name: str
    args: list[Expr]

    def children(self) -> list[Expr]:
        return list(self.args)

    def replace_children(self, new_children: Sequence[Expr]) -> None:
        self.args = list(new_children)


# ---------------------------------------------------------------------------
# expression traversal helpers
# ---------------------------------------------------------------------------


def transform_expr(expr: Expr, fn: Callable[[Expr], Expr]) -> Expr:
    """Bottom-up transformation: apply ``fn`` to every node, children first."""
    children = expr.children()
    if children:
        expr.replace_children([transform_expr(child, fn) for child in children])
    return fn(expr)


def walk_expr(expr: Expr):
    """Yield every node of the expression tree (pre-order)."""
    yield expr
    for child in expr.children():
        yield from walk_expr(child)


def contains_aggregate(expr: Expr) -> bool:
    """True if the expression contains an aggregate function call."""
    from repro.frontend.functions import is_aggregate_name

    for node in walk_expr(expr):
        if isinstance(node, FuncCall) and is_aggregate_name(node.name):
            return True
    return False


# ---------------------------------------------------------------------------
# query-level AST
# ---------------------------------------------------------------------------


@dataclasses.dataclass(eq=False)
class SelectItem:
    expr: Expr
    alias: Optional[str] = None


@dataclasses.dataclass(eq=False)
class OrderItem:
    expr: Expr
    ascending: bool = True


@dataclasses.dataclass(eq=False)
class FromItem:
    """Base class for FROM clause items."""


@dataclasses.dataclass(eq=False)
class TableRef(FromItem):
    name: str
    alias: Optional[str] = None

    @property
    def output_alias(self) -> str:
        return self.alias or self.name


@dataclasses.dataclass(eq=False)
class SubquerySource(FromItem):
    query: "SelectStatement"
    alias: str


@dataclasses.dataclass(eq=False)
class JoinClause(FromItem):
    left: FromItem
    right: FromItem
    kind: str  # inner, left, right, full, cross
    condition: Optional[Expr] = None


@dataclasses.dataclass(eq=False)
class SelectStatement:
    """A parsed (possibly nested) SELECT statement."""

    select_items: list[SelectItem]
    from_items: list[FromItem]
    where: Optional[Expr] = None
    group_by: list[Expr] = dataclasses.field(default_factory=list)
    having: Optional[Expr] = None
    order_by: list[OrderItem] = dataclasses.field(default_factory=list)
    limit: Optional[int] = None
    distinct: bool = False
    ctes: list[tuple[str, "SelectStatement"]] = dataclasses.field(default_factory=list)
