"""Metadata about SQL functions understood by the frontend."""

from __future__ import annotations

from repro.core.columnar import LogicalType

#: Aggregate function names and whether their result is always float.
AGGREGATE_FUNCTIONS = {
    "sum": None,      # result type follows the input type
    "avg": LogicalType.FLOAT,
    "min": None,
    "max": None,
    "count": LogicalType.INT,
}

#: Scalar functions with a fixed result type (None = follows first argument).
SCALAR_FUNCTIONS = {
    "abs": None,
    "round": None,
    "floor": LogicalType.FLOAT,
    "ceil": LogicalType.FLOAT,
    "sqrt": LogicalType.FLOAT,
    "length": LogicalType.INT,
    "year": LogicalType.INT,
    "month": LogicalType.INT,
    "day": LogicalType.INT,
    "coalesce": None,
}


def is_aggregate_name(name: str) -> bool:
    return name.lower() in AGGREGATE_FUNCTIONS


def is_scalar_function(name: str) -> bool:
    return name.lower() in SCALAR_FUNCTIONS
