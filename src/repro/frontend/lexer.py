"""SQL lexer for the Spark-like frontend.

Produces a flat token stream consumed by :mod:`repro.frontend.parser`.
Keywords are case-insensitive; identifiers are lower-cased (TPC-H style),
quoted identifiers/strings preserve case.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.errors import SQLSyntaxError


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCTUATION = "punctuation"
    #: A bind-parameter marker: value is the name for ``:name``, "" for ``?``.
    PARAMETER = "parameter"
    EOF = "eof"


KEYWORDS = {
    "select", "from", "where", "group", "by", "having", "order", "limit",
    "as", "and", "or", "not", "in", "exists", "between", "like", "is", "null",
    "case", "when", "then", "else", "end", "distinct", "all", "asc", "desc",
    "join", "inner", "left", "right", "full", "outer", "cross", "on", "using",
    "union", "with", "date", "interval", "extract", "substring", "for", "cast",
    "true", "false", "predict",
    "year", "month", "day",
}

_OPERATORS = ("<>", "!=", ">=", "<=", "||", "=", "<", ">", "+", "-", "*", "/", "%")
_PUNCTUATION = ("(", ")", ",", ";", ".")


@dataclasses.dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based)."""

    type: TokenType
    value: str
    line: int
    column: int

    def is_keyword(self, *names: str) -> bool:
        return self.type == TokenType.KEYWORD and self.value in names

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Token({self.type.value}, {self.value!r})"


class Lexer:
    """Converts SQL text into a list of tokens."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.line = 1
        self.column = 1

    def _error(self, message: str) -> SQLSyntaxError:
        return SQLSyntaxError(message, self.line, self.column)

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.text) and self.text[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.text[index] if index < len(self.text) else ""

    def tokenize(self) -> list[Token]:
        tokens: list[Token] = []
        while self.pos < len(self.text):
            ch = self._peek()
            if ch.isspace():
                self._advance()
                continue
            if ch == "-" and self._peek(1) == "-":
                while self.pos < len(self.text) and self._peek() != "\n":
                    self._advance()
                continue
            if ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.text) and not (
                    self._peek() == "*" and self._peek(1) == "/"
                ):
                    self._advance()
                if self.pos >= len(self.text):
                    raise self._error("unterminated block comment")
                self._advance(2)
                continue
            line, column = self.line, self.column
            if ch == "'":
                tokens.append(Token(TokenType.STRING, self._read_string(), line, column))
                continue
            if ch == '"':
                tokens.append(Token(TokenType.IDENTIFIER,
                                    self._read_quoted_identifier(), line, column))
                continue
            if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
                tokens.append(Token(TokenType.NUMBER, self._read_number(), line, column))
                continue
            if ch.isalpha() or ch == "_":
                word = self._read_word()
                lowered = word.lower()
                if lowered in KEYWORDS:
                    tokens.append(Token(TokenType.KEYWORD, lowered, line, column))
                else:
                    tokens.append(Token(TokenType.IDENTIFIER, lowered, line, column))
                continue
            if ch == "?":
                tokens.append(Token(TokenType.PARAMETER, "", line, column))
                self._advance()
                continue
            if ch == ":":
                if not (self._peek(1).isalpha() or self._peek(1) == "_"):
                    raise self._error("':' must be followed by a parameter name")
                self._advance()
                tokens.append(Token(TokenType.PARAMETER, self._read_word().lower(),
                                    line, column))
                continue
            matched = False
            for op in _OPERATORS:
                if self.text.startswith(op, self.pos):
                    tokens.append(Token(TokenType.OPERATOR, op, line, column))
                    self._advance(len(op))
                    matched = True
                    break
            if matched:
                continue
            if ch in _PUNCTUATION:
                tokens.append(Token(TokenType.PUNCTUATION, ch, line, column))
                self._advance()
                continue
            raise self._error(f"unexpected character {ch!r}")
        tokens.append(Token(TokenType.EOF, "", self.line, self.column))
        return tokens

    def _read_string(self) -> str:
        self._advance()  # opening quote
        chars: list[str] = []
        while True:
            if self.pos >= len(self.text):
                raise self._error("unterminated string literal")
            ch = self._peek()
            if ch == "'":
                if self._peek(1) == "'":  # escaped quote
                    chars.append("'")
                    self._advance(2)
                    continue
                self._advance()
                return "".join(chars)
            chars.append(ch)
            self._advance()

    def _read_quoted_identifier(self) -> str:
        self._advance()
        chars: list[str] = []
        while True:
            if self.pos >= len(self.text):
                raise self._error("unterminated quoted identifier")
            ch = self._peek()
            if ch == '"':
                self._advance()
                return "".join(chars)
            chars.append(ch)
            self._advance()

    def _read_number(self) -> str:
        chars: list[str] = []
        seen_dot = False
        seen_exp = False
        while self.pos < len(self.text):
            ch = self._peek()
            if ch.isdigit():
                chars.append(ch)
            elif ch == "." and not seen_dot and not seen_exp:
                seen_dot = True
                chars.append(ch)
            elif ch in "eE" and not seen_exp and chars and chars[-1].isdigit():
                seen_exp = True
                chars.append(ch)
                if self._peek(1) in "+-":
                    self._advance()
                    chars.append(self._peek())
            else:
                break
            self._advance()
        return "".join(chars)

    def _read_word(self) -> str:
        chars: list[str] = []
        while self.pos < len(self.text):
            ch = self._peek()
            if ch.isalnum() or ch == "_":
                chars.append(ch)
                self._advance()
            else:
                break
        return "".join(chars)


def tokenize(text: str) -> list[Token]:
    """Tokenize SQL ``text`` into a token list ending with an EOF token."""
    return Lexer(text).tokenize()
