"""Spark-like SQL frontend: parser, analyzer, optimizer, physical planner.

The frontend plays the role Apache Spark plays for TQP in the paper: it turns
SQL text into a *physical plan* that TQP's compilation stack (and the
row-engine baseline) consume.
"""

from repro.frontend.analyzer import Analyzer
from repro.frontend.catalog import Catalog, TableSchema
from repro.frontend.logical import LogicalNode
from repro.frontend.optimizer import optimize
from repro.frontend.parser import parse
from repro.frontend.physical import PhysicalNode
from repro.frontend.planner import to_physical

__all__ = [
    "Analyzer",
    "Catalog",
    "LogicalNode",
    "PhysicalNode",
    "TableSchema",
    "optimize",
    "parse",
    "sql_to_logical",
    "sql_to_physical",
    "to_physical",
]


def sql_to_logical(sql: str, catalog: Catalog, optimized: bool = True,
                   param_types: dict | None = None) -> LogicalNode:
    """Parse, analyze and (optionally) optimize ``sql`` into a logical plan.

    ``param_types`` optionally hints the logical type of bind parameters by
    name (see :class:`repro.frontend.analyzer.Analyzer`).
    """
    statement = parse(sql)
    plan = Analyzer(catalog, param_types=param_types).analyze(statement)
    if optimized:
        plan = optimize(plan)
    return plan


def sql_to_physical(sql: str, catalog: Catalog, optimized: bool = True,
                    param_types: dict | None = None) -> PhysicalNode:
    """Full frontend pipeline: SQL text → physical plan."""
    return to_physical(sql_to_logical(sql, catalog, optimized=optimized,
                                      param_types=param_types))
